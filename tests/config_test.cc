#include "ccsim/config/params.h"

#include <gtest/gtest.h>

namespace ccsim::config {
namespace {

TEST(Config, PaperBaseConfigIsValid) {
  EXPECT_EQ(PaperBaseConfig().Validate(), "");
}

TEST(Config, PaperBaseConfigMatchesTable4) {
  SystemConfig cfg = PaperBaseConfig();
  EXPECT_EQ(cfg.machine.num_proc_nodes, 8);
  EXPECT_DOUBLE_EQ(cfg.machine.host_mips, 10.0);
  EXPECT_DOUBLE_EQ(cfg.machine.node_mips, 1.0);
  EXPECT_EQ(cfg.machine.disks_per_node, 2);
  EXPECT_DOUBLE_EQ(cfg.machine.min_disk_ms, 10.0);
  EXPECT_DOUBLE_EQ(cfg.machine.max_disk_ms, 30.0);
  EXPECT_EQ(cfg.database.num_relations, 8);
  EXPECT_EQ(cfg.database.partitions_per_relation, 8);
  EXPECT_EQ(cfg.database.num_files(), 64);
  EXPECT_EQ(cfg.database.pages_per_file, 300);
  EXPECT_EQ(cfg.database.total_pages(), 19200);
  EXPECT_EQ(cfg.workload.num_terminals, 128);
  ASSERT_EQ(cfg.workload.classes.size(), 1u);
  EXPECT_DOUBLE_EQ(cfg.workload.classes[0].pages_per_partition_avg, 8.0);
  EXPECT_DOUBLE_EQ(cfg.workload.classes[0].write_prob, 0.25);
  EXPECT_DOUBLE_EQ(cfg.workload.classes[0].inst_per_page, 8000.0);
  EXPECT_DOUBLE_EQ(cfg.costs.inst_per_update, 2000.0);
  EXPECT_DOUBLE_EQ(cfg.costs.inst_per_startup, 2000.0);
  EXPECT_DOUBLE_EQ(cfg.costs.inst_per_msg, 1000.0);
  EXPECT_DOUBLE_EQ(cfg.costs.inst_per_cc_req, 0.0);
  EXPECT_DOUBLE_EQ(cfg.costs.deadlock_interval_sec, 1.0);
}

TEST(Config, LargeDatabaseSize) {
  SystemConfig cfg = PaperBaseConfig();
  cfg.database.pages_per_file = 1200;
  EXPECT_EQ(cfg.database.total_pages(), 76800);
}

TEST(ConfigValidate, RejectsBadMachine) {
  SystemConfig cfg = PaperBaseConfig();
  cfg.machine.num_proc_nodes = 0;
  EXPECT_NE(cfg.Validate(), "");
  cfg = PaperBaseConfig();
  cfg.machine.node_mips = -1;
  EXPECT_NE(cfg.Validate(), "");
  cfg = PaperBaseConfig();
  cfg.machine.max_disk_ms = 5;  // below min
  EXPECT_NE(cfg.Validate(), "");
}

TEST(ConfigValidate, RejectsBadPlacement) {
  SystemConfig cfg = PaperBaseConfig();
  cfg.placement.degree = 3;  // does not divide 8
  EXPECT_NE(cfg.Validate(), "");
  cfg.placement.degree = 16;  // exceeds nodes
  EXPECT_NE(cfg.Validate(), "");
  cfg.placement.degree = 0;
  EXPECT_NE(cfg.Validate(), "");
}

TEST(ConfigValidate, RejectsBadWorkload) {
  SystemConfig cfg = PaperBaseConfig();
  cfg.workload.classes[0].write_prob = 1.5;
  EXPECT_NE(cfg.Validate(), "");
  cfg = PaperBaseConfig();
  cfg.workload.classes[0].fraction = 0.5;  // fractions must sum to 1
  EXPECT_NE(cfg.Validate(), "");
  cfg = PaperBaseConfig();
  cfg.workload.num_terminals = 100;  // not a multiple of 8 relations
  EXPECT_NE(cfg.Validate(), "");
  cfg = PaperBaseConfig();
  cfg.workload.think_time_sec = -1;
  EXPECT_NE(cfg.Validate(), "");
}

TEST(ConfigValidate, RejectsPageCountExceedingFile) {
  SystemConfig cfg = PaperBaseConfig();
  cfg.database.pages_per_file = 10;
  cfg.workload.classes[0].pages_per_partition_avg = 8;  // max count 12 > 10
  EXPECT_NE(cfg.Validate(), "");
}

TEST(ConfigValidate, AcceptsMultipleClasses) {
  SystemConfig cfg = PaperBaseConfig();
  TransactionClassParams second = cfg.workload.classes[0];
  cfg.workload.classes[0].fraction = 0.75;
  second.fraction = 0.25;
  second.exec_pattern = ExecPattern::kSequential;
  cfg.workload.classes.push_back(second);
  EXPECT_EQ(cfg.Validate(), "");
}

TEST(ConfigFingerprint, StableForEqualConfigs) {
  EXPECT_EQ(PaperBaseConfig().Fingerprint(), PaperBaseConfig().Fingerprint());
}

TEST(ConfigFingerprint, SensitiveToEveryInterestingKnob) {
  SystemConfig base = PaperBaseConfig();
  auto fp = base.Fingerprint();

  SystemConfig c = base;
  c.algorithm = CcAlgorithm::kOptimistic;
  EXPECT_NE(c.Fingerprint(), fp);

  c = base;
  c.workload.think_time_sec += 1;
  EXPECT_NE(c.Fingerprint(), fp);

  c = base;
  c.placement.degree = 1;
  EXPECT_NE(c.Fingerprint(), fp);

  c = base;
  c.database.pages_per_file = 1200;
  EXPECT_NE(c.Fingerprint(), fp);

  c = base;
  c.costs.inst_per_msg = 4000;
  EXPECT_NE(c.Fingerprint(), fp);

  c = base;
  c.run.seed = 43;
  EXPECT_NE(c.Fingerprint(), fp);

  c = base;
  c.run.measure_sec += 1;
  EXPECT_NE(c.Fingerprint(), fp);

  c = base;
  c.machine.num_proc_nodes = 4;
  c.placement.degree = 4;
  EXPECT_NE(c.Fingerprint(), fp);

  // An audit run reports different result fields (audited/serializable), so
  // it must not share a cache slot with the plain run of the same config.
  c = base;
  c.run.enable_audit = true;
  EXPECT_NE(c.Fingerprint(), fp);
}

TEST(ConfigFingerprint, DiagnosticKnobsDoNotKeyTheCache) {
  // The watchdog only decides whether a broken run dies loudly; arming it
  // must not invalidate cached results (fp-exempt in params.h).
  SystemConfig base = PaperBaseConfig();
  SystemConfig c = base;
  c.run.watchdog_max_events = 1000000000;
  c.run.watchdog_stall_sec = 3600.0;
  EXPECT_EQ(c.Fingerprint(), base.Fingerprint());
}

TEST(ConfigToString, AlgorithmNames) {
  EXPECT_STREQ(ToString(CcAlgorithm::kNoDc), "NO_DC");
  EXPECT_STREQ(ToString(CcAlgorithm::kTwoPhaseLocking), "2PL");
  EXPECT_STREQ(ToString(CcAlgorithm::kWoundWait), "WW");
  EXPECT_STREQ(ToString(CcAlgorithm::kBasicTimestamp), "BTO");
  EXPECT_STREQ(ToString(CcAlgorithm::kOptimistic), "OPT");
}

TEST(ConfigToString, ExecPatternNames) {
  EXPECT_STREQ(ToString(ExecPattern::kSequential), "sequential");
  EXPECT_STREQ(ToString(ExecPattern::kParallel), "parallel");
}

TEST(Config, AllAlgorithmsListHasFiveEntries) {
  int n = 0;
  for (auto alg : kAllAlgorithms) {
    (void)alg;
    ++n;
  }
  EXPECT_EQ(n, 5);
}

}  // namespace
}  // namespace ccsim::config
