#include "ccsim/resource/disk.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ccsim/resource/resource_manager.h"
#include "ccsim/sim/process.h"
#include "ccsim/sim/random.h"
#include "ccsim/sim/simulation.h"

namespace ccsim::resource {
namespace {

using sim::Await;
using sim::Completion;
using sim::Process;
using sim::RandomStream;
using sim::Simulation;
using sim::Unit;

Process Track(Simulation& sim, std::shared_ptr<Completion<Unit>> c,
              double* when) {
  co_await Await(std::move(c));
  *when = sim.Now();
}

Process TrackOrder(Simulation& sim, std::shared_ptr<Completion<Unit>> c,
                   std::vector<int>* order, int tag) {
  (void)sim;
  co_await Await(std::move(c));
  order->push_back(tag);
}

class DiskTest : public ::testing::Test {
 protected:
  Simulation sim_;
  Disk disk_{&sim_, 0.010, 0.030, RandomStream(1, 99)};
};

TEST_F(DiskTest, SingleAccessWithinServiceRange) {
  double done = -1;
  Track(sim_, disk_.Access(DiskOp::kRead), &done);
  sim_.Run();
  EXPECT_GE(done, 0.010);
  EXPECT_LE(done, 0.030);
}

TEST_F(DiskTest, ReadsServeFifo) {
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    TrackOrder(sim_, disk_.Access(DiskOp::kRead), &order, i);
  }
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(DiskTest, WritesJumpAheadOfQueuedReads) {
  std::vector<int> order;
  // Read 0 enters service immediately; reads 1-2 queue; the write must be
  // served right after read 0, before reads 1-2 (non-preemptive priority).
  TrackOrder(sim_, disk_.Access(DiskOp::kRead), &order, 0);
  TrackOrder(sim_, disk_.Access(DiskOp::kRead), &order, 1);
  TrackOrder(sim_, disk_.Access(DiskOp::kRead), &order, 2);
  TrackOrder(sim_, disk_.Access(DiskOp::kWrite), &order, 100);
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 100, 1, 2}));
}

TEST_F(DiskTest, QueueLengthCountsInServiceAndWaiting) {
  disk_.Access(DiskOp::kRead);
  disk_.Access(DiskOp::kRead);
  disk_.Access(DiskOp::kWrite);
  EXPECT_EQ(disk_.queue_length(), 3u);
  sim_.Run();
  EXPECT_EQ(disk_.queue_length(), 0u);
}

TEST_F(DiskTest, SaturatedDiskHasFullUtilization) {
  for (int i = 0; i < 50; ++i) disk_.Access(DiskOp::kRead);
  sim_.Run();
  EXPECT_NEAR(disk_.Utilization(), 1.0, 1e-9);
  EXPECT_EQ(disk_.accesses_completed(), 50u);
}

TEST_F(DiskTest, WaitTimesRecordQueueingDelay) {
  disk_.Access(DiskOp::kRead);
  disk_.Access(DiskOp::kRead);
  sim_.Run();
  ASSERT_EQ(disk_.wait_times().count(), 2u);
  EXPECT_DOUBLE_EQ(disk_.wait_times().min(), 0.0);   // first starts at once
  EXPECT_GE(disk_.wait_times().max(), 0.010);        // second waited >= min
}

TEST_F(DiskTest, MeanServiceTimeNearMidpoint) {
  const int n = 2000;
  for (int i = 0; i < n; ++i) disk_.Access(DiskOp::kRead);
  sim_.Run();
  // Busy the whole time; total time ~ n * 20 ms.
  EXPECT_NEAR(sim_.Now() / n, 0.020, 0.001);
}

TEST_F(DiskTest, ResetStatsClearsCountersAndWindow) {
  disk_.Access(DiskOp::kRead);
  sim_.Run();
  disk_.ResetStats();
  EXPECT_EQ(disk_.accesses_completed(), 0u);
  EXPECT_EQ(disk_.wait_times().count(), 0u);
}

TEST(ResourceManager, SpreadsAccessesAcrossDisks) {
  Simulation sim;
  ResourceManager rm(&sim, 1.0, 4, 0.010, 0.030, /*seed=*/7,
                     /*stream_base=*/0);
  for (int i = 0; i < 400; ++i) rm.DiskAccess(DiskOp::kRead);
  sim.Run();
  for (int d = 0; d < 4; ++d) {
    EXPECT_GT(rm.disk(d).accesses_completed(), 50u);
  }
}

TEST(ResourceManager, MeanDiskUtilizationAveragesDisks) {
  Simulation sim;
  ResourceManager rm(&sim, 1.0, 2, 0.010, 0.010, 7, 0);
  rm.disk(0).Access(DiskOp::kRead);  // only disk 0 busy
  sim.At(0.020, [] {});
  sim.Run();
  EXPECT_NEAR(rm.MeanDiskUtilization(), 0.25, 1e-9);
}

TEST(ResourceManagerDeathTest, DiskAccessWithNoDisksIsFatal) {
  Simulation sim;
  ResourceManager rm(&sim, 1.0, 0, 0.010, 0.030, 7, 0);
  EXPECT_DEATH(rm.DiskAccess(DiskOp::kRead), "no disks");
}

}  // namespace
}  // namespace ccsim::resource
