#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ccsim/db/catalog.h"
#include "ccsim/db/placement.h"

namespace ccsim::db {
namespace {

config::DatabaseParams PaperDb() {
  config::DatabaseParams db;
  db.num_relations = 8;
  db.partitions_per_relation = 8;
  db.pages_per_file = 300;
  return db;
}

TEST(Placement, OneWayPutsWholeRelationOnOneNode) {
  auto map = ComputePlacement(PaperDb(), 8, 1);
  // Relation r entirely at node r+1; relations spread across distinct nodes.
  for (int r = 0; r < 8; ++r) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(map[static_cast<size_t>(r * 8 + j)], r + 1);
    }
  }
}

TEST(Placement, EightWaySpreadsEachRelationOverAllNodes) {
  auto map = ComputePlacement(PaperDb(), 8, 8);
  for (int r = 0; r < 8; ++r) {
    std::set<NodeId> nodes;
    for (int j = 0; j < 8; ++j) nodes.insert(map[static_cast<size_t>(r * 8 + j)]);
    EXPECT_EQ(nodes.size(), 8u);
  }
}

TEST(Placement, FourWayUsesStrideTwo) {
  auto map = ComputePlacement(PaperDb(), 8, 4);
  // Relation 0: partitions 0-1 -> node 1, 2-3 -> node 3, 4-5 -> node 5,
  // 6-7 -> node 7 (Sec 4.4: R_i at S_i, S_i+2, S_i+4, S_i+6).
  EXPECT_EQ(map[0], 1);
  EXPECT_EQ(map[1], 1);
  EXPECT_EQ(map[2], 3);
  EXPECT_EQ(map[3], 3);
  EXPECT_EQ(map[4], 5);
  EXPECT_EQ(map[5], 5);
  EXPECT_EQ(map[6], 7);
  EXPECT_EQ(map[7], 7);
  // Relation 1 offsets by one node.
  EXPECT_EQ(map[8], 2);
  EXPECT_EQ(map[14], 8);
}

TEST(Placement, TwoWaySplitsHalfAndHalf) {
  auto map = ComputePlacement(PaperDb(), 8, 2);
  for (int j = 0; j < 4; ++j) EXPECT_EQ(map[static_cast<size_t>(j)], 1);
  for (int j = 4; j < 8; ++j) EXPECT_EQ(map[static_cast<size_t>(j)], 5);
}

TEST(Placement, EveryDegreeBalancesLoadAcrossNodes) {
  for (int degree : {1, 2, 4, 8}) {
    auto map = ComputePlacement(PaperDb(), 8, degree);
    std::vector<int> per_node(9, 0);
    for (NodeId n : map) ++per_node[static_cast<size_t>(n)];
    for (int n = 1; n <= 8; ++n) {
      EXPECT_EQ(per_node[static_cast<size_t>(n)], 8)
          << "degree " << degree << " node " << n;
    }
  }
}

TEST(Placement, ScalingConfigurationsUseAllNodes) {
  // Experiment 1: degree == machine size.
  for (int nodes : {1, 2, 4, 8}) {
    auto map = ComputePlacement(PaperDb(), nodes, nodes);
    std::set<NodeId> used(map.begin(), map.end());
    EXPECT_EQ(static_cast<int>(used.size()), nodes);
    // Every relation touches every node (a transaction then has one cohort
    // per node).
    for (int r = 0; r < 8; ++r) {
      std::set<NodeId> rel_nodes;
      for (int j = 0; j < 8; ++j)
        rel_nodes.insert(map[static_cast<size_t>(r * 8 + j)]);
      EXPECT_EQ(static_cast<int>(rel_nodes.size()), nodes);
    }
  }
}

TEST(Placement, NodesAreOneBased) {
  auto map = ComputePlacement(PaperDb(), 4, 4);
  for (NodeId n : map) {
    EXPECT_GE(n, 1);
    EXPECT_LE(n, 4);
  }
}

TEST(PlacementDeathTest, RejectsNonDividingDegree) {
  EXPECT_DEATH(ComputePlacement(PaperDb(), 8, 3), "");
  EXPECT_DEATH(ComputePlacement(PaperDb(), 6, 4), "");
}

TEST(Catalog, ShapeAccessors) {
  Catalog cat(PaperDb(), ComputePlacement(PaperDb(), 8, 8));
  EXPECT_EQ(cat.num_relations(), 8);
  EXPECT_EQ(cat.partitions_per_relation(), 8);
  EXPECT_EQ(cat.num_files(), 64);
  EXPECT_EQ(cat.pages_per_file(), 300);
}

TEST(Catalog, FileRelationMapping) {
  Catalog cat(PaperDb(), ComputePlacement(PaperDb(), 8, 8));
  EXPECT_EQ(cat.RelationOfFile(0), 0);
  EXPECT_EQ(cat.RelationOfFile(7), 0);
  EXPECT_EQ(cat.RelationOfFile(8), 1);
  EXPECT_EQ(cat.RelationOfFile(63), 7);
  EXPECT_EQ(cat.FileOf(3, 5), 29);
  EXPECT_EQ(cat.RelationOfFile(cat.FileOf(3, 5)), 3);
}

TEST(Catalog, FilesOfRelationInPartitionOrder) {
  Catalog cat(PaperDb(), ComputePlacement(PaperDb(), 8, 8));
  auto files = cat.FilesOfRelation(2);
  ASSERT_EQ(files.size(), 8u);
  for (int j = 0; j < 8; ++j) EXPECT_EQ(files[static_cast<size_t>(j)], 16 + j);
}

TEST(Catalog, NodesOfRelationMatchesDegree) {
  for (int degree : {1, 2, 4, 8}) {
    Catalog cat(PaperDb(), ComputePlacement(PaperDb(), 8, degree));
    for (int r = 0; r < 8; ++r) {
      EXPECT_EQ(static_cast<int>(cat.NodesOfRelation(r).size()), degree);
    }
  }
}

TEST(Catalog, NodeOfPageFollowsFile) {
  Catalog cat(PaperDb(), ComputePlacement(PaperDb(), 8, 1));
  PageRef p{9, 250};  // file 9 = relation 1 -> node 2
  EXPECT_EQ(cat.NodeOfPage(p), 2);
}

TEST(PageRef, KeyIsInjectiveAcrossFilesAndPages) {
  PageRef a{1, 2}, b{2, 1}, c{1, 3};
  EXPECT_NE(a.Key(), b.Key());
  EXPECT_NE(a.Key(), c.Key());
  EXPECT_EQ(a.Key(), (PageRef{1, 2}).Key());
}

TEST(Timestamp, LexicographicOrdering) {
  Timestamp a{1.0, 5}, b{1.0, 6}, c{2.0, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_GT(c, a);
  EXPECT_LE(a, a);
  EXPECT_GE(a, a);
  EXPECT_LT(kTimestampZero, a);
}

}  // namespace
}  // namespace ccsim::db
