#include <gtest/gtest.h>

#include <memory>

#include "ccsim/engine/system.h"
#include "test_util.h"

namespace ccsim::txn {
namespace {

using engine::System;

// Builds a spec with one cohort per (node, page-count) entry; pages are
// distinct across cohorts. write_mask bit i marks access i of EVERY cohort
// as an update.
workload::TransactionSpec MakeSpec(
    const std::vector<std::pair<NodeId, int>>& cohorts, unsigned write_mask,
    config::ExecPattern pattern = config::ExecPattern::kParallel,
    int first_page = 0) {
  workload::TransactionSpec spec;
  spec.exec_pattern = pattern;
  int page = first_page;
  for (auto [node, count] : cohorts) {
    workload::CohortSpec c;
    c.node = node;
    for (int i = 0; i < count; ++i) {
      // With 1-way placement, relation r lives at node r+1; its first file
      // is r * partitions_per_relation.
      FileId file = (node - 1) * 4;
      c.accesses.push_back(workload::PageAccess{PageRef{file, page++},
                                                (write_mask & (1u << i)) != 0});
    }
    spec.cohorts.push_back(std::move(c));
  }
  return spec;
}

config::SystemConfig ProtocolConfig(config::CcAlgorithm alg) {
  // 4 proc nodes; relations placed 1-way so file r sits at node r+1.
  config::SystemConfig cfg = config::PaperBaseConfig();
  cfg.algorithm = alg;
  cfg.machine.num_proc_nodes = 4;
  cfg.placement.degree = 1;
  cfg.database.num_relations = 4;
  cfg.database.partitions_per_relation = 4;
  cfg.database.pages_per_file = 100;
  cfg.workload.num_terminals = 4;
  cfg.run.enable_audit = true;
  return cfg;
}

TEST(TxnProtocol, SingleCohortCommitUsesSixMessages) {
  System sys(ProtocolConfig(config::CcAlgorithm::kNoDc));
  auto done = sys.coordinator().Submit(MakeSpec({{1, 3}}, 0b001));
  sys.sim().RunUntil(10.0);
  ASSERT_TRUE(done->done());
  auto& net = sys.network();
  EXPECT_EQ(net.messages_sent(net::MsgTag::kLoadCohort), 1u);
  EXPECT_EQ(net.messages_sent(net::MsgTag::kCohortReady), 1u);
  EXPECT_EQ(net.messages_sent(net::MsgTag::kPrepare), 1u);
  EXPECT_EQ(net.messages_sent(net::MsgTag::kVote), 1u);
  EXPECT_EQ(net.messages_sent(net::MsgTag::kCommit), 1u);
  EXPECT_EQ(net.messages_sent(net::MsgTag::kAck), 1u);
  EXPECT_EQ(net.messages_sent(), 6u);
  EXPECT_EQ(sys.coordinator().commits(), 1u);
  EXPECT_EQ(sys.coordinator().live_transactions(), 0u);
}

TEST(TxnProtocol, ParallelCohortsEachGetTheFullProtocol) {
  System sys(ProtocolConfig(config::CcAlgorithm::kNoDc));
  auto done =
      sys.coordinator().Submit(MakeSpec({{1, 2}, {2, 2}, {3, 2}}, 0));
  sys.sim().RunUntil(10.0);
  ASSERT_TRUE(done->done());
  EXPECT_EQ(sys.network().messages_sent(), 18u);  // 6 per cohort
}

TEST(TxnProtocol, ParallelCohortsOverlapInTime) {
  // Two cohorts of equal size on different nodes: the parallel transaction
  // should take roughly the time of one cohort, not two.
  System par(ProtocolConfig(config::CcAlgorithm::kNoDc));
  auto d1 = par.coordinator().Submit(
      MakeSpec({{1, 8}, {2, 8}}, 0, config::ExecPattern::kParallel));
  par.sim().RunUntil(60.0);
  ASSERT_TRUE(d1->done());

  System seq(ProtocolConfig(config::CcAlgorithm::kNoDc));
  auto d2 = seq.coordinator().Submit(
      MakeSpec({{1, 8}, {2, 8}}, 0, config::ExecPattern::kSequential));
  seq.sim().RunUntil(60.0);
  ASSERT_TRUE(d2->done());

  // Compare completion times via the recorded response-time running means.
  EXPECT_LT(par.RestartDelay(), 0.75 * seq.RestartDelay());
}

TEST(TxnProtocol, SequentialCohortsLoadOneAfterAnother) {
  System sys(ProtocolConfig(config::CcAlgorithm::kNoDc));
  auto done = sys.coordinator().Submit(
      MakeSpec({{1, 2}, {2, 2}}, 0, config::ExecPattern::kSequential));
  sys.sim().RunUntil(30.0);
  ASSERT_TRUE(done->done());
  EXPECT_EQ(sys.network().messages_sent(net::MsgTag::kLoadCohort), 2u);
  EXPECT_EQ(sys.network().messages_sent(net::MsgTag::kCohortReady), 2u);
  EXPECT_EQ(sys.coordinator().commits(), 1u);
}

TEST(TxnProtocol, WoundAbortsAndRestartsTheVictim) {
  System sys(ProtocolConfig(config::CcAlgorithm::kWoundWait));
  // T1 (older): a short read prefix, then the contested page {0, 99}
  // (node 1). T2 (younger) grabs the contested page first and then has a
  // long read tail, so it is still running when T1 arrives and wounds it.
  workload::TransactionSpec t1;
  t1.exec_pattern = config::ExecPattern::kParallel;
  workload::CohortSpec c1;
  c1.node = 1;
  for (int i = 0; i < 4; ++i)
    c1.accesses.push_back(workload::PageAccess{PageRef{0, i}, false});
  c1.accesses.push_back(workload::PageAccess{PageRef{0, 99}, true});
  t1.cohorts.push_back(c1);

  workload::TransactionSpec t2;
  t2.exec_pattern = config::ExecPattern::kParallel;
  workload::CohortSpec c2;
  c2.node = 1;
  c2.accesses.push_back(workload::PageAccess{PageRef{0, 99}, true});
  for (int i = 10; i < 22; ++i)
    c2.accesses.push_back(workload::PageAccess{PageRef{0, i}, false});
  t2.cohorts.push_back(c2);

  auto d1 = sys.coordinator().Submit(std::move(t1));
  sys.sim().RunUntil(0.001);  // T1 is older by submission time
  auto d2 = sys.coordinator().Submit(std::move(t2));
  sys.sim().RunUntil(60.0);
  ASSERT_TRUE(d1->done());
  ASSERT_TRUE(d2->done());
  // T2 was wounded exactly once, then restarted and committed.
  EXPECT_EQ(sys.coordinator().aborts(), 1u);
  EXPECT_EQ(sys.coordinator().aborts_by_reason(AbortReason::kWound), 1u);
  EXPECT_EQ(sys.coordinator().commits(), 2u);
  EXPECT_GE(sys.network().messages_sent(net::MsgTag::kAbortRequest), 1u);
  EXPECT_EQ(sys.network().messages_sent(net::MsgTag::kAbort), 1u);
}

TEST(TxnProtocol, BtoRejectionRestartsWithFreshTimestamp) {
  System sys(ProtocolConfig(config::CcAlgorithm::kBasicTimestamp));
  // T1 (older ts) writes page 50 *after* a slow prefix; T2 (younger) reads
  // page 50 immediately, pushing rts past T1's timestamp -> T1 rejected.
  workload::TransactionSpec t1;
  workload::CohortSpec c1;
  c1.node = 1;
  for (int i = 0; i < 6; ++i)
    c1.accesses.push_back(workload::PageAccess{PageRef{0, i}, false});
  c1.accesses.push_back(workload::PageAccess{PageRef{0, 50}, true});
  t1.cohorts.push_back(c1);

  workload::TransactionSpec t2;
  workload::CohortSpec c2;
  c2.node = 1;
  c2.accesses.push_back(workload::PageAccess{PageRef{0, 50}, false});
  t2.cohorts.push_back(c2);

  auto d1 = sys.coordinator().Submit(std::move(t1));
  sys.sim().RunUntil(0.001);
  auto d2 = sys.coordinator().Submit(std::move(t2));
  sys.sim().RunUntil(60.0);
  ASSERT_TRUE(d1->done());
  ASSERT_TRUE(d2->done());
  EXPECT_EQ(sys.coordinator().commits(), 2u);
  EXPECT_GE(sys.coordinator().aborts_by_reason(AbortReason::kTimestampOrder),
            1u);
  EXPECT_GE(sys.network().messages_sent(net::MsgTag::kCohortAborted), 1u);
}

TEST(TxnProtocol, RestartReusesTheSameAccessSet) {
  System sys(ProtocolConfig(config::CcAlgorithm::kWoundWait));
  workload::TransactionSpec spec = MakeSpec({{1, 3}}, 0b111);
  auto copy = spec;
  auto done = sys.coordinator().Submit(std::move(spec));
  sys.sim().RunUntil(30.0);
  ASSERT_TRUE(done->done());
  // The audit of the committed attempt covers exactly the spec's pages.
  ASSERT_EQ(sys.commit_log().size(), 1u);
  EXPECT_EQ(sys.commit_log()[0].ops.size(), copy.cohorts[0].accesses.size());
}

TEST(TxnProtocol, CommitCompletesResponseOnceAllAcksArrive) {
  System sys(ProtocolConfig(config::CcAlgorithm::kNoDc));
  auto done = sys.coordinator().Submit(MakeSpec({{1, 1}, {2, 1}}, 0));
  // Before running, nothing has happened.
  EXPECT_FALSE(done->done());
  sys.sim().RunUntil(10.0);
  EXPECT_TRUE(done->done());
}

TEST(TxnProtocol, AsyncWritebackHitsTheDisks) {
  System sys(ProtocolConfig(config::CcAlgorithm::kNoDc));
  auto done = sys.coordinator().Submit(MakeSpec({{1, 4}}, 0b1111));
  sys.sim().RunUntil(30.0);
  ASSERT_TRUE(done->done());
  // 4 updated pages -> 4 asynchronous writes on node 1's disks; the 4
  // write accesses themselves do no synchronous read I/O, so total disk
  // accesses == 4.
  auto& rm = sys.resources(1);
  std::uint64_t total = 0;
  for (int d = 0; d < rm.num_disks(); ++d)
    total += rm.disk(d).accesses_completed();
  EXPECT_EQ(total, 4u);
}

TEST(TxnProtocol, NonzeroCcRequestCostIsCharged) {
  auto base = ProtocolConfig(config::CcAlgorithm::kNoDc);
  System cheap(base);
  auto d1 = cheap.coordinator().Submit(MakeSpec({{1, 4}}, 0));
  cheap.sim().RunUntil(30.0);
  ASSERT_TRUE(d1->done());

  auto costly_cfg = ProtocolConfig(config::CcAlgorithm::kNoDc);
  costly_cfg.costs.inst_per_cc_req = 50000;  // 50 ms per request at 1 MIPS
  System costly(costly_cfg);
  auto d2 = costly.coordinator().Submit(MakeSpec({{1, 4}}, 0));
  costly.sim().RunUntil(30.0);
  ASSERT_TRUE(d2->done());

  // 4 accesses x 50 ms of CC CPU = +0.2 s on the (single) response time,
  // visible through the running mean the restart delay tracks.
  EXPECT_GT(costly.RestartDelay(), cheap.RestartDelay() + 0.15);
}

TEST(TxnProtocol, PureReadsDoSynchronousIo) {
  System sys(ProtocolConfig(config::CcAlgorithm::kNoDc));
  auto done = sys.coordinator().Submit(MakeSpec({{1, 5}}, 0));
  sys.sim().RunUntil(30.0);
  ASSERT_TRUE(done->done());
  auto& rm = sys.resources(1);
  std::uint64_t total = 0;
  for (int d = 0; d < rm.num_disks(); ++d)
    total += rm.disk(d).accesses_completed();
  EXPECT_EQ(total, 5u);
}

}  // namespace
}  // namespace ccsim::txn
