#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ccsim/db/placement.h"
#include "ccsim/workload/access_generator.h"
#include "ccsim/workload/source.h"

namespace ccsim::workload {
namespace {

struct Fixture {
  Fixture(int degree = 8, config::PageCountSpread spread =
                              config::PageCountSpread::kSymmetric)
      : cfg(config::PaperBaseConfig()),
        catalog(cfg.database,
                db::ComputePlacement(cfg.database, 8, degree)) {
    cfg.workload.classes[0].spread = spread;
    gen = std::make_unique<AccessGenerator>(&cfg.workload, &catalog);
  }
  config::SystemConfig cfg;
  db::Catalog catalog;
  std::unique_ptr<AccessGenerator> gen;
};

TEST(AccessGenerator, TerminalGroupsMapToRelations) {
  Fixture f;
  // 128 terminals / 8 relations = groups of 16.
  EXPECT_EQ(f.gen->GroupRelationOfTerminal(0), 0);
  EXPECT_EQ(f.gen->GroupRelationOfTerminal(15), 0);
  EXPECT_EQ(f.gen->GroupRelationOfTerminal(16), 1);
  EXPECT_EQ(f.gen->GroupRelationOfTerminal(127), 7);
}

TEST(AccessGenerator, TransactionAccessesOnlyItsRelation) {
  Fixture f;
  sim::RandomStream rng(1, 1);
  for (int t : {0, 20, 127}) {
    TransactionSpec spec = f.gen->Generate(t, rng);
    EXPECT_EQ(spec.relation, f.gen->GroupRelationOfTerminal(t));
    for (const auto& cohort : spec.cohorts) {
      for (const auto& a : cohort.accesses) {
        EXPECT_EQ(f.catalog.RelationOfFile(a.page.file), spec.relation);
      }
    }
  }
}

TEST(AccessGenerator, OneCohortPerNodeHoldingTheRelation) {
  for (int degree : {1, 2, 4, 8}) {
    Fixture f(degree);
    sim::RandomStream rng(1, 2);
    TransactionSpec spec = f.gen->Generate(5, rng);
    EXPECT_EQ(static_cast<int>(spec.cohorts.size()), degree);
    std::set<NodeId> nodes;
    for (const auto& c : spec.cohorts) nodes.insert(c.node);
    EXPECT_EQ(static_cast<int>(nodes.size()), degree);  // distinct nodes
  }
}

TEST(AccessGenerator, CohortAccessesAreLocalToItsNode) {
  Fixture f(4);
  sim::RandomStream rng(1, 3);
  TransactionSpec spec = f.gen->Generate(40, rng);
  for (const auto& cohort : spec.cohorts) {
    for (const auto& a : cohort.accesses) {
      EXPECT_EQ(f.catalog.NodeOfFile(a.page.file), cohort.node);
    }
  }
}

TEST(AccessGenerator, PagesAreDistinctWithinTransaction) {
  Fixture f;
  sim::RandomStream rng(1, 4);
  for (int i = 0; i < 50; ++i) {
    TransactionSpec spec = f.gen->Generate(0, rng);
    std::set<std::uint64_t> keys;
    for (const auto& c : spec.cohorts) {
      for (const auto& a : c.accesses) {
        EXPECT_TRUE(keys.insert(a.page.Key()).second) << "duplicate page";
      }
    }
  }
}

TEST(AccessGenerator, PerPartitionCountInFootnoteRange) {
  // Footnote 12: cohorts access between 4 and 12 pages per partition.
  Fixture f(1);  // one cohort holding all 8 partitions
  sim::RandomStream rng(1, 5);
  std::set<int> counts_seen;
  for (int i = 0; i < 300; ++i) {
    TransactionSpec spec = f.gen->Generate(0, rng);
    ASSERT_EQ(spec.cohorts.size(), 1u);
    // Count per file.
    std::map<FileId, int> per_file;
    for (const auto& a : spec.cohorts[0].accesses) ++per_file[a.page.file];
    EXPECT_EQ(per_file.size(), 8u);  // every partition accessed
    for (auto& [file, count] : per_file) {
      EXPECT_GE(count, 4);
      EXPECT_LE(count, 12);
      counts_seen.insert(count);
    }
  }
  EXPECT_EQ(counts_seen.size(), 9u);  // all of 4..12 appear
}

TEST(AccessGenerator, HalfToTwiceSpreadReaches16) {
  Fixture f(1, config::PageCountSpread::kHalfToTwice);
  sim::RandomStream rng(1, 6);
  int max_count = 0;
  for (int i = 0; i < 300; ++i) {
    TransactionSpec spec = f.gen->Generate(0, rng);
    std::map<FileId, int> per_file;
    for (const auto& a : spec.cohorts[0].accesses) ++per_file[a.page.file];
    for (auto& [file, count] : per_file) {
      EXPECT_GE(count, 4);
      EXPECT_LE(count, 16);
      max_count = std::max(max_count, count);
    }
  }
  EXPECT_GT(max_count, 12);
}

TEST(AccessGenerator, WriteFractionNearWriteProb) {
  Fixture f;
  sim::RandomStream rng(1, 7);
  std::size_t reads = 0, writes = 0;
  for (int i = 0; i < 500; ++i) {
    TransactionSpec spec = f.gen->Generate(0, rng);
    reads += spec.total_reads();
    writes += spec.total_writes();
  }
  EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(reads), 0.25,
              0.02);
}

TEST(AccessGenerator, MeanAccessesNear64) {
  Fixture f;
  sim::RandomStream rng(1, 8);
  std::size_t total = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) total += f.gen->Generate(0, rng).total_reads();
  EXPECT_NEAR(static_cast<double>(total) / n, 64.0, 1.5);
}

TEST(AccessGenerator, UniformRelationChoiceCoversAllRelations) {
  Fixture f;
  f.cfg.workload.classes[0].relation_choice = config::RelationChoice::kUniform;
  sim::RandomStream rng(1, 9);
  std::set<int> relations;
  for (int i = 0; i < 200; ++i) {
    relations.insert(f.gen->Generate(0, rng).relation);
  }
  EXPECT_EQ(relations.size(), 8u);
}

TEST(AccessGenerator, ClassOfTerminalSplitsByFraction) {
  Fixture f;
  auto second = f.cfg.workload.classes[0];
  f.cfg.workload.classes[0].fraction = 0.75;
  second.fraction = 0.25;
  f.cfg.workload.classes.push_back(second);
  // First 96 terminals class 0, last 32 class 1.
  EXPECT_EQ(f.gen->ClassOfTerminal(0), 0);
  EXPECT_EQ(f.gen->ClassOfTerminal(95), 0);
  EXPECT_EQ(f.gen->ClassOfTerminal(96), 1);
  EXPECT_EQ(f.gen->ClassOfTerminal(127), 1);
}

TEST(AccessGenerator, ExecPatternPropagates) {
  Fixture f;
  f.cfg.workload.classes[0].exec_pattern = config::ExecPattern::kSequential;
  sim::RandomStream rng(1, 10);
  EXPECT_EQ(f.gen->Generate(0, rng).exec_pattern,
            config::ExecPattern::kSequential);
}

// --- Source -----------------------------------------------------------------

TEST(Source, ClosedLoopTerminalsAwaitCompletion) {
  config::SystemConfig cfg = config::PaperBaseConfig();
  cfg.workload.num_terminals = 8;
  cfg.database.num_relations = 8;
  cfg.workload.think_time_sec = 1.0;
  db::Catalog catalog(cfg.database, db::ComputePlacement(cfg.database, 8, 8));
  sim::Simulation sim;

  // Completions we never fulfill: each terminal must submit exactly once.
  std::vector<std::shared_ptr<sim::Completion<sim::Unit>>> pending;
  Source source(&sim, &cfg, &catalog, [&](TransactionSpec spec) {
    (void)spec;
    auto c = sim::MakeCompletion<sim::Unit>(&sim);
    pending.push_back(c);
    return c;
  });
  source.Start();
  sim.RunUntil(50.0);
  EXPECT_EQ(source.transactions_submitted(), 8u);
}

TEST(Source, CompletedTransactionsTriggerResubmission) {
  config::SystemConfig cfg = config::PaperBaseConfig();
  cfg.workload.num_terminals = 8;
  cfg.workload.think_time_sec = 1.0;
  db::Catalog catalog(cfg.database, db::ComputePlacement(cfg.database, 8, 8));
  sim::Simulation sim;

  Source source(&sim, &cfg, &catalog, [&](TransactionSpec spec) {
    (void)spec;
    auto c = sim::MakeCompletion<sim::Unit>(&sim);
    sim.After(0.5, [c] { c->Complete(sim::Unit{}); });  // instant "commit"
    return c;
  });
  source.Start();
  sim.RunUntil(30.0);
  // Cycle time ~1.5 s (think 1 + service 0.5): expect roughly 20 per
  // terminal over 30 s.
  EXPECT_GT(source.transactions_submitted(), 8u * 10);
  EXPECT_LT(source.transactions_submitted(), 8u * 40);
}

TEST(Source, ZeroThinkTimeSubmitsImmediately) {
  config::SystemConfig cfg = config::PaperBaseConfig();
  cfg.workload.num_terminals = 16;
  cfg.workload.think_time_sec = 0.0;
  db::Catalog catalog(cfg.database, db::ComputePlacement(cfg.database, 8, 8));
  sim::Simulation sim;
  std::size_t submitted_at_zero = 0;
  Source source(&sim, &cfg, &catalog, [&](TransactionSpec) {
    if (sim.Now() == 0.0) ++submitted_at_zero;
    return sim::MakeCompletion<sim::Unit>(&sim);
  });
  source.Start();
  sim.RunUntil(1.0);
  EXPECT_EQ(submitted_at_zero, 16u);
}

}  // namespace
}  // namespace ccsim::workload
