#include "ccsim/cc/waits_for_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ccsim::cc {
namespace {

WaitEdge Edge(TxnId a, double ta, TxnId b, double tb) {
  return WaitEdge{a, Timestamp{ta, a}, b, Timestamp{tb, b}};
}

TEST(WaitsForGraph, EmptyGraphHasNoCycles) {
  WaitsForGraph g;
  EXPECT_TRUE(g.FindCycleFrom(1).empty());
  EXPECT_TRUE(g.ResolveAllDeadlocks().empty());
}

TEST(WaitsForGraph, ChainIsAcyclic) {
  WaitsForGraph g;
  g.AddEdge(Edge(1, 1, 2, 2));
  g.AddEdge(Edge(2, 2, 3, 3));
  EXPECT_TRUE(g.FindCycleFrom(1).empty());
  EXPECT_TRUE(g.ResolveAllDeadlocks().empty());
}

TEST(WaitsForGraph, TwoCycleDetectedFromEitherEnd) {
  WaitsForGraph g;
  g.AddEdge(Edge(1, 1, 2, 2));
  g.AddEdge(Edge(2, 2, 1, 1));
  auto c1 = g.FindCycleFrom(1);
  auto c2 = g.FindCycleFrom(2);
  EXPECT_EQ(c1.size(), 2u);
  EXPECT_EQ(c2.size(), 2u);
}

TEST(WaitsForGraph, VictimIsYoungestInCycle) {
  WaitsForGraph g;
  g.AddEdge(Edge(1, 1.0, 2, 9.0));
  g.AddEdge(Edge(2, 9.0, 1, 1.0));
  auto cycle = g.FindCycleFrom(1);
  EXPECT_EQ(g.YoungestOf(cycle), 2u);  // started at t=9, most recent
}

TEST(WaitsForGraph, ResolveAbortsYoungestOnly) {
  WaitsForGraph g;
  g.AddEdge(Edge(1, 1.0, 2, 5.0));
  g.AddEdge(Edge(2, 5.0, 1, 1.0));
  auto victims = g.ResolveAllDeadlocks();
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 2u);
}

TEST(WaitsForGraph, ThreeCycleResolvedWithOneVictim) {
  WaitsForGraph g;
  g.AddEdge(Edge(1, 1, 2, 2));
  g.AddEdge(Edge(2, 2, 3, 3));
  g.AddEdge(Edge(3, 3, 1, 1));
  auto victims = g.ResolveAllDeadlocks();
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 3u);
}

TEST(WaitsForGraph, TwoIndependentCyclesYieldTwoVictims) {
  WaitsForGraph g;
  g.AddEdge(Edge(1, 1, 2, 2));
  g.AddEdge(Edge(2, 2, 1, 1));
  g.AddEdge(Edge(10, 10, 11, 11));
  g.AddEdge(Edge(11, 11, 10, 10));
  auto victims = g.ResolveAllDeadlocks();
  std::sort(victims.begin(), victims.end());
  EXPECT_EQ(victims, (std::vector<TxnId>{2, 11}));
}

TEST(WaitsForGraph, OverlappingCyclesMayFallToOneVictim) {
  // 1 -> 2 -> 1 and 1 -> 3 -> 1: aborting the youngest common member can
  // break both; victims must leave the graph acyclic.
  WaitsForGraph g;
  g.AddEdge(Edge(1, 1, 2, 2));
  g.AddEdge(Edge(2, 2, 1, 1));
  g.AddEdge(Edge(1, 1, 3, 3));
  g.AddEdge(Edge(3, 3, 1, 1));
  auto victims = g.ResolveAllDeadlocks();
  // Youngest of the first found cycle is removed, then the second cycle
  // still contains txn 1 and its partner.
  EXPECT_FALSE(victims.empty());
  EXPECT_LE(victims.size(), 2u);
}

TEST(WaitsForGraph, SelfEdgesIgnored) {
  WaitsForGraph g;
  g.AddEdge(Edge(1, 1, 1, 1));
  EXPECT_TRUE(g.FindCycleFrom(1).empty());
}

TEST(WaitsForGraph, CycleFromReachesDownstreamCycle) {
  // 1 -> 2 -> 3 -> 2: starting from 1 finds the {2,3} cycle.
  WaitsForGraph g;
  g.AddEdge(Edge(1, 1, 2, 2));
  g.AddEdge(Edge(2, 2, 3, 3));
  g.AddEdge(Edge(3, 3, 2, 2));
  auto cycle = g.FindCycleFrom(1);
  std::sort(cycle.begin(), cycle.end());
  EXPECT_EQ(cycle, (std::vector<TxnId>{2, 3}));
}

TEST(WaitsForGraph, FindCycleFromUnknownNodeIsEmpty) {
  WaitsForGraph g;
  g.AddEdge(Edge(1, 1, 2, 2));
  EXPECT_TRUE(g.FindCycleFrom(99).empty());
}

TEST(WaitsForGraph, ParallelEdgesHandled) {
  WaitsForGraph g;
  g.AddEdge(Edge(1, 1, 2, 2));
  g.AddEdge(Edge(1, 1, 2, 2));  // duplicate edge (two conflicting pages)
  g.AddEdge(Edge(2, 2, 1, 1));
  auto victims = g.ResolveAllDeadlocks();
  EXPECT_EQ(victims.size(), 1u);
}

TEST(WaitsForGraph, CountsNodesAndEdges) {
  WaitsForGraph g;
  g.AddEdge(Edge(1, 1, 2, 2));
  g.AddEdge(Edge(2, 2, 3, 3));
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

}  // namespace
}  // namespace ccsim::cc
