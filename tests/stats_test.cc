#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "ccsim/sim/check.h"
#include "ccsim/stats/batch_means.h"
#include "ccsim/stats/histogram.h"
#include "ccsim/stats/latency_histogram.h"
#include "ccsim/stats/tally.h"
#include "ccsim/stats/time_weighted.h"

namespace ccsim::stats {
namespace {

// --- Tally ------------------------------------------------------------------

TEST(Tally, EmptyIsZero) {
  Tally t;
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.mean(), 0.0);
  EXPECT_EQ(t.variance(), 0.0);
  EXPECT_EQ(t.min(), 0.0);
  EXPECT_EQ(t.max(), 0.0);
}

TEST(Tally, SingleObservation) {
  Tally t;
  t.Record(3.5);
  EXPECT_EQ(t.count(), 1u);
  EXPECT_DOUBLE_EQ(t.mean(), 3.5);
  EXPECT_DOUBLE_EQ(t.variance(), 0.0);
  EXPECT_DOUBLE_EQ(t.min(), 3.5);
  EXPECT_DOUBLE_EQ(t.max(), 3.5);
}

TEST(Tally, KnownMeanAndVariance) {
  Tally t;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) t.Record(x);
  EXPECT_DOUBLE_EQ(t.mean(), 5.0);
  EXPECT_NEAR(t.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(t.min(), 2.0);
  EXPECT_DOUBLE_EQ(t.max(), 9.0);
  EXPECT_DOUBLE_EQ(t.sum(), 40.0);
}

TEST(Tally, ResetClearsEverything) {
  Tally t;
  t.Record(1.0);
  t.Record(2.0);
  t.Reset();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.mean(), 0.0);
  t.Record(10.0);
  EXPECT_DOUBLE_EQ(t.mean(), 10.0);
}

TEST(Tally, NumericallyStableAroundLargeOffsets) {
  Tally t;
  for (int i = 0; i < 1000; ++i) t.Record(1e9 + (i % 2));
  EXPECT_NEAR(t.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(t.variance(), 0.25025, 1e-3);
}

// --- TimeWeighted -----------------------------------------------------------

TEST(TimeWeighted, PiecewiseConstantMean) {
  TimeWeighted tw(0.0);
  tw.Set(2.0, 1.0);   // 0 over [0,2)
  tw.Set(6.0, 3.0);   // 1 over [2,6)
  EXPECT_DOUBLE_EQ(tw.Mean(10.0), (0 * 2 + 1 * 4 + 3 * 4) / 10.0);
}

TEST(TimeWeighted, InitialValueCounts) {
  TimeWeighted tw(5.0);
  EXPECT_DOUBLE_EQ(tw.Mean(4.0), 5.0);
}

TEST(TimeWeighted, AddAdjustsCurrentValue) {
  TimeWeighted tw(0.0);
  tw.Add(1.0, 2.0);
  tw.Add(3.0, -1.0);
  EXPECT_DOUBLE_EQ(tw.current(), 1.0);
  EXPECT_DOUBLE_EQ(tw.Mean(4.0), (0 * 1 + 2 * 2 + 1 * 1) / 4.0);
}

TEST(TimeWeighted, ResetKeepsValueRestartsWindow) {
  TimeWeighted tw(0.0);
  tw.Set(5.0, 1.0);
  tw.Reset(10.0);
  EXPECT_DOUBLE_EQ(tw.current(), 1.0);
  EXPECT_DOUBLE_EQ(tw.Mean(20.0), 1.0);  // constant 1 since reset
}

TEST(TimeWeighted, ZeroElapsedReturnsCurrent) {
  TimeWeighted tw(2.5);
  EXPECT_DOUBLE_EQ(tw.Mean(0.0), 2.5);
}

TEST(TimeWeighted, UtilizationOfBusyIndicator) {
  TimeWeighted busy(0.0);
  busy.Set(1.0, 1.0);
  busy.Set(3.0, 0.0);
  busy.Set(5.0, 1.0);
  busy.Set(6.0, 0.0);
  EXPECT_DOUBLE_EQ(busy.Mean(10.0), 0.3);
}

// --- BatchMeans -------------------------------------------------------------

TEST(BatchMeans, MeanFallsBackToRunningMeanBeforeFirstBatch) {
  BatchMeans bm(100);
  bm.Record(2.0);
  bm.Record(4.0);
  EXPECT_DOUBLE_EQ(bm.mean(), 3.0);
  EXPECT_EQ(bm.num_batches(), 0u);
  EXPECT_EQ(bm.half_width_95(), 0.0);
}

TEST(BatchMeans, BatchesFormAtBatchSize) {
  BatchMeans bm(2);
  for (double x : {1.0, 3.0, 5.0, 7.0}) bm.Record(x);
  EXPECT_EQ(bm.num_batches(), 2u);  // means 2 and 6
  EXPECT_DOUBLE_EQ(bm.mean(), 4.0);
}

TEST(BatchMeans, ConstantDataHasZeroHalfWidth) {
  BatchMeans bm(5);
  for (int i = 0; i < 50; ++i) bm.Record(3.0);
  EXPECT_DOUBLE_EQ(bm.half_width_95(), 0.0);
}

TEST(BatchMeans, HalfWidthMatchesTwoBatchFormula) {
  BatchMeans bm(1);
  bm.Record(1.0);
  bm.Record(3.0);
  // n=2 batches, mean 2, s^2 = 2, hw = t(1df) * sqrt(2/2) = 12.706.
  EXPECT_NEAR(bm.half_width_95(), 12.706, 1e-9);
}

TEST(BatchMeans, HalfWidthShrinksWithMoreBatches) {
  BatchMeans bm(10);
  // Alternating values: batch means all equal after full batches, so use a
  // noisy pattern instead.
  for (int i = 0; i < 100; ++i) bm.Record(i % 7);
  double hw100 = bm.half_width_95();
  for (int i = 0; i < 900; ++i) bm.Record(i % 7);
  EXPECT_LT(bm.half_width_95(), hw100 + 1e-12);
}

TEST(BatchMeans, MeanUsesAllObservationsIncludingPartialBatch) {
  // Regression: mean() used to average completed batch means only, silently
  // dropping the in-progress partial batch once one full batch existed.
  BatchMeans bm(2);
  bm.Record(1.0);
  bm.Record(3.0);  // completes batch {1, 3}
  bm.Record(5.0);  // partial batch, previously ignored by mean()
  EXPECT_EQ(bm.num_batches(), 1u);
  EXPECT_DOUBLE_EQ(bm.mean(), 3.0);  // (1 + 3 + 5) / 3, not 2.0
}

TEST(BatchMeans, HalfWidthUsesCompleteBatchesOnly) {
  BatchMeans bm(2);
  for (double x : {1.0, 3.0, 5.0, 7.0}) bm.Record(x);  // batch means 2, 6
  // n=2 batches, grand 4, s^2 = 8, hw = 12.706 * sqrt(8/2) = 25.412.
  double hw = bm.half_width_95();
  EXPECT_NEAR(hw, 25.412, 1e-9);
  bm.Record(100.0);  // partial batch moves mean() but must not move the CI
  EXPECT_NEAR(bm.half_width_95(), hw, 1e-12);
  EXPECT_DOUBLE_EQ(bm.mean(), 116.0 / 5.0);
}

TEST(BatchMeans, ResetClears) {
  BatchMeans bm(2);
  bm.Record(1.0);
  bm.Record(2.0);
  bm.Reset();
  EXPECT_EQ(bm.observations(), 0u);
  EXPECT_EQ(bm.num_batches(), 0u);
  EXPECT_EQ(bm.mean(), 0.0);
}

TEST(BatchMeans, RelativeHalfWidth) {
  BatchMeans bm(1);
  bm.Record(9.0);
  bm.Record(11.0);
  EXPECT_NEAR(bm.relative_half_width_95(), bm.half_width_95() / 10.0, 1e-12);
}

// --- Histogram --------------------------------------------------------------

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.Record(-1.0);
  h.Record(0.0);
  h.Record(5.5);
  h.Record(9.999);
  h.Record(10.0);
  h.Record(100.0);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, QuantileOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Record(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.1), 10.0, 1.5);
}

TEST(Histogram, QuantileEmptyReturnsLo) {
  Histogram h(1.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.0);
}

TEST(Histogram, ResetClears) {
  Histogram h(0.0, 1.0, 2);
  h.Record(0.5);
  // A NaN record aborts under CCSIM_AUDIT (by design); only exercise the
  // nonfinite-counter reset in release builds.
  if (!sim::kAuditEnabled)
    h.Record(std::numeric_limits<double>::quiet_NaN());
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.nonfinite(), 0u);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.bin_count(0), 0u);
  EXPECT_EQ(h.bin_count(1), 0u);
}

TEST(Histogram, OverflowQuantileReportsTrueMax) {
  // Regression: with tail mass past `hi`, high quantiles used to clamp to
  // bin_hi(last) with no signal that the value was a fabricated edge.
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 95; ++i) h.Record(5.0);
  for (int i = 0; i < 5; ++i) h.Record(200.0 + i);  // 5% of mass past hi
  ASSERT_TRUE(h.saturated());
  EXPECT_DOUBLE_EQ(h.max(), 204.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 204.0);  // was 10.0 before the fix
  EXPECT_LT(h.Quantile(0.5), 10.0);           // in-range quantiles unchanged
}

TEST(Histogram, NotSaturatedWithoutOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.Record(-5.0);  // underflow does not saturate
  h.Record(5.0);
  EXPECT_FALSE(h.saturated());
}

TEST(Histogram, NonFiniteSamplesNeverReachTheBins) {
  // Regression: NaN fails `x < lo` and +inf overflows the size_t cast, both
  // UB before the guard. Audit builds treat a non-finite sample as a fatal
  // simulator bug; release builds count and drop it.
  if (sim::kAuditEnabled) {
    Histogram h(0.0, 10.0, 10);
    EXPECT_DEATH(h.Record(std::numeric_limits<double>::quiet_NaN()),
                 "non-finite");
  } else {
    Histogram h(0.0, 10.0, 10);
    h.Record(std::numeric_limits<double>::quiet_NaN());
    h.Record(std::numeric_limits<double>::infinity());
    h.Record(-std::numeric_limits<double>::infinity());
    h.Record(5.0);
    EXPECT_EQ(h.nonfinite(), 3u);
    EXPECT_EQ(h.count(), 1u);  // non-finite samples are not observations
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    // The one real sample's bin is [5, 6); interpolation stays inside it.
    EXPECT_GE(h.Quantile(0.99), 5.0);
    EXPECT_LT(h.Quantile(0.99), 6.0);
  }
}

// --- LatencyHistogram -------------------------------------------------------

// Deterministic xorshift64* generator for test sample streams (std::rand and
// random_device are banned by ccsim_lint; determinism matters for CI).
class TestRng {
 public:
  explicit TestRng(std::uint64_t seed) : state_(seed) {}
  double NextUnit() {  // uniform in (0, 1)
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    std::uint64_t bits = state_ * 0x2545F4914F6CDD1Dull;
    return (static_cast<double>(bits >> 11) + 0.5) / 9007199254740992.0;
  }

 private:
  std::uint64_t state_;
};

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h(-20, 13);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_FALSE(h.saturated());
}

TEST(LatencyHistogram, BucketEdgesArePowerOfTwoSubdivisions) {
  LatencyHistogram h(0, 2);  // [1, 4), two octaves
  EXPECT_EQ(h.num_buckets(),
            static_cast<std::size_t>(2 * LatencyHistogram::kSubBuckets));
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 1.0 + 1.0 / LatencyHistogram::kSubBuckets);
  // First bucket of the second octave starts exactly at 2.
  EXPECT_DOUBLE_EQ(h.bucket_lo(LatencyHistogram::kSubBuckets), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(2 * LatencyHistogram::kSubBuckets - 1), 4.0);
}

TEST(LatencyHistogram, RecordPlacesSamplesInTheirBucket) {
  LatencyHistogram h(0, 2);
  h.Record(1.0);   // first bucket, lower edge
  h.Record(2.0);   // first bucket of octave 1
  h.Record(3.999); // last bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kSubBuckets), 1u);
  EXPECT_EQ(h.bucket_count(2 * LatencyHistogram::kSubBuckets - 1), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.999);
}

TEST(LatencyHistogram, UnderflowOverflowAndSaturation) {
  LatencyHistogram h(0, 2);  // [1, 4)
  h.Record(0.25);
  h.Record(2.0);
  h.Record(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_TRUE(h.saturated());
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // The top quantile lands in the overflow region: the tracked true max is
  // reported, never a fabricated range edge.
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 100.0);
  // The bottom quantile lands in the underflow region: tracked true min.
  EXPECT_DOUBLE_EQ(h.Quantile(0.01), 0.25);
}

TEST(LatencyHistogram, NonFiniteSamplesNeverReachTheBins) {
  if (sim::kAuditEnabled) {
    LatencyHistogram h(-20, 13);
    EXPECT_DEATH(h.Record(std::numeric_limits<double>::quiet_NaN()),
                 "non-finite");
  } else {
    LatencyHistogram h(-20, 13);
    h.Record(std::numeric_limits<double>::quiet_NaN());
    h.Record(std::numeric_limits<double>::infinity());
    h.Record(1.0);
    EXPECT_EQ(h.nonfinite(), 2u);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.max(), 1.0);
  }
}

TEST(LatencyHistogram, QuantileRelativeErrorBoundOnMillionSamples) {
  // Acceptance bound from ISSUE 7: every reported quantile within 2%
  // relative of the exact sorted-sample quantile on a 10^6-sample stream
  // spanning several orders of magnitude (lognormal-ish via exp of a sum of
  // uniforms, range roughly 1 ms .. 100 s).
  TestRng rng(0x9E3779B97F4A7C15ull);
  LatencyHistogram h(-20, 13);
  std::vector<double> samples;
  const int kN = 1'000'000;
  samples.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    double z = 0.0;
    for (int k = 0; k < 4; ++k) z += rng.NextUnit();
    double x = 0.05 * std::exp(2.0 * (z - 2.0));  // median 50 ms, heavy tail
    samples.push_back(x);
    h.Record(x);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999, 0.9999}) {
    double exact =
        samples[static_cast<std::size_t>(q * (kN - 1))];
    double approx = h.Quantile(q);
    EXPECT_NEAR(approx, exact, 0.02 * exact) << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeOfPartsEqualsWhole) {
  // Merge associativity and exactness: recording a stream into one
  // histogram must be indistinguishable from splitting the stream across
  // shards and merging in any grouping/order.
  TestRng rng(42);
  LatencyHistogram whole(-20, 13);
  LatencyHistogram a(-20, 13), b(-20, 13), c(-20, 13);
  for (int i = 0; i < 30'000; ++i) {
    double x = 1e-4 * std::exp(12.0 * rng.NextUnit());  // spans the range
    whole.Record(x);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).Record(x);
  }
  // (a + b) + c
  LatencyHistogram left(-20, 13);
  left.Merge(a);
  left.Merge(b);
  left.Merge(c);
  // a + (c + b) - different order and grouping
  LatencyHistogram right(-20, 13);
  right.Merge(c);
  right.Merge(b);
  right.Merge(a);
  for (const auto* m : {&left, &right}) {
    EXPECT_EQ(m->count(), whole.count());
    EXPECT_EQ(m->underflow(), whole.underflow());
    EXPECT_EQ(m->overflow(), whole.overflow());
    EXPECT_DOUBLE_EQ(m->min(), whole.min());
    EXPECT_DOUBLE_EQ(m->max(), whole.max());
    for (std::size_t i = 0; i < whole.num_buckets(); ++i) {
      ASSERT_EQ(m->bucket_count(i), whole.bucket_count(i)) << "bucket " << i;
    }
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
      EXPECT_DOUBLE_EQ(m->Quantile(q), whole.Quantile(q)) << "q=" << q;
    }
  }
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h(0, 2);
  h.Record(0.5);
  h.Record(1.5);
  h.Record(50.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.nonfinite(), 0u);
  EXPECT_FALSE(h.saturated());
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  h.Record(2.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 2.0);
}

}  // namespace
}  // namespace ccsim::stats
