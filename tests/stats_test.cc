#include <gtest/gtest.h>

#include <cmath>

#include "ccsim/stats/batch_means.h"
#include "ccsim/stats/histogram.h"
#include "ccsim/stats/tally.h"
#include "ccsim/stats/time_weighted.h"

namespace ccsim::stats {
namespace {

// --- Tally ------------------------------------------------------------------

TEST(Tally, EmptyIsZero) {
  Tally t;
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.mean(), 0.0);
  EXPECT_EQ(t.variance(), 0.0);
  EXPECT_EQ(t.min(), 0.0);
  EXPECT_EQ(t.max(), 0.0);
}

TEST(Tally, SingleObservation) {
  Tally t;
  t.Record(3.5);
  EXPECT_EQ(t.count(), 1u);
  EXPECT_DOUBLE_EQ(t.mean(), 3.5);
  EXPECT_DOUBLE_EQ(t.variance(), 0.0);
  EXPECT_DOUBLE_EQ(t.min(), 3.5);
  EXPECT_DOUBLE_EQ(t.max(), 3.5);
}

TEST(Tally, KnownMeanAndVariance) {
  Tally t;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) t.Record(x);
  EXPECT_DOUBLE_EQ(t.mean(), 5.0);
  EXPECT_NEAR(t.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(t.min(), 2.0);
  EXPECT_DOUBLE_EQ(t.max(), 9.0);
  EXPECT_DOUBLE_EQ(t.sum(), 40.0);
}

TEST(Tally, ResetClearsEverything) {
  Tally t;
  t.Record(1.0);
  t.Record(2.0);
  t.Reset();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.mean(), 0.0);
  t.Record(10.0);
  EXPECT_DOUBLE_EQ(t.mean(), 10.0);
}

TEST(Tally, NumericallyStableAroundLargeOffsets) {
  Tally t;
  for (int i = 0; i < 1000; ++i) t.Record(1e9 + (i % 2));
  EXPECT_NEAR(t.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(t.variance(), 0.25025, 1e-3);
}

// --- TimeWeighted -----------------------------------------------------------

TEST(TimeWeighted, PiecewiseConstantMean) {
  TimeWeighted tw(0.0);
  tw.Set(2.0, 1.0);   // 0 over [0,2)
  tw.Set(6.0, 3.0);   // 1 over [2,6)
  EXPECT_DOUBLE_EQ(tw.Mean(10.0), (0 * 2 + 1 * 4 + 3 * 4) / 10.0);
}

TEST(TimeWeighted, InitialValueCounts) {
  TimeWeighted tw(5.0);
  EXPECT_DOUBLE_EQ(tw.Mean(4.0), 5.0);
}

TEST(TimeWeighted, AddAdjustsCurrentValue) {
  TimeWeighted tw(0.0);
  tw.Add(1.0, 2.0);
  tw.Add(3.0, -1.0);
  EXPECT_DOUBLE_EQ(tw.current(), 1.0);
  EXPECT_DOUBLE_EQ(tw.Mean(4.0), (0 * 1 + 2 * 2 + 1 * 1) / 4.0);
}

TEST(TimeWeighted, ResetKeepsValueRestartsWindow) {
  TimeWeighted tw(0.0);
  tw.Set(5.0, 1.0);
  tw.Reset(10.0);
  EXPECT_DOUBLE_EQ(tw.current(), 1.0);
  EXPECT_DOUBLE_EQ(tw.Mean(20.0), 1.0);  // constant 1 since reset
}

TEST(TimeWeighted, ZeroElapsedReturnsCurrent) {
  TimeWeighted tw(2.5);
  EXPECT_DOUBLE_EQ(tw.Mean(0.0), 2.5);
}

TEST(TimeWeighted, UtilizationOfBusyIndicator) {
  TimeWeighted busy(0.0);
  busy.Set(1.0, 1.0);
  busy.Set(3.0, 0.0);
  busy.Set(5.0, 1.0);
  busy.Set(6.0, 0.0);
  EXPECT_DOUBLE_EQ(busy.Mean(10.0), 0.3);
}

// --- BatchMeans -------------------------------------------------------------

TEST(BatchMeans, MeanFallsBackToRunningMeanBeforeFirstBatch) {
  BatchMeans bm(100);
  bm.Record(2.0);
  bm.Record(4.0);
  EXPECT_DOUBLE_EQ(bm.mean(), 3.0);
  EXPECT_EQ(bm.num_batches(), 0u);
  EXPECT_EQ(bm.half_width_95(), 0.0);
}

TEST(BatchMeans, BatchesFormAtBatchSize) {
  BatchMeans bm(2);
  for (double x : {1.0, 3.0, 5.0, 7.0}) bm.Record(x);
  EXPECT_EQ(bm.num_batches(), 2u);  // means 2 and 6
  EXPECT_DOUBLE_EQ(bm.mean(), 4.0);
}

TEST(BatchMeans, ConstantDataHasZeroHalfWidth) {
  BatchMeans bm(5);
  for (int i = 0; i < 50; ++i) bm.Record(3.0);
  EXPECT_DOUBLE_EQ(bm.half_width_95(), 0.0);
}

TEST(BatchMeans, HalfWidthMatchesTwoBatchFormula) {
  BatchMeans bm(1);
  bm.Record(1.0);
  bm.Record(3.0);
  // n=2 batches, mean 2, s^2 = 2, hw = t(1df) * sqrt(2/2) = 12.706.
  EXPECT_NEAR(bm.half_width_95(), 12.706, 1e-9);
}

TEST(BatchMeans, HalfWidthShrinksWithMoreBatches) {
  BatchMeans bm(10);
  // Alternating values: batch means all equal after full batches, so use a
  // noisy pattern instead.
  for (int i = 0; i < 100; ++i) bm.Record(i % 7);
  double hw100 = bm.half_width_95();
  for (int i = 0; i < 900; ++i) bm.Record(i % 7);
  EXPECT_LT(bm.half_width_95(), hw100 + 1e-12);
}

TEST(BatchMeans, ResetClears) {
  BatchMeans bm(2);
  bm.Record(1.0);
  bm.Record(2.0);
  bm.Reset();
  EXPECT_EQ(bm.observations(), 0u);
  EXPECT_EQ(bm.num_batches(), 0u);
  EXPECT_EQ(bm.mean(), 0.0);
}

TEST(BatchMeans, RelativeHalfWidth) {
  BatchMeans bm(1);
  bm.Record(9.0);
  bm.Record(11.0);
  EXPECT_NEAR(bm.relative_half_width_95(), bm.half_width_95() / 10.0, 1e-12);
}

// --- Histogram --------------------------------------------------------------

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.Record(-1.0);
  h.Record(0.0);
  h.Record(5.5);
  h.Record(9.999);
  h.Record(10.0);
  h.Record(100.0);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, QuantileOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Record(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.1), 10.0, 1.5);
}

TEST(Histogram, QuantileEmptyReturnsLo) {
  Histogram h(1.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.0);
}

TEST(Histogram, ResetClears) {
  Histogram h(0.0, 1.0, 2);
  h.Record(0.5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bin_count(0), 0u);
  EXPECT_EQ(h.bin_count(1), 0u);
}

}  // namespace
}  // namespace ccsim::stats
