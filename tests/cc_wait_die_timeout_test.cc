// Tests for the two extension locking schemes: wait-die ([Rose78]'s second
// scheme) and timeout-based 2PL ([Jenq89], paper footnote 2).

#include <gtest/gtest.h>

#include "ccsim/cc/two_phase_locking_timeout.h"
#include "ccsim/cc/wait_die.h"
#include "ccsim/engine/run.h"
#include "test_util.h"

namespace ccsim::cc {
namespace {

using test::FakeCcContext;
using test::MakeTxn;

// --- Wait-die ---------------------------------------------------------------

class WaitDieTest : public ::testing::Test {
 protected:
  WaitDieTest() : mgr_(&ctx_, /*node=*/1) {}

  FakeCcContext ctx_;
  WaitDieManager mgr_;
  PageRef p1_{0, 1};
};

TEST_F(WaitDieTest, OlderRequesterWaits) {
  auto young = MakeTxn(2, 1, {p1_}, 0b1, 5.0);
  auto old_txn = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  mgr_.BeginCohort(young, 0);
  mgr_.BeginCohort(old_txn, 0);
  mgr_.RequestAccess(young, 0, p1_, AccessMode::kWrite);
  auto c = mgr_.RequestAccess(old_txn, 0, p1_, AccessMode::kWrite);
  EXPECT_FALSE(c->done());  // old waits for young
  EXPECT_EQ(mgr_.deaths(), 0u);
  // When the young holder commits, the old requester is granted.
  mgr_.CommitCohort(young, 0);
  ASSERT_TRUE(c->done());
  EXPECT_EQ(c->TakeValue(), AccessOutcome::kGranted);
}

TEST_F(WaitDieTest, YoungerRequesterDies) {
  auto old_txn = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto young = MakeTxn(2, 1, {p1_}, 0b1, 5.0);
  mgr_.BeginCohort(old_txn, 0);
  mgr_.BeginCohort(young, 0);
  mgr_.RequestAccess(old_txn, 0, p1_, AccessMode::kWrite);
  auto c = mgr_.RequestAccess(young, 0, p1_, AccessMode::kWrite);
  ASSERT_TRUE(c->done());
  EXPECT_EQ(c->TakeValue(), AccessOutcome::kAborted);
  EXPECT_EQ(mgr_.deaths(), 1u);
  // The lock table is clean: the old holder still holds, no waiter remains.
  EXPECT_EQ(mgr_.lock_table().num_waiting_requests(), 0u);
}

TEST_F(WaitDieTest, ReadersShareRegardlessOfAge) {
  auto t1 = MakeTxn(1, 1, {p1_}, 0, 1.0);
  auto t2 = MakeTxn(2, 1, {p1_}, 0, 5.0);
  mgr_.BeginCohort(t1, 0);
  mgr_.BeginCohort(t2, 0);
  EXPECT_TRUE(mgr_.RequestAccess(t1, 0, p1_, AccessMode::kRead)->done());
  EXPECT_TRUE(mgr_.RequestAccess(t2, 0, p1_, AccessMode::kRead)->done());
  EXPECT_EQ(mgr_.deaths(), 0u);
}

TEST_F(WaitDieTest, DeathAgainstAnyOlderBlocker) {
  auto old1 = MakeTxn(1, 1, {p1_}, 0, 1.0);
  auto old2 = MakeTxn(2, 1, {p1_}, 0, 2.0);
  auto young = MakeTxn(3, 1, {p1_}, 0b1, 9.0);
  mgr_.BeginCohort(old1, 0);
  mgr_.BeginCohort(old2, 0);
  mgr_.BeginCohort(young, 0);
  mgr_.RequestAccess(old1, 0, p1_, AccessMode::kRead);
  mgr_.RequestAccess(old2, 0, p1_, AccessMode::kRead);
  auto c = mgr_.RequestAccess(young, 0, p1_, AccessMode::kWrite);
  ASSERT_TRUE(c->done());
  EXPECT_EQ(c->TakeValue(), AccessOutcome::kAborted);
}

TEST_F(WaitDieTest, EndToEndSerializableUnderContention) {
  auto cfg = test::SmallConfig(config::CcAlgorithm::kWaitDie, 0.0, 4);
  auto r = engine::RunSimulation(cfg);
  EXPECT_GT(r.commits, 100u);
  EXPECT_GT(r.aborts_die, 0u);
  EXPECT_TRUE(r.serializable) << r.audit_note;
}

// --- Timeout-based 2PL --------------------------------------------------------

class TimeoutTest : public ::testing::Test {
 protected:
  TimeoutTest() {
    ctx_.mutable_config().locking.timeout_sec = 2.0;
    mgr_ = std::make_unique<TwoPhaseLockingTimeoutManager>(&ctx_, 1);
  }

  FakeCcContext ctx_;
  std::unique_ptr<TwoPhaseLockingTimeoutManager> mgr_;
  PageRef p1_{0, 1};
};

TEST_F(TimeoutTest, WaitShorterThanTimeoutSurvives) {
  auto holder = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto waiter = MakeTxn(2, 1, {p1_}, 0, 2.0);
  mgr_->BeginCohort(holder, 0);
  mgr_->BeginCohort(waiter, 0);
  mgr_->RequestAccess(holder, 0, p1_, AccessMode::kWrite);
  auto c = mgr_->RequestAccess(waiter, 0, p1_, AccessMode::kRead);
  ctx_.simulation().At(1.0, [&] { mgr_->CommitCohort(holder, 0); });
  ctx_.Pump();
  ASSERT_TRUE(c->done());
  EXPECT_EQ(c->TakeValue(), AccessOutcome::kGranted);
  EXPECT_EQ(mgr_->timeouts_fired(), 0u);
}

TEST_F(TimeoutTest, WaitLongerThanTimeoutAborts) {
  auto holder = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto waiter = MakeTxn(2, 1, {p1_}, 0, 2.0);
  mgr_->BeginCohort(holder, 0);
  mgr_->BeginCohort(waiter, 0);
  mgr_->RequestAccess(holder, 0, p1_, AccessMode::kWrite);
  auto c = mgr_->RequestAccess(waiter, 0, p1_, AccessMode::kRead);
  ctx_.Pump();  // nothing releases; the timeout fires at t=2
  ASSERT_TRUE(c->done());
  EXPECT_EQ(c->TakeValue(), AccessOutcome::kAborted);
  EXPECT_EQ(mgr_->timeouts_fired(), 1u);
  EXPECT_DOUBLE_EQ(ctx_.simulation().Now(), 2.0);
}

TEST_F(TimeoutTest, NoWaitsForEdgesReported) {
  auto holder = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto waiter = MakeTxn(2, 1, {p1_}, 0, 2.0);
  mgr_->BeginCohort(holder, 0);
  mgr_->BeginCohort(waiter, 0);
  mgr_->RequestAccess(holder, 0, p1_, AccessMode::kWrite);
  mgr_->RequestAccess(waiter, 0, p1_, AccessMode::kRead);
  EXPECT_TRUE(mgr_->LocalWaitsForEdges().empty());
}

TEST_F(TimeoutTest, StaleTimerAfterExternalAbortIsHarmless) {
  auto holder = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto waiter = MakeTxn(2, 1, {p1_}, 0, 2.0);
  mgr_->BeginCohort(holder, 0);
  mgr_->BeginCohort(waiter, 0);
  mgr_->RequestAccess(holder, 0, p1_, AccessMode::kWrite);
  auto c = mgr_->RequestAccess(waiter, 0, p1_, AccessMode::kRead);
  // The waiter's transaction aborts for another reason before the timer.
  ctx_.simulation().At(0.5, [&] { mgr_->AbortCohort(waiter, 0); });
  ctx_.Pump();
  ASSERT_TRUE(c->done());
  EXPECT_EQ(mgr_->timeouts_fired(), 0u);  // timer found the request done
}

TEST_F(TimeoutTest, EndToEndResolvesDeadlocksViaTimeouts) {
  auto cfg = test::SmallConfig(config::CcAlgorithm::kTwoPhaseLockingTimeout,
                               0.0, 4);
  cfg.locking.timeout_sec = 0.5;
  auto r = engine::RunSimulation(cfg);
  EXPECT_GT(r.commits, 100u);
  EXPECT_GT(r.aborts_timeout, 0u);
  EXPECT_TRUE(r.serializable) << r.audit_note;
}

}  // namespace
}  // namespace ccsim::cc
