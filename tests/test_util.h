#ifndef CCSIM_TESTS_TEST_UTIL_H_
#define CCSIM_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "ccsim/cc/cc_manager.h"
#include "ccsim/common/types.h"
#include "ccsim/config/params.h"
#include "ccsim/sim/simulation.h"
#include "ccsim/txn/transaction.h"
#include "ccsim/workload/spec.h"

namespace ccsim::test {

/// A CcContext for unit-testing CC managers in isolation: records abort
/// requests and audit calls instead of routing them through an engine.
class FakeCcContext : public cc::CcContext {
 public:
  struct AbortRequest {
    TxnId txn;
    int attempt;
    NodeId from_node;
    txn::AbortReason reason;
  };
  struct AuditCall {
    TxnId txn;
    PageRef page;
    enum Kind { kRead, kInstall, kSkip } kind;
  };

  sim::Simulation& simulation() override { return sim_; }
  const config::SystemConfig& config() const override { return config_; }
  /// Mutable for tests that exercise non-default options.
  config::SystemConfig& mutable_config() { return config_; }
  void RequestAbort(const txn::TxnPtr& txn, int attempt, NodeId from_node,
                    txn::AbortReason reason) override {
    abort_requests.push_back({txn->id(), attempt, from_node, reason});
  }
  void AuditRead(txn::Transaction& t, const PageRef& page) override {
    audits.push_back({t.id(), page, AuditCall::kRead});
  }
  void AuditInstallWrite(txn::Transaction& t, const PageRef& page) override {
    audits.push_back({t.id(), page, AuditCall::kInstall});
  }
  void AuditSkippedWrite(txn::Transaction& t, const PageRef& page) override {
    audits.push_back({t.id(), page, AuditCall::kSkip});
  }

  /// Drains scheduled events (completions resume through the calendar).
  void Pump() { sim_.Run(); }

  std::vector<AbortRequest> abort_requests;
  std::vector<AuditCall> audits;

 private:
  sim::Simulation sim_;
  config::SystemConfig config_;
};

/// Builds a single-cohort transaction at `node` accessing `pages`
/// (write_mask bit i set -> access i is an update). The attempt has begun at
/// `start_time`.
txn::TxnPtr MakeTxn(TxnId id, NodeId node, const std::vector<PageRef>& pages,
                    unsigned write_mask = 0, double start_time = 0.0);

/// Miniature paper configuration for fast integration runs: tiny windows,
/// fewer terminals, audit on.
config::SystemConfig SmallConfig(config::CcAlgorithm alg, double think_time,
                                 int num_proc_nodes = 4);

}  // namespace ccsim::test

#endif  // CCSIM_TESTS_TEST_UTIL_H_
