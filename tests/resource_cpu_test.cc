#include "ccsim/resource/cpu.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ccsim/sim/completion.h"
#include "ccsim/sim/process.h"
#include "ccsim/sim/simulation.h"

namespace ccsim::resource {
namespace {

using sim::Await;
using sim::Completion;
using sim::Process;
using sim::Simulation;
using sim::Unit;

// Records the simulated time a completion fires.
Process Track(Simulation& sim, std::shared_ptr<Completion<Unit>> c,
              double* when) {
  co_await Await(std::move(c));
  *when = sim.Now();
}

class CpuTest : public ::testing::Test {
 protected:
  Simulation sim_;
  Cpu cpu_{&sim_, 1.0};  // 1 MIPS: 1000 instructions == 1 ms
};

TEST_F(CpuTest, SingleUserJobTakesItsDemand) {
  double done = -1;
  Track(sim_, cpu_.ExecuteSeconds(2.0, CpuJobClass::kUser), &done);
  sim_.Run();
  EXPECT_NEAR(done, 2.0, 1e-9);
}

TEST_F(CpuTest, InstructionsConvertViaMips) {
  double done = -1;
  Track(sim_, cpu_.Execute(8000.0, CpuJobClass::kUser), &done);
  sim_.Run();
  EXPECT_NEAR(done, 0.008, 1e-12);
}

TEST_F(CpuTest, TwoEqualJobsShareTheProcessor) {
  double a = -1, b = -1;
  Track(sim_, cpu_.ExecuteSeconds(1.0, CpuJobClass::kUser), &a);
  Track(sim_, cpu_.ExecuteSeconds(1.0, CpuJobClass::kUser), &b);
  sim_.Run();
  // Processor sharing: both finish at 2.0 (each progresses at rate 1/2).
  EXPECT_NEAR(a, 2.0, 1e-9);
  EXPECT_NEAR(b, 2.0, 1e-9);
}

TEST_F(CpuTest, StaggeredArrivalProcessorSharing) {
  double a = -1, b = -1;
  Track(sim_, cpu_.ExecuteSeconds(3.0, CpuJobClass::kUser), &a);
  sim_.At(1.0, [&] {
    Track(sim_, cpu_.ExecuteSeconds(1.0, CpuJobClass::kUser), &b);
  });
  sim_.Run();
  // A alone in [0,1) does 1 unit; then both share. B needs 1 at rate 1/2:
  // finishes at 3. A then has 1 left, alone: finishes at 4.
  EXPECT_NEAR(b, 3.0, 1e-9);
  EXPECT_NEAR(a, 4.0, 1e-9);
}

TEST_F(CpuTest, ZeroDemandCompletesImmediately) {
  auto c = cpu_.ExecuteSeconds(0.0, CpuJobClass::kUser);
  EXPECT_TRUE(c->done());
  auto m = cpu_.Execute(0.0, CpuJobClass::kMessage);
  EXPECT_TRUE(m->done());
}

TEST_F(CpuTest, MessagePreemptsProcessorSharingWork) {
  double user = -1, msg = -1;
  Track(sim_, cpu_.ExecuteSeconds(2.0, CpuJobClass::kUser), &user);
  sim_.At(0.5, [&] {
    Track(sim_, cpu_.ExecuteSeconds(1.0, CpuJobClass::kMessage), &msg);
  });
  sim_.Run();
  // User work stalls during [0.5, 1.5] while the message runs.
  EXPECT_NEAR(msg, 1.5, 1e-9);
  EXPECT_NEAR(user, 3.0, 1e-9);
}

TEST_F(CpuTest, MessagesServeFifoOneAtATime) {
  double m1 = -1, m2 = -1, m3 = -1;
  Track(sim_, cpu_.ExecuteSeconds(1.0, CpuJobClass::kMessage), &m1);
  Track(sim_, cpu_.ExecuteSeconds(0.5, CpuJobClass::kMessage), &m2);
  Track(sim_, cpu_.ExecuteSeconds(0.25, CpuJobClass::kMessage), &m3);
  sim_.Run();
  EXPECT_NEAR(m1, 1.0, 1e-9);
  EXPECT_NEAR(m2, 1.5, 1e-9);
  EXPECT_NEAR(m3, 1.75, 1e-9);
}

TEST_F(CpuTest, UserJobSubmittedDuringMessageWaits) {
  double msg = -1;
  Track(sim_, cpu_.ExecuteSeconds(1.0, CpuJobClass::kMessage), &msg);
  double u = -1;
  sim_.At(0.2, [&] {
    Track(sim_, cpu_.ExecuteSeconds(0.5, CpuJobClass::kUser), &u);
  });
  sim_.Run();
  // The user job cannot start before the message finishes at t=1.
  EXPECT_NEAR(u, 1.5, 1e-9);
}

TEST_F(CpuTest, BackToBackMessagesKeepPsStalled) {
  double user = -1;
  Track(sim_, cpu_.ExecuteSeconds(1.0, CpuJobClass::kUser), &user);
  sim_.At(0.25, [&] {
    cpu_.ExecuteSeconds(0.5, CpuJobClass::kMessage);
    cpu_.ExecuteSeconds(0.5, CpuJobClass::kMessage);
  });
  sim_.Run();
  // PS progress: 0.25 before the messages, stalled during [0.25, 1.25],
  // remaining 0.75 afterwards.
  EXPECT_NEAR(user, 2.0, 1e-9);
}

TEST_F(CpuTest, ManyEqualJobsFinishTogether) {
  const int n = 10;
  std::vector<double> done(n, -1);
  for (int i = 0; i < n; ++i) {
    Track(sim_, cpu_.ExecuteSeconds(1.0, CpuJobClass::kUser), &done[i]);
  }
  sim_.Run();
  for (double d : done) EXPECT_NEAR(d, 10.0, 1e-6);
}

TEST_F(CpuTest, UtilizationTracksBusyTime) {
  cpu_.ExecuteSeconds(2.0, CpuJobClass::kUser);
  sim_.At(8.0, [] {});  // extend the run
  sim_.Run();
  EXPECT_NEAR(cpu_.Utilization(), 2.0 / 8.0, 1e-9);
}

TEST_F(CpuTest, ResetStatsRestartsUtilizationWindow) {
  cpu_.ExecuteSeconds(1.0, CpuJobClass::kUser);
  sim_.At(1.0, [&] { cpu_.ResetStats(); });
  sim_.At(3.0, [] {});
  sim_.Run();
  EXPECT_NEAR(cpu_.Utilization(), 0.0, 1e-9);
}

TEST_F(CpuTest, JobsCompletedCounts) {
  cpu_.ExecuteSeconds(0.5, CpuJobClass::kUser);
  cpu_.ExecuteSeconds(0.5, CpuJobClass::kMessage);
  cpu_.ExecuteSeconds(0.0, CpuJobClass::kUser);
  sim_.Run();
  EXPECT_EQ(cpu_.jobs_completed(), 3u);
}

TEST(CpuConfig, HigherMipsRunsProportionallyFaster) {
  Simulation sim;
  Cpu fast(&sim, 10.0);
  double done = -1;
  Track(sim, fast.Execute(8000.0, CpuJobClass::kUser), &done);
  sim.Run();
  EXPECT_NEAR(done, 0.0008, 1e-12);
}

TEST(CpuConfigDeathTest, NonPositiveMipsIsFatal) {
  Simulation sim;
  EXPECT_DEATH(Cpu(&sim, 0.0), "mips");
}

}  // namespace
}  // namespace ccsim::resource
