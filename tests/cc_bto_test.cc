#include "ccsim/cc/bto.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ccsim::cc {
namespace {

using test::FakeCcContext;
using test::MakeTxn;

class BtoTest : public ::testing::Test {
 protected:
  BtoTest() : mgr_(&ctx_, /*node=*/1) {}

  AccessOutcome Value(
      const std::shared_ptr<sim::Completion<AccessOutcome>>& c) {
    EXPECT_TRUE(c->done());
    return c->TakeValue();
  }

  FakeCcContext ctx_;
  BtoManager mgr_;
  PageRef p1_{0, 1};
  PageRef p2_{0, 2};
};

TEST_F(BtoTest, ReadsAndWritesGrantOnFreshItems) {
  auto t = MakeTxn(1, 1, {p1_, p2_}, 0b10, 1.0);
  EXPECT_EQ(Value(mgr_.RequestAccess(t, 0, p1_, AccessMode::kRead)),
            AccessOutcome::kGranted);
  EXPECT_EQ(Value(mgr_.RequestAccess(t, 0, p2_, AccessMode::kWrite)),
            AccessOutcome::kGranted);
}

TEST_F(BtoTest, LateReadBehindCommittedWriteRejected) {
  auto writer = MakeTxn(2, 1, {p1_}, 0b1, 5.0);
  auto reader = MakeTxn(1, 1, {p1_}, 0, 1.0);  // older timestamp
  mgr_.RequestAccess(writer, 0, p1_, AccessMode::kWrite);
  mgr_.CommitCohort(writer, 0);  // wts = 5
  auto c = mgr_.RequestAccess(reader, 0, p1_, AccessMode::kRead);
  EXPECT_EQ(Value(c), AccessOutcome::kAborted);
  EXPECT_EQ(mgr_.rejections(), 1u);
}

TEST_F(BtoTest, LateWriteBehindReadRejected) {
  auto reader = MakeTxn(2, 1, {p1_}, 0, 5.0);
  auto writer = MakeTxn(1, 1, {p1_}, 0b1, 1.0);  // older
  mgr_.RequestAccess(reader, 0, p1_, AccessMode::kRead);  // rts = 5
  auto c = mgr_.RequestAccess(writer, 0, p1_, AccessMode::kWrite);
  EXPECT_EQ(Value(c), AccessOutcome::kAborted);
}

TEST_F(BtoTest, ThomasWriteRuleSkipsObsoleteWrite) {
  auto newer = MakeTxn(2, 1, {p1_}, 0b1, 5.0);
  auto older = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  mgr_.RequestAccess(newer, 0, p1_, AccessMode::kWrite);
  mgr_.CommitCohort(newer, 0);  // wts = 5
  // Older write: rts is still 0 < 1, wts = 5 > 1 -> Thomas rule, granted.
  auto c = mgr_.RequestAccess(older, 0, p1_, AccessMode::kWrite);
  EXPECT_EQ(Value(c), AccessOutcome::kGranted);
  EXPECT_EQ(mgr_.thomas_skips(), 1u);
  ctx_.audits.clear();
  mgr_.CommitCohort(older, 0);
  ASSERT_EQ(ctx_.audits.size(), 1u);
  EXPECT_EQ(ctx_.audits[0].kind, FakeCcContext::AuditCall::kSkip);
}

TEST_F(BtoTest, ReaderBlocksBehindEarlierPendingWrite) {
  auto writer = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto reader = MakeTxn(2, 1, {p1_}, 0, 5.0);  // younger
  mgr_.RequestAccess(writer, 0, p1_, AccessMode::kWrite);  // pending
  auto c = mgr_.RequestAccess(reader, 0, p1_, AccessMode::kRead);
  EXPECT_FALSE(c->done());
  EXPECT_EQ(mgr_.blocked_readers(), 1u);
  // Writer commits: the read unblocks and sees the new version.
  ctx_.audits.clear();
  mgr_.CommitCohort(writer, 0);
  ASSERT_TRUE(c->done());
  EXPECT_EQ(c->TakeValue(), AccessOutcome::kGranted);
  EXPECT_EQ(mgr_.blocked_readers(), 0u);
  // Install then read, in order.
  ASSERT_EQ(ctx_.audits.size(), 2u);
  EXPECT_EQ(ctx_.audits[0].kind, FakeCcContext::AuditCall::kInstall);
  EXPECT_EQ(ctx_.audits[1].kind, FakeCcContext::AuditCall::kRead);
}

TEST_F(BtoTest, ReaderUnblocksWhenPendingWriteAborts) {
  auto writer = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto reader = MakeTxn(2, 1, {p1_}, 0, 5.0);
  mgr_.RequestAccess(writer, 0, p1_, AccessMode::kWrite);
  auto c = mgr_.RequestAccess(reader, 0, p1_, AccessMode::kRead);
  EXPECT_FALSE(c->done());
  mgr_.AbortCohort(writer, 0);
  ASSERT_TRUE(c->done());
  EXPECT_EQ(c->TakeValue(), AccessOutcome::kGranted);
}

TEST_F(BtoTest, ReaderDoesNotBlockOnLaterPendingWrite) {
  auto writer = MakeTxn(2, 1, {p1_}, 0b1, 5.0);
  auto reader = MakeTxn(1, 1, {p1_}, 0, 1.0);  // older than the pending write
  mgr_.RequestAccess(writer, 0, p1_, AccessMode::kWrite);
  auto c = mgr_.RequestAccess(reader, 0, p1_, AccessMode::kRead);
  EXPECT_EQ(Value(c), AccessOutcome::kGranted);
}

TEST_F(BtoTest, BlockedReaderRejectedWhenLaterWriteCommitsFirst) {
  auto w1 = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto w2 = MakeTxn(3, 1, {p1_}, 0b1, 9.0);
  auto reader = MakeTxn(2, 1, {p1_}, 0, 5.0);
  mgr_.RequestAccess(w1, 0, p1_, AccessMode::kWrite);    // pending ts 1
  mgr_.RequestAccess(w2, 0, p1_, AccessMode::kWrite);    // pending ts 9
  auto c = mgr_.RequestAccess(reader, 0, p1_, AccessMode::kRead);  // blocks on w1
  EXPECT_FALSE(c->done());
  mgr_.CommitCohort(w2, 0);  // wts jumps to 9 > reader's 5
  // Reader still blocked on w1's pending write, but now doomed; commit w1.
  mgr_.CommitCohort(w1, 0);
  ASSERT_TRUE(c->done());
  EXPECT_EQ(c->TakeValue(), AccessOutcome::kAborted);
}

TEST_F(BtoTest, PendingWriteInstallOrderFollowsTimestamps) {
  auto w1 = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto w2 = MakeTxn(2, 1, {p1_}, 0b1, 5.0);
  mgr_.RequestAccess(w1, 0, p1_, AccessMode::kWrite);
  mgr_.RequestAccess(w2, 0, p1_, AccessMode::kWrite);
  // Later write commits first: installs (wts=5).
  ctx_.audits.clear();
  mgr_.CommitCohort(w2, 0);
  ASSERT_EQ(ctx_.audits.size(), 1u);
  EXPECT_EQ(ctx_.audits[0].kind, FakeCcContext::AuditCall::kInstall);
  // Earlier write commits second: skipped (5 > 1).
  ctx_.audits.clear();
  mgr_.CommitCohort(w1, 0);
  ASSERT_EQ(ctx_.audits.size(), 1u);
  EXPECT_EQ(ctx_.audits[0].kind, FakeCcContext::AuditCall::kSkip);
}

TEST_F(BtoTest, WriteAfterOwnReadAllowed) {
  // rts equals the transaction's own timestamp: not a conflict (ts < rts is
  // strict).
  auto t = MakeTxn(1, 1, {p1_}, 0b1, 3.0);
  EXPECT_EQ(Value(mgr_.RequestAccess(t, 0, p1_, AccessMode::kRead)),
            AccessOutcome::kGranted);
  EXPECT_EQ(Value(mgr_.RequestAccess(t, 0, p1_, AccessMode::kWrite)),
            AccessOutcome::kGranted);
}

TEST_F(BtoTest, AbortRemovesPendingWritesWithoutInstall) {
  auto w = MakeTxn(1, 1, {p1_}, 0b1, 2.0);
  mgr_.RequestAccess(w, 0, p1_, AccessMode::kWrite);
  ctx_.audits.clear();
  mgr_.AbortCohort(w, 0);
  EXPECT_TRUE(ctx_.audits.empty());
  // A read at an older timestamp is fine now (wts never advanced).
  auto r = MakeTxn(2, 1, {p1_}, 0, 1.0);
  EXPECT_EQ(Value(mgr_.RequestAccess(r, 0, p1_, AccessMode::kRead)),
            AccessOutcome::kGranted);
}

TEST_F(BtoTest, AbortWakesOwnBlockedReads) {
  auto w = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto r = MakeTxn(2, 1, {p1_}, 0, 5.0);
  mgr_.RequestAccess(w, 0, p1_, AccessMode::kWrite);
  auto c = mgr_.RequestAccess(r, 0, p1_, AccessMode::kRead);
  EXPECT_FALSE(c->done());
  mgr_.AbortCohort(r, 0);  // the blocked reader's own abort
  ASSERT_TRUE(c->done());
  EXPECT_EQ(c->TakeValue(), AccessOutcome::kAborted);
  EXPECT_EQ(mgr_.blocked_readers(), 0u);
}

TEST_F(BtoTest, RestartWithFreshTimestampSucceeds) {
  auto writer = MakeTxn(2, 1, {p1_}, 0b1, 5.0);
  mgr_.RequestAccess(writer, 0, p1_, AccessMode::kWrite);
  mgr_.CommitCohort(writer, 0);  // wts = 5
  auto t = MakeTxn(1, 1, {p1_}, 0, 1.0);
  EXPECT_EQ(Value(mgr_.RequestAccess(t, 0, p1_, AccessMode::kRead)),
            AccessOutcome::kAborted);
  // Restart: new attempt timestamp after the write.
  t->BeginAttempt(9.0);
  EXPECT_EQ(Value(mgr_.RequestAccess(t, 0, p1_, AccessMode::kRead)),
            AccessOutcome::kGranted);
}

TEST_F(BtoTest, BlockingTimeTallyRecordsGrantedWaits) {
  auto w = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto r = MakeTxn(2, 1, {p1_}, 0, 5.0);
  mgr_.RequestAccess(w, 0, p1_, AccessMode::kWrite);
  auto c = mgr_.RequestAccess(r, 0, p1_, AccessMode::kRead);
  ctx_.simulation().At(3.0, [&] { mgr_.CommitCohort(w, 0); });
  ctx_.Pump();
  ASSERT_TRUE(c->done());
  ASSERT_NE(mgr_.blocking_times(), nullptr);
  EXPECT_EQ(mgr_.blocking_times()->count(), 1u);
  EXPECT_DOUBLE_EQ(mgr_.blocking_times()->mean(), 3.0);
}

}  // namespace
}  // namespace ccsim::cc
