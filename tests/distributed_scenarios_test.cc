// End-to-end distributed scenarios: cross-node deadlock resolution through
// the Snoop, distributed OPT certification, and abort delivery to cohorts
// that are mid-I/O or blocked at a remote node.

#include <gtest/gtest.h>

#include "ccsim/engine/system.h"
#include "test_util.h"

namespace ccsim::engine {
namespace {

config::SystemConfig TwoNodeConfig(config::CcAlgorithm alg) {
  config::SystemConfig cfg = config::PaperBaseConfig();
  cfg.algorithm = alg;
  cfg.machine.num_proc_nodes = 2;
  cfg.placement.degree = 1;  // relation r entirely at node (r mod 2) + 1
  cfg.database.num_relations = 2;
  cfg.database.partitions_per_relation = 2;
  cfg.database.pages_per_file = 100;
  cfg.workload.num_terminals = 2;
  // Keep the terminals effectively idle: these tests drive the coordinator
  // with crafted transactions and must not see background noise.
  cfg.workload.think_time_sec = 1.0e6;
  cfg.run.enable_audit = true;
  return cfg;
}

// A transaction with one cohort on each node. Node 1 holds relation 0
// (files 0,1), node 2 holds relation 1 (files 2,3). `first` and `second`
// order the two cohorts' work so we can set up opposite lock orders:
// each cohort spins on `filler_pages` reads first, then writes the hot page.
workload::TransactionSpec CrossNodeSpec(int fillers_node1, int fillers_node2,
                                        int hot_offset) {
  workload::TransactionSpec spec;
  spec.exec_pattern = config::ExecPattern::kParallel;
  workload::CohortSpec c1;
  c1.node = 1;
  for (int i = 0; i < fillers_node1; ++i)
    c1.accesses.push_back(
        workload::PageAccess{PageRef{0, 10 + hot_offset * 20 + i}, false});
  c1.accesses.push_back(workload::PageAccess{PageRef{0, 0}, true});  // hot A
  spec.cohorts.push_back(std::move(c1));
  workload::CohortSpec c2;
  c2.node = 2;
  for (int i = 0; i < fillers_node2; ++i)
    c2.accesses.push_back(
        workload::PageAccess{PageRef{2, 10 + hot_offset * 20 + i}, false});
  c2.accesses.push_back(workload::PageAccess{PageRef{2, 0}, true});  // hot B
  spec.cohorts.push_back(std::move(c2));
  return spec;
}

TEST(DistributedScenarios, SnoopResolvesCrossNodeDeadlock) {
  engine::System sys(TwoNodeConfig(config::CcAlgorithm::kTwoPhaseLocking));
  if (sys.snoop() == nullptr) FAIL() << "2PL must run a Snoop";
  sys.Start();  // snoop only; no terminals interfere (they do submit!)
  // NOTE: Start() also spawns the 2 terminals; their transactions add noise
  // but not determinism problems. Submit the crafted pair directly:
  //   T1 grabs hot A fast, hot B slowly; T2 grabs hot B fast, hot A slowly.
  auto d1 = sys.coordinator().Submit(CrossNodeSpec(0, 8, 0));
  auto d2 = sys.coordinator().Submit(CrossNodeSpec(8, 0, 1));
  sys.sim().RunUntil(30.0);
  // The deadlock (T1 holds A waits B, T2 holds B waits A) is invisible to
  // local detection (each node sees one edge); the Snoop must find it.
  EXPECT_TRUE(d1->done());
  EXPECT_TRUE(d2->done());
  EXPECT_GE(sys.coordinator().aborts_by_reason(
                txn::AbortReason::kGlobalDeadlock),
            1u);
  EXPECT_GE(sys.snoop()->victims_aborted(), 1u);
}

TEST(DistributedScenarios, SnoopHandoffRotates) {
  engine::System sys(TwoNodeConfig(config::CcAlgorithm::kTwoPhaseLocking));
  sys.Start();
  sys.sim().RunUntil(10.0);
  // With 2 nodes and a 1 s interval, handoffs happen every round.
  EXPECT_GE(sys.network().messages_sent(net::MsgTag::kSnoopHandoff), 8u);
  EXPECT_GE(sys.network().messages_sent(net::MsgTag::kSnoopQuery), 8u);
  EXPECT_EQ(sys.network().messages_sent(net::MsgTag::kSnoopQuery),
            sys.network().messages_sent(net::MsgTag::kSnoopReply));
}

TEST(DistributedScenarios, OptCertificationFailureAbortsAllCohorts) {
  engine::System sys(TwoNodeConfig(config::CcAlgorithm::kOptimistic));
  // T1 writes the hot pages on both nodes and finishes quickly; T2 *reads*
  // them early but keeps working, so T1 installs new versions before T2
  // certifies -> T2's read validation fails at prepare time.
  auto d1 = sys.coordinator().Submit(CrossNodeSpec(0, 0, 0));
  workload::TransactionSpec t2;
  t2.exec_pattern = config::ExecPattern::kParallel;
  workload::CohortSpec r1;
  r1.node = 1;
  r1.accesses.push_back(workload::PageAccess{PageRef{0, 0}, false});  // hot A
  for (int i = 0; i < 10; ++i)
    r1.accesses.push_back(workload::PageAccess{PageRef{1, 10 + i}, false});
  t2.cohorts.push_back(std::move(r1));
  workload::CohortSpec r2;
  r2.node = 2;
  r2.accesses.push_back(workload::PageAccess{PageRef{2, 0}, false});  // hot B
  for (int i = 0; i < 10; ++i)
    r2.accesses.push_back(workload::PageAccess{PageRef{3, 10 + i}, false});
  t2.cohorts.push_back(std::move(r2));
  auto d2 = sys.coordinator().Submit(std::move(t2));
  sys.sim().RunUntil(30.0);
  EXPECT_TRUE(d1->done());
  EXPECT_TRUE(d2->done());
  EXPECT_GE(sys.coordinator().aborts_by_reason(
                txn::AbortReason::kCertification),
            1u);
  // Both eventually committed (the loser restarted) and the history is
  // serializable.
  auto audit = CheckSerializability(sys.commit_log());
  EXPECT_TRUE(audit.serializable) << audit.Describe();
}

TEST(DistributedScenarios, AbortReachesCohortBlockedAtRemoteNode) {
  // Under WW: T_old's node-1 cohort wounds T_young while T_young's node-2
  // cohort is blocked behind T_old at node 2. The abort must wake the
  // blocked cohort at node 2.
  engine::System sys(TwoNodeConfig(config::CcAlgorithm::kWoundWait));
  auto d_old = sys.coordinator().Submit(CrossNodeSpec(8, 0, 0));
  sys.sim().RunUntil(0.001);
  auto d_young = sys.coordinator().Submit(CrossNodeSpec(0, 8, 0));
  sys.sim().RunUntil(60.0);
  EXPECT_TRUE(d_old->done());
  EXPECT_TRUE(d_young->done());
  EXPECT_EQ(sys.coordinator().commits(), 2u + 0u);
  auto audit = CheckSerializability(sys.commit_log());
  EXPECT_TRUE(audit.serializable) << audit.Describe();
}

TEST(DistributedScenarios, BtoBlockedReaderAcrossCommit) {
  // BTO: the older T1 immediately queues a pending write on a hot page at
  // node 2 and then works for a while; the younger T2 reads that page and
  // must block until T1's write becomes visible at commit.
  engine::System sys(TwoNodeConfig(config::CcAlgorithm::kBasicTimestamp));

  workload::TransactionSpec t1;
  t1.exec_pattern = config::ExecPattern::kParallel;
  t1.cohorts.push_back(workload::CohortSpec{
      1, {workload::PageAccess{PageRef{0, 1}, false}}});
  workload::CohortSpec t1c2;
  t1c2.node = 2;
  t1c2.accesses.push_back(workload::PageAccess{PageRef{2, 0}, true});  // hot
  for (int i = 0; i < 6; ++i)
    t1c2.accesses.push_back(workload::PageAccess{PageRef{2, 10 + i}, false});
  t1.cohorts.push_back(std::move(t1c2));

  workload::TransactionSpec t2;
  t2.exec_pattern = config::ExecPattern::kParallel;
  t2.cohorts.push_back(workload::CohortSpec{
      2, {workload::PageAccess{PageRef{2, 0}, false}}});  // reads the hot page

  auto d1 = sys.coordinator().Submit(std::move(t1));
  sys.sim().RunUntil(0.05);  // T1's pending write is in place
  auto d2 = sys.coordinator().Submit(std::move(t2));
  sys.sim().RunUntil(0.1);
  EXPECT_FALSE(d2->done());  // reader blocked behind the pending write
  sys.sim().RunUntil(60.0);
  EXPECT_TRUE(d1->done());
  EXPECT_TRUE(d2->done());
  auto audit = CheckSerializability(sys.commit_log());
  EXPECT_TRUE(audit.serializable) << audit.Describe();
  // T2 must have read T1's installed version (wr edge, no aborts needed).
  EXPECT_EQ(sys.coordinator().aborts(), 0u);
}

TEST(DistributedScenarios, HostDoesNoDiskIo) {
  engine::System sys(TwoNodeConfig(config::CcAlgorithm::kTwoPhaseLocking));
  sys.Start();
  sys.coordinator().Submit(CrossNodeSpec(4, 4, 0));
  sys.sim().RunUntil(20.0);
  EXPECT_EQ(sys.resources(kHostNode).num_disks(), 0);
  EXPECT_GT(sys.resources(1).disk(0).accesses_completed() +
                sys.resources(1).disk(1).accesses_completed(),
            0u);
}

TEST(DistributedScenarios, MachineDrainsAfterLoadStops) {
  // Submit a handful of transactions; after they finish, no transaction is
  // live and (with 2PL) only Snoop events remain. Start() is required: all
  // five contend on the hot pages and any cross-node deadlock needs the
  // Snoop to resolve.
  engine::System sys(TwoNodeConfig(config::CcAlgorithm::kTwoPhaseLocking));
  sys.Start();
  for (int i = 0; i < 5; ++i) {
    sys.coordinator().Submit(CrossNodeSpec(i % 3, (i + 1) % 3, i));
  }
  sys.sim().RunUntil(60.0);
  EXPECT_EQ(sys.coordinator().live_transactions(), 0u);
  EXPECT_EQ(sys.coordinator().commits(), 5u);
}

}  // namespace
}  // namespace ccsim::engine
