// Protocol-hardening tests for the fault layer: lost 2PC messages resolve
// via timeouts and presumed abort, cohort crashes drain in-flight state and
// the victims restart, exhausted decision resends force termination without
// leaving locks behind, a deliberately wedged run dies through the
// simulation watchdog with a diagnostic dump, and runs with nonzero fault
// rates are bit-for-bit deterministic.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "ccsim/engine/run.h"
#include "ccsim/engine/system.h"
#include "ccsim/experiments/cache.h"
#include "test_util.h"

namespace ccsim::txn {
namespace {

using engine::System;

// Same shape as the txn_protocol_test helper: one cohort per (node,
// page-count) entry, distinct pages, write_mask bit i marks access i of
// every cohort as an update.
workload::TransactionSpec MakeSpec(
    const std::vector<std::pair<NodeId, int>>& cohorts,
    unsigned write_mask = 0) {
  workload::TransactionSpec spec;
  spec.exec_pattern = config::ExecPattern::kParallel;
  int page = 0;
  for (auto [node, count] : cohorts) {
    workload::CohortSpec c;
    c.node = node;
    for (int i = 0; i < count; ++i) {
      FileId file = (node - 1) * 4;
      c.accesses.push_back(workload::PageAccess{PageRef{file, page++},
                                                (write_mask & (1u << i)) != 0});
    }
    spec.cohorts.push_back(std::move(c));
  }
  return spec;
}

// 4 proc nodes, 1-way placement, 2PC timeouts armed. The tiny drop
// probability only switches the fault layer on; the tests install their own
// targeted drop hooks on the network.
config::SystemConfig FaultProtocolConfig(double msg_timeout_sec) {
  config::SystemConfig cfg = config::PaperBaseConfig();
  cfg.algorithm = config::CcAlgorithm::kNoDc;
  cfg.machine.num_proc_nodes = 4;
  cfg.placement.degree = 1;
  cfg.database.num_relations = 4;
  cfg.database.partitions_per_relation = 4;
  cfg.database.pages_per_file = 100;
  cfg.workload.num_terminals = 4;
  cfg.run.enable_audit = true;
  cfg.faults.msg_drop_prob = 1e-12;
  cfg.faults.msg_timeout_sec = msg_timeout_sec;
  return cfg;
}

TEST(TxnFault, LostVoteTimesOutIntoPresumedAbortThenCommits) {
  // The cohort at node 1 "never replies" to PREPARE: its VOTE is eaten once.
  // The coordinator's phase timer must fire, presume abort, and the restart
  // must commit.
  bool drop_vote = true;
  System sys(FaultProtocolConfig(/*msg_timeout_sec=*/1.0));
  sys.network().SetFaultPolicy(net::Network::FaultPolicy{
      .should_drop =
          [&drop_vote](NodeId from, NodeId, net::MsgTag tag) {
            if (tag == net::MsgTag::kVote && from == 1 && drop_vote) {
              drop_vote = false;
              return true;
            }
            return false;
          },
  });
  auto done = sys.coordinator().Submit(MakeSpec({{1, 2}, {2, 2}}));
  sys.sim().RunUntil(30.0);
  ASSERT_TRUE(done->done());
  EXPECT_EQ(sys.coordinator().commits(), 1u);
  EXPECT_EQ(sys.coordinator().aborts_by_reason(AbortReason::kCommTimeout), 1u);
  EXPECT_EQ(sys.network().messages_lost(), 1u);
  EXPECT_EQ(sys.coordinator().live_transactions(), 0u);
}

TEST(TxnFault, CohortCrashBetweenPrepareAndDecisionRestartsAndCommits) {
  // Node 1's VOTE is withheld so the transaction sits in kPreparing (the
  // 30 s timeout stays out of the way); then node 1 crashes while its
  // cohort is in doubt. The coordinator must drain the crashed cohort,
  // abort with kNodeCrash, and commit after the node recovers.
  bool drop_vote = true;
  System sys(FaultProtocolConfig(/*msg_timeout_sec=*/30.0));
  sys.network().SetFaultPolicy(net::Network::FaultPolicy{
      .should_drop =
          [&drop_vote](NodeId from, NodeId, net::MsgTag tag) {
            return tag == net::MsgTag::kVote && from == 1 && drop_vote;
          },
      .node_up = [&sys](NodeId node) { return sys.NodeUp(node); },
  });
  auto done = sys.coordinator().Submit(MakeSpec({{1, 2}, {2, 2}}, 0b01));
  sys.sim().RunUntil(2.0);
  EXPECT_FALSE(done->done());  // stuck in doubt
  sys.CrashNode(1);
  EXPECT_FALSE(sys.NodeUp(1));
  EXPECT_EQ(sys.coordinator().aborts_by_reason(AbortReason::kNodeCrash), 1u);
  drop_vote = false;
  sys.sim().RunUntil(2.5);
  sys.RecoverNode(1);
  EXPECT_TRUE(sys.NodeUp(1));
  sys.sim().RunUntil(120.0);
  ASSERT_TRUE(done->done());
  EXPECT_EQ(sys.coordinator().commits(), 1u);
  EXPECT_EQ(sys.coordinator().live_transactions(), 0u);
}

TEST(TxnFault, DroppedCommitExhaustsResendsAndForcesTermination) {
  // Every COMMIT to node 1 vanishes. The coordinator must resend the
  // decision max_decision_resends times, then force termination: the
  // reachable-but-silent cohort gets the decision applied out of band and
  // the transaction completes.
  auto cfg = FaultProtocolConfig(/*msg_timeout_sec=*/1.0);
  cfg.faults.max_decision_resends = 2;
  System sys(cfg);
  sys.network().SetFaultPolicy(net::Network::FaultPolicy{
      .should_drop =
          [](NodeId, NodeId to, net::MsgTag tag) {
            return tag == net::MsgTag::kCommit && to == 1;
          },
  });
  auto done = sys.coordinator().Submit(MakeSpec({{1, 2}, {2, 2}}, 0b11));
  sys.sim().RunUntil(30.0);
  ASSERT_TRUE(done->done());
  EXPECT_EQ(sys.coordinator().commits(), 1u);
  EXPECT_EQ(sys.coordinator().forced_terminations(), 1u);
  // Initial COMMIT + two resends, all eaten.
  EXPECT_EQ(sys.network().messages_lost(), 3u);
  EXPECT_EQ(sys.coordinator().live_transactions(), 0u);
}

TEST(TxnFault, FaultRunsAreDeterministic) {
  // Same seed, same FaultParams: two full runs must produce bit-identical
  // metrics even with crash/drop/disk-error machinery active.
  auto cfg = test::SmallConfig(config::CcAlgorithm::kWoundWait, 2.0);
  cfg.run.warmup_sec = 5;
  cfg.run.measure_sec = 30;
  cfg.faults.node_mttf_sec = 10.0;
  cfg.faults.node_mttr_sec = 2.0;
  cfg.faults.msg_drop_prob = 0.01;
  cfg.faults.disk_error_prob = 0.02;
  cfg.faults.msg_timeout_sec = 1.0;
  engine::RunResult a = engine::RunSimulation(cfg);
  engine::RunResult b = engine::RunSimulation(cfg);
  // The faults actually happened...
  EXPECT_GT(a.node_crashes, 0u);
  EXPECT_GT(a.messages_dropped, 0u);
  EXPECT_LT(a.availability, 1.0);
  EXPECT_GT(a.commits, 0u);
  // ...and both runs agree bit for bit (wall time is host timing).
  a.wall_seconds = b.wall_seconds = 0.0;
  EXPECT_EQ(experiments::SerializeResult(a), experiments::SerializeResult(b));
}

TEST(TxnFault, ZeroRatesKeepTheFingerprintAndWatchdogNeverMixes) {
  auto base = test::SmallConfig(config::CcAlgorithm::kTwoPhaseLocking, 4.0);
  auto zero = base;
  zero.faults = config::FaultParams{};  // explicit all-zero rates
  zero.run.watchdog_max_events = 123456;
  zero.run.watchdog_stall_sec = 99.0;
  // Zero fault rates and watchdog limits are diagnostic-only: same cache key
  // as the seed configuration.
  EXPECT_EQ(base.Fingerprint(), zero.Fingerprint());
  auto faulty = base;
  faulty.faults.node_mttf_sec = 60.0;
  EXPECT_NE(base.Fingerprint(), faulty.Fingerprint());
}

using TxnFaultDeathTest = ::testing::Test;

TEST(TxnFaultDeathTest, WatchdogMaxEventsAborts) {
  auto cfg = test::SmallConfig(config::CcAlgorithm::kNoDc, 1.0);
  cfg.run.watchdog_max_events = 500;  // a full run fires far more
  EXPECT_DEATH(engine::RunSimulation(cfg), "max-events limit exceeded");
}

TEST(TxnFaultDeathTest, WedgedRunTripsStallWatchdogWithDiagnosticDump) {
  // Wedge: every data-plane message is eaten with retries and protocol
  // timeouts disabled, while the crash/recovery cycle keeps the clock
  // moving. Nothing ever commits, so the stall watchdog must kill the run
  // and the check hook must print the diagnostic dump.
  auto cfg = test::SmallConfig(config::CcAlgorithm::kNoDc, 1.0);
  cfg.faults.node_mttf_sec = 3.0;
  cfg.faults.node_mttr_sec = 1.0;
  cfg.faults.msg_timeout_sec = 0.0;  // no protocol rescue
  cfg.run.watchdog_stall_sec = 5.0;
  EXPECT_DEATH(
      {
        System sys(cfg);
        sys.network().SetFaultPolicy(net::Network::FaultPolicy{
            .should_drop = [](NodeId, NodeId, net::MsgTag) { return true; },
        });
        sys.Run();
      },
      "ccsim simulation diagnostic dump");
}

}  // namespace
}  // namespace ccsim::txn
