#include "ccsim/sim/calendar.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <coroutine>
#include <cstdint>
#include <vector>

namespace ccsim::sim {
namespace {

// Fires one popped handler event (test helper; the Simulation owns dispatch
// of resume events).
void Fire(Calendar::Fired& fired) {
  ASSERT_EQ(fired.kind, EventKind::kHandler);
  fired.fn();
}

TEST(Calendar, StartsEmpty) {
  Calendar cal;
  EXPECT_TRUE(cal.empty());
  EXPECT_EQ(cal.size(), 0u);
  EXPECT_EQ(cal.NextTime(), kNever);
  EXPECT_FALSE(cal.PopNext().has_value());
}

TEST(Calendar, PopsInTimeOrder) {
  Calendar cal;
  std::vector<int> order;
  cal.Schedule(3.0, [&] { order.push_back(3); });
  cal.Schedule(1.0, [&] { order.push_back(1); });
  cal.Schedule(2.0, [&] { order.push_back(2); });
  while (auto fired = cal.PopNext()) Fire(*fired);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Calendar, TiesFireInInsertionOrder) {
  Calendar cal;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    cal.Schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (auto fired = cal.PopNext()) Fire(*fired);
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Calendar, TiesFireInInsertionOrderAcrossSlotReuse) {
  // Slot indices get recycled out of order; the insertion seq (not the slot
  // or the id) must drive tie-breaking.
  Calendar cal;
  std::vector<int> order;
  auto a = cal.Schedule(1.0, [] {});
  auto b = cal.Schedule(1.0, [] {});
  cal.Cancel(b);
  cal.Cancel(a);  // free list now holds slot(a) on top of slot(b)
  for (int i = 0; i < 4; ++i) {
    cal.Schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (auto fired = cal.PopNext()) Fire(*fired);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Calendar, NextTimeReportsEarliestPending) {
  Calendar cal;
  cal.Schedule(7.0, [] {});
  cal.Schedule(4.0, [] {});
  EXPECT_DOUBLE_EQ(cal.NextTime(), 4.0);
}

TEST(Calendar, CancelPreventsFiring) {
  Calendar cal;
  bool fired = false;
  auto id = cal.Schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(cal.Cancel(id));
  EXPECT_FALSE(cal.PopNext().has_value());
  EXPECT_FALSE(fired);
}

TEST(Calendar, CancelReturnsFalseForUnknownOrFiredEvent) {
  Calendar cal;
  auto id = cal.Schedule(1.0, [] {});
  auto fired = cal.PopNext();
  ASSERT_TRUE(fired.has_value());
  EXPECT_FALSE(cal.Cancel(id));
  EXPECT_FALSE(cal.Cancel(9999));
  EXPECT_FALSE(cal.Cancel(Calendar::kInvalidEventId));
}

TEST(Calendar, CancelTwiceReturnsFalse) {
  Calendar cal;
  auto id = cal.Schedule(1.0, [] {});
  EXPECT_TRUE(cal.Cancel(id));
  EXPECT_FALSE(cal.Cancel(id));
}

TEST(Calendar, CancelDoesNotDisturbOtherEvents) {
  Calendar cal;
  std::vector<int> order;
  cal.Schedule(1.0, [&] { order.push_back(1); });
  auto id = cal.Schedule(2.0, [&] { order.push_back(2); });
  cal.Schedule(3.0, [&] { order.push_back(3); });
  cal.Cancel(id);
  while (auto f = cal.PopNext()) Fire(*f);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Calendar, SizeCountsOnlyLiveEvents) {
  Calendar cal;
  auto a = cal.Schedule(1.0, [] {});
  cal.Schedule(2.0, [] {});
  EXPECT_EQ(cal.size(), 2u);
  cal.Cancel(a);
  EXPECT_EQ(cal.size(), 1u);
}

TEST(Calendar, NextTimeSkipsCancelledHead) {
  Calendar cal;
  auto a = cal.Schedule(1.0, [] {});
  cal.Schedule(5.0, [] {});
  cal.Cancel(a);
  EXPECT_DOUBLE_EQ(cal.NextTime(), 5.0);
}

TEST(Calendar, RecycledSlotIdsDoNotAlias) {
  // Fire A; its slot is recycled for B. A's id must stay dead: cancelling it
  // returns false and must not kill B.
  Calendar cal;
  auto a = cal.Schedule(1.0, [] {});
  ASSERT_TRUE(cal.PopNext().has_value());
  bool b_fired = false;
  auto b = cal.Schedule(2.0, [&] { b_fired = true; });
  EXPECT_NE(a, b);  // same slot, different generation
  EXPECT_EQ(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b));
  EXPECT_FALSE(cal.Cancel(a));
  EXPECT_EQ(cal.size(), 1u);
  auto fired = cal.PopNext();
  ASSERT_TRUE(fired.has_value());
  Fire(*fired);
  EXPECT_TRUE(b_fired);
}

TEST(Calendar, CancelledSlotIdsDoNotAlias) {
  // Same as above but the slot is recycled through a cancel, not a fire.
  Calendar cal;
  auto a = cal.Schedule(1.0, [] {});
  ASSERT_TRUE(cal.Cancel(a));
  auto b = cal.Schedule(2.0, [] {});
  EXPECT_EQ(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b));
  EXPECT_FALSE(cal.Cancel(a));
  EXPECT_TRUE(cal.Cancel(b));
  EXPECT_TRUE(cal.empty());
}

TEST(Calendar, NextTimeStableUnderInterleavedCancels) {
  // NextTime() is a pure read; interleaved cancels (including of the head)
  // must keep it equal to the earliest live event at every step.
  Calendar cal;
  std::vector<Calendar::EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(cal.Schedule(static_cast<double>(i), [] {}));
  }
  // Cancel the head repeatedly: each cancel must immediately expose the next
  // live event (head pruning is eager, NextTime never sees a dead head).
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(cal.Cancel(ids[static_cast<size_t>(i)]));
    EXPECT_DOUBLE_EQ(cal.NextTime(), static_cast<double>(i + 1));
    const Calendar& ccal = cal;  // NextTime on a const calendar
    EXPECT_DOUBLE_EQ(ccal.NextTime(), static_cast<double>(i + 1));
  }
  // Cancel interior events from the back; the head must be unaffected.
  for (int i = 63; i > 32; --i) {
    EXPECT_TRUE(cal.Cancel(ids[static_cast<size_t>(i)]));
    EXPECT_DOUBLE_EQ(cal.NextTime(), 32.0);
  }
  EXPECT_TRUE(cal.Cancel(ids[32]));
  EXPECT_EQ(cal.NextTime(), kNever);
  EXPECT_TRUE(cal.empty());
}

TEST(Calendar, SlotCapacityTracksHighWaterMarkOnly) {
  Calendar cal;
  std::vector<Calendar::EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(cal.Schedule(1.0 + i, [] {}));
  }
  std::size_t cap = cal.slot_capacity();
  EXPECT_EQ(cap, 100u);
  // Steady-state churn at depth <= 100 must not grow the slab.
  for (int round = 0; round < 50; ++round) {
    auto fired = cal.PopNext();
    ASSERT_TRUE(fired.has_value());
    cal.Schedule(fired->time + 1000.0, [] {});
  }
  EXPECT_EQ(cal.slot_capacity(), cap);
}

// Deterministic 64-bit LCG for the stress test (no std random; determinism
// rules ban wall-clock/rand seeding in tests).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 16;
  }

 private:
  std::uint64_t state_;
};

// Cancel-heavy randomized stress against a naive reference model: a flat
// vector of pending (time, seq) records popped via linear min-scan. Any
// divergence in pop order, cancel results, or sizes fails.
TEST(Calendar, StressMatchesNaiveReferenceModel) {
  struct RefEvent {
    double time;
    std::uint64_t seq;
    int payload;
  };
  Calendar cal;
  std::vector<std::pair<Calendar::EventId, std::uint64_t>> live_ids;
  std::vector<RefEvent> ref;
  std::vector<Calendar::EventId> dead_ids;
  Lcg rng(20260806);
  std::uint64_t next_seq = 0;
  double now = 0.0;
  std::vector<int> got, want;
  for (int step = 0; step < 20000; ++step) {
    std::uint64_t r = rng.Next() % 100;
    if (r < 45 || ref.empty()) {
      // Schedule at now + U[0,16), quantized so exact ties happen often.
      double t = now + static_cast<double>(rng.Next() % 64) / 4.0;
      int payload = static_cast<int>(next_seq);
      auto id = cal.Schedule(t, [&got, payload] { got.push_back(payload); });
      live_ids.emplace_back(id, next_seq);
      ref.push_back(RefEvent{t, next_seq, payload});
      ++next_seq;
    } else if (r < 75) {
      // Cancel a random live event; both models must agree it was live.
      std::size_t k = rng.Next() % live_ids.size();
      auto [id, seq] = live_ids[k];
      EXPECT_TRUE(cal.Cancel(id));
      auto it = std::find_if(ref.begin(), ref.end(),
                             [s = seq](const RefEvent& e) { return e.seq == s; });
      ASSERT_NE(it, ref.end());
      ref.erase(it);
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(k));
      dead_ids.push_back(id);
    } else if (r < 85 && !dead_ids.empty()) {
      // Cancel of a dead id must always be rejected.
      EXPECT_FALSE(cal.Cancel(dead_ids[rng.Next() % dead_ids.size()]));
    } else {
      // Pop: earliest (time, seq) in the reference.
      auto it = std::min_element(ref.begin(), ref.end(),
                                 [](const RefEvent& a, const RefEvent& b) {
                                   if (a.time != b.time) return a.time < b.time;
                                   return a.seq < b.seq;
                                 });
      auto fired = cal.PopNext();
      ASSERT_TRUE(fired.has_value());
      ASSERT_EQ(fired->kind, EventKind::kHandler);
      fired->fn();
      want.push_back(it->payload);
      EXPECT_DOUBLE_EQ(fired->time, it->time);
      now = it->time;
      auto lit = std::find_if(
          live_ids.begin(), live_ids.end(),
          [s = it->seq](const auto& p) { return p.second == s; });
      ASSERT_NE(lit, live_ids.end());
      dead_ids.push_back(lit->first);
      live_ids.erase(lit);
      ref.erase(it);
    }
    ASSERT_EQ(cal.size(), ref.size());
    double ref_next = kNever;
    for (const RefEvent& e : ref) ref_next = std::min(ref_next, e.time);
    ASSERT_EQ(cal.NextTime(), ref_next);
  }
  // Drain the rest and compare the full firing orders.
  while (auto fired = cal.PopNext()) {
    ASSERT_EQ(fired->kind, EventKind::kHandler);
    fired->fn();
  }
  std::sort(ref.begin(), ref.end(), [](const RefEvent& a, const RefEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  for (const RefEvent& e : ref) want.push_back(e.payload);
  EXPECT_EQ(got, want);
}

// Same reference-model stress, but with event times drawn from wildly
// different scales (sub-second ties, thousands, and ~1e9 far-future
// clusters). This drives the ladder internals the uniform stress cannot
// reach: overflow spills, rebases of far clusters, under-rungs opened for
// near events scheduled after a rebase, and bucket splits of time clumps.
TEST(Calendar, StressWideTimeSpansMatchReference) {
  struct RefEvent {
    double time;
    std::uint64_t seq;
    int payload;
  };
  Calendar cal;
  std::vector<std::pair<Calendar::EventId, std::uint64_t>> live_ids;
  std::vector<RefEvent> ref;
  Lcg rng(891236);
  std::uint64_t next_seq = 0;
  double now = 0.0;
  std::vector<int> got, want;
  for (int step = 0; step < 12000; ++step) {
    std::uint64_t r = rng.Next() % 100;
    if (r < 50 || ref.empty()) {
      double off;
      std::uint64_t scale = rng.Next() % 10;
      if (scale < 5) {
        off = static_cast<double>(rng.Next() % 16) / 8.0;  // ties + clumps
      } else if (scale < 8) {
        off = static_cast<double>(rng.Next() % 4096);
      } else {
        off = 1e9 + static_cast<double>(rng.Next() % 64);  // far cluster
      }
      double t = now + off;
      int payload = static_cast<int>(next_seq);
      auto id = cal.Schedule(t, [&got, payload] { got.push_back(payload); });
      live_ids.emplace_back(id, next_seq);
      ref.push_back(RefEvent{t, next_seq, payload});
      ++next_seq;
    } else if (r < 70) {
      std::size_t k = rng.Next() % live_ids.size();
      auto [id, seq] = live_ids[k];
      EXPECT_TRUE(cal.Cancel(id));
      auto it =
          std::find_if(ref.begin(), ref.end(),
                       [s = seq](const RefEvent& e) { return e.seq == s; });
      ASSERT_NE(it, ref.end());
      ref.erase(it);
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
      auto it = std::min_element(ref.begin(), ref.end(),
                                 [](const RefEvent& a, const RefEvent& b) {
                                   if (a.time != b.time) return a.time < b.time;
                                   return a.seq < b.seq;
                                 });
      auto fired = cal.PopNext();
      ASSERT_TRUE(fired.has_value());
      fired->fn();
      want.push_back(it->payload);
      EXPECT_DOUBLE_EQ(fired->time, it->time);
      now = it->time;
      auto lit = std::find_if(
          live_ids.begin(), live_ids.end(),
          [s = it->seq](const auto& p) { return p.second == s; });
      ASSERT_NE(lit, live_ids.end());
      live_ids.erase(lit);
      ref.erase(it);
    }
    ASSERT_EQ(cal.size(), ref.size());
    double ref_next = kNever;
    for (const RefEvent& e : ref) ref_next = std::min(ref_next, e.time);
    ASSERT_EQ(cal.NextTime(), ref_next);
  }
  while (auto fired = cal.PopNext()) fired->fn();
  std::sort(ref.begin(), ref.end(), [](const RefEvent& a, const RefEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  for (const RefEvent& e : ref) want.push_back(e.payload);
  EXPECT_EQ(got, want);
}

// --- Resume (wakeup) events -------------------------------------------

struct TinyTask {
  struct promise_type {
    TinyTask get_return_object() {
      return TinyTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
  std::coroutine_handle<promise_type> handle;
};

TinyTask MarkWhenResumed(bool* resumed) {
  *resumed = true;
  co_return;
}

TEST(Calendar, ResumeEventsCarryTheHandle) {
  Calendar cal;
  bool resumed = false;
  TinyTask task = MarkWhenResumed(&resumed);
  cal.Schedule(1.0, [] {});
  cal.ScheduleResume(0.5, task.handle);
  auto first = cal.PopNext();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->kind, EventKind::kResume);
  EXPECT_FALSE(static_cast<bool>(first->fn));
  ASSERT_NE(first->resume, nullptr);
  first->resume.resume();
  EXPECT_TRUE(resumed);
  auto second = cal.PopNext();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->kind, EventKind::kHandler);
  task.handle.destroy();
}

TEST(CalendarDeathTest, RejectsNanTime) {
  Calendar cal;
  EXPECT_DEATH(cal.Schedule(std::nan(""), [] {}), "NaN");
}

TEST(CalendarDeathTest, RejectsInfiniteTime) {
  Calendar cal;
  EXPECT_DEATH(cal.Schedule(kNever, [] {}), "infinite");
}

TEST(CalendarDeathTest, RejectsEmptyHandler) {
  Calendar cal;
  EXPECT_DEATH(cal.Schedule(1.0, EventFn()), "empty handler");
}

TEST(CalendarDeathTest, RejectsSchedulingBeforeLastFiredEvent) {
  Calendar cal;
  cal.Schedule(5.0, [] {});
  auto fired = cal.PopNext();
  ASSERT_TRUE(fired.has_value());
  EXPECT_DEATH(cal.Schedule(1.0, [] {}), "simulated past");
}

}  // namespace
}  // namespace ccsim::sim
