#include "ccsim/sim/calendar.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ccsim::sim {
namespace {

TEST(Calendar, StartsEmpty) {
  Calendar cal;
  EXPECT_TRUE(cal.empty());
  EXPECT_EQ(cal.size(), 0u);
  EXPECT_EQ(cal.NextTime(), kNever);
  EXPECT_FALSE(cal.PopNext().has_value());
}

TEST(Calendar, PopsInTimeOrder) {
  Calendar cal;
  std::vector<int> order;
  cal.Schedule(3.0, [&] { order.push_back(3); });
  cal.Schedule(1.0, [&] { order.push_back(1); });
  cal.Schedule(2.0, [&] { order.push_back(2); });
  while (auto fired = cal.PopNext()) fired->handler();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Calendar, TiesFireInInsertionOrder) {
  Calendar cal;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    cal.Schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (auto fired = cal.PopNext()) fired->handler();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Calendar, NextTimeReportsEarliestPending) {
  Calendar cal;
  cal.Schedule(7.0, [] {});
  cal.Schedule(4.0, [] {});
  EXPECT_DOUBLE_EQ(cal.NextTime(), 4.0);
}

TEST(Calendar, CancelPreventsFiring) {
  Calendar cal;
  bool fired = false;
  auto id = cal.Schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(cal.Cancel(id));
  EXPECT_FALSE(cal.PopNext().has_value());
  EXPECT_FALSE(fired);
}

TEST(Calendar, CancelReturnsFalseForUnknownOrFiredEvent) {
  Calendar cal;
  auto id = cal.Schedule(1.0, [] {});
  auto fired = cal.PopNext();
  ASSERT_TRUE(fired.has_value());
  EXPECT_FALSE(cal.Cancel(id));
  EXPECT_FALSE(cal.Cancel(9999));
}

TEST(Calendar, CancelDoesNotDisturbOtherEvents) {
  Calendar cal;
  std::vector<int> order;
  cal.Schedule(1.0, [&] { order.push_back(1); });
  auto id = cal.Schedule(2.0, [&] { order.push_back(2); });
  cal.Schedule(3.0, [&] { order.push_back(3); });
  cal.Cancel(id);
  while (auto f = cal.PopNext()) f->handler();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Calendar, SizeCountsOnlyLiveEvents) {
  Calendar cal;
  auto a = cal.Schedule(1.0, [] {});
  cal.Schedule(2.0, [] {});
  EXPECT_EQ(cal.size(), 2u);
  cal.Cancel(a);
  EXPECT_EQ(cal.size(), 1u);
}

TEST(Calendar, NextTimeSkipsCancelledHead) {
  Calendar cal;
  auto a = cal.Schedule(1.0, [] {});
  cal.Schedule(5.0, [] {});
  cal.Cancel(a);
  EXPECT_DOUBLE_EQ(cal.NextTime(), 5.0);
}

TEST(CalendarDeathTest, RejectsNanTime) {
  Calendar cal;
  EXPECT_DEATH(cal.Schedule(std::nan(""), [] {}), "NaN");
}

}  // namespace
}  // namespace ccsim::sim
