#include "ccsim/cc/lock_table.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ccsim::cc {
namespace {

using test::MakeTxn;

class LockTableTest : public ::testing::Test {
 protected:
  AccessOutcome Value(
      const std::shared_ptr<sim::Completion<AccessOutcome>>& c) {
    EXPECT_TRUE(c->done());
    return c->TakeValue();
  }

  sim::Simulation sim_;
  LockTable table_{&sim_};
  PageRef page_{0, 1};
  PageRef page2_{0, 2};
};

TEST_F(LockTableTest, FirstSharedRequestGrants) {
  auto t1 = MakeTxn(1, 1, {page_});
  auto r = table_.Request(t1, page_, LockMode::kShared);
  EXPECT_TRUE(r.granted_immediately);
  EXPECT_EQ(Value(r.completion), AccessOutcome::kGranted);
  EXPECT_TRUE(table_.HoldsLock(1, page_));
}

TEST_F(LockTableTest, SharedLocksShare) {
  auto t1 = MakeTxn(1, 1, {page_});
  auto t2 = MakeTxn(2, 1, {page_});
  table_.Request(t1, page_, LockMode::kShared);
  auto r2 = table_.Request(t2, page_, LockMode::kShared);
  EXPECT_TRUE(r2.granted_immediately);
  EXPECT_TRUE(table_.HoldsLock(1, page_));
  EXPECT_TRUE(table_.HoldsLock(2, page_));
}

TEST_F(LockTableTest, ExclusiveConflictsWithShared) {
  auto t1 = MakeTxn(1, 1, {page_});
  auto t2 = MakeTxn(2, 1, {page_});
  table_.Request(t1, page_, LockMode::kShared);
  auto r2 = table_.Request(t2, page_, LockMode::kExclusive);
  EXPECT_FALSE(r2.granted_immediately);
  ASSERT_EQ(r2.blockers.size(), 1u);
  EXPECT_EQ(r2.blockers[0]->id(), 1u);
  EXPECT_TRUE(table_.IsWaiting(2));
}

TEST_F(LockTableTest, SharedConflictsWithExclusive) {
  auto t1 = MakeTxn(1, 1, {page_});
  auto t2 = MakeTxn(2, 1, {page_});
  table_.Request(t1, page_, LockMode::kExclusive);
  auto r2 = table_.Request(t2, page_, LockMode::kShared);
  EXPECT_FALSE(r2.granted_immediately);
}

TEST_F(LockTableTest, ReleaseWakesWaiterInFifoOrder) {
  auto t1 = MakeTxn(1, 1, {page_});
  auto t2 = MakeTxn(2, 1, {page_});
  auto t3 = MakeTxn(3, 1, {page_});
  table_.Request(t1, page_, LockMode::kExclusive);
  auto r2 = table_.Request(t2, page_, LockMode::kExclusive);
  auto r3 = table_.Request(t3, page_, LockMode::kExclusive);
  table_.ReleaseAll(1, false);
  EXPECT_TRUE(r2.completion->done());
  EXPECT_FALSE(r3.completion->done());
  EXPECT_EQ(Value(r2.completion), AccessOutcome::kGranted);
  table_.ReleaseAll(2, false);
  EXPECT_EQ(Value(r3.completion), AccessOutcome::kGranted);
}

TEST_F(LockTableTest, ReleaseGrantsAllCompatibleSharedWaiters) {
  auto t1 = MakeTxn(1, 1, {page_});
  auto t2 = MakeTxn(2, 1, {page_});
  auto t3 = MakeTxn(3, 1, {page_});
  table_.Request(t1, page_, LockMode::kExclusive);
  auto r2 = table_.Request(t2, page_, LockMode::kShared);
  auto r3 = table_.Request(t3, page_, LockMode::kShared);
  table_.ReleaseAll(1, false);
  EXPECT_TRUE(r2.completion->done());
  EXPECT_TRUE(r3.completion->done());
}

TEST_F(LockTableTest, CompatibleRequestBehindWaiterStillQueues) {
  // No queue jumping: S behind a queued X waits even though it is
  // compatible with the current S holder.
  auto t1 = MakeTxn(1, 1, {page_});
  auto t2 = MakeTxn(2, 1, {page_});
  auto t3 = MakeTxn(3, 1, {page_});
  table_.Request(t1, page_, LockMode::kShared);
  auto rx = table_.Request(t2, page_, LockMode::kExclusive);
  auto rs = table_.Request(t3, page_, LockMode::kShared);
  EXPECT_FALSE(rs.granted_immediately);
  // t3 waits for both the X waiter ahead and (not) the compatible holder.
  ASSERT_EQ(rs.blockers.size(), 1u);
  EXPECT_EQ(rs.blockers[0]->id(), 2u);
}

TEST_F(LockTableTest, RerequestHeldModeGrantsImmediately) {
  auto t1 = MakeTxn(1, 1, {page_});
  table_.Request(t1, page_, LockMode::kShared);
  auto again = table_.Request(t1, page_, LockMode::kShared);
  EXPECT_TRUE(again.granted_immediately);
  auto weaker = table_.Request(t1, page_, LockMode::kShared);
  EXPECT_TRUE(weaker.granted_immediately);
}

TEST_F(LockTableTest, SoleHolderUpgradesInPlace) {
  auto t1 = MakeTxn(1, 1, {page_});
  table_.Request(t1, page_, LockMode::kShared);
  auto up = table_.Request(t1, page_, LockMode::kExclusive);
  EXPECT_TRUE(up.granted_immediately);
  // Now exclusive: another shared request must wait.
  auto t2 = MakeTxn(2, 1, {page_});
  EXPECT_FALSE(table_.Request(t2, page_, LockMode::kShared)
                   .granted_immediately);
}

TEST_F(LockTableTest, UpgradeWithOtherHoldersWaitsAtFront) {
  auto t1 = MakeTxn(1, 1, {page_});
  auto t2 = MakeTxn(2, 1, {page_});
  auto t3 = MakeTxn(3, 1, {page_});
  table_.Request(t1, page_, LockMode::kShared);
  table_.Request(t2, page_, LockMode::kShared);
  auto r3 = table_.Request(t3, page_, LockMode::kExclusive);  // queued
  auto up = table_.Request(t1, page_, LockMode::kExclusive);  // upgrade
  EXPECT_FALSE(up.granted_immediately);
  // Upgrade blockers: the other shared holder (t2), not itself.
  ASSERT_EQ(up.blockers.size(), 1u);
  EXPECT_EQ(up.blockers[0]->id(), 2u);
  // When t2 releases, the upgrade is granted before t3's exclusive.
  table_.ReleaseAll(2, false);
  EXPECT_TRUE(up.completion->done());
  EXPECT_FALSE(r3.completion->done());
}

TEST_F(LockTableTest, AbortReleaseCompletesWaitersWithAborted) {
  auto t1 = MakeTxn(1, 1, {page_});
  auto t2 = MakeTxn(2, 1, {page_});
  table_.Request(t1, page_, LockMode::kExclusive);
  auto r2 = table_.Request(t2, page_, LockMode::kShared);
  table_.ReleaseAll(2, true);  // t2 aborts while waiting
  EXPECT_EQ(Value(r2.completion), AccessOutcome::kAborted);
  // The lock is still held by t1.
  EXPECT_TRUE(table_.HoldsLock(1, page_));
  EXPECT_FALSE(table_.IsWaiting(2));
}

TEST_F(LockTableTest, ReleaseAllCoversMultiplePages) {
  auto t1 = MakeTxn(1, 1, {page_, page2_});
  table_.Request(t1, page_, LockMode::kShared);
  table_.Request(t1, page2_, LockMode::kExclusive);
  EXPECT_EQ(table_.num_locked_pages(), 2u);
  table_.ReleaseAll(1, false);
  EXPECT_EQ(table_.num_locked_pages(), 0u);
}

TEST_F(LockTableTest, ReleaseUnknownTxnIsNoOp) {
  table_.ReleaseAll(99, true);
  EXPECT_EQ(table_.num_locked_pages(), 0u);
}

TEST_F(LockTableTest, WaitsForEdgesReportWaiterToHolder) {
  auto t1 = MakeTxn(1, 1, {page_}, 0, 1.0);
  auto t2 = MakeTxn(2, 1, {page_}, 0, 2.0);
  table_.Request(t1, page_, LockMode::kExclusive);
  table_.Request(t2, page_, LockMode::kShared);
  auto edges = table_.WaitsForEdges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].waiter, 2u);
  EXPECT_EQ(edges[0].holder, 1u);
  EXPECT_DOUBLE_EQ(edges[0].waiter_ts.time, 2.0);
  EXPECT_DOUBLE_EQ(edges[0].holder_ts.time, 1.0);
}

TEST_F(LockTableTest, WaitsForEdgesIncludeQueuedAheadConflicts) {
  auto t1 = MakeTxn(1, 1, {page_});
  auto t2 = MakeTxn(2, 1, {page_});
  auto t3 = MakeTxn(3, 1, {page_});
  table_.Request(t1, page_, LockMode::kExclusive);
  table_.Request(t2, page_, LockMode::kExclusive);
  table_.Request(t3, page_, LockMode::kExclusive);
  auto edges = table_.WaitsForEdges();
  // t2 -> t1; t3 -> t1 and t3 -> t2.
  EXPECT_EQ(edges.size(), 3u);
}

TEST_F(LockTableTest, WaitTimeStatisticsRecordDelays) {
  auto t1 = MakeTxn(1, 1, {page_});
  auto t2 = MakeTxn(2, 1, {page_});
  table_.Request(t1, page_, LockMode::kExclusive);
  auto r2 = table_.Request(t2, page_, LockMode::kShared);
  sim_.At(2.5, [&] { table_.ReleaseAll(1, false); });
  sim_.Run();
  EXPECT_TRUE(r2.completion->done());
  ASSERT_EQ(table_.wait_times().count(), 1u);
  EXPECT_DOUBLE_EQ(table_.wait_times().mean(), 2.5);
}

TEST_F(LockTableTest, DelayedGrantCallbackFires) {
  auto t1 = MakeTxn(1, 1, {page_});
  auto t2 = MakeTxn(2, 1, {page_});
  int called = 0;
  table_.set_on_delayed_grant(
      [&](const txn::TxnPtr& t, const PageRef& p, LockMode m) {
        ++called;
        EXPECT_EQ(t->id(), 2u);
        EXPECT_EQ(p, page_);
        EXPECT_EQ(m, LockMode::kShared);
      });
  table_.Request(t1, page_, LockMode::kExclusive);
  table_.Request(t2, page_, LockMode::kShared);
  EXPECT_EQ(called, 0);
  table_.ReleaseAll(1, false);
  EXPECT_EQ(called, 1);
}

TEST_F(LockTableTest, DistinctPagesDoNotConflict) {
  auto t1 = MakeTxn(1, 1, {page_});
  auto t2 = MakeTxn(2, 1, {page2_});
  table_.Request(t1, page_, LockMode::kExclusive);
  auto r2 = table_.Request(t2, page2_, LockMode::kExclusive);
  EXPECT_TRUE(r2.granted_immediately);
}

TEST_F(LockTableTest, QueueJumpGrantsCompatibleRequestDespiteWaiters) {
  table_.set_allow_queue_jump(true);
  auto t1 = MakeTxn(1, 1, {page_});
  auto t2 = MakeTxn(2, 1, {page_});
  auto t3 = MakeTxn(3, 1, {page_});
  table_.Request(t1, page_, LockMode::kShared);
  auto rx = table_.Request(t2, page_, LockMode::kExclusive);  // waits
  auto rs = table_.Request(t3, page_, LockMode::kShared);     // overtakes
  EXPECT_FALSE(rx.granted_immediately);
  EXPECT_TRUE(rs.granted_immediately);
}

TEST_F(LockTableTest, QueueJumpReleaseGrantsAnyCompatibleWaiter) {
  table_.set_allow_queue_jump(true);
  auto t1 = MakeTxn(1, 1, {page_});
  auto t2 = MakeTxn(2, 1, {page_});
  auto t3 = MakeTxn(3, 1, {page_});
  auto t4 = MakeTxn(4, 1, {page_});
  table_.Request(t1, page_, LockMode::kExclusive);
  auto rx = table_.Request(t2, page_, LockMode::kExclusive);
  auto rs = table_.Request(t3, page_, LockMode::kShared);
  auto rs2 = table_.Request(t4, page_, LockMode::kShared);
  table_.ReleaseAll(1, false);
  // The exclusive waiter at the front is granted; under strict FIFO the
  // shared waiters would now wait, and they still must (t2 holds X).
  EXPECT_TRUE(rx.completion->done());
  EXPECT_FALSE(rs.completion->done());
  EXPECT_FALSE(rs2.completion->done());
  table_.ReleaseAll(2, false);
  EXPECT_TRUE(rs.completion->done());
  EXPECT_TRUE(rs2.completion->done());
}

TEST_F(LockTableTest, QueueJumpReleaseSkipsBlockedFrontWaiter) {
  table_.set_allow_queue_jump(true);
  auto t1 = MakeTxn(1, 1, {page_});
  auto t2 = MakeTxn(2, 1, {page_});
  auto t3 = MakeTxn(3, 1, {page_});
  table_.Request(t1, page_, LockMode::kShared);
  table_.Request(t2, page_, LockMode::kShared);
  // t1 upgrades (front of queue, blocked on t2); t3's shared request then
  // arrives and, under the jump policy, is granted over the queued upgrade.
  auto up = table_.Request(t1, page_, LockMode::kExclusive);
  auto rs = table_.Request(t3, page_, LockMode::kShared);
  EXPECT_FALSE(up.granted_immediately);
  EXPECT_TRUE(rs.granted_immediately);
  // t2 releases; upgrade still blocked by t3's shared lock.
  table_.ReleaseAll(2, false);
  EXPECT_FALSE(up.completion->done());
  table_.ReleaseAll(3, false);
  EXPECT_TRUE(up.completion->done());
}

TEST_F(LockTableTest, StrictFifoIsTheDefault) {
  EXPECT_FALSE(table_.allow_queue_jump());
}

TEST_F(LockTableTest, CommitReleaseWithPendingWaiterOfSameTxnIsFatal) {
  auto t1 = MakeTxn(1, 1, {page_});
  auto t2 = MakeTxn(2, 1, {page_});
  table_.Request(t1, page_, LockMode::kExclusive);
  table_.Request(t2, page_, LockMode::kShared);
  EXPECT_DEATH(table_.ReleaseAll(2, false), "pending");
}

}  // namespace
}  // namespace ccsim::cc
