// Arena allocator: the per-simulation bump/free-list allocator behind
// coroutine frames, Completions, and Transaction state (DESIGN.md decision
// #12). Covers the allocator contract (alignment, size-class reuse,
// reset-keeps-pages), the ASan poisoning of freed space, teardown of
// suspended coroutine frames through the registry (leak-checked by the ASan
// CI job), and the load-bearing pin that arena-vs-malloc placement does not
// change simulation behavior.

#include "ccsim/sim/arena.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "ccsim/config/params.h"
#include "ccsim/engine/run.h"
#include "ccsim/sim/process.h"
#include "ccsim/sim/simulation.h"
#include "test_util.h"

namespace ccsim {
namespace {

TEST(Arena, AlignsEveryBlockAndTracksLiveness) {
  sim::Arena arena;
  std::vector<std::pair<void*, std::size_t>> blocks;
  for (std::size_t size : {std::size_t{1}, std::size_t{8}, std::size_t{16},
                           std::size_t{17}, std::size_t{40}, std::size_t{256},
                           std::size_t{1000}}) {
    void* p = arena.Allocate(size);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % sim::Arena::kAlign, 0u)
        << "size " << size;
    std::memset(p, 0xAB, size);  // the whole block must be writable
    blocks.emplace_back(p, size);
  }
  EXPECT_EQ(arena.live_blocks(), blocks.size());
  for (auto [p, size] : blocks) arena.Deallocate(p, size);
  EXPECT_EQ(arena.live_blocks(), 0u);
  EXPECT_EQ(arena.live_bytes(), 0u);
}

TEST(Arena, ReusesFreedBlocksWithoutGrowingFootprint) {
  sim::Arena arena;
  void* first = arena.Allocate(64);
  arena.Deallocate(first, 64);
  // The size-class free list is LIFO: the same block comes straight back.
  void* again = arena.Allocate(64);
  EXPECT_EQ(first, again);
  arena.Deallocate(again, 64);

  // A million churn cycles at steady state must not reserve a single
  // additional page - this is the property that keeps megascale runs at the
  // high-water mark instead of growing with total allocation count.
  std::size_t footprint = arena.bytes_reserved();
  for (int i = 0; i < 1000000; ++i) {
    void* p = arena.Allocate(64);
    arena.Deallocate(p, 64);
  }
  EXPECT_EQ(arena.bytes_reserved(), footprint);
  EXPECT_EQ(arena.live_blocks(), 0u);
}

TEST(Arena, ResetKeepsPagesForTheNextRun) {
  sim::Arena arena;
  for (int i = 0; i < 10000; ++i) arena.Allocate(128);
  std::size_t footprint = arena.bytes_reserved();
  EXPECT_GT(footprint, 0u);
  EXPECT_EQ(arena.live_blocks(), 10000u);

  arena.Reset();
  EXPECT_EQ(arena.live_blocks(), 0u);
  EXPECT_EQ(arena.live_bytes(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), footprint) << "Reset returned pages";

  // The same allocation pattern after Reset fits in the kept pages.
  for (int i = 0; i < 10000; ++i) arena.Allocate(128);
  EXPECT_EQ(arena.bytes_reserved(), footprint);
  arena.Reset();
}

TEST(Arena, LargeBlocksBypassThePages) {
  sim::Arena arena;
  std::size_t size = sim::Arena::kMaxSmall + 1;
  void* p = arena.Allocate(size);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5A, size);
  arena.Deallocate(p, size);
  EXPECT_EQ(arena.live_blocks(), 0u);
}

TEST(Arena, HeaderRoutingFreesToTheRightPlace) {
  sim::Arena arena;
  // Arena-backed block: the header must route the free back to the arena.
  void* p = sim::AllocateWithHeader(&arena, 48);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % sim::Arena::kAlign, 0u);
  EXPECT_EQ(arena.live_blocks(), 1u);
  sim::DeallocateWithHeader(p);
  EXPECT_EQ(arena.live_blocks(), 0u);
  // Null arena: global new, and the free must not touch any arena.
  void* q = sim::AllocateWithHeader(nullptr, 48);
  std::memset(q, 0xCD, 48);
  sim::DeallocateWithHeader(q);
  EXPECT_EQ(arena.live_blocks(), 0u);
}

#if CCSIM_ARENA_ASAN
// Freed arena blocks are manually poisoned: a stale pointer dereference
// aborts under ASan exactly as a malloc use-after-free would.
TEST(ArenaDeathTest, UseAfterDeallocateIsPoisoned) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::Arena arena;
        int* p = static_cast<int*>(arena.Allocate(sizeof(int)));
        *p = 42;
        arena.Deallocate(p, sizeof(int));
        *static_cast<volatile int*>(p) = 43;
      },
      "use-after-poison");
}

// Reset() re-poisons every page: pointers that survive a reset (a bug by
// the reset-per-run contract) fault on first touch.
TEST(ArenaDeathTest, UseAfterResetIsPoisoned) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::Arena arena;
        int* p = static_cast<int*>(arena.Allocate(sizeof(int)));
        *p = 42;
        arena.Reset();
        *static_cast<volatile int*>(p) = 43;
      },
      "use-after-poison");
}
#endif  // CCSIM_ARENA_ASAN

// A process owner whose coroutine frames come from the simulation arena
// (the ProcessArenaOwner path every service in the codebase uses).
struct DelayOwner {
  sim::Simulation* sim;
  sim::Arena* process_arena() { return sim->arena(); }
  sim::Process Sleep(double first, double second) {
    co_await sim->Delay(first);
    co_await sim->Delay(second);
  }
};

TEST(Arena, SuspendedFramesAreRegisteredAndDestroyedWithTheSimulation) {
  auto sim = std::make_unique<sim::Simulation>();
  DelayOwner owner{sim.get()};
  owner.Sleep(1.0, 1e9);
  // Ran eagerly to the first Delay: suspended, frame live in the arena.
  EXPECT_EQ(sim->suspended_processes(), 1u);
  EXPECT_GT(sim->arena()->live_blocks(), 0u);
  sim->RunUntil(10.0);
  // Woke at t=1, suspended again on the far Delay; still registered.
  EXPECT_EQ(sim->suspended_processes(), 1u);
  // Destroying the Simulation destroys the suspended frame through the
  // registry before the arena goes away. The ASan job turns a missed
  // destroy into a leak report, and a double-destroy into a crash.
  sim.reset();
}

// The pin behind the whole subsystem: where memory comes from must not
// change what the simulation computes. One contended run arena-backed and
// one with every arena in malloc-passthrough mode must agree bit-for-bit on
// every metric. (Passthrough is latched per-arena at construction, so the
// toggle cannot leak into other tests' simulations mid-life.)
TEST(ArenaDeterminism, PassthroughRunIsBitIdentical) {
  auto cfg = test::SmallConfig(config::CcAlgorithm::kTwoPhaseLocking,
                               /*think_time=*/1.0);
  engine::RunResult arena_run = engine::RunSimulation(cfg);
  sim::Arena::SetPassthroughForTest(true);
  engine::RunResult malloc_run = engine::RunSimulation(cfg);
  sim::Arena::SetPassthroughForTest(false);

  EXPECT_EQ(arena_run.commits, malloc_run.commits);
  EXPECT_EQ(arena_run.aborts, malloc_run.aborts);
  EXPECT_EQ(arena_run.events, malloc_run.events);
  EXPECT_EQ(arena_run.aborts_local_deadlock, malloc_run.aborts_local_deadlock);
  EXPECT_EQ(arena_run.aborts_global_deadlock,
            malloc_run.aborts_global_deadlock);
  EXPECT_EQ(arena_run.throughput, malloc_run.throughput);
  EXPECT_EQ(arena_run.mean_response_time, malloc_run.mean_response_time);
  EXPECT_EQ(arena_run.rt_p99, malloc_run.rt_p99);
  EXPECT_EQ(arena_run.serializable, malloc_run.serializable);
}

}  // namespace
}  // namespace ccsim
