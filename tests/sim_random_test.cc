#include "ccsim/sim/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ccsim::sim {
namespace {

TEST(RandomStream, SameSeedsReproduce) {
  RandomStream a(42, 7), b(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomStream, DifferentStreamIdsDiffer) {
  RandomStream a(42, 7), b(42, 8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RandomStream, DifferentMasterSeedsDiffer) {
  RandomStream a(1, 7), b(2, 7);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RandomStream, ExponentialMeanMatches) {
  RandomStream rng(123, 0);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(8.0);
  EXPECT_NEAR(sum / n, 8.0, 0.1);
}

TEST(RandomStream, ExponentialOfZeroMeanIsZero) {
  RandomStream rng(123, 0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Exponential(0.0), 0.0);
}

TEST(RandomStream, ExponentialIsNonNegativeAndSpread) {
  RandomStream rng(9, 1);
  double max = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Exponential(1.0);
    ASSERT_GE(v, 0.0);
    max = std::max(max, v);
  }
  EXPECT_GT(max, 4.0);  // the tail exists
}

TEST(RandomStream, UniformStaysInRange) {
  RandomStream rng(5, 2);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Uniform(0.010, 0.030);
    ASSERT_GE(v, 0.010);
    ASSERT_LT(v, 0.030);
  }
}

TEST(RandomStream, UniformMeanMatches) {
  RandomStream rng(5, 2);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(10.0, 30.0);
  EXPECT_NEAR(sum / n, 20.0, 0.1);
}

TEST(RandomStream, UniformIntCoversInclusiveRangeUniformly) {
  RandomStream rng(5, 3);
  int counts[9] = {0};  // values 4..12
  const int n = 90000;
  for (int i = 0; i < n; ++i) {
    auto v = rng.UniformInt(4, 12);
    ASSERT_GE(v, 4);
    ASSERT_LE(v, 12);
    ++counts[v - 4];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 9.0, n / 9.0 * 0.1);
}

TEST(RandomStream, UniformIntDegenerateRange) {
  RandomStream rng(5, 4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(7, 7), 7);
}

TEST(RandomStream, BernoulliFrequencyMatches) {
  RandomStream rng(11, 5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.25);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.25, 0.01);
}

TEST(RandomStream, BernoulliExtremes) {
  RandomStream rng(11, 6);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomStreamDeathTest, NegativeExponentialMeanIsFatal) {
  RandomStream rng(1, 1);
  EXPECT_DEATH(rng.Exponential(-1.0), "mean");
}

}  // namespace
}  // namespace ccsim::sim
