#include "ccsim/cc/two_phase_locking.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ccsim::cc {
namespace {

using test::FakeCcContext;
using test::MakeTxn;

class TwoPhaseLockingTest : public ::testing::Test {
 protected:
  TwoPhaseLockingTest() : mgr_(&ctx_, /*node=*/1) {}

  FakeCcContext ctx_;
  TwoPhaseLockingManager mgr_;
  PageRef p1_{0, 1};
  PageRef p2_{0, 2};
};

TEST_F(TwoPhaseLockingTest, ReadGrantsImmediatelyAndAuditsVersion) {
  auto t = MakeTxn(1, 1, {p1_});
  mgr_.BeginCohort(t, 0);
  auto c = mgr_.RequestAccess(t, 0, p1_, AccessMode::kRead);
  ASSERT_TRUE(c->done());
  EXPECT_EQ(c->TakeValue(), AccessOutcome::kGranted);
  ASSERT_EQ(ctx_.audits.size(), 1u);
  EXPECT_EQ(ctx_.audits[0].kind, FakeCcContext::AuditCall::kRead);
}

TEST_F(TwoPhaseLockingTest, WriteRequestTakesExclusiveLock) {
  auto t1 = MakeTxn(1, 1, {p1_}, 0b1);
  auto t2 = MakeTxn(2, 1, {p1_});
  mgr_.BeginCohort(t1, 0);
  mgr_.BeginCohort(t2, 0);
  mgr_.RequestAccess(t1, 0, p1_, AccessMode::kWrite);
  auto c2 = mgr_.RequestAccess(t2, 0, p1_, AccessMode::kRead);
  EXPECT_FALSE(c2->done());  // blocked behind the exclusive lock
}

TEST_F(TwoPhaseLockingTest, ReadersShare) {
  auto t1 = MakeTxn(1, 1, {p1_});
  auto t2 = MakeTxn(2, 1, {p1_});
  mgr_.BeginCohort(t1, 0);
  mgr_.BeginCohort(t2, 0);
  auto c1 = mgr_.RequestAccess(t1, 0, p1_, AccessMode::kRead);
  auto c2 = mgr_.RequestAccess(t2, 0, p1_, AccessMode::kRead);
  EXPECT_TRUE(c1->done());
  EXPECT_TRUE(c2->done());
  EXPECT_TRUE(ctx_.abort_requests.empty());
}

TEST_F(TwoPhaseLockingTest, BlockWithoutCycleRaisesNoAbort) {
  auto t1 = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto t2 = MakeTxn(2, 1, {p1_}, 0, 2.0);
  mgr_.BeginCohort(t1, 0);
  mgr_.BeginCohort(t2, 0);
  mgr_.RequestAccess(t1, 0, p1_, AccessMode::kWrite);
  mgr_.RequestAccess(t2, 0, p1_, AccessMode::kRead);
  EXPECT_TRUE(ctx_.abort_requests.empty());
}

TEST_F(TwoPhaseLockingTest, LocalDeadlockAbortsYoungest) {
  auto t1 = MakeTxn(1, 1, {p1_, p2_}, 0b11, 1.0);  // older
  auto t2 = MakeTxn(2, 1, {p1_, p2_}, 0b11, 5.0);  // younger
  mgr_.BeginCohort(t1, 0);
  mgr_.BeginCohort(t2, 0);
  mgr_.RequestAccess(t1, 0, p1_, AccessMode::kWrite);
  mgr_.RequestAccess(t2, 0, p2_, AccessMode::kWrite);
  mgr_.RequestAccess(t2, 0, p1_, AccessMode::kWrite);  // t2 blocks on t1
  EXPECT_TRUE(ctx_.abort_requests.empty());
  mgr_.RequestAccess(t1, 0, p2_, AccessMode::kWrite);  // closes the cycle
  ASSERT_EQ(ctx_.abort_requests.size(), 1u);
  EXPECT_EQ(ctx_.abort_requests[0].txn, 2u);  // youngest startup time
  EXPECT_EQ(ctx_.abort_requests[0].reason, txn::AbortReason::kLocalDeadlock);
  EXPECT_EQ(ctx_.abort_requests[0].from_node, 1);
}

TEST_F(TwoPhaseLockingTest, AbortCohortReleasesAndWakesVictim) {
  auto t1 = MakeTxn(1, 1, {p1_, p2_}, 0b11, 1.0);
  auto t2 = MakeTxn(2, 1, {p1_, p2_}, 0b11, 5.0);
  mgr_.BeginCohort(t1, 0);
  mgr_.BeginCohort(t2, 0);
  mgr_.RequestAccess(t1, 0, p1_, AccessMode::kWrite);
  mgr_.RequestAccess(t2, 0, p2_, AccessMode::kWrite);
  auto blocked2 = mgr_.RequestAccess(t2, 0, p1_, AccessMode::kWrite);
  auto blocked1 = mgr_.RequestAccess(t1, 0, p2_, AccessMode::kWrite);
  // Abort the victim (t2): its waiter wakes kAborted, its lock on p2
  // releases, and t1's blocked request is granted.
  mgr_.AbortCohort(t2, 0);
  ASSERT_TRUE(blocked2->done());
  EXPECT_EQ(blocked2->TakeValue(), AccessOutcome::kAborted);
  ASSERT_TRUE(blocked1->done());
  EXPECT_EQ(blocked1->TakeValue(), AccessOutcome::kGranted);
}

TEST_F(TwoPhaseLockingTest, CommitInstallsWritesAndReleases) {
  auto t1 = MakeTxn(1, 1, {p1_, p2_}, 0b10);  // p2 is the write
  mgr_.BeginCohort(t1, 0);
  mgr_.RequestAccess(t1, 0, p1_, AccessMode::kRead);
  mgr_.RequestAccess(t1, 0, p2_, AccessMode::kWrite);
  ctx_.audits.clear();
  mgr_.CommitCohort(t1, 0);
  ASSERT_EQ(ctx_.audits.size(), 1u);
  EXPECT_EQ(ctx_.audits[0].kind, FakeCcContext::AuditCall::kInstall);
  EXPECT_EQ(ctx_.audits[0].page, p2_);
  EXPECT_EQ(mgr_.lock_table().num_locked_pages(), 0u);
}

TEST_F(TwoPhaseLockingTest, DelayedReadGrantIsAudited) {
  auto t1 = MakeTxn(1, 1, {p1_}, 0b1);
  auto t2 = MakeTxn(2, 1, {p1_});
  mgr_.BeginCohort(t1, 0);
  mgr_.BeginCohort(t2, 0);
  mgr_.RequestAccess(t1, 0, p1_, AccessMode::kWrite);
  auto c2 = mgr_.RequestAccess(t2, 0, p1_, AccessMode::kRead);
  ctx_.audits.clear();
  mgr_.CommitCohort(t1, 0);  // install + release -> grants t2's read
  ASSERT_TRUE(c2->done());
  // Audit order: t1's install precedes t2's read of the new version.
  ASSERT_EQ(ctx_.audits.size(), 2u);
  EXPECT_EQ(ctx_.audits[0].kind, FakeCcContext::AuditCall::kInstall);
  EXPECT_EQ(ctx_.audits[1].kind, FakeCcContext::AuditCall::kRead);
  EXPECT_EQ(ctx_.audits[1].txn, 2u);
}

TEST_F(TwoPhaseLockingTest, FindTxnTracksRegistry) {
  auto t1 = MakeTxn(1, 1, {p1_});
  EXPECT_EQ(mgr_.FindTxn(1), nullptr);
  mgr_.BeginCohort(t1, 0);
  EXPECT_EQ(mgr_.FindTxn(1), t1);
  mgr_.AbortCohort(t1, 0);
  EXPECT_EQ(mgr_.FindTxn(1), nullptr);
}

TEST_F(TwoPhaseLockingTest, WaitsForEdgesExposed) {
  auto t1 = MakeTxn(1, 1, {p1_}, 0b1);
  auto t2 = MakeTxn(2, 1, {p1_});
  mgr_.BeginCohort(t1, 0);
  mgr_.BeginCohort(t2, 0);
  mgr_.RequestAccess(t1, 0, p1_, AccessMode::kWrite);
  mgr_.RequestAccess(t2, 0, p1_, AccessMode::kRead);
  auto edges = mgr_.LocalWaitsForEdges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].waiter, 2u);
  EXPECT_EQ(edges[0].holder, 1u);
}

TEST_F(TwoPhaseLockingTest, BlockingTimesExposed) {
  EXPECT_NE(mgr_.blocking_times(), nullptr);
  EXPECT_EQ(mgr_.blocking_times()->count(), 0u);
}

TEST_F(TwoPhaseLockingTest, UpgradeDeadlockDetected) {
  // Two shared holders both upgrading: a classic conversion deadlock.
  auto t1 = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto t2 = MakeTxn(2, 1, {p1_}, 0b1, 2.0);
  mgr_.BeginCohort(t1, 0);
  mgr_.BeginCohort(t2, 0);
  mgr_.RequestAccess(t1, 0, p1_, AccessMode::kRead);
  mgr_.RequestAccess(t2, 0, p1_, AccessMode::kRead);
  mgr_.RequestAccess(t1, 0, p1_, AccessMode::kWrite);  // upgrade, blocks
  EXPECT_TRUE(ctx_.abort_requests.empty());
  mgr_.RequestAccess(t2, 0, p1_, AccessMode::kWrite);  // upgrade, deadlock
  ASSERT_EQ(ctx_.abort_requests.size(), 1u);
  EXPECT_EQ(ctx_.abort_requests[0].txn, 2u);
}

}  // namespace
}  // namespace ccsim::cc
