#include "ccsim/sim/event_fn.h"

#include <gtest/gtest.h>

#include <coroutine>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ccsim/sim/simulation.h"

namespace ccsim::sim {
namespace {

TEST(EventFn, DefaultIsEmpty) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(EventFn, InvokesSmallLambdaStoredInline) {
  int calls = 0;
  int* p = &calls;
  EventFn fn([p] { ++*p; });
  static_assert(EventFn::StoredInline<decltype([p] { ++*p; })>());
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(EventFn, SimulatorHotHandlersFitInline) {
  // The shapes scheduled on the hot path: disk service completion (this +
  // shared_ptr + double), CPU message/PS events (this), 2PL timeout (this +
  // id + page + shared_ptr).
  struct FakePage {
    int file;
    int page;
  };
  void* self = nullptr;
  auto sp = std::make_shared<int>(0);
  double t = 0.0;
  std::uint64_t id = 0;
  FakePage pg{0, 0};
  auto disk_shape = [self, sp, t] { (void)self, (void)t; };
  auto timeout_shape = [self, id, pg, sp] { (void)self, (void)id, (void)pg; };
  static_assert(EventFn::StoredInline<decltype(disk_shape)>());
  static_assert(EventFn::StoredInline<decltype(timeout_shape)>());
  EXPECT_TRUE(EventFn::StoredInline<decltype([self] { (void)self; })>());
}

TEST(EventFn, LargeCapturesFallBackToHeapAndStillWork) {
  struct Big {
    double values[16];
  };
  Big big{};
  big.values[7] = 42.0;
  double got = 0.0;
  auto large = [big, &got] { got = big.values[7]; };
  static_assert(!EventFn::StoredInline<decltype(large)>());
  EventFn fn(large);
  fn();
  EXPECT_DOUBLE_EQ(got, 42.0);
}

TEST(EventFn, MoveTransfersTheCallable) {
  int calls = 0;
  int* p = &calls;
  EventFn a([p] { ++*p; });
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EventFn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(calls, 2);
}

class InstanceCounter {
 public:
  explicit InstanceCounter(int* count) : count_(count) { ++*count_; }
  InstanceCounter(const InstanceCounter& o) : count_(o.count_) { ++*count_; }
  InstanceCounter(InstanceCounter&& o) noexcept : count_(o.count_) {
    ++*count_;
  }
  ~InstanceCounter() { --*count_; }
  void operator()() const {}

 private:
  int* count_;
};

TEST(EventFn, DestroysInlineCallableExactlyOnce) {
  int instances = 0;
  {
    EventFn fn{InstanceCounter(&instances)};
    EXPECT_EQ(instances, 1);
    EventFn moved(std::move(fn));
    EXPECT_EQ(instances, 1);
    moved();
  }
  EXPECT_EQ(instances, 0);
}

TEST(EventFn, DestroysHeapCallableExactlyOnce) {
  struct PadTo64 {
    InstanceCounter counter;
    double pad[7];
    void operator()() const { counter(); }
  };
  static_assert(!EventFn::StoredInline<PadTo64>());
  int instances = 0;
  {
    EventFn fn{PadTo64{InstanceCounter(&instances), {}}};
    EXPECT_EQ(instances, 1);
    EventFn moved(std::move(fn));
    EXPECT_EQ(instances, 1);
    moved();
  }
  EXPECT_EQ(instances, 0);
}

TEST(EventFn, MoveAssignmentReleasesThePreviousCallable) {
  int a_live = 0, b_live = 0;
  EventFn fn{InstanceCounter(&a_live)};
  fn = EventFn{InstanceCounter(&b_live)};
  EXPECT_EQ(a_live, 0);
  EXPECT_EQ(b_live, 1);
  fn.Reset();
  EXPECT_EQ(b_live, 0);
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(EventFn, SharedPtrCaptureKeepsOwnershipAcrossMoves) {
  auto sp = std::make_shared<int>(5);
  std::weak_ptr<int> wp = sp;
  {
    EventFn fn([sp] { (void)*sp; });
    sp.reset();
    EXPECT_FALSE(wp.expired());
    EventFn moved(std::move(fn));
    moved();
    EXPECT_FALSE(wp.expired());
  }
  EXPECT_TRUE(wp.expired());
}

// --- SuspendedSet ------------------------------------------------------

struct TinyTask {
  struct promise_type {
    TinyTask get_return_object() {
      return TinyTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
  std::coroutine_handle<promise_type> handle;
};

TinyTask Nop() { co_return; }

class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 16;
  }

 private:
  std::uint64_t state_;
};

TEST(SuspendedSet, InsertEraseStressMatchesReferenceSet) {
  // Hammer the open-addressing table (with its backward-shift deletion)
  // against std::unordered_set over a pool of real coroutine frames.
  std::vector<TinyTask> pool;
  pool.reserve(300);
  for (int i = 0; i < 300; ++i) pool.push_back(Nop());

  SuspendedSet set;
  std::unordered_set<void*> ref;
  Lcg rng(7);
  for (int step = 0; step < 30000; ++step) {
    auto& task = pool[rng.Next() % pool.size()];
    void* addr = task.handle.address();
    if (ref.count(addr) != 0) {
      EXPECT_TRUE(set.Erase(addr));
      ref.erase(addr);
    } else if (rng.Next() % 3 == 0) {
      EXPECT_FALSE(set.Erase(addr));
    } else {
      set.Insert(task.handle);
      ref.insert(addr);
    }
    ASSERT_EQ(set.size(), ref.size());
  }
  // Drain and verify the survivors are exactly the reference contents.
  std::unordered_set<void*> drained;
  for (auto h : set.TakeAll()) drained.insert(h.address());
  EXPECT_EQ(drained, ref);
  EXPECT_EQ(set.size(), 0u);
  for (auto& task : pool) task.handle.destroy();
}

TEST(SuspendedSet, EraseOnEmptyIsFalse) {
  SuspendedSet set;
  int dummy;
  EXPECT_FALSE(set.Erase(&dummy));
  EXPECT_TRUE(set.TakeAll().empty());
}

}  // namespace
}  // namespace ccsim::sim
