#include "ccsim/cc/optimistic.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ccsim::cc {
namespace {

using test::FakeCcContext;
using test::MakeTxn;

class OptimisticTest : public ::testing::Test {
 protected:
  OptimisticTest() : mgr_(&ctx_, /*node=*/1) {}

  void Certify(const txn::TxnPtr& t, double at) {
    t->set_commit_ts(Timestamp{at, t->id()});
  }

  /// Prepares and unwraps the (immediately available) vote.
  Vote PrepareVote(const txn::TxnPtr& t, int cohort) {
    auto c = mgr_.Prepare(t, cohort);
    EXPECT_TRUE(c->done());
    return c->TakeValue();
  }

  FakeCcContext ctx_;
  OptimisticManager mgr_;
  PageRef p1_{0, 1};
  PageRef p2_{0, 2};
};

TEST_F(OptimisticTest, ExecutionNeverBlocksOrAborts) {
  auto t1 = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto t2 = MakeTxn(2, 1, {p1_}, 0b1, 1.0);
  for (auto& t : {t1, t2}) {
    auto c = mgr_.RequestAccess(t, 0, p1_, AccessMode::kWrite);
    ASSERT_TRUE(c->done());
    EXPECT_EQ(c->TakeValue(), AccessOutcome::kGranted);
  }
}

TEST_F(OptimisticTest, LoneTransactionCertifiesAndCommits) {
  auto t = MakeTxn(1, 1, {p1_, p2_}, 0b10, 1.0);
  mgr_.RequestAccess(t, 0, p1_, AccessMode::kRead);
  mgr_.RequestAccess(t, 0, p2_, AccessMode::kWrite);
  Certify(t, 2.0);
  EXPECT_EQ(PrepareVote(t, 0), Vote::kYes);
  ctx_.audits.clear();
  mgr_.CommitCohort(t, 0);
  ASSERT_EQ(ctx_.audits.size(), 1u);
  EXPECT_EQ(ctx_.audits[0].kind, FakeCcContext::AuditCall::kInstall);
  EXPECT_EQ(ctx_.audits[0].page, p2_);
}

TEST_F(OptimisticTest, StaleReadFailsCertification) {
  auto reader = MakeTxn(1, 1, {p1_}, 0, 1.0);
  auto writer = MakeTxn(2, 1, {p1_}, 0b1, 1.5);
  mgr_.RequestAccess(reader, 0, p1_, AccessMode::kRead);  // version 0
  mgr_.RequestAccess(writer, 0, p1_, AccessMode::kWrite);
  Certify(writer, 2.0);
  ASSERT_EQ(PrepareVote(writer, 0), Vote::kYes);
  mgr_.CommitCohort(writer, 0);  // installs a new version
  Certify(reader, 3.0);
  EXPECT_EQ(PrepareVote(reader, 0), Vote::kNo);  // version changed
  EXPECT_EQ(mgr_.certification_failures(), 1u);
}

TEST_F(OptimisticTest, ReadFailsAgainstInDoubtWrite) {
  auto reader = MakeTxn(1, 1, {p1_}, 0, 1.0);
  auto writer = MakeTxn(2, 1, {p1_}, 0b1, 1.5);
  mgr_.RequestAccess(reader, 0, p1_, AccessMode::kRead);
  mgr_.RequestAccess(writer, 0, p1_, AccessMode::kWrite);
  Certify(writer, 2.0);
  ASSERT_EQ(PrepareVote(writer, 0), Vote::kYes);  // in doubt, not committed
  Certify(reader, 3.0);
  EXPECT_EQ(PrepareVote(reader, 0), Vote::kNo);
}

TEST_F(OptimisticTest, WriteFailsAgainstLaterCommittedRead) {
  auto writer = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto reader = MakeTxn(2, 1, {p1_}, 0, 1.5);
  mgr_.RequestAccess(writer, 0, p1_, AccessMode::kWrite);
  mgr_.RequestAccess(reader, 0, p1_, AccessMode::kRead);
  Certify(reader, 5.0);
  ASSERT_EQ(PrepareVote(reader, 0), Vote::kYes);
  mgr_.CommitCohort(reader, 0);  // rts = 5
  Certify(writer, 3.0);          // earlier than the committed read
  EXPECT_EQ(PrepareVote(writer, 0), Vote::kNo);
}

TEST_F(OptimisticTest, WriteFailsAgainstLaterInDoubtRead) {
  auto writer = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto reader = MakeTxn(2, 1, {p1_}, 0, 1.5);
  mgr_.RequestAccess(writer, 0, p1_, AccessMode::kWrite);
  mgr_.RequestAccess(reader, 0, p1_, AccessMode::kRead);
  Certify(reader, 5.0);
  ASSERT_EQ(PrepareVote(reader, 0), Vote::kYes);  // in doubt
  Certify(writer, 3.0);
  EXPECT_EQ(PrepareVote(writer, 0), Vote::kNo);
}

TEST_F(OptimisticTest, WriteSucceedsAgainstEarlierCommittedRead) {
  auto reader = MakeTxn(1, 1, {p1_}, 0, 1.0);
  auto writer = MakeTxn(2, 1, {p1_}, 0b1, 1.5);
  mgr_.RequestAccess(reader, 0, p1_, AccessMode::kRead);
  mgr_.RequestAccess(writer, 0, p1_, AccessMode::kWrite);
  Certify(reader, 2.0);
  ASSERT_EQ(PrepareVote(reader, 0), Vote::kYes);
  mgr_.CommitCohort(reader, 0);  // rts = 2
  Certify(writer, 3.0);          // after the read: fine
  EXPECT_EQ(PrepareVote(writer, 0), Vote::kYes);
}

TEST_F(OptimisticTest, AbortClearsInDoubtEntries) {
  auto writer = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto reader = MakeTxn(2, 1, {p1_}, 0, 1.5);
  mgr_.RequestAccess(writer, 0, p1_, AccessMode::kWrite);
  Certify(writer, 2.0);
  ASSERT_EQ(PrepareVote(writer, 0), Vote::kYes);
  mgr_.AbortCohort(writer, 0);  // certification entries cleared
  mgr_.RequestAccess(reader, 0, p1_, AccessMode::kRead);
  Certify(reader, 3.0);
  EXPECT_EQ(PrepareVote(reader, 0), Vote::kYes);
}

TEST_F(OptimisticTest, AbortBeforeCertificationIsClean) {
  auto t = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  mgr_.RequestAccess(t, 0, p1_, AccessMode::kWrite);
  mgr_.AbortCohort(t, 0);  // never certified
  auto t2 = MakeTxn(2, 1, {p1_}, 0, 1.5);
  mgr_.RequestAccess(t2, 0, p1_, AccessMode::kRead);
  Certify(t2, 2.0);
  EXPECT_EQ(PrepareVote(t2, 0), Vote::kYes);
}

TEST_F(OptimisticTest, CommitBumpsReadTimestampOnly) {
  auto reader = MakeTxn(1, 1, {p1_}, 0, 1.0);
  mgr_.RequestAccess(reader, 0, p1_, AccessMode::kRead);
  Certify(reader, 4.0);
  ASSERT_EQ(PrepareVote(reader, 0), Vote::kYes);
  ctx_.audits.clear();
  mgr_.CommitCohort(reader, 0);
  EXPECT_TRUE(ctx_.audits.empty());  // no install for a pure read
  // A writer behind the committed read must fail.
  auto writer = MakeTxn(2, 1, {p1_}, 0b1, 1.5);
  mgr_.RequestAccess(writer, 0, p1_, AccessMode::kWrite);
  Certify(writer, 3.0);
  EXPECT_EQ(PrepareVote(writer, 0), Vote::kNo);
}

TEST_F(OptimisticTest, ObsoleteWriteSkipsInstall) {
  auto w_new = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto w_old = MakeTxn(2, 1, {p1_}, 0b1, 1.5);
  mgr_.RequestAccess(w_new, 0, p1_, AccessMode::kWrite);
  mgr_.RequestAccess(w_old, 0, p1_, AccessMode::kWrite);
  Certify(w_new, 9.0);
  ASSERT_EQ(PrepareVote(w_new, 0), Vote::kYes);
  mgr_.CommitCohort(w_new, 0);  // wts = 9
  Certify(w_old, 3.0);
  ASSERT_EQ(PrepareVote(w_old, 0), Vote::kYes);  // blind write, rts = 0
  ctx_.audits.clear();
  mgr_.CommitCohort(w_old, 0);
  ASSERT_EQ(ctx_.audits.size(), 1u);
  EXPECT_EQ(ctx_.audits[0].kind, FakeCcContext::AuditCall::kSkip);
}

TEST_F(OptimisticTest, ReadsAuditAtAccessTime) {
  auto t = MakeTxn(1, 1, {p1_}, 0, 1.0);
  mgr_.RequestAccess(t, 0, p1_, AccessMode::kRead);
  ASSERT_EQ(ctx_.audits.size(), 1u);
  EXPECT_EQ(ctx_.audits[0].kind, FakeCcContext::AuditCall::kRead);
}

TEST_F(OptimisticTest, DisjointPagesBothCertify) {
  auto t1 = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto t2 = MakeTxn(2, 1, {p2_}, 0b1, 1.0);
  mgr_.RequestAccess(t1, 0, p1_, AccessMode::kWrite);
  mgr_.RequestAccess(t2, 0, p2_, AccessMode::kWrite);
  Certify(t1, 2.0);
  Certify(t2, 2.5);
  EXPECT_EQ(PrepareVote(t1, 0), Vote::kYes);
  EXPECT_EQ(PrepareVote(t2, 0), Vote::kYes);
}

}  // namespace
}  // namespace ccsim::cc
