#include "ccsim/cc/wound_wait.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ccsim::cc {
namespace {

using test::FakeCcContext;
using test::MakeTxn;

class WoundWaitTest : public ::testing::Test {
 protected:
  WoundWaitTest() : mgr_(&ctx_, /*node=*/2) {}

  FakeCcContext ctx_;
  WoundWaitManager mgr_;
  PageRef p1_{0, 1};
  PageRef p2_{0, 2};
};

TEST_F(WoundWaitTest, OlderRequesterWoundsYoungerHolder) {
  auto old_txn = MakeTxn(1, 2, {p1_}, 0b1, 1.0);
  auto young_txn = MakeTxn(2, 2, {p1_}, 0b1, 5.0);
  mgr_.BeginCohort(young_txn, 0);
  mgr_.BeginCohort(old_txn, 0);
  mgr_.RequestAccess(young_txn, 0, p1_, AccessMode::kWrite);
  auto c = mgr_.RequestAccess(old_txn, 0, p1_, AccessMode::kWrite);
  EXPECT_FALSE(c->done());  // the older transaction waits...
  ASSERT_EQ(ctx_.abort_requests.size(), 1u);  // ...and wounds the younger
  EXPECT_EQ(ctx_.abort_requests[0].txn, 2u);
  EXPECT_EQ(ctx_.abort_requests[0].reason, txn::AbortReason::kWound);
  EXPECT_EQ(ctx_.abort_requests[0].from_node, 2);
  EXPECT_EQ(mgr_.wounds_issued(), 1u);
}

TEST_F(WoundWaitTest, YoungerRequesterJustWaits) {
  auto old_txn = MakeTxn(1, 2, {p1_}, 0b1, 1.0);
  auto young_txn = MakeTxn(2, 2, {p1_}, 0b1, 5.0);
  mgr_.BeginCohort(old_txn, 0);
  mgr_.BeginCohort(young_txn, 0);
  mgr_.RequestAccess(old_txn, 0, p1_, AccessMode::kWrite);
  auto c = mgr_.RequestAccess(young_txn, 0, p1_, AccessMode::kWrite);
  EXPECT_FALSE(c->done());
  EXPECT_TRUE(ctx_.abort_requests.empty());
  EXPECT_EQ(mgr_.wounds_issued(), 0u);
}

TEST_F(WoundWaitTest, WoundIgnoredWhenVictimIsCommitting) {
  auto old_txn = MakeTxn(1, 2, {p1_}, 0b1, 1.0);
  auto young_txn = MakeTxn(2, 2, {p1_}, 0b1, 5.0);
  mgr_.BeginCohort(young_txn, 0);
  mgr_.BeginCohort(old_txn, 0);
  mgr_.RequestAccess(young_txn, 0, p1_, AccessMode::kWrite);
  young_txn->set_phase(txn::TxnPhase::kPreparing);
  young_txn->set_phase(txn::TxnPhase::kCommitting);  // second commit phase
  auto c = mgr_.RequestAccess(old_txn, 0, p1_, AccessMode::kWrite);
  EXPECT_FALSE(c->done());                   // still waits
  EXPECT_TRUE(ctx_.abort_requests.empty());  // but the wound is not issued
}

TEST_F(WoundWaitTest, WoundedVictimReleasesAndRequesterProceeds) {
  auto old_txn = MakeTxn(1, 2, {p1_}, 0b1, 1.0);
  auto young_txn = MakeTxn(2, 2, {p1_}, 0b1, 5.0);
  mgr_.BeginCohort(young_txn, 0);
  mgr_.BeginCohort(old_txn, 0);
  mgr_.RequestAccess(young_txn, 0, p1_, AccessMode::kWrite);
  auto c = mgr_.RequestAccess(old_txn, 0, p1_, AccessMode::kWrite);
  // The abort (via the coordinator) eventually reaches this node:
  mgr_.AbortCohort(young_txn, 0);
  ASSERT_TRUE(c->done());
  EXPECT_EQ(c->TakeValue(), AccessOutcome::kGranted);
}

TEST_F(WoundWaitTest, WoundsEveryYoungerBlocker) {
  auto s1 = MakeTxn(2, 2, {p1_}, 0, 5.0);
  auto s2 = MakeTxn(3, 2, {p1_}, 0, 6.0);
  auto old_txn = MakeTxn(1, 2, {p1_}, 0b1, 1.0);
  mgr_.BeginCohort(s1, 0);
  mgr_.BeginCohort(s2, 0);
  mgr_.BeginCohort(old_txn, 0);
  mgr_.RequestAccess(s1, 0, p1_, AccessMode::kRead);
  mgr_.RequestAccess(s2, 0, p1_, AccessMode::kRead);
  mgr_.RequestAccess(old_txn, 0, p1_, AccessMode::kWrite);
  EXPECT_EQ(ctx_.abort_requests.size(), 2u);
  EXPECT_EQ(mgr_.wounds_issued(), 2u);
}

TEST_F(WoundWaitTest, MixedAgesWoundOnlyYounger) {
  auto older_holder = MakeTxn(1, 2, {p1_}, 0, 1.0);
  auto younger_holder = MakeTxn(3, 2, {p1_}, 0, 9.0);
  auto requester = MakeTxn(2, 2, {p1_}, 0b1, 5.0);
  mgr_.BeginCohort(older_holder, 0);
  mgr_.BeginCohort(younger_holder, 0);
  mgr_.BeginCohort(requester, 0);
  mgr_.RequestAccess(older_holder, 0, p1_, AccessMode::kRead);
  mgr_.RequestAccess(younger_holder, 0, p1_, AccessMode::kRead);
  mgr_.RequestAccess(requester, 0, p1_, AccessMode::kWrite);
  ASSERT_EQ(ctx_.abort_requests.size(), 1u);
  EXPECT_EQ(ctx_.abort_requests[0].txn, 3u);
}

TEST_F(WoundWaitTest, ReadersStillShare) {
  auto t1 = MakeTxn(1, 2, {p1_}, 0, 1.0);
  auto t2 = MakeTxn(2, 2, {p1_}, 0, 2.0);
  mgr_.BeginCohort(t1, 0);
  mgr_.BeginCohort(t2, 0);
  auto c1 = mgr_.RequestAccess(t1, 0, p1_, AccessMode::kRead);
  auto c2 = mgr_.RequestAccess(t2, 0, p1_, AccessMode::kRead);
  EXPECT_TRUE(c1->done());
  EXPECT_TRUE(c2->done());
  EXPECT_EQ(mgr_.wounds_issued(), 0u);
}

TEST_F(WoundWaitTest, InitialTimestampRetainedAcrossRestart) {
  // A restarted transaction keeps its initial startup timestamp, so it
  // eventually becomes the oldest and cannot be wounded into starvation.
  auto t = MakeTxn(7, 2, {p1_}, 0, 3.0);
  Timestamp initial = t->initial_ts();
  t->BeginAttempt(50.0);  // restart much later
  EXPECT_EQ(t->initial_ts(), initial);
  EXPECT_GT(t->attempt_ts(), initial);
}

}  // namespace
}  // namespace ccsim::cc
