// Randomized stress tests: drive core mechanisms with random operation
// sequences and check invariants against simple oracles.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "ccsim/cc/lock_table.h"
#include "ccsim/cc/waits_for_graph.h"
#include "ccsim/resource/cpu.h"
#include "ccsim/sim/process.h"
#include "ccsim/sim/random.h"
#include "test_util.h"

namespace ccsim {
namespace {

using cc::AccessOutcome;
using cc::LockMode;
using cc::LockTable;
using cc::WaitEdge;
using cc::WaitsForGraph;
using test::MakeTxn;

// --- Lock table fuzz ---------------------------------------------------------

// Random request/release sequences. Invariants:
//  * a granted exclusive lock never coexists with another grant on the page,
//  * after every transaction releases, no waiter is left behind,
//  * every request eventually completes (granted or aborted).
class LockTableFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LockTableFuzz, RandomScheduleMaintainsInvariants) {
  sim::Simulation sim;
  LockTable table(&sim);
  sim::RandomStream rng(GetParam(), 0);

  constexpr int kTxns = 12;
  constexpr int kPages = 6;
  constexpr int kOps = 400;

  std::vector<txn::TxnPtr> txns;
  for (int i = 0; i < kTxns; ++i) {
    txns.push_back(MakeTxn(static_cast<TxnId>(i + 1), 1,
                           {PageRef{0, 0}}, 0, static_cast<double>(i)));
  }
  // Track every outstanding completion and which (txn, page) pairs were
  // requested, to avoid illegal duplicate requests.
  struct Pending {
    std::shared_ptr<sim::Completion<AccessOutcome>> completion;
  };
  std::vector<Pending> all;
  std::set<std::pair<TxnId, int>> requested;
  std::set<TxnId> alive(  // txns that have not been released yet
      {});
  for (auto& t : txns) alive.insert(t->id());

  for (int op = 0; op < kOps; ++op) {
    int kind = static_cast<int>(rng.UniformInt(0, 3));
    auto& t = txns[static_cast<std::size_t>(
        rng.UniformInt(0, kTxns - 1))];
    if (kind < 3) {
      if (!alive.count(t->id())) continue;
      int page = static_cast<int>(rng.UniformInt(0, kPages - 1));
      auto key = std::make_pair(t->id(), page);
      bool is_upgrade_ok = !requested.count(key);
      if (!is_upgrade_ok) continue;
      requested.insert(key);
      LockMode mode =
          rng.Bernoulli(0.3) ? LockMode::kExclusive : LockMode::kShared;
      auto result = table.Request(t, PageRef{0, page}, mode);
      all.push_back(Pending{result.completion});
    } else {
      // Release everything the txn holds/waits for; it leaves the game.
      if (!alive.count(t->id())) continue;
      alive.erase(t->id());
      table.ReleaseAll(t->id(), /*abort_waiters=*/true);
      // Forget its requests so invariant bookkeeping stays consistent.
      for (auto it = requested.begin(); it != requested.end();) {
        if (it->first == t->id()) it = requested.erase(it);
        else ++it;
      }
    }
  }
  // Finish: release everyone still alive.
  for (auto& t : txns) {
    table.ReleaseAll(t->id(), true);
  }
  EXPECT_EQ(table.num_locked_pages(), 0u);
  EXPECT_EQ(table.num_waiting_requests(), 0u);
  // No lost wakeups: every request completed one way or the other.
  for (auto& p : all) {
    EXPECT_TRUE(p.completion->done());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockTableFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// --- Waits-for graph vs brute-force oracle -----------------------------------

// Brute force: does any cycle exist? (DFS from every node with a recursion
// stack, straightforward and obviously correct for small graphs.)
bool BruteForceHasCycle(
    const std::map<TxnId, std::vector<TxnId>>& adj) {
  std::set<TxnId> nodes;
  for (auto& [a, outs] : adj) {
    nodes.insert(a);
    for (TxnId b : outs) nodes.insert(b);
  }
  std::map<TxnId, int> color;  // 0 white, 1 gray, 2 black
  std::function<bool(TxnId)> dfs = [&](TxnId u) {
    color[u] = 1;
    auto it = adj.find(u);
    if (it != adj.end()) {
      for (TxnId v : it->second) {
        if (color[v] == 1) return true;
        if (color[v] == 0 && dfs(v)) return true;
      }
    }
    color[u] = 2;
    return false;
  };
  for (TxnId n : nodes) {
    if (color[n] == 0 && dfs(n)) return true;
  }
  return false;
}

class WfgFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WfgFuzz, ResolveAllDeadlocksAgreesWithOracleAndTerminates) {
  sim::RandomStream rng(GetParam(), 1);
  for (int round = 0; round < 40; ++round) {
    int n = static_cast<int>(rng.UniformInt(2, 12));
    int edges = static_cast<int>(rng.UniformInt(0, 3 * n));
    WaitsForGraph g;
    std::map<TxnId, std::vector<TxnId>> adj;
    for (int e = 0; e < edges; ++e) {
      TxnId a = static_cast<TxnId>(rng.UniformInt(1, n));
      TxnId b = static_cast<TxnId>(rng.UniformInt(1, n));
      if (a == b) continue;
      g.AddEdge(WaitEdge{a, Timestamp{static_cast<double>(a), a}, b,
                         Timestamp{static_cast<double>(b), b}});
      adj[a].push_back(b);
    }
    bool oracle = BruteForceHasCycle(adj);
    auto victims = g.ResolveAllDeadlocks();
    EXPECT_EQ(!victims.empty(), oracle) << "seed " << GetParam() << " round "
                                        << round;
    // After resolution the remaining graph must be acyclic: removing the
    // victims from the oracle graph kills every cycle.
    for (TxnId v : victims) {
      adj.erase(v);
      for (auto& [a, outs] : adj) {
        outs.erase(std::remove(outs.begin(), outs.end(), v), outs.end());
      }
    }
    EXPECT_FALSE(BruteForceHasCycle(adj));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WfgFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// --- Processor-sharing CPU conservation --------------------------------------

sim::Process Track(sim::Simulation& sim,
                   std::shared_ptr<sim::Completion<sim::Unit>> c,
                   double* when) {
  co_await sim::Await(std::move(c));
  *when = sim.Now();
}

class CpuFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpuFuzz, WorkIsConservedUnderRandomArrivals) {
  sim::Simulation sim;
  resource::Cpu cpu(&sim, 1.0);
  sim::RandomStream rng(GetParam(), 2);

  const int kJobs = 60;
  double total_demand = 0.0;
  std::vector<double> done(kJobs, -1);
  std::vector<double> demand(kJobs);
  double t = 0;
  for (int i = 0; i < kJobs; ++i) {
    t += rng.Exponential(0.05);
    double d = 0.001 + rng.Exponential(0.08);
    bool message = rng.Bernoulli(0.2);
    demand[static_cast<std::size_t>(i)] = d;
    total_demand += d;
    sim.At(t, [&, i, d, message] {
      Track(sim,
            cpu.ExecuteSeconds(d, message ? resource::CpuJobClass::kMessage
                                          : resource::CpuJobClass::kUser),
            &done[static_cast<std::size_t>(i)]);
    });
  }
  sim.Run();
  // Every job completed.
  double last = 0;
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_GE(done[static_cast<std::size_t>(i)], 0.0) << "job " << i;
    last = std::max(last, done[static_cast<std::size_t>(i)]);
  }
  // Work conservation: the CPU is never idle while work exists, so the last
  // completion is at most (first arrival + total demand) and at least
  // total demand spread over the busy period.
  EXPECT_LE(last, t + total_demand + 1e-9);
  // Utilization x elapsed == total demand (the busy integral).
  EXPECT_NEAR(cpu.Utilization() * sim.Now(), total_demand, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuFuzz,
                         ::testing::Values(3u, 14u, 159u, 2653u));

}  // namespace
}  // namespace ccsim
