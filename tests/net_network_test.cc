#include "ccsim/net/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "ccsim/sim/simulation.h"

namespace ccsim::net {
namespace {

using resource::Cpu;
using sim::Simulation;

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : host_(&sim_, 10.0),
        node1_(&sim_, 1.0),
        node2_(&sim_, 1.0),
        net_(&sim_, {&host_, &node1_, &node2_}, /*inst_per_msg=*/1000.0) {}

  Simulation sim_;
  Cpu host_;
  Cpu node1_;
  Cpu node2_;
  Network net_;
};

TEST_F(NetworkTest, DeliveryChargesBothEnds) {
  double delivered_at = -1;
  net_.Send(0, 1, MsgTag::kLoadCohort, [&] { delivered_at = sim_.Now(); });
  sim_.Run();
  // 1000 instructions at 10 MIPS (0.1 ms) + 1000 at 1 MIPS (1 ms).
  EXPECT_NEAR(delivered_at, 0.0001 + 0.001, 1e-12);
}

TEST_F(NetworkTest, ReverseDirectionCostsDiffer) {
  double delivered_at = -1;
  net_.Send(1, 0, MsgTag::kVote, [&] { delivered_at = sim_.Now(); });
  sim_.Run();
  EXPECT_NEAR(delivered_at, 0.001 + 0.0001, 1e-12);
}

TEST_F(NetworkTest, SameNodePairDeliversFifo) {
  std::vector<int> order;
  net_.Send(0, 1, MsgTag::kLoadCohort, [&] { order.push_back(1); });
  net_.Send(0, 1, MsgTag::kLoadCohort, [&] { order.push_back(2); });
  net_.Send(0, 1, MsgTag::kLoadCohort, [&] { order.push_back(3); });
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(NetworkTest, SenderCpuSerializesSends) {
  // Two messages from node1 (1 MIPS): sends serialize on the sender CPU,
  // so the second departs at 2 ms and arrives at 2.1 ms.
  std::vector<double> arrivals;
  net_.Send(1, 0, MsgTag::kVote, [&] { arrivals.push_back(sim_.Now()); });
  net_.Send(1, 0, MsgTag::kVote, [&] { arrivals.push_back(sim_.Now()); });
  sim_.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 0.0011, 1e-12);
  EXPECT_NEAR(arrivals[1], 0.0021, 1e-12);
}

TEST_F(NetworkTest, LocalDeliveryIsFreeButDeferred) {
  bool delivered = false;
  net_.Send(1, 1, MsgTag::kAck, [&] { delivered = true; });
  EXPECT_FALSE(delivered);  // goes through the calendar
  sim_.Run();
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(sim_.Now(), 0.0);
  EXPECT_EQ(net_.messages_sent(), 0u);  // not a network message
}

TEST_F(NetworkTest, CountsByTag) {
  net_.Send(0, 1, MsgTag::kLoadCohort, [] {});
  net_.Send(0, 1, MsgTag::kLoadCohort, [] {});
  net_.Send(1, 0, MsgTag::kVote, [] {});
  sim_.Run();
  EXPECT_EQ(net_.messages_sent(), 3u);
  EXPECT_EQ(net_.messages_sent(MsgTag::kLoadCohort), 2u);
  EXPECT_EQ(net_.messages_sent(MsgTag::kVote), 1u);
  EXPECT_EQ(net_.messages_sent(MsgTag::kAck), 0u);
}

TEST_F(NetworkTest, ResetStatsZeroesCounters) {
  net_.Send(0, 1, MsgTag::kPrepare, [] {});
  sim_.Run();
  net_.ResetStats();
  EXPECT_EQ(net_.messages_sent(), 0u);
  EXPECT_EQ(net_.messages_sent(MsgTag::kPrepare), 0u);
}

TEST_F(NetworkTest, ZeroCostMessagesStillDeliver) {
  Simulation sim;
  Cpu a(&sim, 1.0), b(&sim, 1.0);
  Network net(&sim, {&a, &b}, 0.0);
  bool delivered = false;
  net.Send(0, 1, MsgTag::kCommit, [&] { delivered = true; });
  sim.Run();
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
  EXPECT_EQ(net.messages_sent(), 1u);
}

TEST_F(NetworkTest, MessageCpuHasPriorityOverUserWork) {
  // Saturate node1 with user work; a message through it should still take
  // ~1 ms of node1 CPU (plus 0.1 ms at the host), not wait behind the user
  // job.
  node1_.ExecuteSeconds(10.0, resource::CpuJobClass::kUser);
  double delivered_at = -1;
  net_.Send(0, 1, MsgTag::kPrepare, [&] { delivered_at = sim_.Now(); });
  sim_.Run();
  EXPECT_NEAR(delivered_at, 0.0011, 1e-9);
}

TEST_F(NetworkTest, ToStringCoversAllTags) {
  for (int i = 0; i < static_cast<int>(MsgTag::kCount); ++i) {
    EXPECT_STRNE(ToString(static_cast<MsgTag>(i)), "?");
  }
}

}  // namespace
}  // namespace ccsim::net
