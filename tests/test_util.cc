#include "test_util.h"

namespace ccsim::test {

txn::TxnPtr MakeTxn(TxnId id, NodeId node, const std::vector<PageRef>& pages,
                    unsigned write_mask, double start_time) {
  workload::TransactionSpec spec;
  spec.terminal = 0;
  spec.class_index = 0;
  spec.relation = 0;
  spec.exec_pattern = config::ExecPattern::kParallel;
  workload::CohortSpec cohort;
  cohort.node = node;
  for (std::size_t i = 0; i < pages.size(); ++i) {
    cohort.accesses.push_back(
        workload::PageAccess{pages[i], (write_mask & (1u << i)) != 0});
  }
  spec.cohorts.push_back(std::move(cohort));
  auto txn = std::make_shared<txn::Transaction>(id, std::move(spec),
                                                start_time, nullptr);
  txn->BeginAttempt(start_time);
  return txn;
}

config::SystemConfig SmallConfig(config::CcAlgorithm alg, double think_time,
                                 int num_proc_nodes) {
  config::SystemConfig cfg = config::PaperBaseConfig();
  cfg.algorithm = alg;
  cfg.machine.num_proc_nodes = num_proc_nodes;
  cfg.placement.degree = num_proc_nodes;
  cfg.database.num_relations = 4;
  cfg.database.partitions_per_relation = num_proc_nodes;
  cfg.database.pages_per_file = 60;
  cfg.workload.num_terminals = 32;
  cfg.workload.think_time_sec = think_time;
  cfg.workload.classes[0].pages_per_partition_avg = 4;
  cfg.run.warmup_sec = 20;
  cfg.run.measure_sec = 120;
  cfg.run.enable_audit = true;
  return cfg;
}

}  // namespace ccsim::test
