#include "ccsim/cc/two_phase_locking_deferred.h"

#include <gtest/gtest.h>

#include "ccsim/engine/run.h"
#include "test_util.h"

namespace ccsim::cc {
namespace {

using test::FakeCcContext;
using test::MakeTxn;

class DeferredTest : public ::testing::Test {
 protected:
  DeferredTest() : mgr_(&ctx_, /*node=*/1) {}

  FakeCcContext ctx_;
  TwoPhaseLockingDeferredManager mgr_;
  PageRef p1_{0, 1};
  PageRef p2_{0, 2};
};

TEST_F(DeferredTest, WriteAccessTakesOnlySharedLockDuringExecution) {
  auto t1 = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto t2 = MakeTxn(2, 1, {p1_}, 0b1, 2.0);
  mgr_.BeginCohort(t1, 0);
  mgr_.BeginCohort(t2, 0);
  auto c1 = mgr_.RequestAccess(t1, 0, p1_, AccessMode::kWrite);
  auto c2 = mgr_.RequestAccess(t2, 0, p1_, AccessMode::kWrite);
  // Under stock 2PL the second writer would block; under 2PL-DW both
  // proceed with shared locks.
  EXPECT_TRUE(c1->done());
  EXPECT_TRUE(c2->done());
}

TEST_F(DeferredTest, PrepareUpgradesAndVotesYesWhenUncontended) {
  auto t = MakeTxn(1, 1, {p1_, p2_}, 0b10, 1.0);
  mgr_.BeginCohort(t, 0);
  mgr_.RequestAccess(t, 0, p1_, AccessMode::kRead);
  mgr_.RequestAccess(t, 0, p2_, AccessMode::kWrite);
  auto vote = mgr_.Prepare(t, 0);
  ASSERT_TRUE(vote->done());
  EXPECT_EQ(vote->TakeValue(), Vote::kYes);
  // After prepare the write lock is exclusive: a reader now blocks.
  auto t2 = MakeTxn(2, 1, {p2_}, 0, 2.0);
  mgr_.BeginCohort(t2, 0);
  auto c = mgr_.RequestAccess(t2, 0, p2_, AccessMode::kRead);
  EXPECT_FALSE(c->done());
  // ... until commit.
  mgr_.CommitCohort(t, 0);
  EXPECT_TRUE(c->done());
}

TEST_F(DeferredTest, PrepareBlocksBehindConcurrentReader) {
  auto writer = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto reader = MakeTxn(2, 1, {p1_}, 0, 2.0);
  mgr_.BeginCohort(writer, 0);
  mgr_.BeginCohort(reader, 0);
  mgr_.RequestAccess(writer, 0, p1_, AccessMode::kWrite);  // shared for now
  mgr_.RequestAccess(reader, 0, p1_, AccessMode::kRead);
  auto vote = mgr_.Prepare(writer, 0);
  EXPECT_FALSE(vote->done());  // upgrade waits for the reader
  EXPECT_EQ(mgr_.upgrade_waits(), 1u);
  mgr_.CommitCohort(reader, 0);  // reader releases
  ctx_.Pump();                   // the prepare process resumes
  ASSERT_TRUE(vote->done());
  EXPECT_EQ(vote->TakeValue(), Vote::kYes);
}

TEST_F(DeferredTest, ConcurrentUpgradesDeadlockAndVictimChosen) {
  auto t1 = MakeTxn(1, 1, {p1_}, 0b1, 1.0);
  auto t2 = MakeTxn(2, 1, {p1_}, 0b1, 2.0);
  mgr_.BeginCohort(t1, 0);
  mgr_.BeginCohort(t2, 0);
  mgr_.RequestAccess(t1, 0, p1_, AccessMode::kWrite);
  mgr_.RequestAccess(t2, 0, p1_, AccessMode::kWrite);
  auto v1 = mgr_.Prepare(t1, 0);
  EXPECT_FALSE(v1->done());  // waits for t2's shared lock
  auto v2 = mgr_.Prepare(t2, 0);
  EXPECT_FALSE(v2->done());  // upgrade-upgrade deadlock
  ASSERT_EQ(ctx_.abort_requests.size(), 1u);
  EXPECT_EQ(ctx_.abort_requests[0].txn, 2u);  // youngest dies
  // The abort reaches this node: t2's pending upgrade cancels, t1 proceeds.
  mgr_.AbortCohort(t2, 0);
  ctx_.Pump();
  ASSERT_TRUE(v1->done());
  EXPECT_EQ(v1->TakeValue(), Vote::kYes);
  ASSERT_TRUE(v2->done());
  EXPECT_EQ(v2->TakeValue(), Vote::kNo);
}

TEST_F(DeferredTest, PureReaderPreparesImmediately) {
  auto t = MakeTxn(1, 1, {p1_}, 0, 1.0);
  mgr_.BeginCohort(t, 0);
  mgr_.RequestAccess(t, 0, p1_, AccessMode::kRead);
  auto vote = mgr_.Prepare(t, 0);
  ASSERT_TRUE(vote->done());
  EXPECT_EQ(vote->TakeValue(), Vote::kYes);
}

TEST_F(DeferredTest, EndToEndRunIsSerializable) {
  auto cfg = test::SmallConfig(config::CcAlgorithm::kTwoPhaseLockingDeferred,
                               0.5, 4);
  auto r = engine::RunSimulation(cfg);
  EXPECT_GT(r.commits, 100u);
  EXPECT_TRUE(r.serializable) << r.audit_note;
}

TEST_F(DeferredTest, EndToEndCommitsUnderContention) {
  auto cfg =
      test::SmallConfig(config::CcAlgorithm::kTwoPhaseLockingDeferred, 0.0, 4);
  auto r = engine::RunSimulation(cfg);
  EXPECT_GT(r.commits, 100u);
  EXPECT_GT(r.aborts, 0u);  // upgrade deadlocks do happen
  EXPECT_TRUE(r.serializable) << r.audit_note;
}

}  // namespace
}  // namespace ccsim::cc
