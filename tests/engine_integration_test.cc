#include <gtest/gtest.h>

#include "ccsim/engine/run.h"
#include "ccsim/engine/system.h"
#include "test_util.h"

namespace ccsim::engine {
namespace {

using test::SmallConfig;

TEST(EngineIntegration, DeterministicForFixedSeed) {
  auto cfg = SmallConfig(config::CcAlgorithm::kTwoPhaseLocking, 2.0);
  RunResult a = RunSimulation(cfg);
  RunResult b = RunSimulation(cfg);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.mean_response_time, b.mean_response_time);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

TEST(EngineIntegration, DifferentSeedsGiveDifferentButSimilarRuns) {
  auto cfg = SmallConfig(config::CcAlgorithm::kTwoPhaseLocking, 2.0);
  RunResult a = RunSimulation(cfg);
  cfg.run.seed = 1234;
  RunResult b = RunSimulation(cfg);
  EXPECT_NE(a.events, b.events);
  ASSERT_GT(a.throughput, 0);
  EXPECT_NEAR(b.throughput / a.throughput, 1.0, 0.25);
}

TEST(EngineIntegration, ConservationWithoutWarmup) {
  auto cfg = SmallConfig(config::CcAlgorithm::kNoDc, 2.0);
  cfg.run.warmup_sec = 0;
  RunResult r = RunSimulation(cfg);
  // Every submitted transaction either committed or is still in flight.
  EXPECT_EQ(r.transactions_submitted, r.commits + r.live_at_end);
}

TEST(EngineIntegration, ThroughputEqualsCommitsOverWindow) {
  auto cfg = SmallConfig(config::CcAlgorithm::kNoDc, 2.0);
  RunResult r = RunSimulation(cfg);
  EXPECT_NEAR(r.throughput,
              static_cast<double>(r.commits) / cfg.run.measure_sec, 1e-9);
}

TEST(EngineIntegration, NoDcNeverAborts) {
  RunResult r = RunSimulation(SmallConfig(config::CcAlgorithm::kNoDc, 0.5));
  EXPECT_EQ(r.aborts, 0u);
  EXPECT_EQ(r.abort_ratio, 0.0);
}

TEST(EngineIntegration, UtilizationsAreProbabilities) {
  for (auto alg : config::kAllAlgorithms) {
    RunResult r = RunSimulation(SmallConfig(alg, 1.0));
    EXPECT_GE(r.proc_cpu_util, 0.0);
    EXPECT_LE(r.proc_cpu_util, 1.0);
    EXPECT_GE(r.disk_util, 0.0);
    EXPECT_LE(r.disk_util, 1.0);
    EXPECT_GE(r.host_cpu_util, 0.0);
    EXPECT_LE(r.host_cpu_util, 1.0);
  }
}

TEST(EngineIntegration, LightLoadResponseTimeMatchesServiceDemand) {
  // One busy terminal at a time (huge think time): response time is close
  // to the no-queueing service demand of one transaction.
  auto cfg = SmallConfig(config::CcAlgorithm::kNoDc, 60.0);
  cfg.workload.num_terminals = 4;  // one per relation group
  cfg.run.measure_sec = 600;
  RunResult r = RunSimulation(cfg);
  ASSERT_GT(r.commits, 10u);
  // Per cohort: ~4 accesses (3 reads at ~28 ms incl. CPU + 1 write at 8 ms)
  // over 2 disks, run in parallel across 4 nodes; plus protocol overhead.
  EXPECT_GT(r.mean_response_time, 0.05);
  EXPECT_LT(r.mean_response_time, 0.6);
}

TEST(EngineIntegration, SaturationDrivesDisksNearFull) {
  auto cfg = SmallConfig(config::CcAlgorithm::kNoDc, 0.0);
  RunResult r = RunSimulation(cfg);
  EXPECT_GT(r.disk_util, 0.8);
}

TEST(EngineIntegration, MoreLoadMoreThroughputUntilSaturation) {
  auto busy = RunSimulation(SmallConfig(config::CcAlgorithm::kNoDc, 1.0));
  auto idle = RunSimulation(SmallConfig(config::CcAlgorithm::kNoDc, 30.0));
  EXPECT_GT(busy.throughput, idle.throughput);
}

TEST(EngineIntegration, BlockingTimeReportedOnlyForBlockingAlgorithms) {
  auto locking =
      RunSimulation(SmallConfig(config::CcAlgorithm::kTwoPhaseLocking, 0.5));
  auto optimistic =
      RunSimulation(SmallConfig(config::CcAlgorithm::kOptimistic, 0.5));
  EXPECT_GT(locking.blocked_waits, 0u);
  EXPECT_GT(locking.mean_blocking_time, 0.0);
  EXPECT_EQ(optimistic.blocked_waits, 0u);
}

TEST(EngineIntegration, ContendedRunsAbortUnderRealAlgorithms) {
  for (auto alg :
       {config::CcAlgorithm::kWoundWait, config::CcAlgorithm::kOptimistic,
        config::CcAlgorithm::kBasicTimestamp}) {
    RunResult r = RunSimulation(SmallConfig(alg, 0.0));
    EXPECT_GT(r.aborts, 0u) << config::ToString(alg);
  }
}

TEST(EngineIntegration, MessagesPerCommitAtLeastSixPerCohortSet) {
  auto cfg = SmallConfig(config::CcAlgorithm::kNoDc, 5.0, 4);
  RunResult r = RunSimulation(cfg);
  // 4 cohorts x 6 messages minimum.
  EXPECT_GE(r.messages_per_commit, 24.0);
  EXPECT_LT(r.messages_per_commit, 40.0);
}

TEST(EngineIntegration, SingleNodeMachineWorks) {
  RunResult r =
      RunSimulation(SmallConfig(config::CcAlgorithm::kTwoPhaseLocking, 2.0, 1));
  EXPECT_GT(r.commits, 0u);
  EXPECT_TRUE(r.serializable) << r.audit_note;
}

TEST(EngineIntegration, AuditDisabledSkipsChecking) {
  auto cfg = SmallConfig(config::CcAlgorithm::kTwoPhaseLocking, 2.0);
  cfg.run.enable_audit = false;
  RunResult r = RunSimulation(cfg);
  EXPECT_FALSE(r.audited);
}

TEST(EngineIntegration, SnoopRunsOnlyUnder2pl) {
  engine::System with_snoop(
      SmallConfig(config::CcAlgorithm::kTwoPhaseLocking, 1.0));
  EXPECT_NE(with_snoop.snoop(), nullptr);
  engine::System without(SmallConfig(config::CcAlgorithm::kWoundWait, 1.0));
  EXPECT_EQ(without.snoop(), nullptr);
}

TEST(EngineIntegration, SnoopDetectionRoundsHappen) {
  auto cfg = SmallConfig(config::CcAlgorithm::kTwoPhaseLocking, 1.0);
  engine::System sys(cfg);
  sys.Start();
  sys.sim().RunUntil(30.0);
  // Detection interval is 1 s: roughly 30 rounds.
  ASSERT_NE(sys.snoop(), nullptr);
  EXPECT_GE(sys.snoop()->detection_rounds(), 25u);
  EXPECT_GT(sys.network().messages_sent(net::MsgTag::kSnoopQuery), 0u);
}

TEST(EngineIntegration, RestartDelayTracksMeanResponseTime) {
  auto cfg = SmallConfig(config::CcAlgorithm::kNoDc, 5.0);
  engine::System sys(cfg);
  EXPECT_DOUBLE_EQ(sys.RestartDelay(), cfg.run.initial_rt_estimate_sec);
  sys.Start();
  sys.sim().RunUntil(50.0);
  EXPECT_GT(sys.RestartDelay(), 0.0);
  EXPECT_LT(sys.RestartDelay(), 5.0);  // mean RT, not think time
}

TEST(EngineIntegration, HostCpuBusierWithMoreMessageTraffic) {
  auto cheap = SmallConfig(config::CcAlgorithm::kNoDc, 1.0);
  cheap.costs.inst_per_msg = 0;
  auto costly = SmallConfig(config::CcAlgorithm::kNoDc, 1.0);
  costly.costs.inst_per_msg = 4000;
  RunResult a = RunSimulation(cheap);
  RunResult b = RunSimulation(costly);
  EXPECT_GT(b.host_cpu_util, a.host_cpu_util);
}

TEST(EngineIntegration, FakeRestartsRunAndStaySerializable) {
  auto cfg = SmallConfig(config::CcAlgorithm::kWoundWait, 0.0);
  cfg.workload.fake_restarts = true;
  RunResult r = RunSimulation(cfg);
  EXPECT_GT(r.commits, 0u);
  EXPECT_GT(r.aborts, 0u);  // contended enough to restart
  EXPECT_TRUE(r.serializable) << r.audit_note;
}

TEST(EngineIntegration, FakeRestartsChangeTheTrajectory) {
  auto cfg = SmallConfig(config::CcAlgorithm::kWoundWait, 0.0);
  RunResult normal = RunSimulation(cfg);
  cfg.workload.fake_restarts = true;
  RunResult fake = RunSimulation(cfg);
  // Different restart semantics -> different event streams.
  EXPECT_NE(normal.events, fake.events);
}

TEST(EngineIntegration, ResponsePercentilesAreOrdered) {
  RunResult r = RunSimulation(SmallConfig(config::CcAlgorithm::kNoDc, 2.0));
  EXPECT_GT(r.rt_p50, 0.0);
  EXPECT_LE(r.rt_p50, r.rt_p90);
  EXPECT_LE(r.rt_p90, r.rt_p99);
  EXPECT_LE(r.rt_p99, r.max_response_time + 0.1);  // histogram bin slack
  EXPECT_NEAR(r.rt_p50, r.mean_response_time, r.mean_response_time);
}

TEST(EngineIntegrationDeathTest, InvalidConfigIsFatal) {
  auto cfg = SmallConfig(config::CcAlgorithm::kNoDc, 1.0);
  cfg.placement.degree = 3;
  EXPECT_DEATH(RunSimulation(cfg), "degree");
}

}  // namespace
}  // namespace ccsim::engine
