#include "ccsim/engine/serializability.h"

#include <gtest/gtest.h>

namespace ccsim::engine {
namespace {

txn::AuditRecord Read(PageRef p, std::uint64_t version) {
  return txn::AuditRecord{p, version, false, true};
}
txn::AuditRecord Write(PageRef p, std::uint64_t version) {
  return txn::AuditRecord{p, version, true, true};
}
txn::AuditRecord SkippedWrite(PageRef p) {
  return txn::AuditRecord{p, 0, true, false};
}

const PageRef kP{0, 1};
const PageRef kQ{0, 2};

TEST(Serializability, EmptyLogIsSerializable) {
  EXPECT_TRUE(CheckSerializability({}).serializable);
}

TEST(Serializability, SingleTransactionIsSerializable) {
  std::vector<CommittedTxn> log{{1, 1.0, {Read(kP, 0), Write(kQ, 1)}}};
  EXPECT_TRUE(CheckSerializability(log).serializable);
}

TEST(Serializability, ReadersOfSuccessiveVersionsAreOrdered) {
  std::vector<CommittedTxn> log{
      {1, 1.0, {Write(kP, 1)}},
      {2, 2.0, {Read(kP, 1)}},
      {3, 3.0, {Write(kP, 2)}},
      {4, 4.0, {Read(kP, 2)}},
  };
  EXPECT_TRUE(CheckSerializability(log).serializable);
}

TEST(Serializability, LostUpdateCycleDetected) {
  // T1 reads version 0 of P and writes Q; T2 reads version 0 of Q and
  // writes P. Each must precede the other: a classic write-skew cycle.
  std::vector<CommittedTxn> log{
      {1, 1.0, {Read(kP, 0), Write(kQ, 1)}},
      {2, 2.0, {Read(kQ, 0), Write(kP, 1)}},
  };
  auto result = CheckSerializability(log);
  EXPECT_FALSE(result.serializable);
  EXPECT_EQ(result.cycle, (std::vector<TxnId>{1, 2}));
  EXPECT_NE(result.Describe().find("NOT serializable"), std::string::npos);
}

TEST(Serializability, RwWrCycleDetected) {
  // T1 reads v0 of P (so T1 precedes T2 who wrote v1) but also reads T2's
  // write on Q (so T2 precedes T1).
  std::vector<CommittedTxn> log{
      {2, 2.0, {Write(kP, 1), Write(kQ, 1)}},
      {1, 1.0, {Read(kP, 0), Read(kQ, 1)}},
  };
  EXPECT_FALSE(CheckSerializability(log).serializable);
}

TEST(Serializability, WwOrderIsConsistent) {
  std::vector<CommittedTxn> log{
      {1, 1.0, {Write(kP, 1), Write(kQ, 1)}},
      {2, 2.0, {Write(kP, 2), Write(kQ, 2)}},
  };
  EXPECT_TRUE(CheckSerializability(log).serializable);
}

TEST(Serializability, WwCycleAcrossPagesDetected) {
  // P: T1 then T2; Q: T2 then T1.
  std::vector<CommittedTxn> log{
      {1, 1.0, {Write(kP, 1), Write(kQ, 2)}},
      {2, 2.0, {Write(kP, 2), Write(kQ, 1)}},
  };
  EXPECT_FALSE(CheckSerializability(log).serializable);
}

TEST(Serializability, ThomasSkippedWritesAddNoConstraints) {
  // T1's write of P was skipped (Thomas rule): it must not create ww edges.
  std::vector<CommittedTxn> log{
      {2, 2.0, {Write(kP, 1), Write(kQ, 1)}},
      {1, 1.0, {SkippedWrite(kP), Read(kQ, 1)}},
  };
  EXPECT_TRUE(CheckSerializability(log).serializable);
}

TEST(Serializability, ReadOfInitialVersionHasNoWriterEdge) {
  std::vector<CommittedTxn> log{
      {1, 1.0, {Read(kP, 0)}},
      {2, 2.0, {Read(kP, 0)}},
  };
  EXPECT_TRUE(CheckSerializability(log).serializable);
}

TEST(Serializability, ThreeWayCycleDetected) {
  // T1 -> T2 (wr on P), T2 -> T3 (wr on Q), T3 -> T1 (rw on R: T3 read v0,
  // T1 wrote v1).
  const PageRef kR{0, 3};
  std::vector<CommittedTxn> log{
      {1, 1.0, {Write(kP, 1), Write(kR, 1)}},
      {2, 2.0, {Read(kP, 1), Write(kQ, 1)}},
      {3, 3.0, {Read(kQ, 1), Read(kR, 0)}},
  };
  EXPECT_FALSE(CheckSerializability(log).serializable);
}

TEST(Serializability, UncommittedWritersIgnored) {
  // A read-from a txn that never committed (not in the log) adds nothing.
  std::vector<CommittedTxn> log{
      {5, 1.0, {Read(kP, 3)}},  // version 3's writer is not in the log
  };
  EXPECT_TRUE(CheckSerializability(log).serializable);
}

TEST(Serializability, DescribeSerializable) {
  EXPECT_EQ(CheckSerializability({}).Describe(), "serializable");
}

}  // namespace
}  // namespace ccsim::engine
