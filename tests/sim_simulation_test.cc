#include "ccsim/sim/simulation.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ccsim/sim/completion.h"
#include "ccsim/sim/process.h"

namespace ccsim::sim {
namespace {

TEST(Simulation, ClockAdvancesToEventTimes) {
  Simulation sim;
  std::vector<double> times;
  sim.At(1.5, [&] { times.push_back(sim.Now()); });
  sim.At(0.5, [&] { times.push_back(sim.Now()); });
  sim.Run();
  EXPECT_EQ(times, (std::vector<double>{0.5, 1.5}));
  EXPECT_DOUBLE_EQ(sim.Now(), 1.5);
}

TEST(Simulation, AfterSchedulesRelativeToNow) {
  Simulation sim;
  double fired_at = -1;
  sim.At(2.0, [&] { sim.After(3.0, [&] { fired_at = sim.Now(); }); });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulation, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.At(1.0, [&] { ++fired; });
  sim.At(10.0, [&] { ++fired; });
  sim.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulation, RunUntilIncludesEventsAtBoundary) {
  Simulation sim;
  int fired = 0;
  sim.At(5.0, [&] { ++fired; });
  sim.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, StopHaltsTheLoop) {
  Simulation sim;
  int fired = 0;
  sim.At(1.0, [&] {
    ++fired;
    sim.Stop();
  });
  sim.At(2.0, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, CountsFiredEvents) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.At(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_fired(), 7u);
}

TEST(SimulationDeathTest, RejectsSchedulingInThePast) {
  Simulation sim;
  sim.At(5.0, [] {});
  sim.Run();
  EXPECT_DEATH(sim.At(1.0, [] {}), "past");
}

// --- Coroutine process tests -----------------------------------------------

Process DelayTwice(Simulation& sim, std::vector<double>& trace) {
  trace.push_back(sim.Now());
  co_await sim.Delay(1.0);
  trace.push_back(sim.Now());
  co_await sim.Delay(2.5);
  trace.push_back(sim.Now());
}

TEST(Process, DelaysAdvanceSimulatedTime) {
  Simulation sim;
  std::vector<double> trace;
  DelayTwice(sim, trace);
  sim.Run();
  EXPECT_EQ(trace, (std::vector<double>{0.0, 1.0, 3.5}));
}

Process ZeroDelay(Simulation& sim, std::vector<int>& order, int tag) {
  co_await sim.Delay(0.0);
  order.push_back(tag);
}

TEST(Process, ZeroDelayYieldsThroughCalendarInFifoOrder) {
  Simulation sim;
  std::vector<int> order;
  ZeroDelay(sim, order, 1);
  ZeroDelay(sim, order, 2);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
}

Process AwaitValue(Simulation& sim, std::shared_ptr<Completion<int>> c,
                   std::vector<int>& got) {
  (void)sim;
  int v = co_await Await(c);
  got.push_back(v);
}

TEST(Completion, DeliversValueToWaiter) {
  Simulation sim;
  auto c = MakeCompletion<int>(&sim);
  std::vector<int> got;
  AwaitValue(sim, c, got);
  EXPECT_TRUE(got.empty());  // suspended until completion
  sim.At(2.0, [&] { c->Complete(42); });
  sim.Run();
  EXPECT_EQ(got, (std::vector<int>{42}));
}

TEST(Completion, CompleteBeforeAwaitDoesNotSuspend) {
  Simulation sim;
  auto c = MakeCompletion<int>(&sim);
  c->Complete(7);
  std::vector<int> got;
  AwaitValue(sim, c, got);
  EXPECT_EQ(got, (std::vector<int>{7}));  // resumed synchronously
}

TEST(Completion, ResumptionGoesThroughCalendarAtCurrentTime) {
  Simulation sim;
  auto c = MakeCompletion<int>(&sim);
  std::vector<int> got;
  AwaitValue(sim, c, got);
  std::vector<int> order;
  sim.At(1.0, [&] {
    c->Complete(1);
    order.push_back(0);  // runs before the waiter resumes
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(got, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(sim.Now(), 1.0);
}

TEST(CompletionDeathTest, DoubleCompleteIsFatal) {
  Simulation sim;
  auto c = MakeCompletion<int>(&sim);
  c->Complete(1);
  EXPECT_DEATH(c->Complete(2), "twice");
}

TEST(Latch, CompletesAtZero) {
  Simulation sim;
  Latch latch(&sim, 3);
  EXPECT_FALSE(latch.completion()->done());
  latch.CountDown();
  latch.CountDown();
  EXPECT_FALSE(latch.completion()->done());
  latch.CountDown();
  EXPECT_TRUE(latch.completion()->done());
}

TEST(Latch, ZeroCountCompletesImmediately) {
  Simulation sim;
  Latch latch(&sim, 0);
  EXPECT_TRUE(latch.completion()->done());
}

// Sets *flag when destroyed; placed as a process local, it records when the
// coroutine frame itself is destroyed.
struct DtorFlag {
  bool* flag;
  ~DtorFlag() { *flag = true; }
};

Process SleepForever(Simulation* sim, bool* frame_destroyed) {
  DtorFlag guard{frame_destroyed};
  for (;;) co_await sim->Delay(1.0);
}

Process AwaitForever(Simulation* sim, std::shared_ptr<Completion<int>> c,
                     bool* frame_destroyed) {
  DtorFlag guard{frame_destroyed};
  (void)sim;
  (void)co_await Await(std::move(c));
}

Process DelayNTimes(Simulation* sim, int n, bool* frame_destroyed) {
  DtorFlag guard{frame_destroyed};
  for (int i = 0; i < n; ++i) co_await sim->Delay(1.0);
}

TEST(ProcessTeardown, DelaySuspendedFrameDestroyedWithSimulation) {
  bool destroyed = false;
  {
    Simulation sim;
    SleepForever(&sim, &destroyed);
    sim.RunUntil(10.0);
    EXPECT_FALSE(destroyed);
    EXPECT_EQ(sim.suspended_processes(), 1u);
  }
  EXPECT_TRUE(destroyed);
}

TEST(ProcessTeardown, CompletionSuspendedFrameDestroyedWithSimulation) {
  bool destroyed = false;
  {
    Simulation sim;
    auto c = MakeCompletion<int>(&sim);
    AwaitForever(&sim, c, &destroyed);
    sim.Run();  // nothing ever fulfills c
    EXPECT_FALSE(destroyed);
    EXPECT_EQ(sim.suspended_processes(), 1u);
  }
  EXPECT_TRUE(destroyed);
}

TEST(ProcessTeardown, RegistryEmptiesWhenProcessFinishesNormally) {
  Simulation sim;
  bool destroyed = false;
  DelayNTimes(&sim, 3, &destroyed);
  EXPECT_EQ(sim.suspended_processes(), 1u);
  sim.Run();
  EXPECT_TRUE(destroyed);  // frame auto-destroyed when the body returned
  EXPECT_EQ(sim.suspended_processes(), 0u);
}

}  // namespace
}  // namespace ccsim::sim
