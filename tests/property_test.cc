// Property-style sweeps: system-level invariants that must hold for every
// concurrency control algorithm across load levels and partitioning degrees.

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <tuple>

#include "ccsim/engine/run.h"
#include "test_util.h"

namespace ccsim::engine {
namespace {

using Param = std::tuple<config::CcAlgorithm, double /*think*/, int /*degree*/>;

std::string Sanitize(std::string name) {
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  auto [alg, think, degree] = info.param;
  std::string name = config::ToString(alg);
  name += "_think" + std::to_string(static_cast<int>(think * 10));
  name += "_deg" + std::to_string(degree);
  return Sanitize(name);
}

class AlgorithmInvariants : public ::testing::TestWithParam<Param> {
 protected:
  config::SystemConfig Config() const {
    auto [alg, think, degree] = GetParam();
    config::SystemConfig cfg = test::SmallConfig(alg, think, 4);
    cfg.placement.degree = degree;
    return cfg;
  }
};

TEST_P(AlgorithmInvariants, HistoryIsSerializable) {
  auto cfg = Config();
  if (cfg.algorithm == config::CcAlgorithm::kNoDc) {
    GTEST_SKIP() << "NO_DC is the contention-free ideal, not serializable";
  }
  RunResult r = RunSimulation(cfg);
  ASSERT_GT(r.commits, 50u);
  EXPECT_TRUE(r.serializable) << r.audit_note;
}

TEST_P(AlgorithmInvariants, SystemMakesProgressAndMetricsAreSane) {
  RunResult r = RunSimulation(Config());
  EXPECT_GT(r.commits, 0u);
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_GT(r.mean_response_time, 0.0);
  EXPECT_GE(r.max_response_time, r.mean_response_time);
  EXPECT_GE(r.abort_ratio, 0.0);
  EXPECT_LE(r.live_at_end,
            static_cast<std::uint64_t>(Config().workload.num_terminals));
  EXPECT_GE(r.proc_cpu_util, 0.0);
  EXPECT_LE(r.proc_cpu_util, 1.0);
  EXPECT_GE(r.disk_util, 0.0);
  EXPECT_LE(r.disk_util, 1.0);
  EXPECT_GE(r.rt_ci_half_width, 0.0);
}

TEST_P(AlgorithmInvariants, NoDcDominatesThroughput) {
  auto cfg = Config();
  if (cfg.algorithm == config::CcAlgorithm::kNoDc) GTEST_SKIP();
  RunResult real = RunSimulation(cfg);
  cfg.algorithm = config::CcAlgorithm::kNoDc;
  RunResult ideal = RunSimulation(cfg);
  // The contention-free ideal is an upper bound (up to simulation noise).
  EXPECT_GE(ideal.throughput * 1.07, real.throughput)
      << "ideal " << ideal.throughput << " vs real " << real.throughput;
}

TEST_P(AlgorithmInvariants, DeterministicReplay) {
  auto cfg = Config();
  RunResult a = RunSimulation(cfg);
  RunResult b = RunSimulation(cfg);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.commits, b.commits);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgorithmInvariants,
    ::testing::Combine(
        ::testing::Values(config::CcAlgorithm::kNoDc,
                          config::CcAlgorithm::kTwoPhaseLocking,
                          config::CcAlgorithm::kWoundWait,
                          config::CcAlgorithm::kBasicTimestamp,
                          config::CcAlgorithm::kOptimistic,
                          config::CcAlgorithm::kTwoPhaseLockingDeferred,
                          config::CcAlgorithm::kWaitDie,
                          config::CcAlgorithm::kTwoPhaseLockingTimeout),
        ::testing::Values(0.0, 2.0),
        ::testing::Values(1, 4)),
    ParamName);

// Sequential-vs-parallel property: both execution patterns commit and stay
// serializable for every algorithm.
class ExecPatternInvariants
    : public ::testing::TestWithParam<config::CcAlgorithm> {};

TEST_P(ExecPatternInvariants, SequentialPatternAlsoWorks) {
  auto cfg = test::SmallConfig(GetParam(), 2.0, 4);
  cfg.workload.classes[0].exec_pattern = config::ExecPattern::kSequential;
  RunResult r = RunSimulation(cfg);
  EXPECT_GT(r.commits, 0u);
  if (GetParam() != config::CcAlgorithm::kNoDc) {
    EXPECT_TRUE(r.serializable) << r.audit_note;
  }
}

TEST_P(ExecPatternInvariants, ParallelBeatsSequentialResponseTimeLightLoad) {
  auto base = test::SmallConfig(GetParam(), 30.0, 4);
  base.workload.num_terminals = 8;
  auto seq = base;
  seq.workload.classes[0].exec_pattern = config::ExecPattern::kSequential;
  RunResult par_r = RunSimulation(base);
  RunResult seq_r = RunSimulation(seq);
  EXPECT_LT(par_r.mean_response_time, seq_r.mean_response_time);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ExecPatternInvariants,
    ::testing::Values(config::CcAlgorithm::kNoDc,
                      config::CcAlgorithm::kTwoPhaseLocking,
                      config::CcAlgorithm::kWoundWait,
                      config::CcAlgorithm::kBasicTimestamp,
                      config::CcAlgorithm::kOptimistic,
                      config::CcAlgorithm::kTwoPhaseLockingDeferred),
    [](const ::testing::TestParamInfo<config::CcAlgorithm>& info) {
      return Sanitize(config::ToString(info.param));
    });

// Seed robustness: key invariants hold across several seeds.
class SeedInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedInvariants, SerializableUnderContentionForAllAlgorithms) {
  for (auto alg :
       {config::CcAlgorithm::kTwoPhaseLocking, config::CcAlgorithm::kWoundWait,
        config::CcAlgorithm::kBasicTimestamp, config::CcAlgorithm::kOptimistic,
        config::CcAlgorithm::kTwoPhaseLockingDeferred,
        config::CcAlgorithm::kWaitDie,
        config::CcAlgorithm::kTwoPhaseLockingTimeout}) {
    auto cfg = test::SmallConfig(alg, 0.0, 4);
    cfg.run.seed = GetParam();
    cfg.run.warmup_sec = 10;
    cfg.run.measure_sec = 60;
    RunResult r = RunSimulation(cfg);
    EXPECT_TRUE(r.serializable)
        << config::ToString(alg) << " seed " << GetParam() << ": "
        << r.audit_note;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedInvariants,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace ccsim::engine
