#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ccsim/experiments/cache.h"
#include "ccsim/experiments/experiments.h"
#include "ccsim/experiments/report.h"
#include "ccsim/experiments/sweep.h"
#include "test_util.h"

namespace ccsim::experiments {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("ccsim_cache_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  static int counter_;
  std::filesystem::path path_;
};
int TempDir::counter_ = 0;

engine::RunResult SampleResult() {
  engine::RunResult r;
  r.throughput = 10.25;
  r.mean_response_time = 4.5;
  r.rt_ci_half_width = 0.25;
  r.max_response_time = 31.0;
  r.commits = 3069;
  r.aborts = 641;
  r.abort_ratio = 0.2088;
  r.host_cpu_util = 0.06;
  r.proc_cpu_util = 0.90;
  r.disk_util = 0.92;
  r.mean_blocking_time = 1.28;
  r.blocked_waits = 5120;
  r.messages_per_commit = 55.6;
  r.transactions_submitted = 3200;
  r.live_at_end = 62;
  r.events = 2010117;
  r.sim_seconds = 350;
  r.wall_seconds = 0.9;
  r.audited = true;
  r.serializable = true;
  return r;
}

TEST(ResultSerialization, RoundTripsAllFields) {
  engine::RunResult r = SampleResult();
  auto parsed = ParseResult(SerializeResult(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->throughput, r.throughput);
  EXPECT_DOUBLE_EQ(parsed->mean_response_time, r.mean_response_time);
  EXPECT_DOUBLE_EQ(parsed->rt_ci_half_width, r.rt_ci_half_width);
  EXPECT_DOUBLE_EQ(parsed->max_response_time, r.max_response_time);
  EXPECT_EQ(parsed->commits, r.commits);
  EXPECT_EQ(parsed->aborts, r.aborts);
  EXPECT_DOUBLE_EQ(parsed->abort_ratio, r.abort_ratio);
  EXPECT_DOUBLE_EQ(parsed->host_cpu_util, r.host_cpu_util);
  EXPECT_DOUBLE_EQ(parsed->proc_cpu_util, r.proc_cpu_util);
  EXPECT_DOUBLE_EQ(parsed->disk_util, r.disk_util);
  EXPECT_DOUBLE_EQ(parsed->mean_blocking_time, r.mean_blocking_time);
  EXPECT_EQ(parsed->blocked_waits, r.blocked_waits);
  EXPECT_DOUBLE_EQ(parsed->messages_per_commit, r.messages_per_commit);
  EXPECT_EQ(parsed->transactions_submitted, r.transactions_submitted);
  EXPECT_EQ(parsed->live_at_end, r.live_at_end);
  EXPECT_EQ(parsed->events, r.events);
  EXPECT_DOUBLE_EQ(parsed->sim_seconds, r.sim_seconds);
  EXPECT_TRUE(parsed->audited);
  EXPECT_TRUE(parsed->serializable);
}

TEST(ResultSerialization, RejectsGarbage) {
  EXPECT_FALSE(ParseResult("").has_value());
  EXPECT_FALSE(ParseResult("throughput abc").has_value());
  EXPECT_FALSE(ParseResult("throughput 1.0").has_value());  // too few fields
}

TEST(ResultCache, MissThenHit) {
  TempDir dir;
  ResultCache cache(dir.str());
  auto cfg = test::SmallConfig(config::CcAlgorithm::kNoDc, 5.0);
  EXPECT_FALSE(cache.Load(cfg).has_value());
  cache.Store(cfg, SampleResult());
  auto hit = cache.Load(cfg);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->throughput, 10.25);
}

TEST(ResultCache, DistinguishesConfigs) {
  TempDir dir;
  ResultCache cache(dir.str());
  auto cfg1 = test::SmallConfig(config::CcAlgorithm::kNoDc, 5.0);
  auto cfg2 = test::SmallConfig(config::CcAlgorithm::kNoDc, 6.0);
  cache.Store(cfg1, SampleResult());
  EXPECT_TRUE(cache.Load(cfg1).has_value());
  EXPECT_FALSE(cache.Load(cfg2).has_value());
}

TEST(ResultCache, GetOrRunRunsOnceThenReuses) {
  TempDir dir;
  ResultCache cache(dir.str());
  auto cfg = test::SmallConfig(config::CcAlgorithm::kNoDc, 5.0);
  cfg.run.warmup_sec = 5;
  cfg.run.measure_sec = 20;
  auto first = cache.GetOrRun(cfg);
  auto second = cache.GetOrRun(cfg);
  EXPECT_EQ(first.commits, second.commits);
  EXPECT_DOUBLE_EQ(first.mean_response_time, second.mean_response_time);
}

TEST(Experiments, ThinkTimeGridsMatchPaperRange) {
  auto grid = PaperThinkTimes();
  EXPECT_EQ(grid.front(), 0.0);
  EXPECT_EQ(grid.back(), 120.0);
  EXPECT_GE(grid.size(), 10u);
  auto fine = FineThinkTimes();
  EXPECT_GT(fine.size(), grid.size());
}

TEST(Experiments, Exp1MatchesSection42) {
  auto cfg = Exp1Config(8, config::CcAlgorithm::kOptimistic, 12.0);
  EXPECT_EQ(cfg.Validate(), "");
  EXPECT_EQ(cfg.machine.num_proc_nodes, 8);
  EXPECT_EQ(cfg.placement.degree, 8);
  EXPECT_EQ(cfg.database.pages_per_file, 300);
  EXPECT_EQ(cfg.algorithm, config::CcAlgorithm::kOptimistic);
  EXPECT_DOUBLE_EQ(cfg.workload.think_time_sec, 12.0);
  EXPECT_DOUBLE_EQ(cfg.costs.inst_per_startup, 2000);
  EXPECT_DOUBLE_EQ(cfg.costs.inst_per_msg, 1000);

  for (int nodes : {1, 2, 4, 8}) {
    EXPECT_EQ(Exp1Config(nodes, config::CcAlgorithm::kNoDc, 0).Validate(), "");
  }
}

TEST(Experiments, Exp2MatchesSection43) {
  for (int degree : {1, 8}) {
    for (int pages : {300, 1200}) {
      auto cfg =
          Exp2Config(degree, pages, config::CcAlgorithm::kTwoPhaseLocking, 8);
      EXPECT_EQ(cfg.Validate(), "");
      EXPECT_EQ(cfg.machine.num_proc_nodes, 8);
      EXPECT_EQ(cfg.placement.degree, degree);
      EXPECT_EQ(cfg.database.pages_per_file, pages);
    }
  }
}

TEST(Experiments, Exp3MatchesSection44) {
  for (int degree : {1, 2, 4, 8}) {
    auto cfg = Exp3Config(degree, 0, 4000, config::CcAlgorithm::kWoundWait, 0);
    EXPECT_EQ(cfg.Validate(), "");
    EXPECT_DOUBLE_EQ(cfg.costs.inst_per_startup, 0);
    EXPECT_DOUBLE_EQ(cfg.costs.inst_per_msg, 4000);
    EXPECT_EQ(cfg.database.pages_per_file, 300);
  }
}

TEST(Sweep, RunGridProducesAllPointsAndCaches) {
  TempDir dir;
  ResultCache cache(dir.str());
  std::vector<config::CcAlgorithm> algs{config::CcAlgorithm::kNoDc};
  std::vector<double> xs{2.0, 5.0};
  int built = 0;
  auto make = [&](config::CcAlgorithm alg, double x) {
    ++built;
    auto cfg = test::SmallConfig(alg, x);
    cfg.run.warmup_sec = 5;
    cfg.run.measure_sec = 20;
    return cfg;
  };
  auto points = RunGrid(cache, algs, xs, make, /*verbose=*/false);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_GT(At(points, config::CcAlgorithm::kNoDc, 2.0).commits, 0u);
  // Second pass: all hits, identical values.
  auto again = RunGrid(cache, algs, xs, make, false);
  EXPECT_EQ(At(again, config::CcAlgorithm::kNoDc, 5.0).commits,
            At(points, config::CcAlgorithm::kNoDc, 5.0).commits);
}

TEST(Report, TableContainsAlgorithmsAndValues) {
  std::ostringstream out;
  PrintTable(out, "Figure X", "think", {0.0, 8.0},
             {config::CcAlgorithm::kTwoPhaseLocking,
              config::CcAlgorithm::kOptimistic},
             [](config::CcAlgorithm alg, double x) {
               return (alg == config::CcAlgorithm::kOptimistic ? 100.0 : 1.0) +
                      x;
             });
  std::string text = out.str();
  EXPECT_NE(text.find("Figure X"), std::string::npos);
  EXPECT_NE(text.find("2PL"), std::string::npos);
  EXPECT_NE(text.find("OPT"), std::string::npos);
  EXPECT_NE(text.find("108.000"), std::string::npos);
  EXPECT_NE(text.find("1.000"), std::string::npos);
}

TEST(Report, CsvShape) {
  std::ostringstream out;
  PrintCsv(out, "x", {1.0}, {config::CcAlgorithm::kWoundWait},
           [](config::CcAlgorithm, double) { return 2.5; });
  EXPECT_EQ(out.str(), "x,WW\n1,2.5\n");
}

TEST(Report, WriteCsvFileCreatesDirectoriesAndContent) {
  TempDir dir;
  std::string path = dir.str() + "/nested/fig.csv";
  ASSERT_TRUE(WriteCsvFile(path, "x", {3.0},
                           {config::CcAlgorithm::kTwoPhaseLocking},
                           [](config::CcAlgorithm, double) { return 7.0; }));
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,2PL");
  std::getline(in, line);
  EXPECT_EQ(line, "3,7");
}

}  // namespace
}  // namespace ccsim::experiments
