// Determinism regression: the paper's methodology (common random numbers
// across configurations) requires that one configuration + one master seed
// produce bit-identical metrics, run after run, for every CC algorithm.
// Nondeterminism here historically crept in through unordered-container
// iteration order (deadlock victim choice, event ordering); tools/ccsim_lint
// guards the source, and this test guards the behavior. It runs under both
// normal and CCSIM_AUDIT builds.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "ccsim/config/params.h"
#include "ccsim/engine/run.h"
#include "test_util.h"

namespace ccsim::engine {
namespace {

// FNV-1a over raw bit patterns: any drift in any metric changes the digest.
class MetricDigest {
 public:
  void Add(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    AddBits(bits);
  }
  void Add(std::uint64_t v) { AddBits(v); }
  void Add(bool v) { AddBits(v ? 1 : 0); }
  std::uint64_t value() const { return hash_; }

 private:
  void AddBits(std::uint64_t bits) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (bits >> (8 * i)) & 0xff;
      hash_ *= 1099511628211ull;
    }
  }
  std::uint64_t hash_ = 14695981039346656037ull;
};

// Everything in RunResult except wall_seconds (host wall time is allowed to
// differ between runs) folds into the digest.
std::uint64_t Digest(const RunResult& r) {
  MetricDigest d;
  d.Add(r.throughput);
  d.Add(r.mean_response_time);
  d.Add(r.rt_ci_half_width);
  d.Add(r.max_response_time);
  d.Add(r.rt_p50);
  d.Add(r.rt_p90);
  d.Add(r.rt_p99);
  d.Add(r.commits);
  d.Add(r.aborts);
  d.Add(r.abort_ratio);
  d.Add(r.aborts_local_deadlock);
  d.Add(r.aborts_global_deadlock);
  d.Add(r.aborts_wound);
  d.Add(r.aborts_timestamp);
  d.Add(r.aborts_certification);
  d.Add(r.aborts_die);
  d.Add(r.aborts_timeout);
  d.Add(r.host_cpu_util);
  d.Add(r.proc_cpu_util);
  d.Add(r.disk_util);
  d.Add(r.mean_blocking_time);
  d.Add(r.blocked_waits);
  d.Add(r.messages_per_commit);
  d.Add(r.transactions_submitted);
  d.Add(r.live_at_end);
  d.Add(r.events);
  d.Add(r.sim_seconds);
  d.Add(r.audited);
  d.Add(r.serializable);
  return d.value();
}

// Every algorithm, including the extensions: the sorted-iteration fixes in
// cc/waits_for_graph and cc/lock_table matter most for the deadlock-prone
// locking variants, but all eight must reproduce exactly.
constexpr config::CcAlgorithm kEveryAlgorithm[] = {
    config::CcAlgorithm::kNoDc,
    config::CcAlgorithm::kTwoPhaseLocking,
    config::CcAlgorithm::kWoundWait,
    config::CcAlgorithm::kBasicTimestamp,
    config::CcAlgorithm::kOptimistic,
    config::CcAlgorithm::kTwoPhaseLockingDeferred,
    config::CcAlgorithm::kWaitDie,
    config::CcAlgorithm::kTwoPhaseLockingTimeout,
};

config::SystemConfig ContendedConfig(config::CcAlgorithm alg) {
  // Low think time so locking algorithms actually block, deadlock, and pick
  // victims during the window; a short window keeps 16 runs fast.
  auto cfg = test::SmallConfig(alg, /*think_time=*/1.0);
  cfg.run.warmup_sec = 10;
  cfg.run.measure_sec = 60;
  return cfg;
}

TEST(Determinism, SameSeedSameDigestForEveryAlgorithm) {
  for (auto alg : kEveryAlgorithm) {
    auto cfg = ContendedConfig(alg);
    RunResult a = RunSimulation(cfg);
    RunResult b = RunSimulation(cfg);
    EXPECT_EQ(Digest(a), Digest(b)) << config::ToString(alg);
    // Pinpoint the usual suspects separately for a readable failure.
    EXPECT_EQ(a.commits, b.commits) << config::ToString(alg);
    EXPECT_EQ(a.aborts, b.aborts) << config::ToString(alg);
    EXPECT_EQ(a.events, b.events) << config::ToString(alg);
    EXPECT_EQ(a.aborts_local_deadlock, b.aborts_local_deadlock)
        << config::ToString(alg);
    EXPECT_EQ(a.aborts_global_deadlock, b.aborts_global_deadlock)
        << config::ToString(alg);
  }
}

// Golden digests for the contended config under the default seed, pinned to
// catch silent cross-commit behavior drift that same-process A/B comparisons
// cannot see (e.g. an event-ordering change in the calendar that is
// self-consistent within a build but differs from the committed history).
// Values depend on the exact FP math and container behavior of the platform,
// so they are only asserted on the configuration CI runs (x86-64 libstdc++);
// elsewhere the test skips. Refresh procedure: EXPERIMENTS.md.
TEST(Determinism, DigestsMatchCommittedGoldens) {
#if defined(__GLIBCXX__) && defined(__x86_64__)
  struct Golden {
    config::CcAlgorithm alg;
    std::uint64_t digest;
  };
  constexpr Golden kGoldens[] = {
      {config::CcAlgorithm::kNoDc, 0x131cf5af6d8847e3ull},
      {config::CcAlgorithm::kTwoPhaseLocking, 0xab4a4c1373f3593bull},
      {config::CcAlgorithm::kWoundWait, 0xd2eecb47bf31fd71ull},
      {config::CcAlgorithm::kBasicTimestamp, 0xe609c76f552ff53cull},
      {config::CcAlgorithm::kOptimistic, 0x1667e6676ba6f3d3ull},
      {config::CcAlgorithm::kTwoPhaseLockingDeferred, 0xcd396fa03991bb2full},
      {config::CcAlgorithm::kWaitDie, 0xf57fbe84f63e7aaaull},
      {config::CcAlgorithm::kTwoPhaseLockingTimeout, 0xb5d680fdd5c4a4e6ull},
  };
  for (const Golden& g : kGoldens) {
    RunResult r = RunSimulation(ContendedConfig(g.alg));
    EXPECT_EQ(Digest(r), g.digest) << config::ToString(g.alg);
  }
#else
  GTEST_SKIP() << "golden digests are pinned for x86-64 libstdc++ only";
#endif
}

TEST(Determinism, DifferentSeedsChangeTheDigest) {
  auto cfg = ContendedConfig(config::CcAlgorithm::kTwoPhaseLocking);
  RunResult a = RunSimulation(cfg);
  cfg.run.seed = cfg.run.seed + 1;
  RunResult b = RunSimulation(cfg);
  EXPECT_NE(Digest(a), Digest(b));
}

TEST(Determinism, DeadlockVictimChoiceIsStable) {
  // A hot config where 2PL resolves many deadlocks; victim selection feeds
  // the abort counters, so any hash-order dependence shows up here.
  auto cfg = ContendedConfig(config::CcAlgorithm::kTwoPhaseLocking);
  cfg.workload.think_time_sec = 0.0;
  RunResult a = RunSimulation(cfg);
  RunResult b = RunSimulation(cfg);
  EXPECT_GT(a.aborts_local_deadlock + a.aborts_global_deadlock, 0u);
  EXPECT_EQ(Digest(a), Digest(b));
}

}  // namespace
}  // namespace ccsim::engine
