// Determinism regression: the paper's methodology (common random numbers
// across configurations) requires that one configuration + one master seed
// produce bit-identical metrics, run after run, for every CC algorithm.
// Nondeterminism here historically crept in through unordered-container
// iteration order (deadlock victim choice, event ordering); tools/ccsim_lint
// guards the source, and this test guards the behavior. It runs under both
// normal and CCSIM_AUDIT builds.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "ccsim/config/params.h"
#include "ccsim/engine/run.h"
#include "test_util.h"

namespace ccsim::engine {
namespace {

// FNV-1a over raw bit patterns: any drift in any metric changes the digest.
class MetricDigest {
 public:
  void Add(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    AddBits(bits);
  }
  void Add(std::uint64_t v) { AddBits(v); }
  void Add(bool v) { AddBits(v ? 1 : 0); }
  std::uint64_t value() const { return hash_; }

 private:
  void AddBits(std::uint64_t bits) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (bits >> (8 * i)) & 0xff;
      hash_ *= 1099511628211ull;
    }
  }
  std::uint64_t hash_ = 14695981039346656037ull;
};

// Everything in RunResult except wall_seconds (host wall time is allowed to
// differ between runs) folds into the digest.
std::uint64_t Digest(const RunResult& r) {
  MetricDigest d;
  d.Add(r.throughput);
  d.Add(r.mean_response_time);
  d.Add(r.rt_ci_half_width);
  d.Add(r.max_response_time);
  d.Add(r.rt_p50);
  d.Add(r.rt_p90);
  d.Add(r.rt_p99);
  d.Add(r.rt_p999);
  d.Add(r.mean_queue_time);
  d.Add(r.mean_exec_time);
  d.Add(r.mean_commit_wait_time);
  d.Add(r.mean_restart_wasted_time);
  d.Add(r.mean_active_txns);
  d.Add(r.commits);
  d.Add(r.aborts);
  d.Add(r.abort_ratio);
  d.Add(r.aborts_local_deadlock);
  d.Add(r.aborts_global_deadlock);
  d.Add(r.aborts_wound);
  d.Add(r.aborts_timestamp);
  d.Add(r.aborts_certification);
  d.Add(r.aborts_die);
  d.Add(r.aborts_timeout);
  d.Add(r.host_cpu_util);
  d.Add(r.proc_cpu_util);
  d.Add(r.disk_util);
  d.Add(r.mean_blocking_time);
  d.Add(r.blocked_waits);
  d.Add(r.messages_per_commit);
  d.Add(r.transactions_submitted);
  d.Add(r.live_at_end);
  d.Add(r.events);
  d.Add(r.sim_seconds);
  d.Add(r.audited);
  d.Add(r.serializable);
  return d.value();
}

// Every algorithm, including the extensions: the sorted-iteration fixes in
// cc/waits_for_graph and cc/lock_table matter most for the deadlock-prone
// locking variants, but all eight must reproduce exactly.
constexpr config::CcAlgorithm kEveryAlgorithm[] = {
    config::CcAlgorithm::kNoDc,
    config::CcAlgorithm::kTwoPhaseLocking,
    config::CcAlgorithm::kWoundWait,
    config::CcAlgorithm::kBasicTimestamp,
    config::CcAlgorithm::kOptimistic,
    config::CcAlgorithm::kTwoPhaseLockingDeferred,
    config::CcAlgorithm::kWaitDie,
    config::CcAlgorithm::kTwoPhaseLockingTimeout,
};

config::SystemConfig ContendedConfig(config::CcAlgorithm alg) {
  // Low think time so locking algorithms actually block, deadlock, and pick
  // victims during the window; a short window keeps 16 runs fast.
  auto cfg = test::SmallConfig(alg, /*think_time=*/1.0);
  cfg.run.warmup_sec = 10;
  cfg.run.measure_sec = 60;
  return cfg;
}

TEST(Determinism, SameSeedSameDigestForEveryAlgorithm) {
  for (auto alg : kEveryAlgorithm) {
    auto cfg = ContendedConfig(alg);
    RunResult a = RunSimulation(cfg);
    RunResult b = RunSimulation(cfg);
    EXPECT_EQ(Digest(a), Digest(b)) << config::ToString(alg);
    // Pinpoint the usual suspects separately for a readable failure.
    EXPECT_EQ(a.commits, b.commits) << config::ToString(alg);
    EXPECT_EQ(a.aborts, b.aborts) << config::ToString(alg);
    EXPECT_EQ(a.events, b.events) << config::ToString(alg);
    EXPECT_EQ(a.aborts_local_deadlock, b.aborts_local_deadlock)
        << config::ToString(alg);
    EXPECT_EQ(a.aborts_global_deadlock, b.aborts_global_deadlock)
        << config::ToString(alg);
  }
}

// Golden digests for the contended config under the default seed, pinned to
// catch silent cross-commit behavior drift that same-process A/B comparisons
// cannot see (e.g. an event-ordering change in the calendar that is
// self-consistent within a build but differs from the committed history).
// Values depend on the exact FP math and container behavior of the platform,
// so they are only asserted on the configuration CI runs (x86-64 libstdc++);
// elsewhere the test skips. Refresh procedure: EXPERIMENTS.md.
TEST(Determinism, DigestsMatchCommittedGoldens) {
#if defined(__GLIBCXX__) && defined(__x86_64__)
  struct Golden {
    config::CcAlgorithm alg;
    std::uint64_t digest;
  };
  constexpr Golden kGoldens[] = {
      {config::CcAlgorithm::kNoDc, 0x0b757003bed4da15ull},
      {config::CcAlgorithm::kTwoPhaseLocking, 0x7e186425e6d63502ull},
      {config::CcAlgorithm::kWoundWait, 0x453fbb6edca17fb0ull},
      {config::CcAlgorithm::kBasicTimestamp, 0x9108124e1d311f42ull},
      {config::CcAlgorithm::kOptimistic, 0x97b1c3a59cf88dccull},
      {config::CcAlgorithm::kTwoPhaseLockingDeferred, 0x83f1b54300bbcb8eull},
      {config::CcAlgorithm::kWaitDie, 0x0603ae2ac9e2ee20ull},
      {config::CcAlgorithm::kTwoPhaseLockingTimeout, 0xde565520f94f781full},
  };
  for (const Golden& g : kGoldens) {
    RunResult r = RunSimulation(ContendedConfig(g.alg));
    EXPECT_EQ(Digest(r), g.digest) << config::ToString(g.alg);
  }
#else
  GTEST_SKIP() << "golden digests are pinned for x86-64 libstdc++ only";
#endif
}

TEST(Determinism, DifferentSeedsChangeTheDigest) {
  auto cfg = ContendedConfig(config::CcAlgorithm::kTwoPhaseLocking);
  RunResult a = RunSimulation(cfg);
  cfg.run.seed = cfg.run.seed + 1;
  RunResult b = RunSimulation(cfg);
  EXPECT_NE(Digest(a), Digest(b));
}

TEST(Determinism, DeadlockVictimChoiceIsStable) {
  // A hot config where 2PL resolves many deadlocks; victim selection feeds
  // the abort counters, so any hash-order dependence shows up here.
  auto cfg = ContendedConfig(config::CcAlgorithm::kTwoPhaseLocking);
  cfg.workload.think_time_sec = 0.0;
  RunResult a = RunSimulation(cfg);
  RunResult b = RunSimulation(cfg);
  EXPECT_GT(a.aborts_local_deadlock + a.aborts_global_deadlock, 0u);
  EXPECT_EQ(Digest(a), Digest(b));
}

}  // namespace
}  // namespace ccsim::engine
