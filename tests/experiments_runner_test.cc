// Tests for the parallel experiment runner and the concurrency-safe result
// cache: parallel results must be bit-identical to the sequential path,
// concurrent GetOrRun calls for one configuration must run one simulation,
// and the cache serialization must round-trip integer counters exactly and
// reject truncated files. Regression coverage for the At() double-equality
// and Fingerprint rt_batch_size cache-key bugs rides along.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ccsim/config/params.h"
#include "ccsim/experiments/cache.h"
#include "ccsim/experiments/runner.h"
#include "ccsim/experiments/sweep.h"
#include "test_util.h"

namespace ccsim::experiments {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("ccsim_runner_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  static int counter_;
  std::filesystem::path path_;
};
int TempDir::counter_ = 0;

config::SystemConfig TinyConfig(config::CcAlgorithm alg, double think) {
  auto cfg = test::SmallConfig(alg, think);
  cfg.run.warmup_sec = 5;
  cfg.run.measure_sec = 20;
  return cfg;
}

// Serialized form with wall_seconds (host timing, legitimately run-to-run
// different) zeroed: equal strings mean bit-identical metrics.
std::string MetricsDigest(engine::RunResult r) {
  r.wall_seconds = 0.0;
  return SerializeResult(r);
}

int CacheFilesIn(const std::string& dir, int* temp_files) {
  int results = 0;
  *temp_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.find(".tmp") != std::string::npos) {
      ++*temp_files;
    } else {
      ++results;
    }
  }
  return results;
}

TEST(ParallelRunner, MatchesSequentialDigestOnAGrid) {
  std::vector<config::SystemConfig> configs;
  for (auto alg : {config::CcAlgorithm::kNoDc,
                   config::CcAlgorithm::kTwoPhaseLocking}) {
    for (double think : {1.0, 5.0}) {
      configs.push_back(TinyConfig(alg, think));
    }
  }

  TempDir seq_dir;
  ResultCache seq_cache(seq_dir.str());
  ParallelRunner sequential(seq_cache,
                            RunnerOptions{.jobs = 1, .verbose = false});
  auto seq = sequential.Run(configs);

  TempDir par_dir;
  ResultCache par_cache(par_dir.str());
  ParallelRunner parallel(par_cache,
                          RunnerOptions{.jobs = 4, .verbose = false});
  auto par = parallel.Run(configs);

  ASSERT_EQ(seq.size(), configs.size());
  ASSERT_EQ(par.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(MetricsDigest(seq[i]), MetricsDigest(par[i])) << "point " << i;
    EXPECT_GT(par[i].commits, 0u) << "point " << i;
  }
}

TEST(ParallelRunner, DeduplicatesByFingerprint) {
  // Three copies of one point plus one distinct point: two simulations.
  auto a = TinyConfig(config::CcAlgorithm::kNoDc, 2.0);
  auto b = TinyConfig(config::CcAlgorithm::kNoDc, 6.0);
  std::vector<config::SystemConfig> configs{a, b, a, a};

  TempDir dir;
  ResultCache cache(dir.str());
  ParallelRunner runner(cache, RunnerOptions{.jobs = 4, .verbose = false});
  auto results = runner.Run(configs);

  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(cache.simulations_run(), 2u);
  EXPECT_EQ(MetricsDigest(results[0]), MetricsDigest(results[2]));
  EXPECT_EQ(MetricsDigest(results[0]), MetricsDigest(results[3]));
  EXPECT_NE(MetricsDigest(results[0]), MetricsDigest(results[1]));
}

TEST(ParallelRunner, ServesCachedPointsWithoutSimulating) {
  auto cfg = TinyConfig(config::CcAlgorithm::kNoDc, 3.0);
  TempDir dir;
  ResultCache cache(dir.str());
  ParallelRunner runner(cache, RunnerOptions{.jobs = 2, .verbose = false});
  auto first = runner.Run({cfg});
  EXPECT_EQ(cache.simulations_run(), 1u);
  auto second = runner.Run({cfg});
  EXPECT_EQ(cache.simulations_run(), 1u);  // second batch was all cache hits
  EXPECT_EQ(MetricsDigest(first[0]), MetricsDigest(second[0]));
}

TEST(ResultCache, ContendedGetOrRunRunsOneSimulation) {
  auto cfg = TinyConfig(config::CcAlgorithm::kTwoPhaseLocking, 2.0);
  TempDir dir;
  ResultCache cache(dir.str());

  constexpr int kThreads = 8;
  std::vector<engine::RunResult> results(kThreads);
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(
          [&, t] { results[static_cast<std::size_t>(t)] = cache.GetOrRun(cfg); });
    }
  }

  // Single-flight: one simulation, everyone observes its result, and the
  // cache directory holds exactly one intact entry (no leftover temp files).
  EXPECT_EQ(cache.simulations_run(), 1u);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(SerializeResult(results[0]),
              SerializeResult(results[static_cast<std::size_t>(t)]));
  }
  int temp_files = 0;
  EXPECT_EQ(CacheFilesIn(dir.str(), &temp_files), 1);
  EXPECT_EQ(temp_files, 0);
  auto loaded = cache.Load(cfg);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(SerializeResult(*loaded), SerializeResult(results[0]));
}

TEST(ResultCache, ConcurrentStoresNeverCorruptTheEntry) {
  // Regression for the shared `path + ".tmp"` temp file: concurrent writers
  // used to interleave into one temp file and publish garbage. Writers now
  // use unique temp names, so the published entry always parses.
  auto cfg = TinyConfig(config::CcAlgorithm::kNoDc, 4.0);
  engine::RunResult sample;
  sample.throughput = 12.5;
  sample.commits = 1234567890123456789ull;
  sample.events = std::numeric_limits<std::uint64_t>::max();
  sample.sim_seconds = 20.0;

  TempDir dir;
  ResultCache cache(dir.str());
  constexpr int kThreads = 8;
  constexpr int kStoresPerThread = 25;
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kStoresPerThread; ++i) {
          EXPECT_TRUE(cache.Store(cfg, sample));
          auto loaded = cache.Load(cfg);
          ASSERT_TRUE(loaded.has_value()) << "corrupt entry published";
          EXPECT_EQ(loaded->events, sample.events);
          EXPECT_EQ(loaded->commits, sample.commits);
        }
      });
    }
  }
  int temp_files = 0;
  EXPECT_EQ(CacheFilesIn(dir.str(), &temp_files), 1);
  EXPECT_EQ(temp_files, 0);
}

TEST(ResultCache, CorruptEntriesAreQuarantinedAndRerun) {
  auto cfg = TinyConfig(config::CcAlgorithm::kNoDc, 5.0);
  TempDir dir;
  ResultCache cache(dir.str());
  engine::RunResult first = cache.GetOrRun(cfg);
  EXPECT_EQ(cache.simulations_run(), 1u);

  // Corrupt the single published entry in place.
  std::filesystem::path entry;
  for (const auto& e : std::filesystem::directory_iterator(dir.str())) {
    entry = e.path();
  }
  ASSERT_FALSE(entry.empty());
  {
    std::ofstream out(entry);
    out << "garbage that is not a result file\n";
  }

  // The corrupt entry is a miss; the file moves aside as <name>.quarantined
  // (preserved for inspection) so the re-run can publish a clean entry.
  EXPECT_FALSE(cache.Load(cfg).has_value());
  EXPECT_FALSE(std::filesystem::exists(entry));
  EXPECT_TRUE(std::filesystem::exists(entry.string() + ".quarantined"));

  engine::RunResult again = cache.GetOrRun(cfg);
  EXPECT_EQ(cache.simulations_run(), 2u);
  EXPECT_EQ(MetricsDigest(first), MetricsDigest(again));
  auto reloaded = cache.Load(cfg);
  ASSERT_TRUE(reloaded.has_value());
}

TEST(ResultSerialization, RoundTripsMaxRangeUint64Counters) {
  // Regression for parsing integer counters through double: values above
  // 2^53 (and 17-digit formatting) silently lost precision.
  engine::RunResult r;
  r.events = std::numeric_limits<std::uint64_t>::max();
  r.commits = (std::uint64_t{1} << 53) + 1;
  r.aborts = (std::uint64_t{1} << 63) + 3;
  r.blocked_waits = 9007199254740993ull;  // 2^53 + 1
  r.transactions_submitted = 18446744073709551557ull;
  auto parsed = ParseResult(SerializeResult(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->events, r.events);
  EXPECT_EQ(parsed->commits, r.commits);
  EXPECT_EQ(parsed->aborts, r.aborts);
  EXPECT_EQ(parsed->blocked_waits, r.blocked_waits);
  EXPECT_EQ(parsed->transactions_submitted, r.transactions_submitted);
}

TEST(ResultSerialization, RejectsTruncatedFiles) {
  // Regression for "any 18 of the fields is a valid file": a prefix of a
  // result must be a miss, not a silently-defaulted result.
  engine::RunResult r;
  r.throughput = 5.0;
  r.events = 123456;
  std::string full = SerializeResult(r);

  // Drop the field_count trailer.
  std::string no_trailer = full.substr(0, full.rfind("field_count"));
  EXPECT_FALSE(ParseResult(no_trailer).has_value());

  // Keep the first 18 key-value lines (the old acceptance threshold).
  std::istringstream in(full);
  std::string line;
  std::string first18;
  for (int i = 0; i < 18 && std::getline(in, line); ++i) {
    first18 += line + "\n";
  }
  EXPECT_FALSE(ParseResult(first18).has_value());

  // A trailer whose count disagrees with the body is rejected too.
  EXPECT_FALSE(ParseResult(first18 + "field_count 30\n").has_value());
  EXPECT_FALSE(ParseResult(first18 + "field_count 18\n").has_value());

  // Sanity: the intact file still parses.
  EXPECT_TRUE(ParseResult(full).has_value());
}

TEST(Sweep, AtMatchesRecomputedX) {
  // Regression for exact double equality in At(): an x recomputed at the
  // call site (3 * 0.1 != 0.3 exactly) used to abort with "point not found".
  std::vector<Point> points;
  engine::RunResult r;
  r.throughput = 42.0;
  double recomputed = 0.0;
  for (int i = 0; i < 3; ++i) recomputed += 0.1;
  ASSERT_NE(recomputed, 0.3);  // the classic accumulation error
  points.push_back(Point{config::CcAlgorithm::kNoDc, recomputed, r});
  EXPECT_DOUBLE_EQ(At(points, config::CcAlgorithm::kNoDc, 0.3).throughput,
                   42.0);
  EXPECT_DOUBLE_EQ(
      At(points, config::CcAlgorithm::kNoDc, recomputed).throughput, 42.0);
}

TEST(Fingerprint, KeysOnRtBatchSize) {
  // Regression: rt_batch_size changes rt_ci_half_width, so two configs
  // differing only in it must not share a cache entry.
  auto a = TinyConfig(config::CcAlgorithm::kNoDc, 2.0);
  auto b = a;
  b.run.rt_batch_size = a.run.rt_batch_size * 2;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  // The default value stays unmixed, keeping existing cache keys stable.
  auto c = a;
  EXPECT_EQ(a.Fingerprint(), c.Fingerprint());
}

TEST(Runner, ResolveJobsPrecedence) {
  EXPECT_GE(ResolveJobs(), 1);
  EXPECT_EQ(ResolveJobs(7), 7);  // explicit request wins
  SetDefaultJobs(3);
  EXPECT_EQ(ResolveJobs(), 3);
  EXPECT_EQ(ResolveJobs(2), 2);
  SetDefaultJobs(0);  // clear the override for other tests
  EXPECT_GE(ResolveJobs(), 1);
}

TEST(Sweep, RunGridParallelPathMatchesItself) {
  // RunGrid routes through the runner with the ambient job count; whatever
  // that is, a re-run from a cold cache must reproduce bit-identically.
  std::vector<config::CcAlgorithm> algs{config::CcAlgorithm::kNoDc,
                                        config::CcAlgorithm::kWoundWait};
  std::vector<double> xs{1.0, 4.0};
  auto make = [](config::CcAlgorithm alg, double x) {
    return TinyConfig(alg, x);
  };

  TempDir dir_a;
  ResultCache cache_a(dir_a.str());
  auto points_a = RunGrid(cache_a, algs, xs, make, /*verbose=*/false);

  TempDir dir_b;
  ResultCache cache_b(dir_b.str());
  auto points_b = RunGrid(cache_b, algs, xs, make, /*verbose=*/false);

  ASSERT_EQ(points_a.size(), 4u);
  ASSERT_EQ(points_b.size(), 4u);
  for (std::size_t i = 0; i < points_a.size(); ++i) {
    EXPECT_EQ(points_a[i].algorithm, points_b[i].algorithm);
    EXPECT_DOUBLE_EQ(points_a[i].x, points_b[i].x);
    EXPECT_EQ(MetricsDigest(points_a[i].result),
              MetricsDigest(points_b[i].result));
  }
}

}  // namespace
}  // namespace ccsim::experiments
