file(REMOVE_RECURSE
  "CMakeFiles/tables_params.dir/tables_params.cc.o"
  "CMakeFiles/tables_params.dir/tables_params.cc.o.d"
  "tables_params"
  "tables_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tables_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
