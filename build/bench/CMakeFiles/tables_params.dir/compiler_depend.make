# Empty compiler generated dependencies file for tables_params.
# This may be replaced when dependencies are built.
