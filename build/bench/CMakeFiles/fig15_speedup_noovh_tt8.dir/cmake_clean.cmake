file(REMOVE_RECURSE
  "CMakeFiles/fig15_speedup_noovh_tt8.dir/fig15_speedup_noovh_tt8.cc.o"
  "CMakeFiles/fig15_speedup_noovh_tt8.dir/fig15_speedup_noovh_tt8.cc.o.d"
  "fig15_speedup_noovh_tt8"
  "fig15_speedup_noovh_tt8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_speedup_noovh_tt8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
