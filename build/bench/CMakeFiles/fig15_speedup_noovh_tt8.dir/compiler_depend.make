# Empty compiler generated dependencies file for fig15_speedup_noovh_tt8.
# This may be replaced when dependencies are built.
