file(REMOVE_RECURSE
  "CMakeFiles/fig13_abort_ratio_1way.dir/fig13_abort_ratio_1way.cc.o"
  "CMakeFiles/fig13_abort_ratio_1way.dir/fig13_abort_ratio_1way.cc.o.d"
  "fig13_abort_ratio_1way"
  "fig13_abort_ratio_1way.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_abort_ratio_1way.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
