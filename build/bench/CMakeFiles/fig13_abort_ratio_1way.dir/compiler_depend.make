# Empty compiler generated dependencies file for fig13_abort_ratio_1way.
# This may be replaced when dependencies are built.
