file(REMOVE_RECURSE
  "CMakeFiles/fig10_degradation_8way.dir/fig10_degradation_8way.cc.o"
  "CMakeFiles/fig10_degradation_8way.dir/fig10_degradation_8way.cc.o.d"
  "fig10_degradation_8way"
  "fig10_degradation_8way.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_degradation_8way.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
