# Empty compiler generated dependencies file for fig10_degradation_8way.
# This may be replaced when dependencies are built.
