# Empty dependencies file for fig05_response_speedup.
# This may be replaced when dependencies are built.
