file(REMOVE_RECURSE
  "CMakeFiles/fig05_response_speedup.dir/fig05_response_speedup.cc.o"
  "CMakeFiles/fig05_response_speedup.dir/fig05_response_speedup.cc.o.d"
  "fig05_response_speedup"
  "fig05_response_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_response_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
