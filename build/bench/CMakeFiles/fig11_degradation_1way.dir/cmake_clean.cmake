file(REMOVE_RECURSE
  "CMakeFiles/fig11_degradation_1way.dir/fig11_degradation_1way.cc.o"
  "CMakeFiles/fig11_degradation_1way.dir/fig11_degradation_1way.cc.o.d"
  "fig11_degradation_1way"
  "fig11_degradation_1way.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_degradation_1way.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
