# Empty compiler generated dependencies file for fig11_degradation_1way.
# This may be replaced when dependencies are built.
