# Empty dependencies file for ext_locking_variants.
# This may be replaced when dependencies are built.
