file(REMOVE_RECURSE
  "CMakeFiles/ext_locking_variants.dir/ext_locking_variants.cc.o"
  "CMakeFiles/ext_locking_variants.dir/ext_locking_variants.cc.o.d"
  "ext_locking_variants"
  "ext_locking_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_locking_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
