file(REMOVE_RECURSE
  "CMakeFiles/fig17_speedup_msg4k_tt8.dir/fig17_speedup_msg4k_tt8.cc.o"
  "CMakeFiles/fig17_speedup_msg4k_tt8.dir/fig17_speedup_msg4k_tt8.cc.o.d"
  "fig17_speedup_msg4k_tt8"
  "fig17_speedup_msg4k_tt8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_speedup_msg4k_tt8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
