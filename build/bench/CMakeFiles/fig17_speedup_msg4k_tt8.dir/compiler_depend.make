# Empty compiler generated dependencies file for fig17_speedup_msg4k_tt8.
# This may be replaced when dependencies are built.
