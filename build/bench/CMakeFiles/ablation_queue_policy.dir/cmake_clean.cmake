file(REMOVE_RECURSE
  "CMakeFiles/ablation_queue_policy.dir/ablation_queue_policy.cc.o"
  "CMakeFiles/ablation_queue_policy.dir/ablation_queue_policy.cc.o.d"
  "ablation_queue_policy"
  "ablation_queue_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queue_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
