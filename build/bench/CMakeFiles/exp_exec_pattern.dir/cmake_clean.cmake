file(REMOVE_RECURSE
  "CMakeFiles/exp_exec_pattern.dir/exp_exec_pattern.cc.o"
  "CMakeFiles/exp_exec_pattern.dir/exp_exec_pattern.cc.o.d"
  "exp_exec_pattern"
  "exp_exec_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_exec_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
