# Empty dependencies file for exp_exec_pattern.
# This may be replaced when dependencies are built.
