# Empty dependencies file for ablation_detection_interval.
# This may be replaced when dependencies are built.
