file(REMOVE_RECURSE
  "CMakeFiles/ablation_detection_interval.dir/ablation_detection_interval.cc.o"
  "CMakeFiles/ablation_detection_interval.dir/ablation_detection_interval.cc.o.d"
  "ablation_detection_interval"
  "ablation_detection_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_detection_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
