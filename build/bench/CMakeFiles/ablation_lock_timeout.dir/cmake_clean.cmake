file(REMOVE_RECURSE
  "CMakeFiles/ablation_lock_timeout.dir/ablation_lock_timeout.cc.o"
  "CMakeFiles/ablation_lock_timeout.dir/ablation_lock_timeout.cc.o.d"
  "ablation_lock_timeout"
  "ablation_lock_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lock_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
