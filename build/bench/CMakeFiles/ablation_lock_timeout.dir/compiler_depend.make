# Empty compiler generated dependencies file for ablation_lock_timeout.
# This may be replaced when dependencies are built.
