file(REMOVE_RECURSE
  "CMakeFiles/exp3_startup20k.dir/exp3_startup20k.cc.o"
  "CMakeFiles/exp3_startup20k.dir/exp3_startup20k.cc.o.d"
  "exp3_startup20k"
  "exp3_startup20k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp3_startup20k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
