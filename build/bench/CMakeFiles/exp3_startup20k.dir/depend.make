# Empty dependencies file for exp3_startup20k.
# This may be replaced when dependencies are built.
