# Empty dependencies file for fig03_response_time.
# This may be replaced when dependencies are built.
