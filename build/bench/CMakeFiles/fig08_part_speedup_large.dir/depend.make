# Empty dependencies file for fig08_part_speedup_large.
# This may be replaced when dependencies are built.
