file(REMOVE_RECURSE
  "CMakeFiles/fig08_part_speedup_large.dir/fig08_part_speedup_large.cc.o"
  "CMakeFiles/fig08_part_speedup_large.dir/fig08_part_speedup_large.cc.o.d"
  "fig08_part_speedup_large"
  "fig08_part_speedup_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_part_speedup_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
