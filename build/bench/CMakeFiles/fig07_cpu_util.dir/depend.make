# Empty dependencies file for fig07_cpu_util.
# This may be replaced when dependencies are built.
