file(REMOVE_RECURSE
  "CMakeFiles/fig14_speedup_noovh_tt0.dir/fig14_speedup_noovh_tt0.cc.o"
  "CMakeFiles/fig14_speedup_noovh_tt0.dir/fig14_speedup_noovh_tt0.cc.o.d"
  "fig14_speedup_noovh_tt0"
  "fig14_speedup_noovh_tt0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_speedup_noovh_tt0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
