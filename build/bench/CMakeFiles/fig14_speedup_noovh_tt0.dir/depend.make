# Empty dependencies file for fig14_speedup_noovh_tt0.
# This may be replaced when dependencies are built.
