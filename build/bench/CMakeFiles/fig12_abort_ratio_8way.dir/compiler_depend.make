# Empty compiler generated dependencies file for fig12_abort_ratio_8way.
# This may be replaced when dependencies are built.
