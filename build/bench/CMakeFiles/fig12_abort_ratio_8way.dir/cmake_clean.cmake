file(REMOVE_RECURSE
  "CMakeFiles/fig12_abort_ratio_8way.dir/fig12_abort_ratio_8way.cc.o"
  "CMakeFiles/fig12_abort_ratio_8way.dir/fig12_abort_ratio_8way.cc.o.d"
  "fig12_abort_ratio_8way"
  "fig12_abort_ratio_8way.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_abort_ratio_8way.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
