file(REMOVE_RECURSE
  "CMakeFiles/fig09_part_speedup_small.dir/fig09_part_speedup_small.cc.o"
  "CMakeFiles/fig09_part_speedup_small.dir/fig09_part_speedup_small.cc.o.d"
  "fig09_part_speedup_small"
  "fig09_part_speedup_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_part_speedup_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
