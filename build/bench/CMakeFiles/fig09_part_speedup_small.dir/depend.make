# Empty dependencies file for fig09_part_speedup_small.
# This may be replaced when dependencies are built.
