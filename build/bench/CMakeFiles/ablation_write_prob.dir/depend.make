# Empty dependencies file for ablation_write_prob.
# This may be replaced when dependencies are built.
