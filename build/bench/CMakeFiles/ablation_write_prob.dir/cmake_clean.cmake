file(REMOVE_RECURSE
  "CMakeFiles/ablation_write_prob.dir/ablation_write_prob.cc.o"
  "CMakeFiles/ablation_write_prob.dir/ablation_write_prob.cc.o.d"
  "ablation_write_prob"
  "ablation_write_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_write_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
