# Empty dependencies file for exp1_fournode.
# This may be replaced when dependencies are built.
