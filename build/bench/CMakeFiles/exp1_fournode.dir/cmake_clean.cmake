file(REMOVE_RECURSE
  "CMakeFiles/exp1_fournode.dir/exp1_fournode.cc.o"
  "CMakeFiles/exp1_fournode.dir/exp1_fournode.cc.o.d"
  "exp1_fournode"
  "exp1_fournode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp1_fournode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
