file(REMOVE_RECURSE
  "CMakeFiles/exp_txn_size.dir/exp_txn_size.cc.o"
  "CMakeFiles/exp_txn_size.dir/exp_txn_size.cc.o.d"
  "exp_txn_size"
  "exp_txn_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_txn_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
