# Empty compiler generated dependencies file for exp_txn_size.
# This may be replaced when dependencies are built.
