file(REMOVE_RECURSE
  "CMakeFiles/exp1_scale16.dir/exp1_scale16.cc.o"
  "CMakeFiles/exp1_scale16.dir/exp1_scale16.cc.o.d"
  "exp1_scale16"
  "exp1_scale16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp1_scale16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
