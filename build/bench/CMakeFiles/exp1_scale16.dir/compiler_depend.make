# Empty compiler generated dependencies file for exp1_scale16.
# This may be replaced when dependencies are built.
