file(REMOVE_RECURSE
  "CMakeFiles/fig16_speedup_msg4k_tt0.dir/fig16_speedup_msg4k_tt0.cc.o"
  "CMakeFiles/fig16_speedup_msg4k_tt0.dir/fig16_speedup_msg4k_tt0.cc.o.d"
  "fig16_speedup_msg4k_tt0"
  "fig16_speedup_msg4k_tt0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_speedup_msg4k_tt0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
