# Empty dependencies file for fig16_speedup_msg4k_tt0.
# This may be replaced when dependencies are built.
