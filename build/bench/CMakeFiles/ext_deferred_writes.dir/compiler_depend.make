# Empty compiler generated dependencies file for ext_deferred_writes.
# This may be replaced when dependencies are built.
