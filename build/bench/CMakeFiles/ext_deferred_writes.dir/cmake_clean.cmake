file(REMOVE_RECURSE
  "CMakeFiles/ext_deferred_writes.dir/ext_deferred_writes.cc.o"
  "CMakeFiles/ext_deferred_writes.dir/ext_deferred_writes.cc.o.d"
  "ext_deferred_writes"
  "ext_deferred_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_deferred_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
