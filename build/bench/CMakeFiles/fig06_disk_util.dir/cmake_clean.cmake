file(REMOVE_RECURSE
  "CMakeFiles/fig06_disk_util.dir/fig06_disk_util.cc.o"
  "CMakeFiles/fig06_disk_util.dir/fig06_disk_util.cc.o.d"
  "fig06_disk_util"
  "fig06_disk_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_disk_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
