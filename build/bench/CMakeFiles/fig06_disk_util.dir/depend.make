# Empty dependencies file for fig06_disk_util.
# This may be replaced when dependencies are built.
