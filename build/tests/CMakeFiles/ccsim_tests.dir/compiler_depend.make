# Empty compiler generated dependencies file for ccsim_tests.
# This may be replaced when dependencies are built.
