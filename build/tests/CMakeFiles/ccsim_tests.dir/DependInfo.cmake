
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cc_bto_test.cc" "tests/CMakeFiles/ccsim_tests.dir/cc_bto_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/cc_bto_test.cc.o.d"
  "/root/repo/tests/cc_lock_table_test.cc" "tests/CMakeFiles/ccsim_tests.dir/cc_lock_table_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/cc_lock_table_test.cc.o.d"
  "/root/repo/tests/cc_optimistic_test.cc" "tests/CMakeFiles/ccsim_tests.dir/cc_optimistic_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/cc_optimistic_test.cc.o.d"
  "/root/repo/tests/cc_two_phase_locking_deferred_test.cc" "tests/CMakeFiles/ccsim_tests.dir/cc_two_phase_locking_deferred_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/cc_two_phase_locking_deferred_test.cc.o.d"
  "/root/repo/tests/cc_two_phase_locking_test.cc" "tests/CMakeFiles/ccsim_tests.dir/cc_two_phase_locking_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/cc_two_phase_locking_test.cc.o.d"
  "/root/repo/tests/cc_wait_die_timeout_test.cc" "tests/CMakeFiles/ccsim_tests.dir/cc_wait_die_timeout_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/cc_wait_die_timeout_test.cc.o.d"
  "/root/repo/tests/cc_waits_for_graph_test.cc" "tests/CMakeFiles/ccsim_tests.dir/cc_waits_for_graph_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/cc_waits_for_graph_test.cc.o.d"
  "/root/repo/tests/cc_wound_wait_test.cc" "tests/CMakeFiles/ccsim_tests.dir/cc_wound_wait_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/cc_wound_wait_test.cc.o.d"
  "/root/repo/tests/config_test.cc" "tests/CMakeFiles/ccsim_tests.dir/config_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/config_test.cc.o.d"
  "/root/repo/tests/db_test.cc" "tests/CMakeFiles/ccsim_tests.dir/db_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/db_test.cc.o.d"
  "/root/repo/tests/distributed_scenarios_test.cc" "tests/CMakeFiles/ccsim_tests.dir/distributed_scenarios_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/distributed_scenarios_test.cc.o.d"
  "/root/repo/tests/engine_integration_test.cc" "tests/CMakeFiles/ccsim_tests.dir/engine_integration_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/engine_integration_test.cc.o.d"
  "/root/repo/tests/engine_serializability_test.cc" "tests/CMakeFiles/ccsim_tests.dir/engine_serializability_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/engine_serializability_test.cc.o.d"
  "/root/repo/tests/experiments_test.cc" "tests/CMakeFiles/ccsim_tests.dir/experiments_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/experiments_test.cc.o.d"
  "/root/repo/tests/fuzz_invariants_test.cc" "tests/CMakeFiles/ccsim_tests.dir/fuzz_invariants_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/fuzz_invariants_test.cc.o.d"
  "/root/repo/tests/net_network_test.cc" "tests/CMakeFiles/ccsim_tests.dir/net_network_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/net_network_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/ccsim_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/resource_cpu_test.cc" "tests/CMakeFiles/ccsim_tests.dir/resource_cpu_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/resource_cpu_test.cc.o.d"
  "/root/repo/tests/resource_disk_test.cc" "tests/CMakeFiles/ccsim_tests.dir/resource_disk_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/resource_disk_test.cc.o.d"
  "/root/repo/tests/sim_calendar_test.cc" "tests/CMakeFiles/ccsim_tests.dir/sim_calendar_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/sim_calendar_test.cc.o.d"
  "/root/repo/tests/sim_random_test.cc" "tests/CMakeFiles/ccsim_tests.dir/sim_random_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/sim_random_test.cc.o.d"
  "/root/repo/tests/sim_simulation_test.cc" "tests/CMakeFiles/ccsim_tests.dir/sim_simulation_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/sim_simulation_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/ccsim_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/ccsim_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/test_util.cc.o.d"
  "/root/repo/tests/txn_protocol_test.cc" "tests/CMakeFiles/ccsim_tests.dir/txn_protocol_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/txn_protocol_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/ccsim_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ccsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
