file(REMOVE_RECURSE
  "CMakeFiles/debit_credit.dir/debit_credit.cpp.o"
  "CMakeFiles/debit_credit.dir/debit_credit.cpp.o.d"
  "debit_credit"
  "debit_credit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debit_credit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
