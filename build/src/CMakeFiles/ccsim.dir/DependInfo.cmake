
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccsim/cc/bto.cc" "src/CMakeFiles/ccsim.dir/ccsim/cc/bto.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/cc/bto.cc.o.d"
  "/root/repo/src/ccsim/cc/cc_factory.cc" "src/CMakeFiles/ccsim.dir/ccsim/cc/cc_factory.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/cc/cc_factory.cc.o.d"
  "/root/repo/src/ccsim/cc/lock_table.cc" "src/CMakeFiles/ccsim.dir/ccsim/cc/lock_table.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/cc/lock_table.cc.o.d"
  "/root/repo/src/ccsim/cc/optimistic.cc" "src/CMakeFiles/ccsim.dir/ccsim/cc/optimistic.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/cc/optimistic.cc.o.d"
  "/root/repo/src/ccsim/cc/snoop.cc" "src/CMakeFiles/ccsim.dir/ccsim/cc/snoop.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/cc/snoop.cc.o.d"
  "/root/repo/src/ccsim/cc/two_phase_locking.cc" "src/CMakeFiles/ccsim.dir/ccsim/cc/two_phase_locking.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/cc/two_phase_locking.cc.o.d"
  "/root/repo/src/ccsim/cc/two_phase_locking_deferred.cc" "src/CMakeFiles/ccsim.dir/ccsim/cc/two_phase_locking_deferred.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/cc/two_phase_locking_deferred.cc.o.d"
  "/root/repo/src/ccsim/cc/two_phase_locking_timeout.cc" "src/CMakeFiles/ccsim.dir/ccsim/cc/two_phase_locking_timeout.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/cc/two_phase_locking_timeout.cc.o.d"
  "/root/repo/src/ccsim/cc/wait_die.cc" "src/CMakeFiles/ccsim.dir/ccsim/cc/wait_die.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/cc/wait_die.cc.o.d"
  "/root/repo/src/ccsim/cc/waits_for_graph.cc" "src/CMakeFiles/ccsim.dir/ccsim/cc/waits_for_graph.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/cc/waits_for_graph.cc.o.d"
  "/root/repo/src/ccsim/cc/wound_wait.cc" "src/CMakeFiles/ccsim.dir/ccsim/cc/wound_wait.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/cc/wound_wait.cc.o.d"
  "/root/repo/src/ccsim/config/params.cc" "src/CMakeFiles/ccsim.dir/ccsim/config/params.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/config/params.cc.o.d"
  "/root/repo/src/ccsim/db/catalog.cc" "src/CMakeFiles/ccsim.dir/ccsim/db/catalog.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/db/catalog.cc.o.d"
  "/root/repo/src/ccsim/db/placement.cc" "src/CMakeFiles/ccsim.dir/ccsim/db/placement.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/db/placement.cc.o.d"
  "/root/repo/src/ccsim/engine/node.cc" "src/CMakeFiles/ccsim.dir/ccsim/engine/node.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/engine/node.cc.o.d"
  "/root/repo/src/ccsim/engine/serializability.cc" "src/CMakeFiles/ccsim.dir/ccsim/engine/serializability.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/engine/serializability.cc.o.d"
  "/root/repo/src/ccsim/engine/system.cc" "src/CMakeFiles/ccsim.dir/ccsim/engine/system.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/engine/system.cc.o.d"
  "/root/repo/src/ccsim/experiments/cache.cc" "src/CMakeFiles/ccsim.dir/ccsim/experiments/cache.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/experiments/cache.cc.o.d"
  "/root/repo/src/ccsim/experiments/experiments.cc" "src/CMakeFiles/ccsim.dir/ccsim/experiments/experiments.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/experiments/experiments.cc.o.d"
  "/root/repo/src/ccsim/experiments/report.cc" "src/CMakeFiles/ccsim.dir/ccsim/experiments/report.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/experiments/report.cc.o.d"
  "/root/repo/src/ccsim/experiments/sweep.cc" "src/CMakeFiles/ccsim.dir/ccsim/experiments/sweep.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/experiments/sweep.cc.o.d"
  "/root/repo/src/ccsim/net/network.cc" "src/CMakeFiles/ccsim.dir/ccsim/net/network.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/net/network.cc.o.d"
  "/root/repo/src/ccsim/resource/cpu.cc" "src/CMakeFiles/ccsim.dir/ccsim/resource/cpu.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/resource/cpu.cc.o.d"
  "/root/repo/src/ccsim/resource/disk.cc" "src/CMakeFiles/ccsim.dir/ccsim/resource/disk.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/resource/disk.cc.o.d"
  "/root/repo/src/ccsim/resource/resource_manager.cc" "src/CMakeFiles/ccsim.dir/ccsim/resource/resource_manager.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/resource/resource_manager.cc.o.d"
  "/root/repo/src/ccsim/sim/calendar.cc" "src/CMakeFiles/ccsim.dir/ccsim/sim/calendar.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/sim/calendar.cc.o.d"
  "/root/repo/src/ccsim/sim/random.cc" "src/CMakeFiles/ccsim.dir/ccsim/sim/random.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/sim/random.cc.o.d"
  "/root/repo/src/ccsim/sim/simulation.cc" "src/CMakeFiles/ccsim.dir/ccsim/sim/simulation.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/sim/simulation.cc.o.d"
  "/root/repo/src/ccsim/stats/batch_means.cc" "src/CMakeFiles/ccsim.dir/ccsim/stats/batch_means.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/stats/batch_means.cc.o.d"
  "/root/repo/src/ccsim/stats/histogram.cc" "src/CMakeFiles/ccsim.dir/ccsim/stats/histogram.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/stats/histogram.cc.o.d"
  "/root/repo/src/ccsim/stats/tally.cc" "src/CMakeFiles/ccsim.dir/ccsim/stats/tally.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/stats/tally.cc.o.d"
  "/root/repo/src/ccsim/stats/time_weighted.cc" "src/CMakeFiles/ccsim.dir/ccsim/stats/time_weighted.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/stats/time_weighted.cc.o.d"
  "/root/repo/src/ccsim/txn/cohort.cc" "src/CMakeFiles/ccsim.dir/ccsim/txn/cohort.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/txn/cohort.cc.o.d"
  "/root/repo/src/ccsim/txn/coordinator.cc" "src/CMakeFiles/ccsim.dir/ccsim/txn/coordinator.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/txn/coordinator.cc.o.d"
  "/root/repo/src/ccsim/txn/transaction.cc" "src/CMakeFiles/ccsim.dir/ccsim/txn/transaction.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/txn/transaction.cc.o.d"
  "/root/repo/src/ccsim/workload/access_generator.cc" "src/CMakeFiles/ccsim.dir/ccsim/workload/access_generator.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/workload/access_generator.cc.o.d"
  "/root/repo/src/ccsim/workload/source.cc" "src/CMakeFiles/ccsim.dir/ccsim/workload/source.cc.o" "gcc" "src/CMakeFiles/ccsim.dir/ccsim/workload/source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
