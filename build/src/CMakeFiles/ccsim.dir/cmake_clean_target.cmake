file(REMOVE_RECURSE
  "libccsim.a"
)
