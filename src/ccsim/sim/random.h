#ifndef CCSIM_SIM_RANDOM_H_
#define CCSIM_SIM_RANDOM_H_

#include <cstdint>
#include <random>

namespace ccsim::sim {

/// A reproducible stream of pseudo-random variates.
///
/// Each stochastic element of the model (think times, access selection, disk
/// service, instruction counts, ...) owns its own stream, derived from the
/// run's master seed and a distinct stream id, so that changing how one model
/// component consumes randomness does not perturb the others (common random
/// numbers across configurations, as in the paper's DeNet methodology).
class RandomStream {
 public:
  RandomStream(std::uint64_t master_seed, std::uint64_t stream_id);

  /// Exponentially distributed variate with the given mean. A mean of zero
  /// returns 0 (the paper's "think time 0" case).
  double Exponential(double mean);

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Raw 64-bit output (for shuffles and sampling helpers).
  std::uint64_t Next() {
    ++draws_;
    return engine_();
  }

  /// Number of variates drawn so far. Diagnostic only (watchdog dumps report
  /// per-stream positions so a divergent replay can be localized to the
  /// first stream that consumed a different amount of randomness).
  std::uint64_t draws() const { return draws_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t draws_ = 0;
};

}  // namespace ccsim::sim

#endif  // CCSIM_SIM_RANDOM_H_
