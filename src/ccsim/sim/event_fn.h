#ifndef CCSIM_SIM_EVENT_FN_H_
#define CCSIM_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ccsim::sim {

/// A move-only callable wrapper for event handlers, tuned for the calendar
/// hot path. Callables up to kInlineBytes with a non-throwing move
/// constructor are stored inline (scheduling such an event never touches the
/// heap); larger callables fall back to a single heap allocation. Unlike
/// std::function there is no copy support, no RTTI and no target access:
/// the only operations are move, invoke and destroy, dispatched through a
/// static three-entry op table per callable type.
class EventFn {
 public:
  /// Inline capacity. Sized for the simulator's largest hot handler shape:
  /// a `this` pointer, a shared_ptr completion, and a couple of words
  /// (e.g. the disk service closure: this + {completion, enqueue_time}).
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept = default;

  template <typename F,
            typename D = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *BufAs<D*>() = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  /// True if a callable is held.
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invokes the held callable. Precondition: engaged.
  void operator()() { ops_->invoke(buf_); }

  /// Destroys the held callable (if any) and disengages.
  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// Whether a callable of type F would be stored inline (tests/benchmarks).
  template <typename F>
  static constexpr bool StoredInline() {
    return FitsInline<std::remove_cvref_t<F>>();
  }

 private:
  struct Ops {
    void (*invoke)(void* buf);
    // Move-constructs dst's representation from src's and destroys src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* buf) noexcept;
  };

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename T>
  T* BufAs() noexcept {
    return std::launder(reinterpret_cast<T*>(buf_));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      /*invoke=*/[](void* buf) {
        (*std::launder(reinterpret_cast<D*>(buf)))();
      },
      /*relocate=*/[](void* dst, void* src) noexcept {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      /*destroy=*/[](void* buf) noexcept {
        std::launder(reinterpret_cast<D*>(buf))->~D();
      },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      /*invoke=*/[](void* buf) {
        (**std::launder(reinterpret_cast<D**>(buf)))();
      },
      /*relocate=*/[](void* dst, void* src) noexcept {
        *static_cast<D**>(dst) = *std::launder(reinterpret_cast<D**>(src));
      },
      /*destroy=*/[](void* buf) noexcept {
        delete *std::launder(reinterpret_cast<D**>(buf));
      },
  };

  void MoveFrom(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace ccsim::sim

#endif  // CCSIM_SIM_EVENT_FN_H_
