#include "ccsim/sim/arena.h"

#include <cstdlib>
#include <cstring>

#if CCSIM_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#define CCSIM_ARENA_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#define CCSIM_ARENA_UNPOISON(addr, size) \
  ASAN_UNPOISON_MEMORY_REGION(addr, size)
#else
#define CCSIM_ARENA_POISON(addr, size) ((void)0)
#define CCSIM_ARENA_UNPOISON(addr, size) ((void)0)
#endif

namespace ccsim::sim {

namespace {
bool g_passthrough_for_test = false;

bool EnvPassthrough() {
  const char* v = std::getenv("CCSIM_ARENA_PASSTHROUGH");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}
}  // namespace

void Arena::SetPassthroughForTest(bool on) { g_passthrough_for_test = on; }

Arena::Arena()
    : free_lists_(kMaxSmall / kAlign + 1, nullptr),
      passthrough_(g_passthrough_for_test || EnvPassthrough()) {}

Arena::~Arena() {
  for (unsigned char* page : pages_) {
    CCSIM_ARENA_UNPOISON(page, kPageBytes);
    ::operator delete(page, std::align_val_t{kAlign});
  }
}

void Arena::NewPage() {
  // First page is index 0 (lazy); afterwards advance, reusing pages kept
  // across Reset() before chaining a new one.
  if (!pages_.empty()) ++current_page_;
  if (current_page_ >= pages_.size()) {
    auto* page = static_cast<unsigned char*>(
        ::operator new(kPageBytes, std::align_val_t{kAlign}));
    CCSIM_ARENA_POISON(page, kPageBytes);
    pages_.push_back(page);
  }
  cursor_ = 0;
}

void* Arena::AllocateSmall(std::size_t rounded, std::size_t cls) {
  FreeBlock*& head = free_lists_[cls];
  if (head != nullptr) {
    FreeBlock* block = head;
    // Unpoison before touching the embedded link: freed blocks are fully
    // poisoned, including the link word.
    CCSIM_ARENA_UNPOISON(block, rounded);
    head = block->next;
    return block;
  }
  if (pages_.empty() || cursor_ + rounded > kPageBytes) {
    // The page tail (< kMaxSmall) is abandoned, not free-listed: with 64 KiB
    // pages the waste is bounded by ~12% worst case and the bookkeeping
    // stays trivial. `pages_.empty()` makes the first allocation lazy so an
    // unused Simulation costs no pages.
    NewPage();
  }
  unsigned char* p = pages_[current_page_] + cursor_;
  cursor_ += rounded;
  CCSIM_ARENA_UNPOISON(p, rounded);
  return p;
}

void* Arena::Allocate(std::size_t size) {
  ++total_allocations_;
  if (passthrough_) return ::operator new(size);
  std::size_t cls = ClassOf(size);
  std::size_t rounded = cls * kAlign;
  if (rounded > kMaxSmall) return ::operator new(size);
  ++live_blocks_;
  live_bytes_ += rounded;
  return AllocateSmall(rounded, cls);
}

void Arena::Deallocate(void* p, std::size_t size) noexcept {
  if (passthrough_) {
    ::operator delete(p);
    return;
  }
  std::size_t cls = ClassOf(size);
  std::size_t rounded = cls * kAlign;
  if (rounded > kMaxSmall) {
    ::operator delete(p);
    return;
  }
  CCSIM_CHECK(live_blocks_ > 0);
  --live_blocks_;
  live_bytes_ -= rounded;
  auto* block = static_cast<FreeBlock*>(p);
  block->next = free_lists_[cls];
  free_lists_[cls] = block;
  // Poison the whole block, embedded free-list link included — the next
  // Allocate of this class unpoisons before reading it. Byte 0 of a freed
  // block must trap like any other byte.
  CCSIM_ARENA_POISON(p, rounded);
}

void Arena::Reset() {
  CCSIM_CHECK_MSG(live_blocks_ == 0 || !pages_.empty(),
                  "Reset of a corrupted arena");
  for (FreeBlock*& head : free_lists_) head = nullptr;
  for (unsigned char* page : pages_) CCSIM_ARENA_POISON(page, kPageBytes);
  current_page_ = 0;
  cursor_ = 0;
  live_blocks_ = 0;
  live_bytes_ = 0;
}

void* AllocateWithHeader(Arena* arena, std::size_t size) {
  std::size_t total = size + Arena::kAlign;
  ArenaBlockHeader header{arena, total};
  void* raw;
  if (arena != nullptr && !arena->passthrough() && total <= Arena::kMaxSmall) {
    raw = arena->Allocate(total);
  } else {
    raw = ::operator new(total);
    header.arena = nullptr;
  }
  std::memcpy(raw, &header, sizeof(header));
  return static_cast<unsigned char*>(raw) + Arena::kAlign;
}

void DeallocateWithHeader(void* payload) noexcept {
  if (payload == nullptr) return;
  void* raw = static_cast<unsigned char*>(payload) - Arena::kAlign;
  ArenaBlockHeader header;
  std::memcpy(&header, raw, sizeof(header));
  if (header.arena != nullptr) {
    header.arena->Deallocate(raw, header.size);
  } else {
    ::operator delete(raw);
  }
}

}  // namespace ccsim::sim
