#ifndef CCSIM_SIM_STREAM_IDS_H_
#define CCSIM_SIM_STREAM_IDS_H_

#include <cstdint>

namespace ccsim::sim::stream_ids {

/// Central registry of RandomStream id assignments.
///
/// Every RandomStream in the model is constructed as (master_seed,
/// stream_id); SplitMix64 decorrelates the pair into an engine seed
/// (random.cc). Two components that accidentally share a stream id draw
/// *identical* variate sequences - a correlation bug that no test notices
/// until a sweep produces subtly wrong curves - and an id that silently
/// changes breaks bit-reproducibility of every cached result keyed on the
/// old schedule. So ids are assigned here, once, in non-overlapping bands,
/// and nowhere else: `ccsim_analyze` (rng-stream pass) rejects RandomStream
/// constructions in src/ whose stream-id argument does not reference a
/// constant from this registry.
///
/// The values are frozen: they are part of the reproducibility contract
/// (determinism goldens, the committed bench result cache). Add new bands
/// above the existing ones; never renumber.
///
/// The generated stream-map table in EXPERIMENTS.md is derived from this
/// file by `tools/ccsim_analyze --emit-stream-map`; the contiguous doc
/// comment directly above each constant is its table entry.

/// Fake-restart respecification draws: System::restart_rng_ redraws a
/// restarted transaction's access set when WorkloadParams::fake_restarts.
inline constexpr std::uint64_t kFakeRestartStream = 777;

/// Per-node resource band: node n owns ids [base + n*stride, base +
/// (n+1)*stride). Within a node's band, id 0 is the disk-pick stream and
/// ids 1..NumDisks are the per-disk access-time streams (ResourceManager).
inline constexpr std::uint64_t kNodeResourceStreamBase = 1000;

/// Width of one node's resource band (bounds disks per node at 63).
inline constexpr std::uint64_t kNodeResourceStreamStride = 64;

/// Per-node model variates (instruction-count draws), one stream per node:
/// base + node id (System::node_rngs_).
inline constexpr std::uint64_t kNodeVariateStreamBase = 5000;

/// Fault injection: per-delivery message-drop decisions (FaultInjector).
inline constexpr std::uint64_t kFaultDropStream = 8900;

/// Fault injection: transient disk-error decisions (FaultInjector).
inline constexpr std::uint64_t kFaultDiskStream = 8901;

/// Fault injection: per-node crash/recovery schedules, one stream per
/// processing node: base + node id (FaultInjector; node 0 never fails).
inline constexpr std::uint64_t kFaultCrashStreamBase = 9000;

/// Terminal band: one stream per terminal, base + terminal index, driving
/// think times and access-set generation (workload::Source).
inline constexpr std::uint64_t kTerminalStreamBase = 100000;

}  // namespace ccsim::sim::stream_ids

#endif  // CCSIM_SIM_STREAM_IDS_H_
