#ifndef CCSIM_SIM_ARENA_H_
#define CCSIM_SIM_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "ccsim/sim/check.h"

// Manual ASan poisoning of arena free space: recycled blocks and page tails
// are poisoned so a use-after-free through the arena is caught exactly like
// one through malloc. Compiled out entirely in non-sanitized builds.
#if defined(__SANITIZE_ADDRESS__)
#define CCSIM_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CCSIM_ARENA_ASAN 1
#endif
#endif
#ifndef CCSIM_ARENA_ASAN
#define CCSIM_ARENA_ASAN 0
#endif

namespace ccsim::sim {

/// Per-simulation bump allocator with size-class recycling, built for the
/// kernel's churny fixed-population allocations: coroutine frames,
/// Completion control blocks, and Transaction state. Design (DESIGN.md
/// decision #12):
///
///   - Page-chained: memory comes in 64 KiB pages that are never returned
///     individually; the arena's footprint is the high-water mark of live
///     bytes, not the sum of allocations. A megascale run allocates and
///     frees millions of frames but the arena stays at the size of the
///     largest concurrent population.
///   - Size-class free lists: Deallocate pushes the block onto a free list
///     for its 16-byte size class and Allocate pops from it, so the steady
///     state is completely malloc-free *and* bump-pointer-free — unlike a
///     pure bump arena, long runs do not grow without bound.
///   - Reset-per-run: the arena belongs to one Simulation and dies (or is
///     Reset) with it. Nothing allocated from it may outlive the
///     Simulation; member order in Simulation guarantees the arena is
///     destroyed last (see simulation.h).
///   - ASan-poisoned free space: free-listed blocks and untouched page
///     tails are poisoned; Reset() re-poisons every page.
///
/// Blocks larger than kMaxSmall (no size class) fall through to global
/// new/delete — they are rare (no steady-state allocation in this codebase
/// is that big) and tracking them per-block would cost more than it saves.
///
/// Not thread-safe, like the Simulation that owns it.
class Arena {
 public:
  /// Every block is aligned (and sized in multiples of) 16 bytes — enough
  /// for every type the kernel routes through the arena (static_asserted at
  /// the use sites).
  static constexpr std::size_t kAlign = 16;
  static constexpr std::size_t kPageBytes = 64 * 1024;
  /// Largest size served from pages/free lists (must divide kPageBytes).
  static constexpr std::size_t kMaxSmall = 8 * 1024;

  Arena();
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a 16-aligned block of at least `size` bytes. Never null;
  /// page exhaustion throws std::bad_alloc like global new.
  void* Allocate(std::size_t size);

  /// Returns a block to its size-class free list. `size` must be the size
  /// passed to Allocate.
  void Deallocate(void* p, std::size_t size) noexcept;

  /// Rewinds every page and clears the free lists, keeping the pages for
  /// reuse. The caller asserts nothing allocated from the arena is still
  /// live. Poisons all page memory under ASan.
  void Reset();

  // --- Introspection (dump sections, tests) ------------------------------
  /// Total bytes of pages chained (the footprint; high-water, never shrinks
  /// until destruction).
  std::size_t bytes_reserved() const { return pages_.size() * kPageBytes; }
  /// Blocks currently allocated and not yet returned.
  std::size_t live_blocks() const { return live_blocks_; }
  /// Bytes currently allocated (rounded to size classes).
  std::size_t live_bytes() const { return live_bytes_; }
  /// Lifetime Allocate() count (passthrough and large blocks included).
  std::uint64_t total_allocations() const { return total_allocations_; }

  /// When true, this arena forwards every Allocate/Deallocate to global
  /// new/delete. Latched at construction from SetPassthroughForTest (and
  /// the CCSIM_ARENA_PASSTHROUGH environment variable), so one arena is
  /// consistently arena-backed or consistently malloc-backed for its whole
  /// life. Exists for the arena-vs-malloc determinism pin and for A/B
  /// memory measurements; simulation behavior must not depend on it.
  bool passthrough() const { return passthrough_; }

  /// Makes arenas constructed from now on passthrough (test hook).
  static void SetPassthroughForTest(bool on);

 private:
  struct FreeBlock {
    FreeBlock* next;
  };

  static std::size_t ClassOf(std::size_t size) {
    return (size + kAlign - 1) / kAlign;  // 0 is unused (size 0 rounds to 1)
  }

  void* AllocateSmall(std::size_t rounded, std::size_t cls);
  void NewPage();

  std::vector<unsigned char*> pages_;
  std::size_t current_page_ = 0;  // pages_[current_page_] is being bumped
  std::size_t cursor_ = 0;        // bump offset into the current page
  std::vector<FreeBlock*> free_lists_;  // index = size class
  std::size_t live_blocks_ = 0;
  std::size_t live_bytes_ = 0;
  std::uint64_t total_allocations_ = 0;
  bool passthrough_ = false;
};

/// Header prepended to blocks whose deallocation site cannot name the arena
/// (coroutine frames: operator delete receives only the pointer). One
/// kAlign-sized slot keeps the payload aligned.
struct ArenaBlockHeader {
  Arena* arena;  // null: block came from global new
  std::size_t size;  // total size including this header
};
static_assert(sizeof(ArenaBlockHeader) <= Arena::kAlign);

/// Allocates `size` payload bytes preceded by a routing header. Uses
/// `arena` when given (and not passthrough), else global new.
void* AllocateWithHeader(Arena* arena, std::size_t size);

/// Frees a block from AllocateWithHeader, routing by its header.
void DeallocateWithHeader(void* payload) noexcept;

/// Minimal STL allocator over an Arena, for co-locating shared_ptr control
/// blocks with their objects via std::allocate_shared (Completions,
/// Transactions). Comparison is by arena identity.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {
    CCSIM_CHECK(arena != nullptr);
  }
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    static_assert(alignof(T) <= Arena::kAlign,
                  "over-aligned types cannot live in the arena");
    return static_cast<T*>(arena_->Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    arena_->Deallocate(p, n * sizeof(T));
  }

  Arena* arena() const noexcept { return arena_; }

  template <typename U>
  friend bool operator==(const ArenaAllocator& a,
                         const ArenaAllocator<U>& b) noexcept {
    return a.arena_ == b.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace ccsim::sim

#endif  // CCSIM_SIM_ARENA_H_
