#include "ccsim/sim/random.h"

#include "ccsim/sim/check.h"

namespace ccsim::sim {

namespace {
// SplitMix64: decorrelates (master_seed, stream_id) pairs into engine seeds.
std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

RandomStream::RandomStream(std::uint64_t master_seed, std::uint64_t stream_id) {
  std::uint64_t state = master_seed ^ (stream_id * 0xd1342543de82ef95ULL + 1);
  std::seed_seq seq{SplitMix64(state), SplitMix64(state), SplitMix64(state),
                    SplitMix64(state)};
  engine_.seed(seq);
}

double RandomStream::Exponential(double mean) {
  CCSIM_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0.0;
  ++draws_;
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

double RandomStream::Uniform(double lo, double hi) {
  CCSIM_CHECK(lo <= hi);
  ++draws_;
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t RandomStream::UniformInt(std::int64_t lo, std::int64_t hi) {
  CCSIM_CHECK(lo <= hi);
  ++draws_;
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool RandomStream::Bernoulli(double p) {
  CCSIM_CHECK(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  ++draws_;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

}  // namespace ccsim::sim
