#include "ccsim/sim/simulation.h"

#include <cinttypes>
#include <utility>

#include "ccsim/sim/check.h"

namespace ccsim::sim {

namespace {

// Installs `sim`'s diagnostic dump as the thread's check-failure hook for
// the duration of an event loop, restoring whatever was there before (loops
// can nest: an event handler may run a sub-simulation in tests).
class ScopedDumpHook {
 public:
  explicit ScopedDumpHook(Simulation* sim) : prev_(internal::g_check_dump) {
    internal::g_check_dump = {&Trampoline, sim};
  }
  ~ScopedDumpHook() { internal::g_check_dump = prev_; }
  ScopedDumpHook(const ScopedDumpHook&) = delete;
  ScopedDumpHook& operator=(const ScopedDumpHook&) = delete;

 private:
  static void Trampoline(void* arg) {
    static_cast<Simulation*>(arg)->DumpDiagnostics(stderr);
  }
  internal::CheckDumpHook prev_;
};

}  // namespace

Simulation::EventId Simulation::At(SimTime time, EventFn handler) {
  CCSIM_CHECK_MSG(time >= now_, "event scheduled in the past");
  return calendar_.Schedule(time, std::move(handler));
}

void Simulation::BeginEvent(const Calendar::Fired& fired) {
  in_event_ = true;
  current_event_time_ = fired.time;
  current_event_is_resume_ = (fired.kind == EventKind::kResume);
  if constexpr (kAuditEnabled) {
    if (fired_ring_.size() < kFiredRingSize) fired_ring_.resize(kFiredRingSize);
    fired_ring_[events_fired_ % kFiredRingSize] =
        FiredRecord{events_fired_, fired.time, current_event_is_resume_};
  }
  if (watchdog_.max_events != 0 && events_fired_ > watchdog_.max_events) {
    WatchdogFail("max-events limit exceeded");
  }
  if (watchdog_.max_stall > 0.0 &&
      now_ - last_progress_ > watchdog_.max_stall) {
    WatchdogFail("no progress within the stall limit (wedged or livelocked)");
  }
}

void Simulation::WatchdogFail(const char* what) {
  std::fprintf(stderr, "ccsim watchdog: %s\n", what);
  // Route through the sanctioned fatal path; the active dump hook (installed
  // by the running event loop) prints DumpDiagnostics before the abort.
  internal::CheckFailed("watchdog", __FILE__, __LINE__, what);
}

void Simulation::DumpDiagnostics(std::FILE* out) const {
  std::fprintf(out, "--- ccsim simulation diagnostic dump ---\n");
  std::fprintf(out, "sim clock: %.9f s\n", now_);
  std::fprintf(out, "events fired: %" PRIu64 "\n", events_fired_);
  std::fprintf(out, "pending events: %zu (next at %.9f s)\n", calendar_.size(),
               calendar_.NextTime());
  std::fprintf(out, "suspended processes: %zu\n", suspended_.size());
  std::fprintf(out, "last progress (commit) at: %.9f s%s\n", last_progress_,
               watchdog_.max_stall > 0.0 ? "" : " (stall watchdog off)");
  if (in_event_) {
    std::fprintf(out, "current event: t=%.9f s kind=%s\n", current_event_time_,
                 current_event_is_resume_ ? "resume" : "handler");
  } else {
    std::fprintf(out, "current event: none (outside dispatch)\n");
  }
  if constexpr (kAuditEnabled) {
    std::fprintf(out, "last fired events (audit ring, oldest first):\n");
    if (!fired_ring_.empty()) {
      for (std::size_t i = 0; i < kFiredRingSize; ++i) {
        // Records live at slot (seq % size) with 1-based seq; the slot after
        // the newest record is the oldest, so walk forward from there.
        const FiredRecord& r =
            fired_ring_[(events_fired_ + 1 + i) % kFiredRingSize];
        if (r.seq == 0) continue;  // never-written slot
        std::fprintf(out, "  #%" PRIu64 " t=%.9f s %s\n", r.seq, r.time,
                     r.is_resume ? "resume" : "handler");
      }
    }
  } else {
    std::fprintf(out, "last fired events: unavailable (build with "
                      "-DCCSIM_AUDIT=ON for the event ring buffer)\n");
  }
  for (const DumpSection& s : dump_sections_) {
    std::fprintf(out, "[%s]\n", s.label.c_str());
    s.fn(out);
  }
  std::fprintf(out, "--- end of dump ---\n");
}

void Simulation::Run() {
  stop_requested_ = false;
  ScopedDumpHook dump_hook(this);
  while (!stop_requested_) {
    auto fired = calendar_.PopNext();
    if (!fired) break;
    CCSIM_CHECK(fired->time >= now_);
    now_ = fired->time;
    ++events_fired_;
    BeginEvent(*fired);
    Dispatch(*fired);
    in_event_ = false;
  }
}

void Simulation::RunUntil(SimTime end) {
  CCSIM_CHECK_MSG(end >= now_, "RunUntil target in the past");
  stop_requested_ = false;
  ScopedDumpHook dump_hook(this);
  while (!stop_requested_) {
    if (calendar_.NextTime() > end) break;
    auto fired = calendar_.PopNext();
    if (!fired) break;
    now_ = fired->time;
    ++events_fired_;
    BeginEvent(*fired);
    Dispatch(*fired);
    in_event_ = false;
  }
  if (now_ < end) now_ = end;
}

}  // namespace ccsim::sim
