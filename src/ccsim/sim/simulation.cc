#include "ccsim/sim/simulation.h"

#include <utility>

#include "ccsim/sim/check.h"

namespace ccsim::sim {

Simulation::EventId Simulation::At(SimTime time, EventFn handler) {
  CCSIM_CHECK_MSG(time >= now_, "event scheduled in the past");
  return calendar_.Schedule(time, std::move(handler));
}

void Simulation::Run() {
  stop_requested_ = false;
  while (!stop_requested_) {
    auto fired = calendar_.PopNext();
    if (!fired) break;
    CCSIM_CHECK(fired->time >= now_);
    now_ = fired->time;
    ++events_fired_;
    Dispatch(*fired);
  }
}

void Simulation::RunUntil(SimTime end) {
  CCSIM_CHECK_MSG(end >= now_, "RunUntil target in the past");
  stop_requested_ = false;
  while (!stop_requested_) {
    if (calendar_.NextTime() > end) break;
    auto fired = calendar_.PopNext();
    if (!fired) break;
    now_ = fired->time;
    ++events_fired_;
    Dispatch(*fired);
  }
  if (now_ < end) now_ = end;
}

}  // namespace ccsim::sim
