#ifndef CCSIM_SIM_CHECK_H_
#define CCSIM_SIM_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ccsim::sim::internal {

/// Diagnostic-dump hook: when a Simulation is running it installs itself
/// here (thread-local; the parallel experiment runner executes independent
/// simulations on multiple threads), so that a fatal check failure prints
/// the simulation clock, the event being dispatched, and any registered
/// dump sections before the process dies. The hook must not throw and must
/// tolerate being re-entered (a check failing inside the dump itself).
struct CheckDumpHook {
  void (*fn)(void* arg) = nullptr;
  void* arg = nullptr;
};
inline thread_local CheckDumpHook g_check_dump;
inline thread_local bool g_check_dump_active = false;

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "ccsim check failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? ": " : "", msg);
  if (g_check_dump.fn != nullptr && !g_check_dump_active) {
    g_check_dump_active = true;
    g_check_dump.fn(g_check_dump.arg);
  }
  std::abort();  // ccsim-lint: no-abort-ok(the one sanctioned fatal exit)
}

}  // namespace ccsim::sim::internal

/// Invariant check for simulation-internal consistency. Violations indicate a
/// bug in the simulator (never a property of the modeled system), so the
/// process aborts with a source location.
#define CCSIM_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond))                                                          \
      ::ccsim::sim::internal::CheckFailed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define CCSIM_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond))                                                           \
      ::ccsim::sim::internal::CheckFailed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

/// Audit-only invariant check: compiled to the same abort-with-location as
/// CCSIM_CHECK in CCSIM_AUDIT builds (-DCCSIM_AUDIT=ON), and to nothing in
/// normal builds. Use for sweeps that are too expensive for the hot path
/// (calendar heap ordering, lock-table queue consistency, waits-for-graph
/// integrity, 2PC phase legality).
#ifdef CCSIM_AUDIT
#define CCSIM_DCHECK(cond) CCSIM_CHECK(cond)
#define CCSIM_DCHECK_MSG(cond, msg) CCSIM_CHECK_MSG(cond, msg)
#else
// The condition is referenced in an unevaluated context so that variables
// used only by audit checks do not trigger -Wunused warnings in normal
// builds; it is never executed.
#define CCSIM_DCHECK(cond)            \
  do {                                \
    (void)sizeof((cond) ? 1 : 0);     \
  } while (0)
#define CCSIM_DCHECK_MSG(cond, msg)   \
  do {                                \
    (void)sizeof((cond) ? 1 : 0);     \
    (void)sizeof(msg);                \
  } while (0)
#endif

namespace ccsim::sim {

/// True in CCSIM_AUDIT builds; lets call sites skip the *computation* of an
/// expensive invariant sweep, not just the check.
#ifdef CCSIM_AUDIT
inline constexpr bool kAuditEnabled = true;
#else
inline constexpr bool kAuditEnabled = false;
#endif

}  // namespace ccsim::sim

#endif  // CCSIM_SIM_CHECK_H_
