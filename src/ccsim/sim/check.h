#ifndef CCSIM_SIM_CHECK_H_
#define CCSIM_SIM_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ccsim::sim::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "ccsim check failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? ": " : "", msg);
  std::abort();
}

}  // namespace ccsim::sim::internal

/// Invariant check for simulation-internal consistency. Violations indicate a
/// bug in the simulator (never a property of the modeled system), so the
/// process aborts with a source location.
#define CCSIM_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond))                                                          \
      ::ccsim::sim::internal::CheckFailed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define CCSIM_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond))                                                           \
      ::ccsim::sim::internal::CheckFailed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#endif  // CCSIM_SIM_CHECK_H_
