#include "ccsim/sim/calendar.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "ccsim/sim/check.h"

namespace ccsim::sim {

namespace {
// Audit sweeps are O(pending events); run one every kAuditPeriod calendar
// operations so audit builds stay usable on long runs.
constexpr std::uint64_t kAuditPeriod = 64;
}  // namespace

Calendar::EventId Calendar::Schedule(SimTime time, Handler handler) {
  CCSIM_CHECK_MSG(time == time, "event scheduled at NaN time");
  CCSIM_CHECK_MSG(time < kNever, "event scheduled at infinite time");
  EventId id = next_id_++;
  heap_.push_back(Entry{time, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  handlers_.emplace(id, std::move(handler));
  if (kAuditEnabled && ++audit_tick_ % kAuditPeriod == 0) AuditInvariants();
  return id;
}

bool Calendar::Cancel(EventId id) { return handlers_.erase(id) > 0; }

void Calendar::SkipCancelled() {
  while (!heap_.empty() &&
         handlers_.find(heap_.front().id) == handlers_.end()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

std::optional<Calendar::Fired> Calendar::PopNext() {
  SkipCancelled();
  if (heap_.empty()) return std::nullopt;
  Entry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  auto it = handlers_.find(top.id);
  Fired fired{top.time, top.id, std::move(it->second)};
  handlers_.erase(it);
  CCSIM_DCHECK_MSG(top.time >= last_fired_, "simulated time ran backwards");
  last_fired_ = top.time;
  if (kAuditEnabled && ++audit_tick_ % kAuditPeriod == 0) AuditInvariants();
  return fired;
}

SimTime Calendar::NextTime() const {
  // const_cast-free variant of SkipCancelled: scan from the top lazily by
  // copying; the heap is small relative to total events, and NextTime is only
  // used on control paths, not per-event.
  auto* self = const_cast<Calendar*>(this);
  self->SkipCancelled();
  return heap_.empty() ? kNever : heap_.front().time;
}

void Calendar::AuditInvariants() const {
  if (!kAuditEnabled) return;
  CCSIM_DCHECK_MSG(std::is_heap(heap_.begin(), heap_.end(), Later{}),
                   "calendar heap property violated");
  CCSIM_DCHECK_MSG(handlers_.size() <= heap_.size(),
                   "more live handlers than heap entries");
  std::unordered_set<EventId> pending;
  pending.reserve(heap_.size());
  for (const Entry& e : heap_) {
    CCSIM_DCHECK_MSG(e.id < next_id_, "heap entry with unissued event id");
    CCSIM_DCHECK_MSG(pending.insert(e.id).second,
                     "duplicate event id in calendar heap");
    // Live events must not predate the last fired event; cancelled leftovers
    // may (their handler is gone, they will be skipped).
    if (handlers_.count(e.id) != 0) {
      CCSIM_DCHECK_MSG(e.time >= last_fired_,
                       "pending event earlier than the last fired event");
    }
  }
  // ccsim-lint: unordered-iter-ok(membership checks only; no order-dependent effects)
  for (const auto& kv : handlers_) {
    CCSIM_DCHECK_MSG(pending.count(kv.first) == 1,
                     "live handler without a heap entry");
  }
}

}  // namespace ccsim::sim
