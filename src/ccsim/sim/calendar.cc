#include "ccsim/sim/calendar.h"

#include <utility>

#include "ccsim/sim/check.h"

namespace ccsim::sim {

Calendar::EventId Calendar::Schedule(SimTime time, Handler handler) {
  CCSIM_CHECK_MSG(time == time, "event scheduled at NaN time");
  CCSIM_CHECK_MSG(time < kNever, "event scheduled at infinite time");
  EventId id = next_id_++;
  heap_.push(Entry{time, id});
  handlers_.emplace(id, std::move(handler));
  return id;
}

bool Calendar::Cancel(EventId id) { return handlers_.erase(id) > 0; }

void Calendar::SkipCancelled() {
  while (!heap_.empty() && handlers_.find(heap_.top().id) == handlers_.end()) {
    heap_.pop();
  }
}

std::optional<Calendar::Fired> Calendar::PopNext() {
  SkipCancelled();
  if (heap_.empty()) return std::nullopt;
  Entry top = heap_.top();
  heap_.pop();
  auto it = handlers_.find(top.id);
  Fired fired{top.time, top.id, std::move(it->second)};
  handlers_.erase(it);
  return fired;
}

SimTime Calendar::NextTime() const {
  // const_cast-free variant of SkipCancelled: scan from the top lazily by
  // copying; the heap is small relative to total events, and NextTime is only
  // used on control paths, not per-event.
  auto* self = const_cast<Calendar*>(this);
  self->SkipCancelled();
  return heap_.empty() ? kNever : heap_.top().time;
}

}  // namespace ccsim::sim
