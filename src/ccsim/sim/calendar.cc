#include "ccsim/sim/calendar.h"

#include <bit>
#include <cmath>
#include <limits>
#include <unordered_set>
#include <utility>

#include "ccsim/sim/check.h"

namespace ccsim::sim {

namespace {
// Audit sweeps are O(pending events); run one every kAuditPeriod calendar
// operations so audit builds stay usable on long runs.
constexpr std::uint64_t kAuditPeriod = 64;

// Floor on rung bucket widths: keeping widths normal keeps 1/width finite,
// so the bucket mapping never sees an infinity or NaN.
constexpr double kMinWidth = std::numeric_limits<double>::min();

// Smallest double strictly greater than t. Rung horizons that absorb
// existing entries are set to NextUp(max time): anything wider could route a
// later insert into this rung even though earlier events for it still sit in
// an outer bucket that has not been reached yet.
SimTime NextUp(SimTime t) { return std::nextafter(t, kNever); }
}  // namespace

std::uint32_t Calendar::AllocSlot() {
  if (free_head_ != kNilSlot) {
    std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    slots_[index].next_free = kNilSlot;
    return index;
  }
  CCSIM_CHECK_MSG(slots_.size() < kMaxSlots, "calendar slot slab exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Calendar::FreeSlot(std::uint32_t index) {
  Slot& s = slots_[index];
  s.fn.Reset();
  s.resume = nullptr;
  s.pending_seq = 0;  // kills this slot's bucket entry (lazy deletion)
  ++s.gen;            // invalidates every outstanding id for this slot
  s.next_free = free_head_;
  free_head_ = index;
}

std::uint32_t Calendar::BucketIndex(const Rung& r, SimTime t) {
  double off = (t - r.base) * r.inv_width;
  if (!(off > 0.0)) return 0;
  if (off >= static_cast<double>(r.nbuckets)) return r.nbuckets - 1;
  return static_cast<std::uint32_t>(off);
}

void Calendar::ShapeRung(Rung& r, SimTime base, double width,
                         std::uint32_t nbuckets) {
  CCSIM_DCHECK(width >= kMinWidth);
  r.base = base;
  r.width = width;
  r.inv_width = 1.0 / width;
  r.horizon = base + static_cast<double>(nbuckets) * width;
  r.nbuckets = nbuckets;
  r.cur = 0;
  r.count = 0;
  if (r.buckets.size() < nbuckets) r.buckets.resize(nbuckets);
  r.occupied.assign((nbuckets + 63) >> 6, 0);
}

std::uint32_t Calendar::InsertIntoRung(Rung& r, Entry e) {
  std::uint32_t b = BucketIndex(r, e.time);
  std::vector<Entry>& bucket = r.buckets[b];
  if (bucket.empty()) SetBit(r, b);
  bucket.push_back(e);
  ++r.count;
  if (b < r.cur) r.cur = b;
  return b;
}

std::int64_t Calendar::Place(Entry e) {
  const SimTime t = e.time;
  if (depth_ == 0) {
    // The ladder is empty; any pending events are all in overflow. If the
    // drained bottom rung still covers this event (and its horizon still
    // respects the overflow minimum, which may have dropped since), revive
    // it as-is: popped rungs leave an all-zero bitmap behind, so this is
    // free — the common case for shallow queues, where every pop drains the
    // ladder.
    Rung& r0 = rungs_[0];
    if (r0.nbuckets != 0 && t >= r0.base && t < r0.horizon &&
        r0.horizon <= top_min_) {
      CCSIM_DCHECK(r0.count == 0);
      depth_ = 1;
      return InsertIntoRung(r0, e);
    }
    // Otherwise open a fresh bottom rung at the current time — sized by the
    // recent inter-fire gap, and never reaching past the earliest overflow
    // event, which keeps every rung-resident time below every overflow time.
    double width = std::max(last_gap_, kMinWidth);
    SimTime horizon = std::min(
        last_fired_ + static_cast<double>(kDefaultBuckets) * width, top_min_);
    if (t >= horizon) {
      top_.push_back(e);
      if (t < top_min_) top_min_ = t;
      return -1;
    }
    Rung& r = rungs_[0];
    ShapeRung(r, last_fired_, width, kDefaultBuckets);
    r.horizon = horizon;
    depth_ = 1;
    return InsertIntoRung(r, e);
  }
  Rung& deepest = rungs_[depth_ - 1];
  if (t < deepest.horizon) {
    if (t >= deepest.base) {
      return InsertIntoRung(deepest, e);
    }
    // The event precedes the deepest refinement — possible only at the
    // deepest rung, since every rung's base is covered by the rung below
    // it. Open an under-rung spanning the uncovered [last_fired_, base) gap.
    CCSIM_CHECK_MSG(depth_ < kMaxRungs, "calendar rung stack overflow");
    SimTime bound = deepest.base;
    double width = std::max((bound - last_fired_) /
                                static_cast<double>(kDefaultBuckets),
                            kMinWidth);
    Rung& under = rungs_[depth_];
    ShapeRung(under, last_fired_, width, kDefaultBuckets);
    under.horizon = bound;
    ++depth_;
    return InsertIntoRung(under, e);
  }
  for (std::size_t d = depth_ - 1; d-- > 0;) {
    Rung& r = rungs_[d];
    if (t < r.horizon) {
      InsertIntoRung(r, e);
      return -1;  // not the deepest rung: never a head location
    }
  }
  top_.push_back(e);
  if (t < top_min_) top_min_ = t;
  return -1;
}

void Calendar::Rebase() {
  SimTime lo = kNever;
  SimTime hi = 0.0;
  std::size_t n_live = 0;
  for (const Entry& e : top_) {
    if (!EntryLive(e)) continue;
    if (n_live == 0) {
      lo = e.time;
      hi = e.time;
    } else {
      if (e.time < lo) lo = e.time;
      if (e.time > hi) hi = e.time;
    }
    ++n_live;
  }
  CCSIM_DCHECK(dead_ >= top_.size() - n_live);
  dead_ -= top_.size() - n_live;  // cancelled overflow entries drop here
  if (n_live == 0) {
    top_.clear();
    top_min_ = kNever;
    return;
  }
  std::uint32_t n = kMinBuckets;
  while (n < n_live && n < kMaxBuckets) n <<= 1;
  double width =
      std::max((hi - lo) / static_cast<double>(n), kMinWidth);
  Rung& r = rungs_[0];
  ShapeRung(r, lo, width, n);
  // The overflow list is drained in full, so a generous horizon is safe; it
  // just has to strictly cover hi so a later insert at hi routes here too.
  if (!(r.horizon > hi)) r.horizon = NextUp(hi);
  for (const Entry& e : top_) {
    if (EntryLive(e)) InsertIntoRung(r, e);
  }
  top_.clear();
  top_min_ = kNever;
  depth_ = 1;
}

bool Calendar::SplitBucket(Rung& r, std::uint32_t b) {
  std::vector<Entry>& bucket = r.buckets[b];
  SimTime lo = bucket[0].time;
  SimTime hi = bucket[0].time;
  for (const Entry& e : bucket) {
    if (e.time < lo) lo = e.time;
    if (e.time > hi) hi = e.time;
  }
  if (lo == hi) return false;             // all ties: a scan fires them in seq order
  if (depth_ >= kMaxRungs) return false;  // pathological depth: degrade to scans
  double width = std::max((hi - lo) / static_cast<double>(kChildBuckets),
                          kMinWidth);
  Rung& child = rungs_[depth_];
  ShapeRung(child, lo, width, kChildBuckets);
  // Exact horizon: events later than hi belong to this parent bucket's
  // remaining span, and must not be captured by the child.
  child.horizon = NextUp(hi);
  ++depth_;
  for (const Entry& e : bucket) InsertIntoRung(child, e);
  r.count -= bucket.size();
  bucket.clear();
  ClearBit(r, b);
  return true;
}

std::uint32_t Calendar::FirstOccupied(const Rung& r) const {
  std::size_t w = r.cur >> 6;
  std::uint64_t word = r.occupied[w] & (~0ull << (r.cur & 63));
  while (word == 0) {
    ++w;
    CCSIM_CHECK_MSG(w < r.occupied.size(),
                    "calendar rung count/bitmap out of sync");
    word = r.occupied[w];
  }
  return static_cast<std::uint32_t>((w << 6) + std::countr_zero(word));
}

bool Calendar::RefreshHead(Head* head) {
  for (;;) {
    while (depth_ > 0 && rungs_[depth_ - 1].count == 0) --depth_;
    if (depth_ == 0) {
      if (top_.empty()) {
        next_time_ = kNever;
        head_valid_ = false;
        return false;
      }
      Rebase();
      continue;
    }
    Rung& r = rungs_[depth_ - 1];
    std::uint32_t b = FirstOccupied(r);
    r.cur = b;
    std::vector<Entry>& bucket = r.buckets[b];
    // Compact lazily-cancelled entries out of the current bucket.
    for (std::size_t i = 0; i < bucket.size();) {
      if (EntryLive(bucket[i])) {
        ++i;
        continue;
      }
      bucket[i] = bucket.back();
      bucket.pop_back();
      --r.count;
      CCSIM_DCHECK(dead_ > 0);
      --dead_;
    }
    if (bucket.empty()) {
      ClearBit(r, b);
      continue;
    }
    if (bucket.size() > kSplitMax && SplitBucket(r, b)) continue;
    std::size_t best = 0;
    for (std::size_t i = 1; i < bucket.size(); ++i) {
      if (Earlier(bucket[i], bucket[best])) best = i;
    }
    next_time_ = bucket[best].time;
    if (head != nullptr) {
      head->rung = depth_ - 1;
      head->bucket = b;
      head->index = best;
      head_valid_ = (head == &head_);
    }
    return true;
  }
}

void Calendar::RemoveAt(const Head& head) {
  Rung& r = rungs_[head.rung];
  std::vector<Entry>& bucket = r.buckets[head.bucket];
  bucket[head.index] = bucket.back();
  bucket.pop_back();
  --r.count;
  if (bucket.empty()) ClearBit(r, head.bucket);
}

Calendar::EventId Calendar::ScheduleSlot(SimTime time, std::uint32_t slot) {
  CCSIM_CHECK_MSG(next_seq_ < kMaxSeq, "calendar event seq space exhausted");
  std::uint64_t seq = next_seq_++;
  Slot& s = slots_[slot];
  s.pending_seq = seq;
  s.time = time;
  Entry e{time, (seq << kSlotBits) | slot};
  if (live_ == 0 && dead_ == 0) {
    solo_ = e;
    solo_valid_ = true;
    next_time_ = time;
    ++live_;
    MaybeAudit();
    return MakeId(s.gen, slot);
  }
  if (solo_valid_) {
    // A second event arrived: demote the parked one into the ladder. It is
    // the current minimum over an otherwise-empty ladder, so its location
    // (when it lands in a rung) is the head.
    solo_valid_ = false;
    std::int64_t sb = Place(solo_);
    if (sb >= 0) {
      const Rung& r = rungs_[depth_ - 1];
      head_ = Head{depth_ - 1, static_cast<std::uint32_t>(sb),
                   r.buckets[static_cast<std::uint32_t>(sb)].size() - 1};
      head_valid_ = true;
    } else {
      head_valid_ = false;
    }
  }
  std::int64_t b = Place(e);
  if (time < next_time_) {
    next_time_ = time;
    // A strict undercut of the exact previous minimum is the unique live
    // minimum, so if it landed in the deepest rung it IS the head — point
    // the cache at it (it was just pushed, so it sits at the bucket's back).
    // Anywhere else (overflow, or an outer rung when the deepest holds only
    // cancelled entries), fall back to a re-locate on the next pop.
    if (b >= 0) {
      const Rung& r = rungs_[depth_ - 1];
      head_ = Head{depth_ - 1, static_cast<std::uint32_t>(b),
                   r.buckets[static_cast<std::uint32_t>(b)].size() - 1};
      head_valid_ = true;
    } else {
      head_valid_ = false;
    }
  }
  ++live_;
  MaybeAudit();
  return MakeId(s.gen, slot);
}

// ccsim-analyze: hot-path(every timed action in the simulation funnels here)
Calendar::EventId Calendar::Schedule(SimTime time, EventFn fn) {
  CCSIM_CHECK_MSG(time == time, "event scheduled at NaN time");
  CCSIM_CHECK_MSG(time < kNever, "event scheduled at infinite time");
  CCSIM_CHECK_MSG(time >= last_fired_, "event scheduled in the simulated past");
  CCSIM_CHECK_MSG(static_cast<bool>(fn), "event scheduled with empty handler");
  std::uint32_t slot = AllocSlot();
  slots_[slot].fn = std::move(fn);
  return ScheduleSlot(time, slot);
}

// ccsim-analyze: hot-path(every coroutine wakeup funnels here)
Calendar::EventId Calendar::ScheduleResume(SimTime time,
                                           std::coroutine_handle<> h) {
  CCSIM_CHECK_MSG(time == time, "wakeup scheduled at NaN time");
  CCSIM_CHECK_MSG(time < kNever, "wakeup scheduled at infinite time");
  CCSIM_CHECK_MSG(time >= last_fired_,
                  "wakeup scheduled in the simulated past");
  CCSIM_CHECK_MSG(h != nullptr, "wakeup scheduled for a null coroutine");
  std::uint32_t slot = AllocSlot();
  slots_[slot].resume = h;
  return ScheduleSlot(time, slot);
}

// ccsim-analyze: hot-path(fired per timeout rearm; lazy cancel keeps it O(1))
bool Calendar::Cancel(EventId id) {
  std::uint32_t slot = static_cast<std::uint32_t>(id);
  std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen ||
      slots_[slot].pending_seq == 0) {
    return false;
  }
  CCSIM_CHECK_MSG(slots_[slot].resume == nullptr,
                  "cancelled a coroutine wakeup event");
  SimTime time = slots_[slot].time;
  FreeSlot(slot);
  CCSIM_CHECK(live_ > 0);
  --live_;
  if (solo_valid_ && solo_.slot() == slot) {
    // The register holds the only copy of this event; drop it outright.
    solo_valid_ = false;
    next_time_ = kNever;
    CCSIM_DCHECK(live_ == 0 && dead_ == 0);
  } else {
    // The bucket entry goes stale and is compacted on the next scan.
    // Cancelling a non-head event leaves the cached head untouched (removal
    // is lazy, so bucket indices are stable); cancelling at the head time
    // forces a re-locate to keep next_time_ exact.
    ++dead_;
    if (time == next_time_) RefreshHead(&head_);
  }
  MaybeAudit();
  return true;
}

// ccsim-analyze: hot-path(the event-loop dequeue; runs once per event)
std::optional<Calendar::Fired> Calendar::PopNext() {
  Entry e;
  if (solo_valid_) {
    e = solo_;
    solo_valid_ = false;  // the register held the only copy
  } else {
    if (!head_valid_ && !RefreshHead(&head_)) return std::nullopt;
    e = rungs_[head_.rung].buckets[head_.bucket][head_.index];
    RemoveAt(head_);
  }
  Slot& s = slots_[e.slot()];
  CCSIM_DCHECK_MSG(s.pending_seq == e.seq(), "calendar head was not live");
  Fired fired{e.time, MakeId(s.gen, e.slot()),
              s.resume != nullptr ? EventKind::kResume : EventKind::kHandler,
              std::move(s.fn), s.resume};
  FreeSlot(e.slot());
  --live_;
  CCSIM_DCHECK_MSG(e.time >= last_fired_, "simulated time ran backwards");
  if (e.time > last_fired_) last_gap_ = e.time - last_fired_;
  last_fired_ = e.time;
  if (live_ == 0 && dead_ == 0) {
    // Every bucket and the overflow list are empty (each physical entry is
    // live or cancelled-pending-compaction): skip the locate walk. Collapse
    // the stack so the next schedule can revive or re-anchor the bottom
    // rung — keeping a drained refinement rung active would shrink the
    // routing horizon to its sliver of time and overflow everything after
    // it.
    depth_ = 0;
    next_time_ = kNever;
    head_valid_ = false;
  } else {
    RefreshHead(&head_);
  }
  MaybeAudit();
  return fired;
}

void Calendar::MaybeAudit() {
  if (kAuditEnabled && ++audit_tick_ % kAuditPeriod == 0) AuditInvariants();
}

void Calendar::AuditInvariants() const {
  if (!kAuditEnabled) return;
  std::size_t live_seen = 0;
  std::size_t dead_seen = 0;
  std::unordered_set<std::uint32_t> live_slots;
  std::unordered_set<std::uint64_t> seqs;
  SimTime true_min = kNever;
  std::uint64_t min_key = ~0ull;
  auto check_entry = [&](const Entry& e) {
    CCSIM_DCHECK_MSG(e.slot() < slots_.size(),
                     "calendar entry with unissued slot");
    CCSIM_DCHECK_MSG(e.seq() < next_seq_, "calendar entry with unissued seq");
    CCSIM_DCHECK_MSG(seqs.insert(e.seq()).second,
                     "duplicate insertion seq in the calendar");
    if (!EntryLive(e)) {
      ++dead_seen;
      return;
    }
    ++live_seen;
    CCSIM_DCHECK_MSG(live_slots.insert(e.slot()).second,
                     "two live calendar entries share a slot");
    CCSIM_DCHECK_MSG(e.time >= last_fired_,
                     "pending event earlier than the last fired event");
    CCSIM_DCHECK_MSG(slots_[e.slot()].time == e.time,
                     "slot fire time out of sync with its calendar entry");
    if (e.time < true_min || (e.time == true_min && e.key < min_key)) {
      true_min = e.time;
      min_key = e.key;
    }
  };
  for (std::size_t d = 0; d < depth_; ++d) {
    const Rung& r = rungs_[d];
    CCSIM_DCHECK_MSG(r.width >= kMinWidth, "calendar rung width degenerate");
    if (d > 0) {
      CCSIM_DCHECK_MSG(r.horizon <= rungs_[d - 1].horizon,
                       "calendar rung horizons not nested");
    }
    std::size_t entries = 0;
    for (std::uint32_t b = 0; b < r.nbuckets; ++b) {
      const std::vector<Entry>& bucket = r.buckets[b];
      bool bit = (r.occupied[b >> 6] >> (b & 63)) & 1;
      CCSIM_DCHECK_MSG(bit == !bucket.empty(),
                       "calendar occupancy bitmap out of sync");
      CCSIM_DCHECK_MSG(bucket.empty() || b >= r.cur,
                       "occupied bucket below the rung cursor");
      entries += bucket.size();
      for (const Entry& e : bucket) {
        CCSIM_DCHECK_MSG(BucketIndex(r, e.time) == b,
                         "calendar entry in the wrong bucket");
        CCSIM_DCHECK_MSG(e.time >= r.base && e.time < r.horizon,
                         "calendar entry outside its rung span");
        check_entry(e);
      }
    }
    CCSIM_DCHECK_MSG(entries == r.count,
                     "calendar rung count out of sync with its buckets");
  }
  for (const Entry& e : top_) {
    // Every overflow time sits at/after every rung horizon, so rungs always
    // drain before overflow — the ordering invariant the horizon caps exist
    // to maintain. (Only live entries: a stale cancelled entry's time may
    // have been passed by.)
    if (EntryLive(e)) {
      CCSIM_DCHECK_MSG(e.time >= top_min_,
                       "overflow event earlier than the tracked minimum");
      for (std::size_t d = 0; d < depth_; ++d) {
        CCSIM_DCHECK_MSG(e.time >= rungs_[d].horizon,
                         "overflow event inside a rung horizon");
      }
    }
    check_entry(e);
  }
  if (solo_valid_) {
    // The register only ever holds the sole pending event, with the ladder
    // and overflow drained.
    CCSIM_DCHECK_MSG(live_seen == 0 && dead_seen == 0 && top_.empty(),
                     "solo register active over a non-empty ladder");
    CCSIM_DCHECK_MSG(!head_valid_, "cached head alongside the solo register");
    check_entry(solo_);
    CCSIM_DCHECK_MSG(EntryLive(solo_), "solo register holds a dead event");
  }
  CCSIM_DCHECK_MSG(live_seen == live_,
                   "live-event count out of sync with the calendar");
  CCSIM_DCHECK_MSG(dead_seen == dead_,
                   "cancelled-entry count out of sync with the calendar");
  CCSIM_DCHECK_MSG(next_time_ == true_min,
                   "cached next-time out of sync with the true minimum");
  if (head_valid_) {
    CCSIM_DCHECK_MSG(head_.rung == depth_ - 1,
                     "cached head does not point at the deepest rung");
    const Rung& r = rungs_[head_.rung];
    CCSIM_DCHECK_MSG(head_.bucket < r.nbuckets &&
                         head_.index < r.buckets[head_.bucket].size(),
                     "cached head location out of range");
    const Entry& e = r.buckets[head_.bucket][head_.index];
    CCSIM_DCHECK_MSG(EntryLive(e) && e.time == next_time_ && e.key == min_key,
                     "cached head is not the earliest live event");
  }
  // The free list and the live slots partition the slab; free slots hold no
  // event payload.
  std::size_t free_len = 0;
  for (std::uint32_t i = free_head_; i != kNilSlot; i = slots_[i].next_free) {
    CCSIM_DCHECK_MSG(i < slots_.size(), "free list points outside the slab");
    CCSIM_DCHECK_MSG(live_slots.count(i) == 0, "live slot on the free list");
    CCSIM_DCHECK_MSG(slots_[i].pending_seq == 0,
                     "freed slot still claims a pending event");
    CCSIM_DCHECK_MSG(!static_cast<bool>(slots_[i].fn) &&
                         slots_[i].resume == nullptr,
                     "freed slot still holds an event payload");
    ++free_len;
    CCSIM_DCHECK_MSG(free_len <= slots_.size(), "free list cycle");
  }
  CCSIM_DCHECK_MSG(free_len + live_ == slots_.size(),
                   "slab slots neither live nor free");
}

}  // namespace ccsim::sim
