#ifndef CCSIM_SIM_CALENDAR_H_
#define CCSIM_SIM_CALENDAR_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "ccsim/sim/time.h"

namespace ccsim::sim {

/// The event calendar: a pending-event set ordered by (time, insertion id).
///
/// Ties at the same simulated time fire in insertion order, which makes runs
/// fully deterministic for a given seed. Cancellation is lazy: cancelled
/// entries stay in the heap but are skipped by PopNext().
class Calendar {
 public:
  using EventId = std::uint64_t;
  using Handler = std::function<void()>;

  struct Fired {
    SimTime time;
    EventId id;
    Handler handler;
  };

  Calendar() = default;
  Calendar(const Calendar&) = delete;
  Calendar& operator=(const Calendar&) = delete;

  /// Schedules `handler` to fire at absolute time `time`. Returns an id that
  /// can be used to cancel the event before it fires.
  EventId Schedule(SimTime time, Handler handler);

  /// Cancels a pending event. Returns true if the event was still pending.
  bool Cancel(EventId id);

  /// Removes and returns the earliest pending event, or nullopt if none.
  std::optional<Fired> PopNext();

  /// Time of the earliest pending event, or kNever if the calendar is empty.
  SimTime NextTime() const;

  /// Number of live (non-cancelled) pending events.
  std::size_t size() const { return handlers_.size(); }
  bool empty() const { return handlers_.empty(); }

 private:
  struct Entry {
    SimTime time;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, Handler> handlers_;
  EventId next_id_ = 1;
};

}  // namespace ccsim::sim

#endif  // CCSIM_SIM_CALENDAR_H_
