#ifndef CCSIM_SIM_CALENDAR_H_
#define CCSIM_SIM_CALENDAR_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ccsim/sim/time.h"

namespace ccsim::sim {

/// The event calendar: a pending-event set ordered by (time, insertion id).
///
/// Ties at the same simulated time fire in insertion order, which makes runs
/// fully deterministic for a given seed. Cancellation is lazy: cancelled
/// entries stay in the heap but are skipped by PopNext().
class Calendar {
 public:
  using EventId = std::uint64_t;
  using Handler = std::function<void()>;

  struct Fired {
    SimTime time;
    EventId id;
    Handler handler;
  };

  Calendar() = default;
  Calendar(const Calendar&) = delete;
  Calendar& operator=(const Calendar&) = delete;

  /// Schedules `handler` to fire at absolute time `time`. Returns an id that
  /// can be used to cancel the event before it fires.
  EventId Schedule(SimTime time, Handler handler);

  /// Cancels a pending event. Returns true if the event was still pending.
  bool Cancel(EventId id);

  /// Removes and returns the earliest pending event, or nullopt if none.
  std::optional<Fired> PopNext();

  /// Time of the earliest pending event, or kNever if the calendar is empty.
  SimTime NextTime() const;

  /// Number of live (non-cancelled) pending events.
  std::size_t size() const { return handlers_.size(); }
  bool empty() const { return handlers_.empty(); }

  /// Audit-mode sweep: the pending-event array satisfies the heap property
  /// under (time, id) ordering, every live handler has a heap entry, no
  /// pending event is earlier than the last one fired (time cannot run
  /// backwards), and ids are consistent. No-op unless built with
  /// CCSIM_AUDIT; throttled internally because it is O(pending events).
  void AuditInvariants() const;

 private:
  struct Entry {
    SimTime time;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  void SkipCancelled();

  // A binary heap managed with std::push_heap/std::pop_heap rather than a
  // std::priority_queue: the audit sweep needs to see the underlying array
  // to verify the heap property.
  std::vector<Entry> heap_;
  std::unordered_map<EventId, Handler> handlers_;
  EventId next_id_ = 1;
  SimTime last_fired_ = 0.0;
  // Operations since the last audit sweep (audit builds only).
  mutable std::uint64_t audit_tick_ = 0;
};

}  // namespace ccsim::sim

#endif  // CCSIM_SIM_CALENDAR_H_
