#ifndef CCSIM_SIM_CALENDAR_H_
#define CCSIM_SIM_CALENDAR_H_

#include <coroutine>
#include <cstdint>
#include <optional>
#include <vector>

#include "ccsim/sim/event_fn.h"
#include "ccsim/sim/time.h"

namespace ccsim::sim {

/// What a calendar event does when it fires.
enum class EventKind : std::uint8_t {
  kHandler,  // invoke an EventFn
  kResume,   // resume a suspended coroutine (a process wakeup)
};

/// The event calendar: a pending-event set ordered by (time, insertion seq).
///
/// Ties at the same simulated time fire in insertion order, which makes runs
/// fully deterministic for a given seed.
///
/// Storage is a generation-tagged slot slab: every pending event lives in a
/// pre-allocated `Slot` recycled through a free list, and an `EventId` is the
/// slot index tagged with the slot's generation. Cancel/fire bump the
/// generation, so a stale id (cancel after fire, cancel after cancel) is
/// rejected by a single array lookup — no hash table, and steady-state
/// operation performs no allocation at all (the slab, buckets, and rung
/// structures grow to their high-water marks and are then reused).
///
/// The pending set itself is a ladder of time-bucketed rungs (a calendar
/// queue in the Brown / ladder-queue tradition) rather than a comparison
/// heap: events are scattered into buckets by time, the current bucket is
/// scanned for its exact (time, seq) minimum, and oversized buckets split
/// into finer child rungs on demand. Because simulated time only moves
/// forward, pops are amortized O(1) — each event is touched a small constant
/// number of times on its way from insertion to firing — where a binary heap
/// pays O(log n) comparisons and, for deep queues, a cache miss per level.
/// Far-future events beyond the rung horizon sit in an unsorted overflow
/// list that is drained into a fresh rung when the ladder runs dry.
/// Cancellation is lazy: a cancelled event's bucket entry stays put (its seq
/// no longer matches the slot) and is dropped when its bucket is next
/// scanned. The exact next event time is cached on every mutation, so
/// NextTime() is a pure read.
///
/// Contract: events must not be scheduled earlier than the last fired event
/// (simulated time is monotone; Simulation::At already enforces
/// time >= Now()).
class Calendar {
 public:
  /// (generation << 32) | slot index. Never 0 for an issued event.
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEventId = 0;
  using Handler = EventFn;

  /// Capacity limits implied by the packed bucket-entry layout (seq and slot
  /// index share one 64-bit word). Exceeding either is a fatal error:
  /// 2^kSlotBits concurrently pending events, 2^(64-kSlotBits) events over a
  /// calendar's lifetime.
  static constexpr unsigned kSlotBits = 20;
  static constexpr std::uint32_t kMaxSlots = 1u << kSlotBits;
  static constexpr std::uint64_t kMaxSeq = 1ull << (64 - kSlotBits);

  struct Fired {
    SimTime time;
    EventId id;
    EventKind kind;
    EventFn fn;                      // engaged iff kind == kHandler
    std::coroutine_handle<> resume;  // valid  iff kind == kResume
  };

  Calendar() = default;
  Calendar(const Calendar&) = delete;
  Calendar& operator=(const Calendar&) = delete;

  /// Schedules `fn` to fire at absolute time `time`. Returns an id that can
  /// be used to cancel the event before it fires.
  EventId Schedule(SimTime time, EventFn fn);

  /// Schedules a coroutine wakeup at absolute time `time`. The calendar does
  /// not own the coroutine frame; the caller (the Simulation's suspended-
  /// process registry) remains responsible for destroying frames whose
  /// wakeup never fires.
  EventId ScheduleResume(SimTime time, std::coroutine_handle<> h);

  /// Cancels a pending event. Returns true if the event was still pending;
  /// false for ids that already fired or were already cancelled (the
  /// generation tag makes this safe even after the slot was recycled).
  bool Cancel(EventId id);

  /// Removes and returns the earliest pending event, or nullopt if none.
  std::optional<Fired> PopNext();

  /// Time of the earliest pending event, or kNever if the calendar is empty.
  /// Pure read: the value is kept exact across every mutation.
  SimTime NextTime() const { return next_time_; }

  /// Number of live (non-cancelled) pending events.
  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Capacity diagnostics: slots ever allocated (high-water mark of
  /// concurrently pending events).
  std::size_t slot_capacity() const { return slots_.size(); }

  /// Audit-mode sweep: every bucket entry sits in the bucket its time maps
  /// to, occupancy bitmaps and counts match bucket contents, live entries
  /// and free-listed slots partition the slab, no live event is earlier than
  /// the last one fired, and the cached next-time equals the true minimum.
  /// No-op unless built with CCSIM_AUDIT; throttled internally because it is
  /// O(pending events).
  void AuditInvariants() const;

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  // Ladder geometry. kDefaultBuckets bounds a fresh rung's bucket count;
  // kMaxBuckets bounds the rebase rung (load factor count/kMaxBuckets, with
  // oversized buckets split on demand); buckets longer than kSplitMax split
  // into a kChildBuckets-wide child rung; kMaxRungs is a hard recursion
  // backstop far above any realistic refinement depth.
  static constexpr std::uint32_t kDefaultBuckets = 1024;
  static constexpr std::uint32_t kMinBuckets = 64;
  static constexpr std::uint32_t kMaxBuckets = 4096;
  static constexpr std::uint32_t kChildBuckets = 64;
  static constexpr std::size_t kSplitMax = 8;
  static constexpr std::size_t kMaxRungs = 48;

  // 16 bytes: bucket scatter/scan moves these, so small matters. `key` packs
  // the global insertion seq above the slab index; seqs are unique, so
  // comparing keys compares seqs, and the slot rides along for free.
  struct Entry {
    SimTime time;
    std::uint64_t key;  // (seq << kSlotBits) | slot
    std::uint64_t seq() const { return key >> kSlotBits; }
    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key & (kMaxSlots - 1));
    }
  };
  // Branchless on purpose (bitwise ops, no short-circuit): bucket min-scans
  // select with this, and a compare that branches on data mispredicts.
  static bool Earlier(const Entry& a, const Entry& b) {
    return (a.time < b.time) |
           (static_cast<int>(a.time == b.time) &
            static_cast<int>(a.key < b.key));
  }

  struct Slot {
    EventFn fn;                                // engaged iff handler event
    std::coroutine_handle<> resume = nullptr;  // set iff resume event
    SimTime time = 0.0;                        // scheduled fire time
    // Seq of the event currently occupying this slot (0 = none): the
    // liveness test for bucket entries. Distinct from `gen`, which validates
    // EventIds across slot reuse.
    std::uint64_t pending_seq = 0;
    // Generation currently associated with this slot. Issued to the id when
    // the slot is allocated; bumped when the slot is freed (fire or cancel),
    // which invalidates every outstanding id for it. Wraps after 2^32
    // reuses of one slot; an outstanding id aliasing across a full wrap is
    // not a realistic event count for one simulation.
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNilSlot;
  };

  // One ladder rung: a contiguous span of simulated time [base, horizon)
  // cut into nbuckets equal-width buckets, plus an occupancy bitmap so the
  // first non-empty bucket is found with a couple of word scans. Rung
  // objects are pooled in rungs_ and reused, so their bucket vectors keep
  // their capacity across activations.
  struct Rung {
    SimTime base = 0.0;
    double width = 1.0;
    double inv_width = 1.0;
    SimTime horizon = 0.0;      // exclusive upper bound for routing
    std::uint32_t nbuckets = 0;
    std::uint32_t cur = 0;      // no occupied bucket below this index
    std::size_t count = 0;      // physical entries (live + lazily cancelled)
    std::vector<std::vector<Entry>> buckets;
    std::vector<std::uint64_t> occupied;
  };

  // Location of the head event, valid until the next mutation.
  struct Head {
    std::size_t rung;
    std::uint32_t bucket;
    std::size_t index;
  };

  static constexpr EventId MakeId(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  bool EntryLive(const Entry& e) const {
    return slots_[e.slot()].pending_seq == e.seq();
  }

  // The bucket index for time t in rung r. Clamped into [0, nbuckets);
  // IEEE subtract/multiply are monotone, so the mapping is monotone in t —
  // bucket i's times never exceed bucket j's for i < j — which is all
  // ordering correctness needs (nominal bucket boundaries may shift by an
  // ulp, the partition stays sorted).
  static std::uint32_t BucketIndex(const Rung& r, SimTime t);

  std::uint32_t AllocSlot();
  void FreeSlot(std::uint32_t index);
  EventId ScheduleSlot(SimTime time, std::uint32_t slot);
  // Routes an entry to the deepest rung whose span contains its time,
  // opening an under-rung or the overflow list as needed. Returns the bucket
  // index when the entry landed in the deepest rung (so a schedule that
  // undercuts next_time_ can set the cached head directly), -1 otherwise.
  std::int64_t Place(Entry e);
  std::uint32_t InsertIntoRung(Rung& r, Entry e);
  // Resets a pooled rung to cover [base, base + nbuckets*width).
  void ShapeRung(Rung& r, SimTime base, double width, std::uint32_t nbuckets);
  std::uint32_t FirstOccupied(const Rung& r) const;
  void SetBit(Rung& r, std::uint32_t b) {
    r.occupied[b >> 6] |= 1ull << (b & 63);
  }
  void ClearBit(Rung& r, std::uint32_t b) {
    r.occupied[b >> 6] &= ~(1ull << (b & 63));
  }
  // Drains the overflow list into a fresh bottom rung spanning its live
  // time range.
  void Rebase();
  // Splits rung r's bucket b into a finer child rung. Returns false when the
  // bucket cannot be refined (all times equal, width exhausted, or the rung
  // stack is full) and must be scanned as-is.
  bool SplitBucket(Rung& r, std::uint32_t b);
  // Locates the earliest live event, compacting cancelled entries, popping
  // exhausted rungs, rebasing from overflow, and splitting oversized current
  // buckets along the way. Sets next_time_ exactly; returns false when the
  // calendar is empty. Amortized O(1).
  bool RefreshHead(Head* head);
  void RemoveAt(const Head& head);
  void MaybeAudit();

  std::vector<Rung> rungs_ = std::vector<Rung>(kMaxRungs);  // pooled stack
  std::size_t depth_ = 0;   // active rungs: rungs_[0..depth_), deepest last
  std::vector<Entry> top_;  // unsorted overflow beyond the rung horizons
  SimTime top_min_ = kNever;  // lower bound on live overflow times

  // Cached location of the head event, maintained across pops so the common
  // pop doesn't re-locate. Invalidated when a schedule undercuts next_time_
  // (the new event may sit in a different rung) and re-established by
  // RefreshHead. head_valid_ implies the calendar is non-empty.
  Head head_{};
  bool head_valid_ = false;

  // Single-event fast path: when the calendar is otherwise empty the event
  // parks here instead of in a bucket, and fires straight from the
  // register. A second schedule demotes it into the ladder. This makes the
  // ubiquitous one-pending-event cycle (schedule completion, fire, schedule
  // the next) bypass the bucket machinery entirely. Invariant: solo_valid_
  // implies the ladder and overflow are physically empty, live_ == 1, and
  // dead_ == 0.
  Entry solo_{};
  bool solo_valid_ = false;

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t live_ = 0;
  // Cancelled entries still physically present in buckets/overflow. With
  // live_ == 0 && dead_ == 0 the ladder is known empty without a walk.
  std::size_t dead_ = 0;
  std::uint64_t next_seq_ = 1;
  SimTime last_fired_ = 0.0;
  SimTime next_time_ = kNever;  // exact earliest live time, kNever if empty
  double last_gap_ = 1.0;       // last positive inter-fire gap (width hint)
  // Operations since the last audit sweep (audit builds only).
  std::uint64_t audit_tick_ = 0;
};

}  // namespace ccsim::sim

#endif  // CCSIM_SIM_CALENDAR_H_
