#ifndef CCSIM_SIM_PROCESS_H_
#define CCSIM_SIM_PROCESS_H_

#include <coroutine>
#include <exception>

namespace ccsim::sim {

/// A detached simulation process, in the DeNet/CSIM sense: a coroutine that
/// interleaves model logic with awaits on simulated time and resources.
///
/// Processes are fire-and-forget. The coroutine starts executing eagerly when
/// the process function is invoked, runs until its first `co_await`, and its
/// frame is destroyed automatically when the body returns. The returned
/// `Process` object is an opaque tag and may be discarded.
///
/// Ownership rule: while suspended, a process is owned by exactly one waiting
/// facility (the event calendar, a Completion, a resource queue); only that
/// facility may resume it, exactly once. Facilities in this codebase resume
/// through the calendar, never inline, so a process never re-enters another
/// process's stack frame.
///
/// Teardown: every suspension registers the frame with the owning
/// Simulation's suspended-process registry; frames still suspended when the
/// Simulation is destroyed are destroyed by it, so runs that stop mid-flight
/// (RunUntil) do not leak coroutine frames. Because of that late destruction,
/// process locals must be plain data — their destructors must not call back
/// into simulation facilities.
struct Process {
  struct promise_type {
    Process get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

}  // namespace ccsim::sim

#endif  // CCSIM_SIM_PROCESS_H_
