#ifndef CCSIM_SIM_PROCESS_H_
#define CCSIM_SIM_PROCESS_H_

#include <concepts>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <type_traits>

#include "ccsim/sim/arena.h"

namespace ccsim::sim {

/// Owner types (Source, CohortService, CoordinatorService, Network, ...)
/// that expose the per-simulation Arena their process frames should live in.
template <typename T>
concept ProcessArenaOwner = requires(T& t) {
  { t.process_arena() } -> std::convertible_to<Arena*>;
};

/// A detached simulation process, in the DeNet/CSIM sense: a coroutine that
/// interleaves model logic with awaits on simulated time and resources.
///
/// Processes are fire-and-forget. The coroutine starts executing eagerly when
/// the process function is invoked, runs until its first `co_await`, and its
/// frame is destroyed automatically when the body returns. The returned
/// `Process` object is an opaque tag and may be discarded.
///
/// Ownership rule: while suspended, a process is owned by exactly one waiting
/// facility (the event calendar, a Completion, a resource queue); only that
/// facility may resume it, exactly once. Facilities in this codebase resume
/// through the calendar, never inline, so a process never re-enters another
/// process's stack frame.
///
/// Teardown: every suspension registers the frame with the owning
/// Simulation's suspended-process registry; frames still suspended when the
/// Simulation is destroyed are destroyed by it, so runs that stop mid-flight
/// (RunUntil) do not leak coroutine frames. Because of that late destruction,
/// process locals must be plain data — their destructors must not call back
/// into simulation facilities.
/// Frame allocation: member coroutines of a ProcessArenaOwner draw their
/// frames from the owner's per-simulation Arena instead of global malloc.
/// The standard passes the coroutine's arguments — for a member coroutine,
/// the object itself first — to the promise's operator new, which is how
/// the owner's arena reaches the allocator; a routing header stores where
/// the frame came from so operator delete (which sees only the pointer)
/// frees it to the right place. Frames of non-owner coroutines (tests,
/// lambdas) take the variadic fallback and plain global new.
struct Process {
  struct promise_type {
    Process get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }

    template <typename Owner, typename... Args>
      requires ProcessArenaOwner<std::remove_cvref_t<Owner>>
    static void* operator new(std::size_t size, Owner&& owner, Args&&...) {
      return AllocateWithHeader(owner.process_arena(), size);
    }
    template <typename... Args>
    static void* operator new(std::size_t size, Args&&...) {
      return AllocateWithHeader(nullptr, size);
    }
    static void operator delete(void* p) noexcept { DeallocateWithHeader(p); }
  };
};

}  // namespace ccsim::sim

#endif  // CCSIM_SIM_PROCESS_H_
