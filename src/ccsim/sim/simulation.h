#ifndef CCSIM_SIM_SIMULATION_H_
#define CCSIM_SIM_SIMULATION_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <map>

#include "ccsim/sim/calendar.h"
#include "ccsim/sim/process.h"
#include "ccsim/sim/time.h"

namespace ccsim::sim {

/// The simulation executive: owns the clock and the event calendar and runs
/// the event loop. Single-threaded and deterministic.
class Simulation {
 public:
  using EventId = Calendar::EventId;
  using Handler = Calendar::Handler;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation() { DestroySuspendedProcesses(); }

  /// Current simulated time in seconds.
  SimTime Now() const { return now_; }

  /// Schedules `handler` at absolute simulated time `time` (>= Now()).
  EventId At(SimTime time, Handler handler);

  /// Schedules `handler` after a relative delay `dt` (>= 0).
  EventId After(SimTime dt, Handler handler) {
    return At(now_ + dt, std::move(handler));
  }

  /// Cancels a pending event; returns true if it had not yet fired.
  bool Cancel(EventId id) { return calendar_.Cancel(id); }

  /// Runs until the calendar is empty or Stop() is called.
  void Run();

  /// Runs all events with time <= `end`; leaves the clock at `end` (or at the
  /// last event time if the calendar empties first and that is later).
  void RunUntil(SimTime end);

  /// Requests the event loop to stop after the currently firing event.
  void Stop() { stop_requested_ = true; }

  /// Total number of events fired so far (a cheap progress/perf metric).
  std::uint64_t events_fired() const { return events_fired_; }

  /// Number of live pending events.
  std::size_t pending_events() const { return calendar_.size(); }

  // --- Coroutine support -----------------------------------------------

  /// Awaitable that suspends the calling process for `dt` simulated seconds.
  /// A zero delay still goes through the calendar (yielding to other events
  /// already scheduled at the current time).
  class DelayAwaitable {
   public:
    DelayAwaitable(Simulation* sim, SimTime dt) : sim_(sim), dt_(dt) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim_->NoteSuspended(h);
      sim_->After(dt_, [sim = sim_, h] { sim->ResumeSuspended(h); });
    }
    void await_resume() const noexcept {}

   private:
    Simulation* sim_;
    SimTime dt_;
  };

  /// `co_await sim.Delay(t)` inside a Process.
  DelayAwaitable Delay(SimTime dt) { return DelayAwaitable(this, dt); }

  /// Resumes a suspended coroutine through the calendar at the current time.
  /// This is the only sanctioned way for facilities to wake a process.
  void ResumeLater(std::coroutine_handle<> h) {
    After(0.0, [this, h] { ResumeSuspended(h); });
  }

  // --- Suspended-process registry --------------------------------------
  //
  // Every suspension (Delay or Completion wait) records its handle here and
  // removes it when the process actually resumes. Whatever is still in the
  // registry when the Simulation is torn down is a process frame no facility
  // will ever resume again; the Simulation destroys those frames so a run
  // that ends mid-flight (RunUntil) leaks nothing.

  /// Records a coroutine as suspended, pending a calendar resume.
  void NoteSuspended(std::coroutine_handle<> h) {
    suspended_.emplace(h.address(), h);
  }

  /// Resumes a registered coroutine (drops it from the registry first).
  void ResumeSuspended(std::coroutine_handle<> h) {
    suspended_.erase(h.address());
    h.resume();
  }

  /// Destroys every still-suspended process frame. Idempotent; called from
  /// the destructor. Frame locals must not call back into simulation
  /// facilities from their destructors (they are plain data in this
  /// codebase).
  void DestroySuspendedProcesses() {
    auto frames = std::move(suspended_);
    suspended_.clear();
    for (const auto& [addr, h] : frames) h.destroy();
  }

  /// Number of process frames currently suspended (tests/audits).
  std::size_t suspended_processes() const { return suspended_.size(); }

 private:
  Calendar calendar_;
  SimTime now_ = 0.0;
  bool stop_requested_ = false;
  std::uint64_t events_fired_ = 0;
  // Keyed by frame address. An ordered map only for lint cleanliness; the
  // teardown destruction order is unobservable (frames are destroyed after
  // the run, and frame locals are plain data).
  std::map<void*, std::coroutine_handle<>> suspended_;
};

}  // namespace ccsim::sim

#endif  // CCSIM_SIM_SIMULATION_H_
