#ifndef CCSIM_SIM_SIMULATION_H_
#define CCSIM_SIM_SIMULATION_H_

#include <coroutine>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ccsim/sim/arena.h"
#include "ccsim/sim/calendar.h"
#include "ccsim/sim/check.h"
#include "ccsim/sim/event_fn.h"
#include "ccsim/sim/process.h"
#include "ccsim/sim/time.h"

namespace ccsim::sim {

/// The suspended-process registry: an open-addressing set of coroutine
/// handles keyed by frame address. A plain hash set (instead of std::map)
/// because every process suspension inserts and every wakeup erases — with
/// node-based containers that is a malloc/free pair per wakeup, which would
/// be the last allocation left on the simulation hot path. The table grows
/// to the high-water mark of concurrently suspended processes and is then
/// allocation-free. Erasure uses backward-shift deletion (no tombstones).
class SuspendedSet {
 public:
  void Insert(std::coroutine_handle<> h) {
    CCSIM_CHECK_MSG(h != nullptr, "suspended a null coroutine");
    if ((count_ + 1) * 4 > cells_.size() * 3) Grow();
    std::size_t i = Probe(h.address());
    CCSIM_CHECK_MSG(cells_[i].addr == nullptr,
                    "process suspended while already suspended");
    cells_[i] = Cell{h.address(), h};
    ++count_;
  }

  /// Removes the handle for `addr`; returns true if it was present.
  bool Erase(void* addr) {
    if (count_ == 0) return false;
    std::size_t i = Probe(addr);
    if (cells_[i].addr == nullptr) return false;
    // Backward-shift deletion: close the gap so probe chains stay intact.
    std::size_t mask = cells_.size() - 1;
    std::size_t hole = i;
    for (std::size_t j = (i + 1) & mask; cells_[j].addr != nullptr;
         j = (j + 1) & mask) {
      std::size_t home = Hash(cells_[j].addr) & mask;
      // Shift j into the hole iff the hole lies within [home, j] cyclically.
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        cells_[hole] = cells_[j];
        hole = j;
      }
    }
    cells_[hole] = Cell{};
    --count_;
    return true;
  }

  std::size_t size() const { return count_; }

  /// Moves every handle out (teardown). Iteration order follows the table,
  /// i.e. frame-address hashes; the relative destruction order of leaked
  /// frames is unobservable (frames are destroyed after the run, and frame
  /// locals are plain data — see Process).
  std::vector<std::coroutine_handle<>> TakeAll() {
    std::vector<std::coroutine_handle<>> out;
    out.reserve(count_);
    for (Cell& c : cells_) {
      if (c.addr != nullptr) out.push_back(c.h);
      c = Cell{};
    }
    count_ = 0;
    return out;
  }

 private:
  struct Cell {
    void* addr = nullptr;
    std::coroutine_handle<> h;
  };

  static std::size_t Hash(void* p) {
    // Fibonacci hash of the frame address; low bits of heap pointers are
    // aligned away, so mix before masking.
    auto v = reinterpret_cast<std::uintptr_t>(p);
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(v) >> 4) * 0x9e3779b97f4a7c15ull >> 16);
  }

  /// Index of `addr`'s cell, or of the empty cell where it would go.
  std::size_t Probe(void* addr) const {
    std::size_t mask = cells_.size() - 1;
    std::size_t i = Hash(addr) & mask;
    while (cells_[i].addr != nullptr && cells_[i].addr != addr) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void Grow() {
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(old.empty() ? 16 : old.size() * 2, Cell{});
    for (const Cell& c : old) {
      if (c.addr == nullptr) continue;
      std::size_t i = Probe(c.addr);
      cells_[i] = c;
    }
  }

  std::vector<Cell> cells_ = std::vector<Cell>(16);
  std::size_t count_ = 0;
};

/// The simulation executive: owns the clock and the event calendar and runs
/// the event loop. Single-threaded and deterministic.
///
/// Process wakeups (Delay, ResumeLater, and through them every Completion)
/// are scheduled as bare coroutine handles in the calendar's resume slots —
/// no closure is allocated anywhere on the wakeup path.
class Simulation {
 public:
  using EventId = Calendar::EventId;
  using Handler = EventFn;
  static constexpr EventId kInvalidEventId = Calendar::kInvalidEventId;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  // Destruction order: suspended frames are destroyed first (their locals
  // may hold arena-backed TxnPtrs/Completions), then members in reverse
  // declaration order — the calendar (whose pending closures can hold
  // arena-backed state too) before the arena, which is declared first so it
  // dies last.
  ~Simulation() { DestroySuspendedProcesses(); }

  /// Current simulated time in seconds.
  SimTime Now() const { return now_; }

  /// The per-simulation allocation arena: coroutine frames, Completion
  /// control blocks, and Transaction state live here (see arena.h).
  /// Everything allocated from it must be released before this Simulation
  /// is destroyed; the facilities' member order guarantees that.
  Arena* arena() { return &arena_; }

  /// Schedules `handler` at absolute simulated time `time`. Scheduling into
  /// the past (time < Now()) is a fatal error, as is a NaN time.
  EventId At(SimTime time, EventFn handler);

  /// Schedules `handler` after a relative delay `dt` (>= 0; negative or NaN
  /// delays are a fatal error).
  EventId After(SimTime dt, EventFn handler) {
    CCSIM_CHECK_MSG(dt >= 0.0, "After with negative or NaN delay");
    return At(now_ + dt, std::move(handler));
  }

  /// Cancels a pending event; returns true if it had not yet fired.
  bool Cancel(EventId id) { return calendar_.Cancel(id); }

  /// Runs until the calendar is empty or Stop() is called.
  void Run();

  /// Runs all events with time <= `end`; leaves the clock at `end` (or at the
  /// last event time if the calendar empties first and that is later).
  void RunUntil(SimTime end);

  /// Requests the event loop to stop after the currently firing event.
  void Stop() { stop_requested_ = true; }

  /// Total number of events fired so far (a cheap progress/perf metric).
  std::uint64_t events_fired() const { return events_fired_; }

  /// Number of live pending events.
  std::size_t pending_events() const { return calendar_.size(); }

  // --- Watchdog + diagnostics ------------------------------------------
  //
  // A wedged protocol (a 2PC participant waiting forever for a reply that
  // was dropped) or a livelocked one (transactions aborting and restarting
  // without any commit) used to manifest as an infinite event loop with zero
  // diagnostics. The watchdog bounds a run by total fired events and by
  // virtual time since the last domain progress notification; tripping
  // either limit is a fatal error that prints DumpDiagnostics() first.
  // While Run()/RunUntil() execute, the same dump is attached to every
  // CCSIM_CHECK failure on this thread (via the check.h dump hook).

  struct WatchdogLimits {
    std::uint64_t max_events = 0;  // 0 = unlimited
    SimTime max_stall = 0.0;       // 0 = no stall limit
  };

  /// Arms (or, with default limits, disarms) the watchdog and resets the
  /// stall clock to Now().
  void ConfigureWatchdog(WatchdogLimits limits) {
    watchdog_ = limits;
    last_progress_ = now_;
  }

  /// Domain progress notification (the engine calls this on every commit);
  /// resets the watchdog's stall clock.
  void NoteProgress() { last_progress_ = now_; }

  /// Registers a labelled section appended to DumpDiagnostics() output
  /// (the engine registers per-stream RNG positions, node states, ...).
  /// Sections must not call back into the simulation.
  void AddDumpSection(std::string label, std::function<void(std::FILE*)> fn) {
    dump_sections_.push_back({std::move(label), std::move(fn)});
  }

  /// Prints the diagnostic dump: sim clock, event counts, pending-event
  /// summary, the event being dispatched, the last-fired ring buffer
  /// (CCSIM_AUDIT builds only), and every registered section.
  void DumpDiagnostics(std::FILE* out) const;

  // --- Coroutine support -----------------------------------------------

  /// Awaitable that suspends the calling process for `dt` simulated seconds.
  /// A zero delay still goes through the calendar (yielding to other events
  /// already scheduled at the current time).
  class DelayAwaitable {
   public:
    DelayAwaitable(Simulation* sim, SimTime dt) : sim_(sim), dt_(dt) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim_->NoteSuspended(h);
      sim_->ScheduleResume(sim_->now_ + dt_, h);
    }
    void await_resume() const noexcept {}

   private:
    Simulation* sim_;
    SimTime dt_;
  };

  /// `co_await sim.Delay(t)` inside a Process.
  DelayAwaitable Delay(SimTime dt) {
    CCSIM_CHECK_MSG(dt >= 0.0, "Delay with negative or NaN duration");
    return DelayAwaitable(this, dt);
  }

  /// Resumes a suspended coroutine through the calendar at the current time.
  /// This is the only sanctioned way for facilities to wake a process. The
  /// handle must already be in the suspended-process registry (Completion's
  /// SetWaiter and DelayAwaitable both register before scheduling).
  void ResumeLater(std::coroutine_handle<> h) { ScheduleResume(now_, h); }

  // --- Suspended-process registry --------------------------------------
  //
  // Every suspension (Delay or Completion wait) records its handle here and
  // removes it when the process actually resumes. Whatever is still in the
  // registry when the Simulation is torn down is a process frame no facility
  // will ever resume again; the Simulation destroys those frames so a run
  // that ends mid-flight (RunUntil) leaks nothing.

  /// Records a coroutine as suspended, pending a calendar resume.
  void NoteSuspended(std::coroutine_handle<> h) { suspended_.Insert(h); }

  /// Resumes a registered coroutine (drops it from the registry first).
  void ResumeSuspended(std::coroutine_handle<> h) {
    suspended_.Erase(h.address());
    h.resume();
  }

  /// Destroys every still-suspended process frame. Idempotent; called from
  /// the destructor. Frame locals must not call back into simulation
  /// facilities from their destructors (they are plain data in this
  /// codebase).
  void DestroySuspendedProcesses() {
    for (auto h : suspended_.TakeAll()) h.destroy();
  }

  /// Number of process frames currently suspended (tests/audits).
  std::size_t suspended_processes() const { return suspended_.size(); }

 private:
  /// Schedules a registered coroutine wakeup at absolute time `time`.
  void ScheduleResume(SimTime time, std::coroutine_handle<> h) {
    CCSIM_CHECK_MSG(time >= now_, "wakeup scheduled in the past");
    calendar_.ScheduleResume(time, h);
  }

  /// Fires one popped event: either invoke its handler or resume its
  /// coroutine.
  void Dispatch(Calendar::Fired& fired) {
    if (fired.kind == EventKind::kResume) {
      ResumeSuspended(fired.resume);
    } else {
      fired.fn();
    }
  }

  /// Records the about-to-fire event as dump context (and in the audit ring
  /// buffer), then enforces the watchdog limits. Fatal on a tripped limit.
  void BeginEvent(const Calendar::Fired& fired);

  [[noreturn]] void WatchdogFail(const char* what);

  // First member on purpose: destroyed after every other member, because
  // the calendar's pending closures and the registry's frames free into it
  // during their own destruction.
  Arena arena_;
  Calendar calendar_;
  SimTime now_ = 0.0;
  bool stop_requested_ = false;
  std::uint64_t events_fired_ = 0;
  SuspendedSet suspended_;

  WatchdogLimits watchdog_;
  SimTime last_progress_ = 0.0;
  struct DumpSection {
    std::string label;
    std::function<void(std::FILE*)> fn;
  };
  std::vector<DumpSection> dump_sections_;
  // Context of the event currently being dispatched (for dumps).
  bool in_event_ = false;
  SimTime current_event_time_ = 0.0;
  bool current_event_is_resume_ = false;
  // Ring buffer of recently fired events; populated in CCSIM_AUDIT builds
  // only (an extra store per event is too much for the measured hot path).
  struct FiredRecord {
    std::uint64_t seq = 0;
    SimTime time = 0.0;
    bool is_resume = false;
  };
  static constexpr std::size_t kFiredRingSize = 32;
  std::vector<FiredRecord> fired_ring_;
};

}  // namespace ccsim::sim

#endif  // CCSIM_SIM_SIMULATION_H_
