#ifndef CCSIM_SIM_TIME_H_
#define CCSIM_SIM_TIME_H_

#include <cstdint>
#include <limits>

namespace ccsim::sim {

/// Simulated time, in seconds. All model parameters expressed in other units
/// (instructions, milliseconds) are converted to seconds at the model layer.
using SimTime = double;

/// A value no event time can reach; used as "never".
inline constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();

/// Converts milliseconds to SimTime seconds.
constexpr SimTime FromMillis(double ms) { return ms / 1000.0; }

/// Converts a CPU demand in instructions to seconds on a CPU of the given
/// MIPS rating (millions of instructions per second).
constexpr SimTime InstructionsToSeconds(double instructions, double mips) {
  return instructions / (mips * 1.0e6);
}

}  // namespace ccsim::sim

#endif  // CCSIM_SIM_TIME_H_
