#ifndef CCSIM_SIM_COMPLETION_H_
#define CCSIM_SIM_COMPLETION_H_

#include <coroutine>
#include <memory>
#include <optional>
#include <utility>

#include "ccsim/sim/check.h"
#include "ccsim/sim/simulation.h"

namespace ccsim::sim {

/// Unit result for completions that carry no value.
struct Unit {};

/// A single-producer, single-consumer rendezvous between a facility (lock
/// manager, disk, CPU, message handler) and an awaiting process.
///
/// Usage: the facility creates a `std::shared_ptr<Completion<T>>`, hands it to
/// the requesting process (which `co_await Await(c)`s it) and keeps its own
/// reference; later it calls `Complete(value)`, which resumes the waiter via
/// the calendar at the current simulated time. `Complete` before the await is
/// fine: the awaiting process then does not suspend at all.
template <typename T>
class Completion {
 public:
  explicit Completion(Simulation* sim) : sim_(sim) {}
  Completion(const Completion&) = delete;
  Completion& operator=(const Completion&) = delete;

  bool done() const { return value_.has_value(); }

  /// Fulfills the completion. Must be called at most once.
  void Complete(T value) {
    CCSIM_CHECK_MSG(!value_.has_value(), "Completion fulfilled twice");
    value_ = std::move(value);
    if (waiter_) {
      auto h = waiter_;
      waiter_ = nullptr;
      sim_->ResumeLater(h);
    }
  }

  // Internal interface used by the awaiter. Registers the waiter with the
  // simulation's suspended-process registry so the frame is destroyed (not
  // leaked) if the run ends before this completion is fulfilled.
  void SetWaiter(std::coroutine_handle<> h) {
    CCSIM_CHECK_MSG(!waiter_, "Completion awaited twice");
    waiter_ = h;
    sim_->NoteSuspended(h);
  }
  T TakeValue() {
    CCSIM_CHECK(value_.has_value());
    return *std::move(value_);
  }

 private:
  Simulation* sim_;
  std::optional<T> value_;
  std::coroutine_handle<> waiter_ = nullptr;
};

/// Awaiter that keeps the completion alive across the suspension.
template <typename T>
class CompletionAwaiter {
 public:
  explicit CompletionAwaiter(std::shared_ptr<Completion<T>> c)
      : c_(std::move(c)) {}
  bool await_ready() const noexcept { return c_->done(); }
  void await_suspend(std::coroutine_handle<> h) { c_->SetWaiter(h); }
  T await_resume() { return c_->TakeValue(); }

 private:
  std::shared_ptr<Completion<T>> c_;
};

/// `T value = co_await Await(completion);`
template <typename T>
CompletionAwaiter<T> Await(std::shared_ptr<Completion<T>> c) {
  return CompletionAwaiter<T>(std::move(c));
}

/// Creates a fresh unfulfilled completion. The object and its shared_ptr
/// control block are co-located in the simulation's arena (completions are
/// the kernel's most frequent allocation: one per CC request, disk access,
/// and 2PC vote).
template <typename T>
std::shared_ptr<Completion<T>> MakeCompletion(Simulation* sim) {
  return std::allocate_shared<Completion<T>>(
      ArenaAllocator<Completion<T>>(sim->arena()), sim);
}

/// A countdown latch: completes (with Unit) when `count` events have been
/// counted down. A zero initial count completes immediately.
class Latch {
 public:
  Latch(Simulation* sim, int count)
      : count_(count), completion_(MakeCompletion<Unit>(sim)) {
    CCSIM_CHECK(count >= 0);
    if (count_ == 0) completion_->Complete(Unit{});
  }

  void CountDown() {
    CCSIM_CHECK_MSG(count_ > 0, "Latch counted below zero");
    if (--count_ == 0) completion_->Complete(Unit{});
  }

  int count() const { return count_; }
  std::shared_ptr<Completion<Unit>> completion() { return completion_; }

 private:
  int count_;
  std::shared_ptr<Completion<Unit>> completion_;
};

}  // namespace ccsim::sim

#endif  // CCSIM_SIM_COMPLETION_H_
