#include "ccsim/experiments/cache.h"

#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "ccsim/sim/check.h"

namespace ccsim::experiments {

namespace {
constexpr char kDefaultDir[] = "ccsim_bench_cache";
constexpr int kFormatVersion = 7;  // bump when RunResult fields change

// One serialized field of RunResult. Serialization and parsing both walk
// this table, so the two cannot drift apart and the field count in the
// trailer is derived, not hand-maintained. Integer counters are written and
// parsed as integers: routing them through double would silently corrupt
// values above 2^53.
enum class FieldType { kDouble, kU64, kBool };

struct Field {
  const char* key;
  FieldType type;
  double engine::RunResult::*d;
  std::uint64_t engine::RunResult::*u;
  bool engine::RunResult::*b;
};

constexpr Field D(const char* key, double engine::RunResult::*m) {
  return {key, FieldType::kDouble, m, nullptr, nullptr};
}
constexpr Field U(const char* key, std::uint64_t engine::RunResult::*m) {
  return {key, FieldType::kU64, nullptr, m, nullptr};
}
constexpr Field B(const char* key, bool engine::RunResult::*m) {
  return {key, FieldType::kBool, nullptr, nullptr, m};
}

using R = engine::RunResult;
constexpr Field kFields[] = {
    D("throughput", &R::throughput),
    D("mean_response_time", &R::mean_response_time),
    D("rt_ci_half_width", &R::rt_ci_half_width),
    D("max_response_time", &R::max_response_time),
    D("rt_p50", &R::rt_p50),
    D("rt_p90", &R::rt_p90),
    D("rt_p99", &R::rt_p99),
    U("commits", &R::commits),
    U("aborts", &R::aborts),
    D("abort_ratio", &R::abort_ratio),
    U("aborts_local_deadlock", &R::aborts_local_deadlock),
    U("aborts_global_deadlock", &R::aborts_global_deadlock),
    U("aborts_wound", &R::aborts_wound),
    U("aborts_timestamp", &R::aborts_timestamp),
    U("aborts_certification", &R::aborts_certification),
    U("aborts_die", &R::aborts_die),
    U("aborts_timeout", &R::aborts_timeout),
    D("host_cpu_util", &R::host_cpu_util),
    D("proc_cpu_util", &R::proc_cpu_util),
    D("disk_util", &R::disk_util),
    D("mean_blocking_time", &R::mean_blocking_time),
    U("blocked_waits", &R::blocked_waits),
    D("messages_per_commit", &R::messages_per_commit),
    U("transactions_submitted", &R::transactions_submitted),
    U("live_at_end", &R::live_at_end),
    U("events", &R::events),
    D("sim_seconds", &R::sim_seconds),
    D("wall_seconds", &R::wall_seconds),
    B("audited", &R::audited),
    B("serializable", &R::serializable),
    // v6: fault metrics. Appended so that v5 entries migrate by appending
    // defaults (see tools/migrate_cache_v5_to_v6.py).
    D("availability", &R::availability),
    D("goodput", &R::goodput),
    U("node_crashes", &R::node_crashes),
    U("messages_dropped", &R::messages_dropped),
    U("messages_lost", &R::messages_lost),
    U("aborts_node_crash", &R::aborts_node_crash),
    U("aborts_comm_timeout", &R::aborts_comm_timeout),
    U("forced_terminations", &R::forced_terminations),
    // v7: tail-latency metrics. Appended so that v6 entries migrate by
    // appending defaults (see tools/migrate_cache_v6_to_v7.py).
    D("rt_p999", &R::rt_p999),
    D("mean_queue_time", &R::mean_queue_time),
    D("mean_exec_time", &R::mean_exec_time),
    D("mean_commit_wait_time", &R::mean_commit_wait_time),
    D("mean_restart_wasted_time", &R::mean_restart_wasted_time),
    D("mean_active_txns", &R::mean_active_txns),
};
constexpr std::size_t kNumFields = std::size(kFields);
static_assert(kNumFields <= 64, "seen-field mask below is a uint64");

bool ParseDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool ParseU64(const std::string& token, std::uint64_t* out) {
  if (token.empty() || token[0] == '-' || token[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

}  // namespace

ResultCache::ResultCache() {
  const char* env = std::getenv("CCSIM_CACHE_DIR");
  dir_ = env != nullptr && env[0] != '\0' ? env : kDefaultDir;
}

ResultCache::ResultCache(std::string directory) : dir_(std::move(directory)) {}

std::string ResultCache::PathFor(const config::SystemConfig& config) const {
  char name[64];
  std::snprintf(name, sizeof(name), "v%d_%016" PRIx64 ".result",
                kFormatVersion, config.Fingerprint());
  return dir_ + "/" + name;
}

std::string SerializeResult(const engine::RunResult& r) {
  std::ostringstream out;
  out.precision(17);
  for (const Field& f : kFields) {
    out << f.key << ' ';
    switch (f.type) {
      case FieldType::kDouble: out << r.*(f.d); break;
      case FieldType::kU64: out << r.*(f.u); break;
      case FieldType::kBool: out << (r.*(f.b) ? 1 : 0); break;
    }
    out << '\n';
  }
  out << "field_count " << kNumFields << '\n';
  return out.str();
}

std::optional<engine::RunResult> ParseResult(const std::string& text) {
  engine::RunResult r;
  std::istringstream in(text);
  std::string key;
  std::string token;
  std::uint64_t fields = 0;
  std::uint64_t seen = 0;
  while (in >> key) {
    if (!(in >> token)) return std::nullopt;  // key without a value
    if (key == "field_count") {
      // The trailer is written last; anything after it, a count mismatch,
      // or missing known fields marks a truncated or corrupt file.
      std::uint64_t expected = 0;
      if (!ParseU64(token, &expected)) return std::nullopt;
      if (expected != fields) return std::nullopt;
      if (in >> key) return std::nullopt;
      constexpr std::uint64_t kAllSeen = (std::uint64_t{1} << kNumFields) - 1;
      if (seen != kAllSeen) return std::nullopt;
      return r;
    }
    ++fields;
    bool known = false;
    for (std::size_t i = 0; i < kNumFields; ++i) {
      if (key != kFields[i].key) continue;
      known = true;
      const Field& f = kFields[i];
      switch (f.type) {
        case FieldType::kDouble:
          if (!ParseDouble(token, &(r.*(f.d)))) return std::nullopt;
          break;
        case FieldType::kU64:
          if (!ParseU64(token, &(r.*(f.u)))) return std::nullopt;
          break;
        case FieldType::kBool: {
          std::uint64_t v = 0;
          if (!ParseU64(token, &v)) return std::nullopt;
          r.*(f.b) = v != 0;
          break;
        }
      }
      seen |= std::uint64_t{1} << i;
      break;
    }
    if (!known) {
      // Unknown key: tolerated for forward compatibility (a newer writer's
      // extra fields still count toward its field_count trailer).
      double ignored = 0;
      std::uint64_t ignored_u = 0;
      if (!ParseDouble(token, &ignored) && !ParseU64(token, &ignored_u))
        return std::nullopt;
    }
  }
  return std::nullopt;  // no trailer: truncated file
}

std::optional<engine::RunResult> ResultCache::Load(
    const config::SystemConfig& config) const {
  const std::string path = PathFor(config);
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto result = ParseResult(buffer.str());
  if (!result) {
    // The entry exists but does not parse (truncated write, disk hiccup,
    // manual editing). Quarantine it under a distinct suffix so the slot
    // frees up for a clean re-run while the bytes stay available for
    // inspection, and say so once instead of silently re-simulating forever.
    std::error_code ec;
    std::filesystem::rename(path, path + ".quarantined", ec);
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "ccsim: corrupt cache entry quarantined: %s -> "
                   "%s.quarantined (rename %s)\n",
                   path.c_str(), path.c_str(),
                   ec ? ec.message().c_str() : "ok");
    }
  }
  return result;
}

bool ResultCache::Store(const config::SystemConfig& config,
                        const engine::RunResult& result) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  const std::string path = PathFor(config);
  // Unique per-writer temp name: concurrent writers (worker threads, or
  // whole processes sharing the cache directory) must never interleave
  // output into one temp file. pid disambiguates processes, the sequence
  // number disambiguates threads within one.
  static std::atomic<std::uint64_t> temp_seq{0};
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), ".tmp.%ld.%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    temp_seq.fetch_add(1, std::memory_order_relaxed)));
  const std::string tmp = path + suffix;
  {
    std::ofstream out(tmp);
    if (!out) return false;
    out << SerializeResult(result);
    out.flush();
    if (!out) {
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    // Publishing failed; don't leave the temp file behind. The caller falls
    // back to Load in case a concurrent writer published meanwhile.
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    return false;
  }
  return true;
}

engine::RunResult ResultCache::GetOrRun(
    const config::SystemConfig& config) const {
  const std::uint64_t key = config.Fingerprint();
  for (;;) {
    if (auto cached = Load(config)) return *cached;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (inflight_.count(key) > 0) {
        // Another thread is simulating this point: wait for it to publish,
        // then loop back and load its result instead of duplicating work.
        cv_.wait(lock, [&] { return inflight_.count(key) == 0; });
        continue;
      }
      inflight_.insert(key);
    }
    simulations_run_.fetch_add(1, std::memory_order_relaxed);
    engine::RunResult result = engine::RunSimulation(config);
    const bool stored = Store(config, result);
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(key);
    }
    cv_.notify_all();
    if (!stored) {
      // Prefer the published entry when one exists so every caller of this
      // key observes one canonical result.
      if (auto other = Load(config)) return *other;
    }
    return result;
  }
}

}  // namespace ccsim::experiments
