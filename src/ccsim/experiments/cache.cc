#include "ccsim/experiments/cache.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ccsim/sim/check.h"

namespace ccsim::experiments {

namespace {
constexpr char kDefaultDir[] = "ccsim_bench_cache";
constexpr int kFormatVersion = 4;  // bump when RunResult fields change
}  // namespace

ResultCache::ResultCache() {
  const char* env = std::getenv("CCSIM_CACHE_DIR");
  dir_ = env != nullptr && env[0] != '\0' ? env : kDefaultDir;
}

ResultCache::ResultCache(std::string directory) : dir_(std::move(directory)) {}

std::string ResultCache::PathFor(const config::SystemConfig& config) const {
  char name[64];
  std::snprintf(name, sizeof(name), "v%d_%016" PRIx64 ".result",
                kFormatVersion, config.Fingerprint());
  return dir_ + "/" + name;
}

std::string SerializeResult(const engine::RunResult& r) {
  std::ostringstream out;
  out.precision(17);
  out << "throughput " << r.throughput << "\n"
      << "mean_response_time " << r.mean_response_time << "\n"
      << "rt_ci_half_width " << r.rt_ci_half_width << "\n"
      << "max_response_time " << r.max_response_time << "\n"
      << "rt_p50 " << r.rt_p50 << "\n"
      << "rt_p90 " << r.rt_p90 << "\n"
      << "rt_p99 " << r.rt_p99 << "\n"
      << "commits " << r.commits << "\n"
      << "aborts " << r.aborts << "\n"
      << "abort_ratio " << r.abort_ratio << "\n"
      << "aborts_local_deadlock " << r.aborts_local_deadlock << "\n"
      << "aborts_global_deadlock " << r.aborts_global_deadlock << "\n"
      << "aborts_wound " << r.aborts_wound << "\n"
      << "aborts_timestamp " << r.aborts_timestamp << "\n"
      << "aborts_certification " << r.aborts_certification << "\n"
      << "aborts_die " << r.aborts_die << "\n"
      << "aborts_timeout " << r.aborts_timeout << "\n"
      << "host_cpu_util " << r.host_cpu_util << "\n"
      << "proc_cpu_util " << r.proc_cpu_util << "\n"
      << "disk_util " << r.disk_util << "\n"
      << "mean_blocking_time " << r.mean_blocking_time << "\n"
      << "blocked_waits " << r.blocked_waits << "\n"
      << "messages_per_commit " << r.messages_per_commit << "\n"
      << "transactions_submitted " << r.transactions_submitted << "\n"
      << "live_at_end " << r.live_at_end << "\n"
      << "events " << r.events << "\n"
      << "sim_seconds " << r.sim_seconds << "\n"
      << "wall_seconds " << r.wall_seconds << "\n"
      << "audited " << (r.audited ? 1 : 0) << "\n"
      << "serializable " << (r.serializable ? 1 : 0) << "\n";
  return out.str();
}

std::optional<engine::RunResult> ParseResult(const std::string& text) {
  engine::RunResult r;
  std::istringstream in(text);
  std::string key;
  int fields = 0;
  while (in >> key) {
    double value = 0;
    if (!(in >> value)) return std::nullopt;
    ++fields;
    if (key == "throughput") r.throughput = value;
    else if (key == "mean_response_time") r.mean_response_time = value;
    else if (key == "rt_ci_half_width") r.rt_ci_half_width = value;
    else if (key == "max_response_time") r.max_response_time = value;
    else if (key == "rt_p50") r.rt_p50 = value;
    else if (key == "rt_p90") r.rt_p90 = value;
    else if (key == "rt_p99") r.rt_p99 = value;
    else if (key == "commits") r.commits = static_cast<std::uint64_t>(value);
    else if (key == "aborts") r.aborts = static_cast<std::uint64_t>(value);
    else if (key == "abort_ratio") r.abort_ratio = value;
    else if (key == "aborts_local_deadlock") r.aborts_local_deadlock = static_cast<std::uint64_t>(value);
    else if (key == "aborts_global_deadlock") r.aborts_global_deadlock = static_cast<std::uint64_t>(value);
    else if (key == "aborts_wound") r.aborts_wound = static_cast<std::uint64_t>(value);
    else if (key == "aborts_timestamp") r.aborts_timestamp = static_cast<std::uint64_t>(value);
    else if (key == "aborts_certification") r.aborts_certification = static_cast<std::uint64_t>(value);
    else if (key == "aborts_die") r.aborts_die = static_cast<std::uint64_t>(value);
    else if (key == "aborts_timeout") r.aborts_timeout = static_cast<std::uint64_t>(value);
    else if (key == "host_cpu_util") r.host_cpu_util = value;
    else if (key == "proc_cpu_util") r.proc_cpu_util = value;
    else if (key == "disk_util") r.disk_util = value;
    else if (key == "mean_blocking_time") r.mean_blocking_time = value;
    else if (key == "blocked_waits") r.blocked_waits = static_cast<std::uint64_t>(value);
    else if (key == "messages_per_commit") r.messages_per_commit = value;
    else if (key == "transactions_submitted") r.transactions_submitted = static_cast<std::uint64_t>(value);
    else if (key == "live_at_end") r.live_at_end = static_cast<std::uint64_t>(value);
    else if (key == "events") r.events = static_cast<std::uint64_t>(value);
    else if (key == "sim_seconds") r.sim_seconds = value;
    else if (key == "wall_seconds") r.wall_seconds = value;
    else if (key == "audited") r.audited = value != 0;
    else if (key == "serializable") r.serializable = value != 0;
    else --fields;  // unknown key: tolerated (forward compatibility)
  }
  if (fields < 18) return std::nullopt;
  return r;
}

std::optional<engine::RunResult> ResultCache::Load(
    const config::SystemConfig& config) const {
  std::ifstream in(PathFor(config));
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseResult(buffer.str());
}

void ResultCache::Store(const config::SystemConfig& config,
                        const engine::RunResult& result) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  std::string path = PathFor(config);
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    CCSIM_CHECK_MSG(static_cast<bool>(out), "cannot write result cache file");
    out << SerializeResult(result);
  }
  std::filesystem::rename(tmp, path, ec);
}

engine::RunResult ResultCache::GetOrRun(
    const config::SystemConfig& config) const {
  if (auto cached = Load(config)) return *cached;
  engine::RunResult result = engine::RunSimulation(config);
  Store(config, result);
  return result;
}

}  // namespace ccsim::experiments
