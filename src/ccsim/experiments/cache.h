#ifndef CCSIM_EXPERIMENTS_CACHE_H_
#define CCSIM_EXPERIMENTS_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>

#include "ccsim/config/params.h"
#include "ccsim/engine/run.h"

namespace ccsim::experiments {

/// Simulation-point result cache shared by the figure benchmarks.
///
/// Several figures are different views of the same sweeps (Figs 2-7 all come
/// from the machine-size experiment), so each simulation point is stored
/// under a key derived from the *full* configuration fingerprint; any figure
/// binary that needs the point first looks here. One small text file per
/// point, in the directory named by $CCSIM_CACHE_DIR (default:
/// ./ccsim_bench_cache). Delete the directory to force recomputation.
///
/// Safe for concurrent use from multiple threads and multiple processes:
/// Store writes through a unique per-writer temp file and publishes with an
/// atomic rename, and GetOrRun single-flights concurrent requests for the
/// same fingerprint within a process (one simulation, everyone gets its
/// result). Across processes the worst case is duplicate work, never a
/// corrupt entry: simulations are deterministic, so concurrent publishers
/// of one key write identical bytes.
class ResultCache {
 public:
  /// Uses $CCSIM_CACHE_DIR or the default directory. Creates it on demand.
  ResultCache();
  explicit ResultCache(std::string directory);

  std::optional<engine::RunResult> Load(
      const config::SystemConfig& config) const;

  /// Atomically publishes `result` under the config's fingerprint. Returns
  /// false when the entry could not be published (I/O error); the caller can
  /// fall back to Load in case a concurrent writer won the race.
  bool Store(const config::SystemConfig& config,
             const engine::RunResult& result) const;

  /// Loads the cached result or runs the simulation and caches it.
  /// Concurrent calls for the same configuration run one simulation; the
  /// other callers block until it is published and then load it.
  engine::RunResult GetOrRun(const config::SystemConfig& config) const;

  const std::string& directory() const { return dir_; }

  /// Number of simulations this cache object actually executed (cache
  /// misses that ran). Exposed so tests can assert single-flight behavior.
  std::uint64_t simulations_run() const {
    return simulations_run_.load(std::memory_order_relaxed);
  }

 private:
  std::string PathFor(const config::SystemConfig& config) const;
  std::string dir_;

  // Single-flight state: fingerprints currently being simulated by some
  // thread of this process. Guarded by mu_; cv_ signals completion.
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable std::unordered_set<std::uint64_t> inflight_;
  mutable std::atomic<std::uint64_t> simulations_run_{0};
};

/// Serialization used by the cache (exposed for tests). The serialized form
/// ends with a `field_count N` trailer; ParseResult rejects files whose
/// trailer is missing or does not match the number of fields read, so a
/// truncated file is a miss instead of a silently-defaulted result. Integer
/// counters round-trip exactly over the full uint64 range.
std::string SerializeResult(const engine::RunResult& r);
std::optional<engine::RunResult> ParseResult(const std::string& text);

}  // namespace ccsim::experiments

#endif  // CCSIM_EXPERIMENTS_CACHE_H_
