#ifndef CCSIM_EXPERIMENTS_CACHE_H_
#define CCSIM_EXPERIMENTS_CACHE_H_

#include <optional>
#include <string>

#include "ccsim/config/params.h"
#include "ccsim/engine/run.h"

namespace ccsim::experiments {

/// Simulation-point result cache shared by the figure benchmarks.
///
/// Several figures are different views of the same sweeps (Figs 2-7 all come
/// from the machine-size experiment), so each simulation point is stored
/// under a key derived from the *full* configuration fingerprint; any figure
/// binary that needs the point first looks here. One small text file per
/// point, in the directory named by $CCSIM_CACHE_DIR (default:
/// ./ccsim_bench_cache). Delete the directory to force recomputation.
class ResultCache {
 public:
  /// Uses $CCSIM_CACHE_DIR or the default directory. Creates it on demand.
  ResultCache();
  explicit ResultCache(std::string directory);

  std::optional<engine::RunResult> Load(
      const config::SystemConfig& config) const;
  void Store(const config::SystemConfig& config,
             const engine::RunResult& result) const;

  /// Loads the cached result or runs the simulation and caches it.
  engine::RunResult GetOrRun(const config::SystemConfig& config) const;

  const std::string& directory() const { return dir_; }

 private:
  std::string PathFor(const config::SystemConfig& config) const;
  std::string dir_;
};

/// Serialization used by the cache (exposed for tests).
std::string SerializeResult(const engine::RunResult& r);
std::optional<engine::RunResult> ParseResult(const std::string& text);

}  // namespace ccsim::experiments

#endif  // CCSIM_EXPERIMENTS_CACHE_H_
