#ifndef CCSIM_EXPERIMENTS_SWEEP_H_
#define CCSIM_EXPERIMENTS_SWEEP_H_

#include <functional>
#include <vector>

#include "ccsim/config/params.h"
#include "ccsim/engine/run.h"
#include "ccsim/experiments/cache.h"

namespace ccsim::experiments {

/// One point of a sweep: algorithm x sweep variable -> metrics.
struct Point {
  config::CcAlgorithm algorithm;
  double x = 0.0;  // the swept quantity (think time, partition degree, ...)
  engine::RunResult result;
};

/// Builds the configuration for (algorithm, x).
using ConfigFn =
    std::function<config::SystemConfig(config::CcAlgorithm, double)>;

/// Runs algorithms x xs through the cache via the ParallelRunner (worker
/// pool sized by --jobs / $CCSIM_JOBS, default hardware concurrency).
/// Results come back in grid order and are bit-identical to a sequential
/// run. Prints progress per completed simulation when `verbose`.
std::vector<Point> RunGrid(const ResultCache& cache,
                           const std::vector<config::CcAlgorithm>& algorithms,
                           const std::vector<double>& xs, const ConfigFn& make,
                           bool verbose = true);

/// Finds the point for (algorithm, x); aborts if absent. x matches with a
/// relative epsilon, so values recomputed at the call site still hit.
const engine::RunResult& At(const std::vector<Point>& points,
                            config::CcAlgorithm algorithm, double x);

}  // namespace ccsim::experiments

#endif  // CCSIM_EXPERIMENTS_SWEEP_H_
