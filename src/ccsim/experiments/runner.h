#ifndef CCSIM_EXPERIMENTS_RUNNER_H_
#define CCSIM_EXPERIMENTS_RUNNER_H_

#include <vector>

#include "ccsim/config/params.h"
#include "ccsim/engine/run.h"
#include "ccsim/experiments/cache.h"

namespace ccsim::experiments {

/// How many worker threads the runner uses. Resolution order:
///   explicit `requested` > 0   (e.g. a --jobs flag)
///   > SetDefaultJobs() value   (set once by the bench arg parser)
///   > $CCSIM_JOBS
///   > std::thread::hardware_concurrency()
/// Always at least 1.
int ResolveJobs(int requested = 0);

/// Process-wide default consumed by ResolveJobs (the --jobs flag). Values
/// <= 0 clear the override.
void SetDefaultJobs(int jobs);

struct RunnerOptions {
  int jobs = 0;         // <= 0: resolve via ResolveJobs()
  bool verbose = true;  // progress + per-point lines on stderr
};

/// Runs a batch of simulation points through a worker pool, one isolated
/// single-threaded Simulation per worker at a time. Parallelism lives here,
/// in the experiment layer, and never inside a Simulation: every point is
/// bit-identical to what the sequential path produces (same config, same
/// seed, no shared mutable state), so `--jobs N` only changes wall-clock
/// time, never results.
///
/// Points are deduplicated by SystemConfig::Fingerprint() before scheduling
/// (figures share sweep points; each unique point simulates at most once),
/// cached points are served without touching the pool, and results are
/// reassembled in input order regardless of completion order.
class ParallelRunner {
 public:
  explicit ParallelRunner(const ResultCache& cache, RunnerOptions options = {});

  /// Returns one RunResult per input config, in input order. Invalid
  /// configurations abort via the engine's own validation, exactly as the
  /// sequential path does.
  std::vector<engine::RunResult> Run(
      const std::vector<config::SystemConfig>& configs) const;

 private:
  const ResultCache& cache_;
  RunnerOptions options_;
};

}  // namespace ccsim::experiments

#endif  // CCSIM_EXPERIMENTS_RUNNER_H_
