#include "ccsim/experiments/sweep.h"

#include <cstdio>

#include "ccsim/sim/check.h"

namespace ccsim::experiments {

std::vector<Point> RunGrid(const ResultCache& cache,
                           const std::vector<config::CcAlgorithm>& algorithms,
                           const std::vector<double>& xs, const ConfigFn& make,
                           bool verbose) {
  std::vector<Point> points;
  points.reserve(algorithms.size() * xs.size());
  for (config::CcAlgorithm alg : algorithms) {
    for (double x : xs) {
      config::SystemConfig cfg = make(alg, x);
      bool cached = cache.Load(cfg).has_value();
      engine::RunResult result = cache.GetOrRun(cfg);
      if (verbose && !cached) {
        std::fprintf(stderr,
                     "  [sim] %-5s x=%-7.4g thr=%8.3f rt=%8.3f "
                     "(%.1fs wall, %llu events)\n",
                     config::ToString(alg), x, result.throughput,
                     result.mean_response_time, result.wall_seconds,
                     static_cast<unsigned long long>(result.events));
      }
      points.push_back(Point{alg, x, result});
    }
  }
  return points;
}

const engine::RunResult& At(const std::vector<Point>& points,
                            config::CcAlgorithm algorithm, double x) {
  for (const Point& p : points) {
    if (p.algorithm == algorithm && p.x == x) return p.result;
  }
  CCSIM_CHECK_MSG(false, "sweep point not found");
  static engine::RunResult dummy;
  return dummy;
}

}  // namespace ccsim::experiments
