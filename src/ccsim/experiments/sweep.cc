#include "ccsim/experiments/sweep.h"

#include <cmath>

#include "ccsim/experiments/runner.h"
#include "ccsim/sim/check.h"

namespace ccsim::experiments {

namespace {

// Sweep x values are compared with a relative epsilon: callers often
// recompute an x (e.g. `i * 0.1` at the call site vs a literal in the grid),
// and exact double equality would silently miss the point.
bool SameX(double a, double b) {
  if (a == b) return true;
  double scale = std::fmax(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= 1e-9 * std::fmax(1.0, scale);
}

}  // namespace

std::vector<Point> RunGrid(const ResultCache& cache,
                           const std::vector<config::CcAlgorithm>& algorithms,
                           const std::vector<double>& xs, const ConfigFn& make,
                           bool verbose) {
  std::vector<config::SystemConfig> configs;
  configs.reserve(algorithms.size() * xs.size());
  for (config::CcAlgorithm alg : algorithms) {
    for (double x : xs) {
      configs.push_back(make(alg, x));
    }
  }

  ParallelRunner runner(cache, RunnerOptions{.jobs = 0, .verbose = verbose});
  std::vector<engine::RunResult> results = runner.Run(configs);

  std::vector<Point> points;
  points.reserve(configs.size());
  std::size_t i = 0;
  for (config::CcAlgorithm alg : algorithms) {
    for (double x : xs) {
      points.push_back(Point{alg, x, results[i++]});
    }
  }
  return points;
}

const engine::RunResult& At(const std::vector<Point>& points,
                            config::CcAlgorithm algorithm, double x) {
  for (const Point& p : points) {
    if (p.algorithm == algorithm && SameX(p.x, x)) return p.result;
  }
  CCSIM_CHECK_MSG(false, "sweep point not found");
  static engine::RunResult dummy;
  return dummy;
}

}  // namespace ccsim::experiments
