#include "ccsim/experiments/experiments.h"

#include <cstdlib>

namespace ccsim::experiments {

namespace {
bool EnvSet(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}
}  // namespace

std::vector<double> PaperThinkTimes() {
  return {0, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 120};
}

std::vector<double> FineThinkTimes() {
  return {0, 1, 2, 4, 6, 8, 12, 16, 20, 24, 32, 48, 64, 96, 120};
}

void ApplyRunScale(config::SystemConfig& config) {
  if (EnvSet("CCSIM_QUICK")) {
    config.run.warmup_sec = 100;
    config.run.measure_sec = 400;
  } else if (EnvSet("CCSIM_FULL")) {
    config.run.warmup_sec = 500;
    config.run.measure_sec = 3000;
  } else {
    config.run.warmup_sec = 300;
    config.run.measure_sec = 1500;
  }
}

config::SystemConfig Exp1Config(int num_proc_nodes, config::CcAlgorithm alg,
                                double think_time) {
  config::SystemConfig cfg = config::PaperBaseConfig();
  cfg.machine.num_proc_nodes = num_proc_nodes;
  cfg.placement.degree = num_proc_nodes;  // decluster over the whole machine
  cfg.database.pages_per_file = 300;
  cfg.costs.inst_per_startup = 2000;
  cfg.costs.inst_per_msg = 1000;
  cfg.algorithm = alg;
  cfg.workload.think_time_sec = think_time;
  ApplyRunScale(cfg);
  return cfg;
}

config::SystemConfig Exp2Config(int degree, int pages_per_file,
                                config::CcAlgorithm alg, double think_time) {
  config::SystemConfig cfg = config::PaperBaseConfig();
  cfg.machine.num_proc_nodes = 8;
  cfg.placement.degree = degree;
  cfg.database.pages_per_file = pages_per_file;
  cfg.costs.inst_per_startup = 2000;
  cfg.costs.inst_per_msg = 1000;
  cfg.algorithm = alg;
  cfg.workload.think_time_sec = think_time;
  ApplyRunScale(cfg);
  return cfg;
}

config::SystemConfig Exp3Config(int degree, double inst_per_startup,
                                double inst_per_msg, config::CcAlgorithm alg,
                                double think_time) {
  config::SystemConfig cfg = config::PaperBaseConfig();
  cfg.machine.num_proc_nodes = 8;
  cfg.placement.degree = degree;
  cfg.database.pages_per_file = 300;
  cfg.costs.inst_per_startup = inst_per_startup;
  cfg.costs.inst_per_msg = inst_per_msg;
  cfg.algorithm = alg;
  cfg.workload.think_time_sec = think_time;
  ApplyRunScale(cfg);
  return cfg;
}

config::SystemConfig FaultConfig(config::CcAlgorithm alg, double think_time,
                                 double node_mttf_sec) {
  config::SystemConfig cfg = Exp1Config(8, alg, think_time);
  if (node_mttf_sec > 0.0) {
    cfg.faults.node_mttf_sec = node_mttf_sec;
    cfg.faults.node_mttr_sec = 10.0;
    cfg.faults.msg_timeout_sec = 5.0;
  }
  return cfg;
}

config::SystemConfig KneeConfig(config::CcAlgorithm alg, int num_terminals) {
  config::SystemConfig cfg = Exp1Config(8, alg, 8.0);
  cfg.workload.num_terminals = num_terminals;
  return cfg;
}

std::vector<int> KneeTerminalCounts() {
  // Doubling below the paper's 128 terminals, denser around and past it,
  // where the lock-thrashing knee lives.
  return {16, 32, 64, 96, 128, 192, 256, 384, 512};
}

config::SystemConfig MegascaleConfig(int num_proc_nodes,
                                     config::CcAlgorithm alg,
                                     double think_time) {
  config::SystemConfig cfg = config::PaperBaseConfig();
  cfg.machine.num_proc_nodes = num_proc_nodes;
  // Scaleup: relations (and with them files, pages, and terminals) grow with
  // the machine; each individual transaction still touches 8 partitions on 8
  // nodes like the paper's fully declustered 8-node runs.
  cfg.database.num_relations = num_proc_nodes / 2;
  cfg.database.partitions_per_relation = 8;
  cfg.database.pages_per_file = 1200;  // the paper's large files
  cfg.placement.degree = 8;
  cfg.workload.num_terminals = cfg.database.num_relations * 16;
  cfg.costs.inst_per_startup = 2000;
  cfg.costs.inst_per_msg = 1000;
  cfg.algorithm = alg;
  cfg.workload.think_time_sec = think_time;
  if (EnvSet("CCSIM_QUICK")) {
    cfg.run.warmup_sec = 30;
    cfg.run.measure_sec = 120;
  } else if (EnvSet("CCSIM_FULL")) {
    cfg.run.warmup_sec = 300;
    cfg.run.measure_sec = 1500;
  } else {
    cfg.run.warmup_sec = 100;
    cfg.run.measure_sec = 500;
  }
  return cfg;
}

std::vector<int> MegascaleNodeCounts() { return {256, 1024}; }

}  // namespace ccsim::experiments
