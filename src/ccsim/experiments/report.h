#ifndef CCSIM_EXPERIMENTS_REPORT_H_
#define CCSIM_EXPERIMENTS_REPORT_H_

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "ccsim/config/params.h"

namespace ccsim::experiments {

/// Computes the plotted value for one (algorithm, x) cell - either a direct
/// metric of a sweep point or a derived quantity (speedup, percentage
/// degradation).
using CellFn = std::function<double(config::CcAlgorithm, double x)>;

/// Prints one paper figure as an ASCII table: one row per value of the swept
/// variable, one column per algorithm. These are exactly the series the
/// paper's figure plots.
void PrintTable(std::ostream& out, const std::string& title,
                const std::string& x_label, const std::vector<double>& xs,
                const std::vector<config::CcAlgorithm>& algorithms,
                const CellFn& cell, int precision = 3);

/// Same series in CSV form (for external plotting).
void PrintCsv(std::ostream& out, const std::string& x_label,
              const std::vector<double>& xs,
              const std::vector<config::CcAlgorithm>& algorithms,
              const CellFn& cell);

/// Prints a short header common to all figure binaries (figure id, paper
/// reference, expected qualitative shape).
void PrintFigureHeader(std::ostream& out, const std::string& figure_id,
                       const std::string& description,
                       const std::string& expected_shape);

/// Writes the same series PrintCsv produces to `path`, creating parent
/// directories as needed. Returns false (and warns on stderr) on I/O error.
bool WriteCsvFile(const std::string& path, const std::string& x_label,
                  const std::vector<double>& xs,
                  const std::vector<config::CcAlgorithm>& algorithms,
                  const CellFn& cell);

}  // namespace ccsim::experiments

#endif  // CCSIM_EXPERIMENTS_REPORT_H_
