#ifndef CCSIM_EXPERIMENTS_EXPERIMENTS_H_
#define CCSIM_EXPERIMENTS_EXPERIMENTS_H_

#include <vector>

#include "ccsim/config/params.h"

namespace ccsim::experiments {

/// The terminal think-time grid used to sweep system load (Sec 4.1: 0-120 s).
std::vector<double> PaperThinkTimes();

/// A denser grid for the figures whose interesting region is mid-range.
std::vector<double> FineThinkTimes();

/// Scales the run window from the environment:
///   CCSIM_QUICK=1  -> short runs (smoke-testing the harness)
///   CCSIM_FULL=1   -> long runs (tightest confidence intervals)
/// Default: the standard window (warmup 300 s, measurement 1500 s).
void ApplyRunScale(config::SystemConfig& config);

/// Experiment 1 (Sec 4.2, Figs 2-7): machine size and parallelism scale
/// together. `num_proc_nodes` in {1, 2, 4, 8}; each relation is declustered
/// over all processing nodes; FileSize 300 pages; InstPerStartup 2K,
/// InstPerMsg 1K.
config::SystemConfig Exp1Config(int num_proc_nodes, config::CcAlgorithm alg,
                                double think_time);

/// Experiment 2 (Sec 4.3, Figs 8-13): fixed 8-node machine; partitioning
/// degree 1 (sequential) or 8 (fully parallel); FileSize 300 (small) or
/// 1200 (large) pages.
config::SystemConfig Exp2Config(int degree, int pages_per_file,
                                config::CcAlgorithm alg, double think_time);

/// Experiment 3 (Sec 4.4, Figs 14-17): fixed 8-node machine, small database;
/// partitioning degree in {1, 2, 4, 8}; message and process-initiation
/// overheads varied.
config::SystemConfig Exp3Config(int degree, double inst_per_startup,
                                double inst_per_msg, config::CcAlgorithm alg,
                                double think_time);

/// Fault experiment (extension): the 8-node Experiment 1 machine with the
/// fault layer on. Processing nodes crash with the given MTTF (exponential)
/// and rejoin after ~10 s; 2PC runs with a 5 s silence timeout so blocked
/// transactions resolve via presumed abort / decision resends rather than
/// waiting forever. `node_mttf_sec <= 0` turns the fault layer off (the
/// paper-model baseline).
config::SystemConfig FaultConfig(config::CcAlgorithm alg, double think_time,
                                 double node_mttf_sec);

/// Latency-knee experiment (extension, bench/fig_latency_knee): the 8-node
/// Experiment 1 machine at the paper's 8 s think time, sweeping the number
/// of terminals (the offered multiprogramming level) instead of think time.
/// `num_terminals` must be a multiple of the 8 relations (terminal-group
/// relation choice).
config::SystemConfig KneeConfig(config::CcAlgorithm alg, int num_terminals);

/// The terminal-count grid for the knee sweep (all multiples of 8).
std::vector<int> KneeTerminalCounts();

/// Megascale extension (ROADMAP item 5, bench/ext_megascale): machines an
/// order of magnitude past the paper's ceiling — `num_proc_nodes` in
/// {256, 1024} — with millions of pages. Scaleup shape: per-transaction
/// parallelism stays at the paper's 8 cohorts (degree 8, 8 partitions per
/// relation, large 1200-page files) while the machine grows by adding
/// relations (NumProcNodes/2) and terminals (16 per relation, 8 per node),
/// so per-node load matches the paper's 8-node machine and memory-per-node
/// is the quantity under test. Costs are Experiment 1's (2K startup, 1K
/// message instructions).
///
/// Run windows are shorter than the paper experiments' (these runs cost
/// ~linearly in machine size): warmup 100 s / measure 500 s by default,
/// 30/120 under CCSIM_QUICK, 300/1500 under CCSIM_FULL.
config::SystemConfig MegascaleConfig(int num_proc_nodes,
                                     config::CcAlgorithm alg,
                                     double think_time);

/// The machine-size grid for the megascale figure.
std::vector<int> MegascaleNodeCounts();

}  // namespace ccsim::experiments

#endif  // CCSIM_EXPERIMENTS_EXPERIMENTS_H_
