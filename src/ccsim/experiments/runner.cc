#include "ccsim/experiments/runner.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace ccsim::experiments {

namespace {

std::atomic<int> g_default_jobs{0};

int HardwareJobs() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int EnvJobs() {
  const char* env = std::getenv("CCSIM_JOBS");
  if (env == nullptr || env[0] == '\0') return 0;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return v > 0 ? static_cast<int>(v) : 0;
}

}  // namespace

void SetDefaultJobs(int jobs) {
  g_default_jobs.store(jobs > 0 ? jobs : 0, std::memory_order_relaxed);
}

int ResolveJobs(int requested) {
  if (requested > 0) return requested;
  if (int v = g_default_jobs.load(std::memory_order_relaxed); v > 0) return v;
  if (int v = EnvJobs(); v > 0) return v;
  return HardwareJobs();
}

ParallelRunner::ParallelRunner(const ResultCache& cache, RunnerOptions options)
    : cache_(cache), options_(options) {}

std::vector<engine::RunResult> ParallelRunner::Run(
    const std::vector<config::SystemConfig>& configs) const {
  const std::size_t n = configs.size();

  // Deduplicate by fingerprint: figures share sweep points (Figs 2-7 are all
  // views of the machine-size experiment), so each unique point simulates at
  // most once per batch. `unique_of[i]` maps input i to its unique job.
  std::unordered_map<std::uint64_t, std::size_t> job_by_fingerprint;
  std::vector<std::size_t> unique_of(n);
  std::vector<std::size_t> unique_inputs;  // first input index per unique job
  for (std::size_t i = 0; i < n; ++i) {
    auto [it, inserted] =
        job_by_fingerprint.try_emplace(configs[i].Fingerprint(),
                                       unique_inputs.size());
    if (inserted) unique_inputs.push_back(i);
    unique_of[i] = it->second;
  }

  const std::size_t num_unique = unique_inputs.size();
  std::vector<engine::RunResult> unique_results(num_unique);

  // Serve cached points immediately; only misses go to the pool.
  std::vector<std::size_t> pending;  // indices into unique_inputs
  for (std::size_t u = 0; u < num_unique; ++u) {
    if (auto cached = cache_.Load(configs[unique_inputs[u]])) {
      unique_results[u] = *cached;
    } else {
      pending.push_back(u);
    }
  }

  const std::size_t total = pending.size();
  if (options_.verbose && total > 0) {
    std::fprintf(stderr,
                 "[runner] %zu point(s): %zu cached, %zu to simulate\n",
                 num_unique, num_unique - total, total);
  }

  if (total > 0) {
    const int workers =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(ResolveJobs(options_.jobs)), total));

    // Progress accounting, shared by all workers. Completed wall times feed
    // the ETA: remaining points x mean wall time, divided over the pool.
    std::mutex progress_mu;
    std::size_t done = 0;
    double wall_sum = 0.0;

    auto run_one = [&](std::size_t pending_index) {
      const std::size_t u = pending[pending_index];
      const config::SystemConfig& cfg = configs[unique_inputs[u]];
      engine::RunResult result = cache_.GetOrRun(cfg);
      unique_results[u] = result;
      if (options_.verbose) {
        std::lock_guard<std::mutex> lock(progress_mu);
        ++done;
        wall_sum += result.wall_seconds;
        double eta = done > 0
                         ? (wall_sum / static_cast<double>(done)) *
                               static_cast<double>(total - done) /
                               static_cast<double>(workers)
                         : 0.0;
        std::fprintf(stderr,
                     "  [sim] %-6s think=%-6.4g nodes=%d deg=%d thr=%8.3f "
                     "(%.1fs wall) [%zu/%zu, eta ~%.0fs]\n",
                     config::ToString(cfg.algorithm),
                     cfg.workload.think_time_sec, cfg.machine.num_proc_nodes,
                     cfg.placement.degree, result.throughput,
                     result.wall_seconds, done, total, eta);
      }
    };

    if (workers <= 1) {
      for (std::size_t i = 0; i < total; ++i) run_one(i);
    } else {
      // Each worker claims the next pending point; every simulation is an
      // isolated single-threaded run, so workers share nothing but the
      // claim counter, the cache, and the progress line.
      std::atomic<std::size_t> next{0};
      std::vector<std::jthread> pool;
      pool.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
          for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= total) break;
            run_one(i);
          }
        });
      }
    }  // jthread joins here: all results are published before assembly
  }

  // Reassemble in deterministic input (grid) order.
  std::vector<engine::RunResult> results;
  results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    results.push_back(unique_results[unique_of[i]]);
  }
  return results;
}

}  // namespace ccsim::experiments
