#include "ccsim/experiments/report.h"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>

namespace ccsim::experiments {

void PrintTable(std::ostream& out, const std::string& title,
                const std::string& x_label, const std::vector<double>& xs,
                const std::vector<config::CcAlgorithm>& algorithms,
                const CellFn& cell, int precision) {
  out << "\n== " << title << " ==\n";
  out << std::setw(12) << x_label;
  for (auto alg : algorithms) out << std::setw(12) << config::ToString(alg);
  out << "\n";
  out << std::fixed << std::setprecision(precision);
  for (double x : xs) {
    out << std::setw(12) << x;
    for (auto alg : algorithms) out << std::setw(12) << cell(alg, x);
    out << "\n";
  }
  out.unsetf(std::ios::fixed);
  out << std::setprecision(6);
}

void PrintCsv(std::ostream& out, const std::string& x_label,
              const std::vector<double>& xs,
              const std::vector<config::CcAlgorithm>& algorithms,
              const CellFn& cell) {
  out << x_label;
  for (auto alg : algorithms) out << "," << config::ToString(alg);
  out << "\n";
  for (double x : xs) {
    out << x;
    for (auto alg : algorithms) out << "," << cell(alg, x);
    out << "\n";
  }
}

bool WriteCsvFile(const std::string& path, const std::string& x_label,
                  const std::vector<double>& xs,
                  const std::vector<config::CcAlgorithm>& algorithms,
                  const CellFn& cell) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return false;
  }
  PrintCsv(out, x_label, xs, algorithms, cell);
  return true;
}

void PrintFigureHeader(std::ostream& out, const std::string& figure_id,
                       const std::string& description,
                       const std::string& expected_shape) {
  out << "================================================================\n"
      << figure_id << ": " << description << "\n"
      << "(Carey & Livny, SIGMOD 1989)\n"
      << "Expected shape: " << expected_shape << "\n"
      << "================================================================\n";
}

}  // namespace ccsim::experiments
