#ifndef CCSIM_CC_TWO_PHASE_LOCKING_DEFERRED_H_
#define CCSIM_CC_TWO_PHASE_LOCKING_DEFERRED_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "ccsim/cc/two_phase_locking.h"
#include "ccsim/sim/process.h"

namespace ccsim::cc {

/// 2PL with deferred write locks (2PL-DW) - the improvement the paper's
/// conclusions point to ([Care89], footnote 13): write accesses take only a
/// *shared* lock while the cohort executes; the exclusive locks are acquired
/// (as upgrades) during the first phase of the commit protocol. Exclusive
/// hold times shrink to roughly the commit protocol's duration, at the cost
/// of deadlock-prone upgrades at prepare time (the lock-based analogue of
/// OPT's certification failures).
///
/// Not part of the paper's figure set; provided as the natural extension and
/// compared against the stock algorithms in bench/ext_deferred_writes.
class TwoPhaseLockingDeferredManager : public TwoPhaseLockingManager {
 public:
  TwoPhaseLockingDeferredManager(CcContext* ctx, NodeId node);

  std::shared_ptr<sim::Completion<AccessOutcome>> RequestAccess(
      const txn::TxnPtr& txn, int cohort_index, const PageRef& page,
      AccessMode mode) override;
  std::shared_ptr<sim::Completion<Vote>> Prepare(const txn::TxnPtr& txn,
                                                 int cohort_index) override;
  /// Installs writes and releases locks like the base (by commit time every
  /// written page holds an exclusive lock), then drops the write set.
  void CommitCohort(const txn::TxnPtr& txn, int cohort_index) override;
  void AbortCohort(const txn::TxnPtr& txn, int cohort_index) override;

  std::uint64_t upgrade_waits() const { return upgrade_waits_; }

  /// Upgrade-wait process frames live in the simulation's arena (process.h).
  sim::Arena* process_arena() { return ctx_->simulation().arena(); }

 private:
  sim::Process AwaitUpgrades(
      txn::TxnPtr txn,
      std::vector<std::shared_ptr<sim::Completion<AccessOutcome>>> pending,
      std::shared_ptr<sim::Completion<Vote>> vote);

  // Pages each transaction will upgrade at prepare time.
  std::unordered_map<TxnId, std::vector<PageRef>> write_sets_;
  std::uint64_t upgrade_waits_ = 0;
};

}  // namespace ccsim::cc

#endif  // CCSIM_CC_TWO_PHASE_LOCKING_DEFERRED_H_
