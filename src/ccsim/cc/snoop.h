#ifndef CCSIM_CC_SNOOP_H_
#define CCSIM_CC_SNOOP_H_

#include <memory>
#include <vector>

#include "ccsim/cc/cc_manager.h"
#include "ccsim/cc/two_phase_locking.h"
#include "ccsim/common/types.h"
#include "ccsim/net/network.h"
#include "ccsim/sim/process.h"

namespace ccsim::cc {

/// The rotating "Snoop" global deadlock detector of Sec 2.2 (after
/// Distributed INGRES [Ston79]).
///
/// The node currently holding the Snoop duty waits DetectionInterval, sends a
/// waits-for query message to every other processing node, unions the replies
/// with its own local waits-for edges, resolves every global cycle by
/// aborting its youngest member, then hands the duty to the next node
/// round-robin (one handoff message).
class Snoop {
 public:
  Snoop(CcContext* ctx, net::Network* network,
        std::vector<TwoPhaseLockingManager*> managers_by_proc_node,
        double interval_sec);

  /// Spawns the detector process. Call once.
  void Start();

  std::uint64_t detection_rounds() const { return rounds_; }
  std::uint64_t victims_aborted() const { return victims_; }

  /// Detector process frames live in the simulation's arena (process.h).
  sim::Arena* process_arena() { return ctx_->simulation().arena(); }

 private:
  sim::Process Run();
  TwoPhaseLockingManager* manager(NodeId proc_node) const {
    return managers_[static_cast<std::size_t>(proc_node - 1)];
  }

  CcContext* ctx_;
  net::Network* network_;
  std::vector<TwoPhaseLockingManager*> managers_;  // index 0 = proc node 1
  double interval_;
  std::uint64_t rounds_ = 0;
  std::uint64_t victims_ = 0;
  bool started_ = false;
};

}  // namespace ccsim::cc

#endif  // CCSIM_CC_SNOOP_H_
