#ifndef CCSIM_CC_NO_DC_H_
#define CCSIM_CC_NO_DC_H_

#include <memory>

#include "ccsim/cc/cc_manager.h"

namespace ccsim::cc {

/// The NO_DC ("no data contention") ideal of Sec 4.2: behaves like 2PL over
/// an infinitely large database, so no request ever conflicts. Every access
/// is granted immediately and nothing ever aborts. Used as the baseline the
/// paper plots alongside the four real algorithms. Histories produced under
/// NO_DC are generally *not* serializable; the serializability audit is not
/// applicable to it.
class NoDcManager : public CcManager {
 public:
  explicit NoDcManager(CcContext* ctx) : ctx_(ctx) {}

  std::shared_ptr<sim::Completion<AccessOutcome>> RequestAccess(
      const txn::TxnPtr& txn, int cohort_index, const PageRef& page,
      AccessMode mode) override {
    (void)cohort_index;
    auto completion = sim::MakeCompletion<AccessOutcome>(&ctx_->simulation());
    if (mode == AccessMode::kRead) ctx_->AuditRead(*txn, page);
    completion->Complete(AccessOutcome::kGranted);
    return completion;
  }

  std::shared_ptr<sim::Completion<Vote>> Prepare(const txn::TxnPtr& txn,
                                                 int cohort_index) override {
    (void)txn;
    (void)cohort_index;
    return ImmediateVote(&ctx_->simulation(), Vote::kYes);
  }

  void CommitCohort(const txn::TxnPtr& txn, int cohort_index) override {
    const auto& spec = txn->cohort_spec(cohort_index);
    for (const auto& access : spec.accesses) {
      if (access.is_write) ctx_->AuditInstallWrite(*txn, access.page);
    }
  }

  void AbortCohort(const txn::TxnPtr& txn, int cohort_index) override {
    (void)txn;
    (void)cohort_index;
  }

 private:
  CcContext* ctx_;
};

}  // namespace ccsim::cc

#endif  // CCSIM_CC_NO_DC_H_
