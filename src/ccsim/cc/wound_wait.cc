#include "ccsim/cc/wound_wait.h"

namespace ccsim::cc {

WoundWaitManager::WoundWaitManager(CcContext* ctx, NodeId node)
    : TwoPhaseLockingManager(ctx, node) {}

std::shared_ptr<sim::Completion<AccessOutcome>> WoundWaitManager::RequestAccess(
    const txn::TxnPtr& txn, int cohort_index, const PageRef& page,
    AccessMode mode) {
  (void)cohort_index;
  LockMode lock_mode =
      mode == AccessMode::kWrite ? LockMode::kExclusive : LockMode::kShared;
  auto result = lock_table_.Request(txn, page, lock_mode);
  if (result.granted_immediately) {
    if (mode == AccessMode::kRead) ctx_->AuditRead(*txn, page);
    return result.completion;
  }

  // Blocked: wound every younger transaction this request waits for. The
  // requester waits either way; wounded transactions release their locks
  // when their abort reaches this node. Wounds against transactions already
  // in the second commit phase would be ignored by the coordinator anyway;
  // checking here models the cohort-local "already prepared" short-circuit
  // and avoids pointless messages.
  for (const auto& blocker : result.blockers) {
    if (txn->initial_ts() < blocker->initial_ts()) {
      if (blocker->phase() == txn::TxnPhase::kCommitting ||
          blocker->phase() == txn::TxnPhase::kCommitted) {
        continue;  // wound is not fatal (Sec 2.3)
      }
      ++wounds_;
      ctx_->RequestAbort(blocker, blocker->attempt(), node_,
                         txn::AbortReason::kWound);
    }
  }
  return result.completion;
}

}  // namespace ccsim::cc
