#include "ccsim/cc/two_phase_locking.h"

#include "ccsim/cc/waits_for_graph.h"
#include "ccsim/sim/check.h"

namespace ccsim::cc {

TwoPhaseLockingManager::TwoPhaseLockingManager(CcContext* ctx, NodeId node)
    : ctx_(ctx), node_(node), lock_table_(&ctx->simulation()) {
  lock_table_.set_allow_queue_jump(ctx->config().locking.queue_jump);
  // Audit the read version at the exact grant time, including grants that
  // happen after a wait (exclusive locks block installs, so the version a
  // shared lock sees at grant time is the one the cohort reads).
  lock_table_.set_on_delayed_grant(
      [this](const txn::TxnPtr& t, const PageRef& page, LockMode mode) {
        if (mode == LockMode::kShared) ctx_->AuditRead(*t, page);
      });
}

void TwoPhaseLockingManager::BeginCohort(const txn::TxnPtr& txn,
                                         int cohort_index) {
  (void)cohort_index;
  registry_[txn->id()] = txn;
}

txn::TxnPtr TwoPhaseLockingManager::FindTxn(TxnId id) const {
  auto it = registry_.find(id);
  return it != registry_.end() ? it->second : nullptr;
}

std::shared_ptr<sim::Completion<AccessOutcome>>
TwoPhaseLockingManager::RequestAccess(const txn::TxnPtr& txn, int cohort_index,
                                      const PageRef& page, AccessMode mode) {
  (void)cohort_index;
  LockMode lock_mode =
      mode == AccessMode::kWrite ? LockMode::kExclusive : LockMode::kShared;
  auto result = lock_table_.Request(txn, page, lock_mode);
  if (result.granted_immediately) {
    if (mode == AccessMode::kRead) ctx_->AuditRead(*txn, page);
    return result.completion;
  }

  // The cohort blocked: run local deadlock detection (Sec 2.2: "local
  // deadlock detection occurs whenever a cohort blocks").
  DetectLocalDeadlock(txn);
  return result.completion;
}

void TwoPhaseLockingManager::DetectLocalDeadlock(const txn::TxnPtr& txn) {
  WaitsForGraph graph;
  graph.AddEdges(lock_table_.WaitsForEdges());
  auto cycle = graph.FindCycleFrom(txn->id());
  if (!cycle.empty()) {
    TxnId victim_id = graph.YoungestOf(cycle);
    txn::TxnPtr victim = FindTxn(victim_id);
    CCSIM_CHECK_MSG(victim != nullptr, "deadlock victim not registered");
    ctx_->RequestAbort(victim, victim->attempt(), node_,
                       txn::AbortReason::kLocalDeadlock);
  }
}

void TwoPhaseLockingManager::CommitCohort(const txn::TxnPtr& txn,
                                          int cohort_index) {
  // Install this cohort's updates (audit), then release all locks.
  const auto& spec = txn->cohort_spec(cohort_index);
  for (const auto& access : spec.accesses) {
    if (access.is_write) ctx_->AuditInstallWrite(*txn, access.page);
  }
  lock_table_.ReleaseAll(txn->id(), /*abort_waiters=*/false);
  registry_.erase(txn->id());
}

void TwoPhaseLockingManager::AbortCohort(const txn::TxnPtr& txn,
                                         int cohort_index) {
  (void)cohort_index;
  lock_table_.ReleaseAll(txn->id(), /*abort_waiters=*/true);
  registry_.erase(txn->id());
}

}  // namespace ccsim::cc
