#include "ccsim/cc/cc_factory.h"

#include "ccsim/cc/bto.h"
#include "ccsim/cc/no_dc.h"
#include "ccsim/cc/optimistic.h"
#include "ccsim/cc/two_phase_locking.h"
#include "ccsim/cc/two_phase_locking_deferred.h"
#include "ccsim/cc/two_phase_locking_timeout.h"
#include "ccsim/cc/wait_die.h"
#include "ccsim/cc/wound_wait.h"
#include "ccsim/sim/check.h"

namespace ccsim::cc {

std::unique_ptr<CcManager> CreateCcManager(config::CcAlgorithm algorithm,
                                           CcContext* ctx, NodeId node) {
  switch (algorithm) {
    case config::CcAlgorithm::kNoDc:
      return std::make_unique<NoDcManager>(ctx);
    case config::CcAlgorithm::kTwoPhaseLocking:
      return std::make_unique<TwoPhaseLockingManager>(ctx, node);
    case config::CcAlgorithm::kWoundWait:
      return std::make_unique<WoundWaitManager>(ctx, node);
    case config::CcAlgorithm::kBasicTimestamp:
      return std::make_unique<BtoManager>(ctx, node);
    case config::CcAlgorithm::kOptimistic:
      return std::make_unique<OptimisticManager>(ctx, node);
    case config::CcAlgorithm::kTwoPhaseLockingDeferred:
      return std::make_unique<TwoPhaseLockingDeferredManager>(ctx, node);
    case config::CcAlgorithm::kWaitDie:
      return std::make_unique<WaitDieManager>(ctx, node);
    case config::CcAlgorithm::kTwoPhaseLockingTimeout:
      return std::make_unique<TwoPhaseLockingTimeoutManager>(ctx, node);
  }
  CCSIM_CHECK_MSG(false, "unknown concurrency control algorithm");
  return nullptr;
}

}  // namespace ccsim::cc
