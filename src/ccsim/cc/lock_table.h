#ifndef CCSIM_CC_LOCK_TABLE_H_
#define CCSIM_CC_LOCK_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ccsim/cc/cc_manager.h"
#include "ccsim/common/flat_hash.h"
#include "ccsim/common/small_vec.h"
#include "ccsim/common/types.h"
#include "ccsim/sim/completion.h"
#include "ccsim/sim/simulation.h"
#include "ccsim/stats/tally.h"
#include "ccsim/txn/transaction.h"

namespace ccsim::cc {

/// Lock modes: read locks can be shared, write locks cannot (Sec 2.2).
enum class LockMode { kShared, kExclusive };

/// Returns true when a lock held in `held` is compatible with a request for
/// `requested`.
constexpr bool Compatible(LockMode held, LockMode requested) {
  return held == LockMode::kShared && requested == LockMode::kShared;
}

/// Page-level lock table: the mechanism shared by 2PL and WW. Pure
/// mechanism - conflict *policy* (wait quietly, detect deadlocks, or wound)
/// lives in the owning CC manager, which inspects the conflicting
/// transactions returned by Request().
///
/// Queue discipline: FIFO, except that upgrade requests (shared -> exclusive
/// by a current holder) wait at the front, ahead of ordinary waiters.
/// A request never jumps an occupied queue even if it is compatible with the
/// current holders (prevents writer starvation).
///
/// Storage is sparse and flat (DESIGN.md decision #12): entries live in an
/// open-addressing table keyed by page id, holders and waiters in
/// small-vectors with inline capacity. A table tracking millions of pages
/// allocates nothing per lock in the common case — the former
/// map/deque-node churn dominated the megascale memory profile. Holders are
/// kept sorted by TxnId so every holder iteration (blockers, waits-for
/// edges, grant checks) sees the exact order the old std::map gave:
/// deadlock victim choice, and hence the determinism goldens, are
/// byte-identical.
class LockTable {
 public:
  explicit LockTable(sim::Simulation* sim) : sim_(sim) {}
  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  /// Invoked at the exact moment a previously blocked request is granted
  /// (immediate grants are visible to the caller via RequestResult). Used by
  /// the owning manager for read-version auditing.
  using GrantCallback =
      std::function<void(const txn::TxnPtr&, const PageRef&, LockMode)>;
  void set_on_delayed_grant(GrantCallback cb) {
    on_delayed_grant_ = std::move(cb);
  }

  /// Queue policy. When false (default, the classic Gray-style manager a la
  /// [Gray79]), a new request never jumps an occupied queue even if it is
  /// compatible with the current holders - writers cannot starve, but
  /// readers arriving behind a queued writer wait and add waits-for edges.
  /// When true, a request compatible with every current holder is granted
  /// immediately regardless of queued waiters.
  void set_allow_queue_jump(bool allow) { allow_queue_jump_ = allow; }
  bool allow_queue_jump() const { return allow_queue_jump_; }

  struct RequestResult {
    std::shared_ptr<sim::Completion<AccessOutcome>> completion;
    bool granted_immediately = false;
    /// When queued: the transactions this request now waits for (incompatible
    /// holders plus incompatible requests queued ahead). Each entry carries
    /// the initial timestamp needed by wound/victim policies.
    std::vector<txn::TxnPtr> blockers;
  };

  /// Requests `mode` on `page` for `txn`. Re-requesting a held mode (or a
  /// weaker one) grants immediately; holding kShared and requesting
  /// kExclusive queues an upgrade.
  RequestResult Request(const txn::TxnPtr& txn, const PageRef& page,
                        LockMode mode);

  /// Releases everything `txn` holds or waits for on this table. Pending
  /// requests complete with kAborted if `abort_waiters` is true (abort path;
  /// commit never leaves pending requests). Wakes newly grantable waiters.
  void ReleaseAll(TxnId txn, bool abort_waiters);

  /// Cancels one waiting request of `txn` on `page`, completing it with
  /// kAborted and waking newly grantable waiters. Held locks are untouched.
  /// Returns false if no such waiting request exists (e.g. it was granted
  /// in the meantime). Used by wait-die (the requester "dies") and by
  /// timeout-based blocking.
  bool CancelRequest(TxnId txn, const PageRef& page);

  /// Txn-level waits-for edges over the current queues.
  std::vector<WaitEdge> WaitsForEdges() const;

  /// Blockers of one waiting transaction (for local deadlock detection the
  /// caller usually wants WaitsForEdges(); this is a convenience for tests).
  bool IsWaiting(TxnId txn) const;
  bool HoldsLock(TxnId txn, const PageRef& page) const;
  std::size_t num_locked_pages() const { return entries_.size(); }
  std::size_t num_waiting_requests() const { return waiting_count_; }

  /// Time blocked requests waited before being granted.
  const stats::Tally& wait_times() const { return wait_times_; }
  void ResetStats() { wait_times_.Reset(); }

  /// Audit-mode consistency sweep over every entry: holders are sorted and
  /// mutually compatible, no transaction is both granted and waiting on one
  /// page (except a queued upgrade), upgrades form a prefix of the queue, no
  /// transaction is queued twice, waiting_count_ matches the queues, and
  /// txn_keys_ covers every holder and waiter. No-op unless built with
  /// CCSIM_AUDIT.
  void AuditInvariants() const;

 private:
  struct Holder {
    TxnId id;
    LockMode mode;
    txn::TxnPtr txn;  // live handle, for blocker reporting
  };
  struct Waiter {
    txn::TxnPtr txn;
    LockMode mode;
    bool is_upgrade;
    std::shared_ptr<sim::Completion<AccessOutcome>> completion;
    sim::SimTime since;
  };
  using WaitQueue = common::SmallVec<Waiter, 2>;
  /// Sized for the dominant population: tens of thousands of pages are
  /// locked at once in a megascale run, almost all with a single holder and
  /// nobody waiting (measured ~25k locked vs ~150 waiting at 256 nodes).
  /// One inline holder, and the wait queue behind a pointer that exists
  /// only while someone waits, keep the flat table's slots at 72 bytes
  /// instead of 176 - table capacity is high-water, so slot size is the
  /// multiplier on the whole footprint.
  struct Entry {
    /// Sorted by TxnId ascending; at most one holder when exclusive.
    common::SmallVec<Holder, 1> holders;
    /// FIFO, upgrades form a prefix. Null when empty (the common case);
    /// dropped eagerly when the last waiter leaves.
    std::unique_ptr<WaitQueue> queue;
  };
  using KeyList = common::SmallVec<std::uint64_t, 8>;

  static std::size_t QueueSize(const Entry& entry) {
    return entry.queue ? entry.queue->size() : 0;
  }
  /// The queue, allocating it on first use.
  static WaitQueue& EnsureQueue(Entry& entry);
  /// Frees the queue allocation once it is empty again.
  static void PruneQueue(Entry& entry);

  /// Holder slot for `txn` in sorted position, or nullptr.
  static Holder* FindHolder(Entry& entry, TxnId txn);
  static const Holder* FindHolder(const Entry& entry, TxnId txn);
  /// Inserts keeping holders sorted by TxnId.
  static void InsertHolder(Entry& entry, TxnId txn, LockMode mode,
                           txn::TxnPtr handle);
  static void EraseHolder(Entry& entry, TxnId txn);

  bool CanGrant(const Entry& entry, TxnId txn, LockMode mode) const;
  void PumpQueue(std::uint64_t key);

  sim::Simulation* sim_;
  GrantCallback on_delayed_grant_;
  bool allow_queue_jump_ = false;
  common::FlatHashMap<std::uint64_t, Entry> entries_;
  // All lock keys a txn holds or waits on (for ReleaseAll).
  common::FlatHashMap<TxnId, KeyList> txn_keys_;
  stats::Tally wait_times_;
  std::size_t waiting_count_ = 0;
};

}  // namespace ccsim::cc

#endif  // CCSIM_CC_LOCK_TABLE_H_
