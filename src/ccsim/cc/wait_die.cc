#include "ccsim/cc/wait_die.h"

#include "ccsim/sim/check.h"

namespace ccsim::cc {

WaitDieManager::WaitDieManager(CcContext* ctx, NodeId node)
    : TwoPhaseLockingManager(ctx, node) {}

std::shared_ptr<sim::Completion<AccessOutcome>> WaitDieManager::RequestAccess(
    const txn::TxnPtr& txn, int cohort_index, const PageRef& page,
    AccessMode mode) {
  (void)cohort_index;
  LockMode lock_mode =
      mode == AccessMode::kWrite ? LockMode::kExclusive : LockMode::kShared;
  auto result = lock_table_.Request(txn, page, lock_mode);
  if (result.granted_immediately) {
    if (mode == AccessMode::kRead) ctx_->AuditRead(*txn, page);
    return result.completion;
  }

  // Blocked: the requester may wait only if it is older than every
  // transaction it would wait for; otherwise it dies on the spot. The death
  // is delivered through the request's own completion (kAborted), and the
  // cohort informs the coordinator like any self-detected rejection.
  for (const auto& blocker : result.blockers) {
    if (blocker->initial_ts() < txn->initial_ts()) {
      ++deaths_;
      bool cancelled = lock_table_.CancelRequest(txn->id(), page);
      CCSIM_CHECK_MSG(cancelled, "dying request not found in queue");
      return result.completion;  // completed with kAborted by the cancel
    }
  }
  return result.completion;
}

}  // namespace ccsim::cc
