#ifndef CCSIM_CC_WAITS_FOR_GRAPH_H_
#define CCSIM_CC_WAITS_FOR_GRAPH_H_

#include <map>
#include <vector>

#include "ccsim/cc/cc_manager.h"
#include "ccsim/common/types.h"

namespace ccsim::cc {

/// A transaction-level waits-for graph built from WaitEdge lists (one node's
/// lock table for local detection; the union of all nodes' for the Snoop's
/// global detection). Victim selection follows Sec 2.2: abort the
/// transaction with the most recent initial startup time among those in the
/// cycle.
class WaitsForGraph {
 public:
  WaitsForGraph() = default;

  void AddEdges(const std::vector<WaitEdge>& edges);
  void AddEdge(const WaitEdge& edge);

  std::size_t num_nodes() const { return adjacency_.size(); }
  std::size_t num_edges() const;

  /// Finds a cycle reachable from `start`, if any, and returns its members
  /// (empty if none). Used for local detection at block time.
  std::vector<TxnId> FindCycleFrom(TxnId start) const;

  /// Global detection: repeatedly finds a cycle anywhere in the graph,
  /// selects the youngest member as victim, removes it, and continues until
  /// the graph is acyclic. Returns the victims in detection order.
  std::vector<TxnId> ResolveAllDeadlocks();

  /// Youngest (most recent initial startup) member of `cycle`.
  TxnId YoungestOf(const std::vector<TxnId>& cycle) const;

 private:
  std::vector<TxnId> FindAnyCycle() const;
  void RemoveNode(TxnId id);

  /// Audit-mode consistency sweep: every edge endpoint has an adjacency
  /// node and a timestamp, and no node waits for itself. No-op unless built
  /// with CCSIM_AUDIT.
  void AuditInvariants() const;

  // Ordered maps: FindAnyCycle() scans nodes in TxnId order, so the cycle
  // found first - and with it the deadlock victim - is identical across
  // runs and stdlib versions (bit-reproducibility under common random
  // numbers; an unordered_map here made victim choice hash-order dependent).
  std::map<TxnId, std::vector<TxnId>> adjacency_;
  std::map<TxnId, Timestamp> timestamps_;
};

}  // namespace ccsim::cc

#endif  // CCSIM_CC_WAITS_FOR_GRAPH_H_
