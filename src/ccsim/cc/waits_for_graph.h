#ifndef CCSIM_CC_WAITS_FOR_GRAPH_H_
#define CCSIM_CC_WAITS_FOR_GRAPH_H_

#include <vector>

#include "ccsim/cc/cc_manager.h"
#include "ccsim/common/small_vec.h"
#include "ccsim/common/types.h"

namespace ccsim::cc {

/// A transaction-level waits-for graph built from WaitEdge lists (one node's
/// lock table for local detection; the union of all nodes' for the Snoop's
/// global detection). Victim selection follows Sec 2.2: abort the
/// transaction with the most recent initial startup time among those in the
/// cycle.
class WaitsForGraph {
 public:
  WaitsForGraph() = default;

  void AddEdges(const std::vector<WaitEdge>& edges);
  void AddEdge(const WaitEdge& edge);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const;

  /// Finds a cycle reachable from `start`, if any, and returns its members
  /// (empty if none). Used for local detection at block time.
  std::vector<TxnId> FindCycleFrom(TxnId start) const;

  /// Global detection: repeatedly finds a cycle anywhere in the graph,
  /// selects the youngest member as victim, removes it, and continues until
  /// the graph is acyclic. Returns the victims in detection order.
  std::vector<TxnId> ResolveAllDeadlocks();

  /// Youngest (most recent initial startup) member of `cycle`.
  TxnId YoungestOf(const std::vector<TxnId>& cycle) const;

 private:
  // One graph node; out-edges keep insertion order (it decides DFS order).
  // A graph is built afresh per detection round, so node storage is a flat
  // sorted vector with inline out-edge lists: building and dropping one
  // allocates almost nothing, where the former std::map burned one heap
  // node per transaction per round (DESIGN.md decision #12). The vector is
  // kept sorted by TxnId, so FindAnyCycle() scans nodes in TxnId order -
  // the cycle found first, and with it the deadlock victim, is identical
  // across runs and stdlib versions, exactly as with the ordered map it
  // replaces.
  struct Node {
    TxnId id;
    Timestamp ts;
    common::SmallVec<TxnId, 4> out;
  };

  /// Index of `id` in nodes_, or nodes_.size() if absent.
  std::size_t FindIndex(TxnId id) const;
  /// Index of `id`, inserting a fresh node (sorted position) if absent.
  std::size_t EnsureNode(TxnId id, Timestamp ts);

  std::vector<TxnId> FindAnyCycle() const;
  void RemoveNode(TxnId id);

  /// Audit-mode consistency sweep: nodes are sorted by TxnId, every edge
  /// target has a node, and no node waits for itself. No-op unless built
  /// with CCSIM_AUDIT.
  void AuditInvariants() const;

  std::vector<Node> nodes_;  // sorted by id
};

}  // namespace ccsim::cc

#endif  // CCSIM_CC_WAITS_FOR_GRAPH_H_
