#include "ccsim/cc/lock_table.h"

#include <algorithm>
#include <utility>

#include "ccsim/sim/check.h"

namespace ccsim::cc {

namespace {
bool Conflicts(LockMode a, LockMode b) { return !Compatible(a, b); }
}  // namespace

LockTable::RequestResult LockTable::Request(const txn::TxnPtr& txn,
                                            const PageRef& page,
                                            LockMode mode) {
  std::uint64_t key = page.Key();
  Entry& entry = entries_[key];
  TxnId id = txn->id();

  RequestResult result;
  result.completion = sim::MakeCompletion<AccessOutcome>(sim_);

  auto held = entry.holders.find(id);
  bool is_upgrade = false;
  if (held != entry.holders.end()) {
    if (held->second == LockMode::kExclusive || mode == LockMode::kShared) {
      // Re-request of an already-covered mode: trivially granted.
      result.granted_immediately = true;
      result.completion->Complete(AccessOutcome::kGranted);
      return result;
    }
    is_upgrade = true;  // holds kShared, wants kExclusive
    if (entry.holders.size() == 1) {
      // Sole holder: convert in place.
      held->second = LockMode::kExclusive;
      result.granted_immediately = true;
      result.completion->Complete(AccessOutcome::kGranted);
      return result;
    }
  } else if (entry.queue.empty() || allow_queue_jump_) {
    bool compatible = true;
    for (const auto& [hid, hmode] : entry.holders) {
      if (Conflicts(hmode, mode)) {
        compatible = false;
        break;
      }
    }
    if (compatible && allow_queue_jump_ && entry.holders.empty() &&
        !entry.queue.empty()) {
      // Nothing is held but waiters are pending (all blocked on each other
      // via queue order after a release): do not overtake them.
      compatible = false;
    }
    if (compatible) {
      entry.holders.emplace(id, mode);
      entry.holder_refs.emplace(id, txn);
      txn_keys_[id].push_back(key);
      result.granted_immediately = true;
      result.completion->Complete(AccessOutcome::kGranted);
      return result;
    }
  }

  // Must wait. Collect blockers: incompatible holders (self excluded) and
  // conflicting requests queued ahead.
  for (const auto& [hid, hmode] : entry.holders) {
    if (hid == id) continue;
    if (is_upgrade || Conflicts(hmode, mode)) {
      result.blockers.push_back(entry.holder_refs.at(hid));
    }
  }

  // Upgrades wait at the front, after any upgrades already queued.
  std::size_t insert_pos = entry.queue.size();
  if (is_upgrade) {
    insert_pos = 0;
    while (insert_pos < entry.queue.size() &&
           entry.queue[insert_pos].is_upgrade) {
      ++insert_pos;
    }
  }
  for (std::size_t i = 0; i < insert_pos; ++i) {
    const Waiter& ahead = entry.queue[i];
    CCSIM_CHECK_MSG(ahead.txn->id() != id,
                    "transaction enqueued twice on one lock");
    if (Conflicts(ahead.mode, mode) || ahead.mode == LockMode::kExclusive ||
        mode == LockMode::kExclusive) {
      result.blockers.push_back(ahead.txn);
    }
  }

  Waiter waiter{txn, mode, is_upgrade, result.completion, sim_->Now()};
  entry.queue.insert(entry.queue.begin() +
                         static_cast<std::ptrdiff_t>(insert_pos),
                     std::move(waiter));
  ++waiting_count_;
  txn_keys_[id].push_back(key);
  AuditInvariants();
  return result;
}

bool LockTable::CanGrant(const Entry& entry, TxnId txn, LockMode mode) const {
  for (const auto& [hid, hmode] : entry.holders) {
    if (hid == txn) continue;  // upgrade: ignore own shared hold
    if (Conflicts(hmode, mode)) return false;
  }
  return true;
}

void LockTable::PumpQueue(std::uint64_t key) {
  auto eit = entries_.find(key);
  if (eit == entries_.end()) return;
  Entry& entry = eit->second;
  // Strict FIFO: grant only the compatible prefix of the queue. With queue
  // jumping: grant every waiter compatible with the current holders (the
  // "maximum concurrency" policy; readers can overtake queued writers).
  std::size_t scan = 0;
  while (scan < entry.queue.size()) {
    Waiter& w = entry.queue[scan];
    if (!CanGrant(entry, w.txn->id(), w.mode)) {
      if (!allow_queue_jump_) break;
      ++scan;
      continue;
    }
    Waiter granted = std::move(w);
    entry.queue.erase(entry.queue.begin() +
                      static_cast<std::ptrdiff_t>(scan));
    --waiting_count_;
    TxnId id = granted.txn->id();
    auto hit = entry.holders.find(id);
    if (hit != entry.holders.end()) {
      CCSIM_CHECK(granted.is_upgrade);
      hit->second = LockMode::kExclusive;
    } else {
      entry.holders.emplace(id, granted.mode);
      entry.holder_refs.emplace(id, granted.txn);
      // Waiting already registered this key in txn_keys_.
    }
    wait_times_.Record(sim_->Now() - granted.since);
    if (on_delayed_grant_) {
      PageRef page{static_cast<FileId>(key >> 32),
                   static_cast<int>(key & 0xffffffffu)};
      on_delayed_grant_(granted.txn, page, granted.mode);
    }
    granted.completion->Complete(AccessOutcome::kGranted);
  }
  if (entry.holders.empty() && entry.queue.empty()) entries_.erase(eit);
}

void LockTable::ReleaseAll(TxnId txn, bool abort_waiters) {
  auto kit = txn_keys_.find(txn);
  if (kit == txn_keys_.end()) return;
  std::vector<std::uint64_t> keys = std::move(kit->second);
  txn_keys_.erase(kit);
  // De-duplicate (a txn can both hold and wait-upgrade on one key).
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  for (std::uint64_t key : keys) {
    auto eit = entries_.find(key);
    if (eit == entries_.end()) continue;
    Entry& entry = eit->second;
    entry.holders.erase(txn);
    entry.holder_refs.erase(txn);
    for (auto qit = entry.queue.begin(); qit != entry.queue.end();) {
      if (qit->txn->id() == txn) {
        CCSIM_CHECK_MSG(abort_waiters,
                        "commit released a lock with a pending request");
        --waiting_count_;
        qit->completion->Complete(AccessOutcome::kAborted);
        qit = entry.queue.erase(qit);
      } else {
        ++qit;
      }
    }
    PumpQueue(key);
    // PumpQueue may have erased the entry already; re-check and erase if
    // empty.
    eit = entries_.find(key);
    if (eit != entries_.end() && eit->second.holders.empty() &&
        eit->second.queue.empty()) {
      entries_.erase(eit);
    }
  }
  AuditInvariants();
}

bool LockTable::CancelRequest(TxnId txn, const PageRef& page) {
  auto eit = entries_.find(page.Key());
  if (eit == entries_.end()) return false;
  Entry& entry = eit->second;
  for (auto qit = entry.queue.begin(); qit != entry.queue.end(); ++qit) {
    if (qit->txn->id() != txn) continue;
    auto completion = qit->completion;
    entry.queue.erase(qit);
    --waiting_count_;
    completion->Complete(AccessOutcome::kAborted);
    PumpQueue(page.Key());
    eit = entries_.find(page.Key());
    if (eit != entries_.end() && eit->second.holders.empty() &&
        eit->second.queue.empty()) {
      entries_.erase(eit);
    }
    AuditInvariants();
    return true;
  }
  return false;
}

std::vector<WaitEdge> LockTable::WaitsForEdges() const {
  std::vector<WaitEdge> edges;
  // entries_ is an unordered_map, and the order edges are emitted decides
  // the DFS order (and thus the cycle found first, and thus the deadlock
  // victim) in the WaitsForGraph built from them. Walk keys in sorted order
  // so the edge list is identical across runs and stdlib versions.
  std::vector<std::uint64_t> keys;
  keys.reserve(entries_.size());
  // ccsim-lint: unordered-iter-ok(keys are sorted before use below)
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (std::uint64_t key : keys) {
    const Entry& entry = entries_.at(key);
    for (std::size_t i = 0; i < entry.queue.size(); ++i) {
      const Waiter& w = entry.queue[i];
      for (const auto& [hid, hmode] : entry.holders) {
        if (hid == w.txn->id()) continue;
        if (w.is_upgrade || Conflicts(hmode, w.mode)) {
          edges.push_back(WaitEdge{w.txn->id(), w.txn->initial_ts(), hid,
                                   entry.holder_refs.at(hid)->initial_ts()});
        }
      }
      for (std::size_t j = 0; j < i; ++j) {
        const Waiter& ahead = entry.queue[j];
        if (ahead.mode == LockMode::kExclusive ||
            w.mode == LockMode::kExclusive) {
          edges.push_back(WaitEdge{w.txn->id(), w.txn->initial_ts(),
                                   ahead.txn->id(), ahead.txn->initial_ts()});
        }
      }
    }
  }
  return edges;
}

bool LockTable::IsWaiting(TxnId txn) const {
  auto kit = txn_keys_.find(txn);
  if (kit == txn_keys_.end()) return false;
  for (std::uint64_t key : kit->second) {
    auto eit = entries_.find(key);
    if (eit == entries_.end()) continue;
    for (const Waiter& w : eit->second.queue) {
      if (w.txn->id() == txn) return true;
    }
  }
  return false;
}

bool LockTable::HoldsLock(TxnId txn, const PageRef& page) const {
  auto eit = entries_.find(page.Key());
  if (eit == entries_.end()) return false;
  return eit->second.holders.count(txn) > 0;
}

void LockTable::AuditInvariants() const {
  if (!sim::kAuditEnabled) return;
  std::size_t queued = 0;
  // ccsim-lint: unordered-iter-ok(audit sweep; per-entry checks are independent)
  for (const auto& [key, entry] : entries_) {
    CCSIM_DCHECK_MSG(!entry.holders.empty() || !entry.queue.empty(),
                     "empty lock entry not erased");
    CCSIM_DCHECK_MSG(entry.holders.size() == entry.holder_refs.size(),
                     "holder_refs out of sync with holders");
    bool any_exclusive = false;
    for (const auto& [hid, hmode] : entry.holders) {
      CCSIM_DCHECK_MSG(entry.holder_refs.count(hid) == 1,
                       "holder without a live transaction handle");
      if (hmode == LockMode::kExclusive) any_exclusive = true;
      auto kit = txn_keys_.find(hid);
      CCSIM_DCHECK_MSG(kit != txn_keys_.end() &&
                           std::find(kit->second.begin(), kit->second.end(),
                                     key) != kit->second.end(),
                       "holder not registered in txn_keys_");
    }
    CCSIM_DCHECK_MSG(!any_exclusive || entry.holders.size() == 1,
                     "exclusive lock shared with another holder");

    queued += entry.queue.size();
    bool past_upgrade_prefix = false;
    for (std::size_t i = 0; i < entry.queue.size(); ++i) {
      const Waiter& w = entry.queue[i];
      TxnId id = w.txn->id();
      if (!w.is_upgrade) {
        past_upgrade_prefix = true;
      } else {
        CCSIM_DCHECK_MSG(!past_upgrade_prefix,
                         "upgrade queued behind a non-upgrade waiter");
        CCSIM_DCHECK_MSG(entry.holders.count(id) == 1,
                         "queued upgrade whose shared hold vanished");
      }
      // "No granted/waiting overlap": only an upgrade may appear on both
      // sides of one entry.
      CCSIM_DCHECK_MSG(w.is_upgrade || entry.holders.count(id) == 0,
                       "transaction both holds and waits on one page");
      for (std::size_t j = i + 1; j < entry.queue.size(); ++j) {
        CCSIM_DCHECK_MSG(entry.queue[j].txn->id() != id,
                         "transaction queued twice on one lock");
      }
      auto kit = txn_keys_.find(id);
      CCSIM_DCHECK_MSG(kit != txn_keys_.end() &&
                           std::find(kit->second.begin(), kit->second.end(),
                                     key) != kit->second.end(),
                       "waiter not registered in txn_keys_");
    }
  }
  CCSIM_DCHECK_MSG(queued == waiting_count_,
                   "waiting_count_ out of sync with lock queues");
}

}  // namespace ccsim::cc
