#include "ccsim/cc/lock_table.h"

#include <algorithm>
#include <utility>

#include "ccsim/sim/check.h"

namespace ccsim::cc {

namespace {
bool Conflicts(LockMode a, LockMode b) { return !Compatible(a, b); }
}  // namespace

LockTable::WaitQueue& LockTable::EnsureQueue(Entry& entry) {
  if (!entry.queue) entry.queue = std::make_unique<WaitQueue>();
  return *entry.queue;
}

void LockTable::PruneQueue(Entry& entry) {
  if (entry.queue && entry.queue->empty()) entry.queue.reset();
}

LockTable::Holder* LockTable::FindHolder(Entry& entry, TxnId txn) {
  for (Holder& h : entry.holders) {
    if (h.id == txn) return &h;
    if (h.id > txn) break;  // sorted
  }
  return nullptr;
}

const LockTable::Holder* LockTable::FindHolder(const Entry& entry, TxnId txn) {
  return FindHolder(const_cast<Entry&>(entry), txn);
}

void LockTable::InsertHolder(Entry& entry, TxnId txn, LockMode mode,
                             txn::TxnPtr handle) {
  std::size_t pos = 0;
  while (pos < entry.holders.size() && entry.holders[pos].id < txn) ++pos;
  entry.holders.insert(pos, Holder{txn, mode, std::move(handle)});
}

void LockTable::EraseHolder(Entry& entry, TxnId txn) {
  for (std::size_t i = 0; i < entry.holders.size(); ++i) {
    if (entry.holders[i].id == txn) {
      entry.holders.erase(i);
      return;
    }
  }
}

// ccsim-analyze: hot-path(once per page access of every transaction)
LockTable::RequestResult LockTable::Request(const txn::TxnPtr& txn,
                                            const PageRef& page,
                                            LockMode mode) {
  std::uint64_t key = page.Key();
  Entry& entry = entries_[key];
  TxnId id = txn->id();

  RequestResult result;
  result.completion = sim::MakeCompletion<AccessOutcome>(sim_);

  Holder* held = FindHolder(entry, id);
  bool is_upgrade = false;
  if (held != nullptr) {
    if (held->mode == LockMode::kExclusive || mode == LockMode::kShared) {
      // Re-request of an already-covered mode: trivially granted.
      result.granted_immediately = true;
      result.completion->Complete(AccessOutcome::kGranted);
      return result;
    }
    is_upgrade = true;  // holds kShared, wants kExclusive
    if (entry.holders.size() == 1) {
      // Sole holder: convert in place.
      held->mode = LockMode::kExclusive;
      result.granted_immediately = true;
      result.completion->Complete(AccessOutcome::kGranted);
      return result;
    }
  } else if (QueueSize(entry) == 0 || allow_queue_jump_) {
    bool compatible = true;
    for (const Holder& h : entry.holders) {
      if (Conflicts(h.mode, mode)) {
        compatible = false;
        break;
      }
    }
    if (compatible && allow_queue_jump_ && entry.holders.empty() &&
        QueueSize(entry) != 0) {
      // Nothing is held but waiters are pending (all blocked on each other
      // via queue order after a release): do not overtake them.
      compatible = false;
    }
    if (compatible) {
      InsertHolder(entry, id, mode, txn);
      txn_keys_[id].push_back(key);
      result.granted_immediately = true;
      result.completion->Complete(AccessOutcome::kGranted);
      return result;
    }
  }

  // Must wait. Collect blockers: incompatible holders (self excluded, TxnId
  // ascending) and conflicting requests queued ahead.
  for (const Holder& h : entry.holders) {
    if (h.id == id) continue;
    if (is_upgrade || Conflicts(h.mode, mode)) {
      result.blockers.push_back(h.txn);
    }
  }

  // Upgrades wait at the front, after any upgrades already queued.
  WaitQueue& queue = EnsureQueue(entry);
  std::size_t insert_pos = queue.size();
  if (is_upgrade) {
    insert_pos = 0;
    while (insert_pos < queue.size() && queue[insert_pos].is_upgrade) {
      ++insert_pos;
    }
  }
  for (std::size_t i = 0; i < insert_pos; ++i) {
    const Waiter& ahead = queue[i];
    CCSIM_CHECK_MSG(ahead.txn->id() != id,
                    "transaction enqueued twice on one lock");
    if (Conflicts(ahead.mode, mode) || ahead.mode == LockMode::kExclusive ||
        mode == LockMode::kExclusive) {
      result.blockers.push_back(ahead.txn);
    }
  }

  queue.insert(insert_pos, Waiter{txn, mode, is_upgrade, result.completion,
                               sim_->Now()});
  ++waiting_count_;
  txn_keys_[id].push_back(key);
  AuditInvariants();
  return result;
}

bool LockTable::CanGrant(const Entry& entry, TxnId txn, LockMode mode) const {
  for (const Holder& h : entry.holders) {
    if (h.id == txn) continue;  // upgrade: ignore own shared hold
    if (Conflicts(h.mode, mode)) return false;
  }
  return true;
}

// ccsim-analyze: hot-path(runs on every release of a contended page)
void LockTable::PumpQueue(std::uint64_t key) {
  Entry* entry = entries_.Find(key);
  if (entry == nullptr) return;
  // Strict FIFO: grant only the compatible prefix of the queue. With queue
  // jumping: grant every waiter compatible with the current holders (the
  // "maximum concurrency" policy; readers can overtake queued writers).
  std::size_t scan = 0;
  while (scan < QueueSize(*entry)) {
    Waiter& w = (*entry->queue)[scan];
    if (!CanGrant(*entry, w.txn->id(), w.mode)) {
      if (!allow_queue_jump_) break;
      ++scan;
      continue;
    }
    Waiter granted = std::move(w);
    entry->queue->erase(scan);
    --waiting_count_;
    TxnId id = granted.txn->id();
    Holder* held = FindHolder(*entry, id);
    if (held != nullptr) {
      CCSIM_CHECK(granted.is_upgrade);
      held->mode = LockMode::kExclusive;
    } else {
      InsertHolder(*entry, id, granted.mode, granted.txn);
      // Waiting already registered this key in txn_keys_.
    }
    wait_times_.Record(sim_->Now() - granted.since);
    if (on_delayed_grant_) {
      PageRef page{static_cast<FileId>(key >> 32),
                   static_cast<int>(key & 0xffffffffu)};
      on_delayed_grant_(granted.txn, page, granted.mode);
    }
    granted.completion->Complete(AccessOutcome::kGranted);
  }
  PruneQueue(*entry);
  if (entry->holders.empty() && !entry->queue) entries_.Erase(key);
}

// ccsim-analyze: hot-path(once per commit/abort, over every held lock)
void LockTable::ReleaseAll(TxnId txn, bool abort_waiters) {
  KeyList* kit = txn_keys_.Find(txn);
  if (kit == nullptr) return;
  KeyList keys = std::move(*kit);
  txn_keys_.Erase(txn);
  // De-duplicate (a txn can both hold and wait-upgrade on one key).
  std::sort(keys.begin(), keys.end());
  keys.truncate(static_cast<std::size_t>(
      std::unique(keys.begin(), keys.end()) - keys.begin()));

  for (std::uint64_t key : keys) {
    Entry* entry = entries_.Find(key);
    if (entry == nullptr) continue;
    EraseHolder(*entry, txn);
    for (std::size_t i = 0; i < QueueSize(*entry);) {
      if ((*entry->queue)[i].txn->id() == txn) {
        CCSIM_CHECK_MSG(abort_waiters,
                        "commit released a lock with a pending request");
        --waiting_count_;
        (*entry->queue)[i].completion->Complete(AccessOutcome::kAborted);
        entry->queue->erase(i);
      } else {
        ++i;
      }
    }
    PruneQueue(*entry);
    PumpQueue(key);
    // PumpQueue may have erased the entry already; re-find and erase if
    // empty.
    entry = entries_.Find(key);
    if (entry != nullptr && entry->holders.empty() && !entry->queue) {
      entries_.Erase(key);
    }
  }
  AuditInvariants();
}

bool LockTable::CancelRequest(TxnId txn, const PageRef& page) {
  Entry* entry = entries_.Find(page.Key());
  if (entry == nullptr) return false;
  for (std::size_t i = 0; i < QueueSize(*entry); ++i) {
    if ((*entry->queue)[i].txn->id() != txn) continue;
    auto completion = (*entry->queue)[i].completion;
    entry->queue->erase(i);
    PruneQueue(*entry);
    --waiting_count_;
    completion->Complete(AccessOutcome::kAborted);
    PumpQueue(page.Key());
    entry = entries_.Find(page.Key());
    if (entry != nullptr && entry->holders.empty() && !entry->queue) {
      entries_.Erase(page.Key());
    }
    AuditInvariants();
    return true;
  }
  return false;
}

std::vector<WaitEdge> LockTable::WaitsForEdges() const {
  std::vector<WaitEdge> edges;
  // The order edges are emitted decides the DFS order (and thus the cycle
  // found first, and thus the deadlock victim) in the WaitsForGraph built
  // from them. entries_ iterates in hash-table order, so walk keys in
  // sorted order instead: the edge list is identical across runs and
  // stdlib versions.
  std::vector<std::uint64_t> keys;
  keys.reserve(entries_.size());
  // ccsim-lint: unordered-iter-ok(collects keys only; sorted before use)
  entries_.ForEach(
      [&keys](std::uint64_t key, const Entry&) { keys.push_back(key); });
  std::sort(keys.begin(), keys.end());
  for (std::uint64_t key : keys) {
    const Entry& entry = *entries_.Find(key);
    for (std::size_t i = 0; i < QueueSize(entry); ++i) {
      const Waiter& w = (*entry.queue)[i];
      for (const Holder& h : entry.holders) {
        if (h.id == w.txn->id()) continue;
        if (w.is_upgrade || Conflicts(h.mode, w.mode)) {
          edges.push_back(WaitEdge{w.txn->id(), w.txn->initial_ts(), h.id,
                                   h.txn->initial_ts()});
        }
      }
      for (std::size_t j = 0; j < i; ++j) {
        const Waiter& ahead = (*entry.queue)[j];
        if (ahead.mode == LockMode::kExclusive ||
            w.mode == LockMode::kExclusive) {
          edges.push_back(WaitEdge{w.txn->id(), w.txn->initial_ts(),
                                   ahead.txn->id(), ahead.txn->initial_ts()});
        }
      }
    }
  }
  return edges;
}

bool LockTable::IsWaiting(TxnId txn) const {
  const KeyList* kit = txn_keys_.Find(txn);
  if (kit == nullptr) return false;
  for (std::uint64_t key : *kit) {
    const Entry* entry = entries_.Find(key);
    if (entry == nullptr || !entry->queue) continue;
    for (const Waiter& w : *entry->queue) {
      if (w.txn->id() == txn) return true;
    }
  }
  return false;
}

bool LockTable::HoldsLock(TxnId txn, const PageRef& page) const {
  const Entry* entry = entries_.Find(page.Key());
  if (entry == nullptr) return false;
  return FindHolder(*entry, txn) != nullptr;
}

void LockTable::AuditInvariants() const {
  if (!sim::kAuditEnabled) return;
  std::size_t queued = 0;
  // Audit sweep in table order; per-entry checks are independent.
  // ccsim-lint: unordered-iter-ok(pass/fail audit; order-independent checks)
  entries_.ForEach([&](std::uint64_t key, const Entry& entry) {
    CCSIM_DCHECK_MSG(!entry.holders.empty() || QueueSize(entry) != 0,
                     "empty lock entry not erased");
    CCSIM_DCHECK_MSG(!entry.queue || !entry.queue->empty(),
                     "empty wait queue not pruned");
    bool any_exclusive = false;
    for (std::size_t i = 0; i < entry.holders.size(); ++i) {
      const Holder& h = entry.holders[i];
      CCSIM_DCHECK_MSG(h.txn != nullptr,
                       "holder without a live transaction handle");
      CCSIM_DCHECK_MSG(i == 0 || entry.holders[i - 1].id < h.id,
                       "holders not sorted by TxnId");
      if (h.mode == LockMode::kExclusive) any_exclusive = true;
      const KeyList* kit = txn_keys_.Find(h.id);
      CCSIM_DCHECK_MSG(
          kit != nullptr &&
              std::find(kit->begin(), kit->end(), key) != kit->end(),
          "holder not registered in txn_keys_");
    }
    CCSIM_DCHECK_MSG(!any_exclusive || entry.holders.size() == 1,
                     "exclusive lock shared with another holder");

    queued += QueueSize(entry);
    bool past_upgrade_prefix = false;
    for (std::size_t i = 0; i < QueueSize(entry); ++i) {
      const Waiter& w = (*entry.queue)[i];
      TxnId id = w.txn->id();
      if (!w.is_upgrade) {
        past_upgrade_prefix = true;
      } else {
        CCSIM_DCHECK_MSG(!past_upgrade_prefix,
                         "upgrade queued behind a non-upgrade waiter");
        CCSIM_DCHECK_MSG(FindHolder(entry, id) != nullptr,
                         "queued upgrade whose shared hold vanished");
      }
      // "No granted/waiting overlap": only an upgrade may appear on both
      // sides of one entry.
      CCSIM_DCHECK_MSG(w.is_upgrade || FindHolder(entry, id) == nullptr,
                       "transaction both holds and waits on one page");
      for (std::size_t j = i + 1; j < QueueSize(entry); ++j) {
        CCSIM_DCHECK_MSG((*entry.queue)[j].txn->id() != id,
                         "transaction queued twice on one lock");
      }
      const KeyList* kit = txn_keys_.Find(id);
      CCSIM_DCHECK_MSG(
          kit != nullptr &&
              std::find(kit->begin(), kit->end(), key) != kit->end(),
          "waiter not registered in txn_keys_");
    }
  });
  CCSIM_DCHECK_MSG(queued == waiting_count_,
                   "waiting_count_ out of sync with lock queues");
}

}  // namespace ccsim::cc
