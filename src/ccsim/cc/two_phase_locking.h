#ifndef CCSIM_CC_TWO_PHASE_LOCKING_H_
#define CCSIM_CC_TWO_PHASE_LOCKING_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "ccsim/cc/cc_manager.h"
#include "ccsim/cc/lock_table.h"
#include "ccsim/common/types.h"

namespace ccsim::cc {

/// Distributed two-phase locking (Sec 2.2, [Gray79]).
///
/// Cohorts lock dynamically as they execute: shared locks for reads,
/// exclusive locks for accesses that update. Locks are held until commit or
/// abort completes at this node. Local deadlock detection runs whenever a
/// cohort blocks; global deadlocks are found by the rotating Snoop process
/// (snoop.h), which unions every node's LocalWaitsForEdges(). Victims are the
/// youngest (most recent initial startup time) transaction in the cycle.
class TwoPhaseLockingManager : public CcManager {
 public:
  TwoPhaseLockingManager(CcContext* ctx, NodeId node);

  void BeginCohort(const txn::TxnPtr& txn, int cohort_index) override;
  std::shared_ptr<sim::Completion<AccessOutcome>> RequestAccess(
      const txn::TxnPtr& txn, int cohort_index, const PageRef& page,
      AccessMode mode) override;
  std::shared_ptr<sim::Completion<Vote>> Prepare(const txn::TxnPtr& txn,
                                                 int cohort_index) override {
    (void)txn;
    (void)cohort_index;
    return ImmediateVote(&ctx_->simulation(), Vote::kYes);
  }
  void CommitCohort(const txn::TxnPtr& txn, int cohort_index) override;
  void AbortCohort(const txn::TxnPtr& txn, int cohort_index) override;

  std::vector<WaitEdge> LocalWaitsForEdges() const override {
    return lock_table_.WaitsForEdges();
  }
  const stats::Tally* blocking_times() const override {
    return &lock_table_.wait_times();
  }
  void ResetStats() override { lock_table_.ResetStats(); }

  /// Transaction handle lookup for victim aborts (local detection and the
  /// Snoop both resolve victims through the managers' registries).
  txn::TxnPtr FindTxn(TxnId id) const;

  const LockTable& lock_table() const { return lock_table_; }

 protected:
  /// Runs local deadlock detection over the current lock table and requests
  /// the abort of the youngest cycle member reachable from `txn`, if any
  /// (Sec 2.2: detection runs whenever a cohort blocks).
  void DetectLocalDeadlock(const txn::TxnPtr& txn);

  CcContext* ctx_;
  NodeId node_;
  LockTable lock_table_;
  std::unordered_map<TxnId, txn::TxnPtr> registry_;
};

}  // namespace ccsim::cc

#endif  // CCSIM_CC_TWO_PHASE_LOCKING_H_
