#include "ccsim/cc/two_phase_locking_deferred.h"

#include <utility>

#include "ccsim/sim/check.h"

namespace ccsim::cc {

TwoPhaseLockingDeferredManager::TwoPhaseLockingDeferredManager(CcContext* ctx,
                                                               NodeId node)
    : TwoPhaseLockingManager(ctx, node) {}

std::shared_ptr<sim::Completion<AccessOutcome>>
TwoPhaseLockingDeferredManager::RequestAccess(const txn::TxnPtr& txn,
                                              int cohort_index,
                                              const PageRef& page,
                                              AccessMode mode) {
  if (mode == AccessMode::kWrite) {
    // Remember the page for the prepare-time upgrade, but lock it shared
    // for now. (The version audit still treats it as a blind write: the
    // install happens at commit under the exclusive lock.)
    write_sets_[txn->id()].push_back(page);
  }
  // Blind writes have no read semantics, so request the audit-free shared
  // mode through the base implementation's read path only for true reads.
  auto result = lock_table_.Request(txn, page, LockMode::kShared);
  if (!result.granted_immediately) {
    DetectLocalDeadlock(txn);
  } else if (mode == AccessMode::kRead) {
    ctx_->AuditRead(*txn, page);
  }
  return result.completion;
}

std::shared_ptr<sim::Completion<Vote>> TwoPhaseLockingDeferredManager::Prepare(
    const txn::TxnPtr& txn, int cohort_index) {
  (void)cohort_index;
  auto vote = sim::MakeCompletion<Vote>(&ctx_->simulation());
  auto wit = write_sets_.find(txn->id());
  if (wit == write_sets_.end() || wit->second.empty()) {
    vote->Complete(Vote::kYes);
    return vote;
  }
  std::vector<std::shared_ptr<sim::Completion<AccessOutcome>>> pending;
  for (const PageRef& page : wit->second) {
    auto result = lock_table_.Request(txn, page, LockMode::kExclusive);
    if (!result.granted_immediately) {
      ++upgrade_waits_;
      pending.push_back(result.completion);
      // Detection may pick *this* transaction as the victim; the abort then
      // cancels the pending upgrades through AbortCohort.
      DetectLocalDeadlock(txn);
    }
  }
  if (pending.empty()) {
    vote->Complete(Vote::kYes);
    return vote;
  }
  AwaitUpgrades(txn, std::move(pending), vote);
  return vote;
}

sim::Process TwoPhaseLockingDeferredManager::AwaitUpgrades(
    txn::TxnPtr txn,
    std::vector<std::shared_ptr<sim::Completion<AccessOutcome>>> pending,
    std::shared_ptr<sim::Completion<Vote>> vote) {
  (void)txn;
  bool all_granted = true;
  for (auto& completion : pending) {
    AccessOutcome outcome = co_await sim::Await(std::move(completion));
    if (outcome == AccessOutcome::kAborted) all_granted = false;
  }
  // A kNo vote is only observable when the transaction is still alive; an
  // aborted upgrade implies the abort protocol is already running and the
  // cohort will never send this vote (it checks its abort flag).
  vote->Complete(all_granted ? Vote::kYes : Vote::kNo);
}

void TwoPhaseLockingDeferredManager::CommitCohort(const txn::TxnPtr& txn,
                                                  int cohort_index) {
  write_sets_.erase(txn->id());
  TwoPhaseLockingManager::CommitCohort(txn, cohort_index);
}

void TwoPhaseLockingDeferredManager::AbortCohort(const txn::TxnPtr& txn,
                                                 int cohort_index) {
  write_sets_.erase(txn->id());
  TwoPhaseLockingManager::AbortCohort(txn, cohort_index);
}

}  // namespace ccsim::cc
