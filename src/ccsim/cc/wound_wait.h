#ifndef CCSIM_CC_WOUND_WAIT_H_
#define CCSIM_CC_WOUND_WAIT_H_

#include <memory>

#include "ccsim/cc/two_phase_locking.h"

namespace ccsim::cc {

/// Distributed wound-wait locking (Sec 2.3, [Rose78]).
///
/// Same locking mechanism as 2PL, but deadlocks are *prevented* with initial
/// startup timestamps: when a cohort's request would make it wait for a
/// younger transaction, the younger transaction is wounded (aborted), unless
/// it has already reached the second phase of its commit protocol, in which
/// case the wound is ignored and the requester simply waits for it to finish.
/// Younger transactions always wait for older ones. No deadlock detection is
/// needed: every lasting wait is young-waits-for-old.
class WoundWaitManager : public TwoPhaseLockingManager {
 public:
  WoundWaitManager(CcContext* ctx, NodeId node);

  std::shared_ptr<sim::Completion<AccessOutcome>> RequestAccess(
      const txn::TxnPtr& txn, int cohort_index, const PageRef& page,
      AccessMode mode) override;

  std::uint64_t wounds_issued() const { return wounds_; }

 private:
  std::uint64_t wounds_ = 0;
};

}  // namespace ccsim::cc

#endif  // CCSIM_CC_WOUND_WAIT_H_
