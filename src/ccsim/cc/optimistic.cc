#include "ccsim/cc/optimistic.h"

#include "ccsim/sim/check.h"

namespace ccsim::cc {

namespace {
PageRef PageFromKey(std::uint64_t key) {
  return PageRef{static_cast<FileId>(key >> 32),
                 static_cast<int>(key & 0xffffffffu)};
}
}  // namespace

OptimisticManager::OptimisticManager(CcContext* ctx, NodeId node)
    : ctx_(ctx), node_(node) {
  (void)node_;
}

std::shared_ptr<sim::Completion<AccessOutcome>>
OptimisticManager::RequestAccess(const txn::TxnPtr& txn, int cohort_index,
                                 const PageRef& page, AccessMode mode) {
  (void)cohort_index;
  auto completion = sim::MakeCompletion<AccessOutcome>(&ctx_->simulation());
  std::uint64_t key = page.Key();
  Item& item = items_[key];
  TxnLocal& local = txn_state_[txn->id()];
  if (mode == AccessMode::kRead) {
    // Remember the version read for certification; reads see the current
    // committed version (updates of concurrent transactions are in private
    // workspaces).
    local.reads.emplace_back(key, item.wts);
    ctx_->AuditRead(*txn, page);
  } else {
    local.writes.push_back(key);
  }
  completion->Complete(AccessOutcome::kGranted);
  return completion;
}

std::shared_ptr<sim::Completion<Vote>> OptimisticManager::Prepare(
    const txn::TxnPtr& txn, int cohort_index) {
  return ImmediateVote(&ctx_->simulation(), Certify(txn, cohort_index));
}

Vote OptimisticManager::Certify(const txn::TxnPtr& txn, int cohort_index) {
  (void)cohort_index;
  auto tit = txn_state_.find(txn->id());
  if (tit == txn_state_.end()) {
    // Cohort performed no accesses here (cannot happen with the paper's
    // workload, but a vote is still required).
    return Vote::kYes;
  }
  TxnLocal& local = tit->second;
  Timestamp c = txn->commit_ts();
  CCSIM_CHECK_MSG(c.id == txn->id(), "prepare before commit_ts assignment");

  // Validation pass (no state changes).
  for (const auto& [key, version] : local.reads) {
    const Item& item = items_.at(key);
    if (!(item.wts == version)) {
      ++cert_failures_;
      return Vote::kNo;
    }
    for (const auto& [other, wts] : item.cert_writes) {
      if (other != txn->id()) {
        // An in-doubt write would create a version newer than the one read.
        ++cert_failures_;
        return Vote::kNo;
      }
    }
  }
  for (std::uint64_t key : local.writes) {
    const Item& item = items_.at(key);
    if (c < item.rts) {  // a later read already committed
      ++cert_failures_;
      return Vote::kNo;
    }
    for (const auto& [other, rts] : item.cert_reads) {
      if (other != txn->id() && c < rts) {  // a later read is in doubt
        ++cert_failures_;
        return Vote::kNo;
      }
    }
  }

  // Registration pass: the cohort's operations become in-doubt.
  for (const auto& [key, version] : local.reads) {
    items_.at(key).cert_reads[txn->id()] = c;
  }
  for (std::uint64_t key : local.writes) {
    items_.at(key).cert_writes[txn->id()] = c;
  }
  local.certified = true;
  return Vote::kYes;
}

void OptimisticManager::CommitCohort(const txn::TxnPtr& txn,
                                     int cohort_index) {
  (void)cohort_index;
  auto tit = txn_state_.find(txn->id());
  if (tit == txn_state_.end()) return;
  TxnLocal local = std::move(tit->second);
  txn_state_.erase(tit);
  CCSIM_CHECK_MSG(local.certified, "commit of an uncertified cohort");
  Timestamp c = txn->commit_ts();
  for (const auto& [key, version] : local.reads) {
    Item& item = items_.at(key);
    if (item.rts < c) item.rts = c;
    item.cert_reads.erase(txn->id());
  }
  for (std::uint64_t key : local.writes) {
    Item& item = items_.at(key);
    item.cert_writes.erase(txn->id());
    if (item.wts < c) {
      item.wts = c;
      ctx_->AuditInstallWrite(*txn, PageFromKey(key));
    } else {
      ctx_->AuditSkippedWrite(*txn, PageFromKey(key));
    }
  }
}

void OptimisticManager::AbortCohort(const txn::TxnPtr& txn, int cohort_index) {
  (void)cohort_index;
  auto tit = txn_state_.find(txn->id());
  if (tit == txn_state_.end()) return;
  TxnLocal local = std::move(tit->second);
  txn_state_.erase(tit);
  if (local.certified) {
    for (const auto& [key, version] : local.reads) {
      items_.at(key).cert_reads.erase(txn->id());
    }
    for (std::uint64_t key : local.writes) {
      items_.at(key).cert_writes.erase(txn->id());
    }
  }
}

}  // namespace ccsim::cc
