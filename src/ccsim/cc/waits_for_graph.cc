#include "ccsim/cc/waits_for_graph.h"

#include <algorithm>
#include <utility>

#include "ccsim/sim/check.h"

namespace ccsim::cc {

std::size_t WaitsForGraph::FindIndex(TxnId id) const {
  auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), id,
      [](const Node& n, TxnId target) { return n.id < target; });
  if (it == nodes_.end() || it->id != id) return nodes_.size();
  return static_cast<std::size_t>(it - nodes_.begin());
}

std::size_t WaitsForGraph::EnsureNode(TxnId id, Timestamp ts) {
  auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), id,
      [](const Node& n, TxnId target) { return n.id < target; });
  if (it == nodes_.end() || it->id != id) {
    // Keep the first timestamp seen for each transaction (they should all
    // agree; edges from different nodes carry the same initial_ts).
    it = nodes_.insert(it, Node{id, ts, {}});
  }
  return static_cast<std::size_t>(it - nodes_.begin());
}

void WaitsForGraph::AddEdge(const WaitEdge& edge) {
  if (edge.waiter == edge.holder) return;  // self-waits are impossible; guard
  EnsureNode(edge.holder, edge.holder_ts);
  // Re-find after the holder insert: it may have shifted the waiter's slot.
  std::size_t w = EnsureNode(edge.waiter, edge.waiter_ts);
  nodes_[w].out.push_back(edge.holder);
}

void WaitsForGraph::AddEdges(const std::vector<WaitEdge>& edges) {
  for (const auto& e : edges) AddEdge(e);
}

std::size_t WaitsForGraph::num_edges() const {
  std::size_t n = 0;
  for (const Node& node : nodes_) n += node.out.size();
  return n;
}

std::vector<TxnId> WaitsForGraph::FindCycleFrom(TxnId start) const {
  std::size_t start_idx = FindIndex(start);
  if (start_idx == nodes_.size()) return {};
  // Iterative DFS tracking the current path; a back-edge onto the path
  // yields the cycle members.
  std::vector<signed char> state(nodes_.size(), 0);  // 0 new, 1 on path,
                                                     // 2 done
  std::vector<std::pair<std::size_t, std::size_t>> stack;  // (node, edge idx)
  std::vector<TxnId> path;

  stack.emplace_back(start_idx, 0);
  state[start_idx] = 1;
  path.push_back(start);

  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    const auto& outs = nodes_[node].out;
    if (idx >= outs.size()) {
      state[node] = 2;
      stack.pop_back();
      path.pop_back();
      continue;
    }
    TxnId next = outs[idx++];
    std::size_t next_idx = FindIndex(next);
    CCSIM_CHECK(next_idx < nodes_.size());  // AddEdge creates both endpoints
    if (state[next_idx] == 1) {
      // Found a cycle: members are the path suffix from `next`.
      auto pit = std::find(path.begin(), path.end(), next);
      CCSIM_CHECK(pit != path.end());
      return std::vector<TxnId>(pit, path.end());
    }
    if (state[next_idx] == 0) {
      state[next_idx] = 1;
      stack.emplace_back(next_idx, 0);
      path.push_back(next);
    }
  }
  return {};
}

std::vector<TxnId> WaitsForGraph::FindAnyCycle() const {
  for (const Node& node : nodes_) {
    auto cycle = FindCycleFrom(node.id);
    if (!cycle.empty()) return cycle;
  }
  return {};
}

TxnId WaitsForGraph::YoungestOf(const std::vector<TxnId>& cycle) const {
  CCSIM_CHECK(!cycle.empty());
  TxnId youngest = cycle.front();
  std::size_t yidx = FindIndex(youngest);
  CCSIM_CHECK(yidx < nodes_.size());
  Timestamp best = nodes_[yidx].ts;
  for (TxnId id : cycle) {
    std::size_t idx = FindIndex(id);
    CCSIM_CHECK(idx < nodes_.size());
    Timestamp ts = nodes_[idx].ts;
    if (best < ts) {  // larger timestamp = more recent startup = younger
      best = ts;
      youngest = id;
    }
  }
  return youngest;
}

void WaitsForGraph::RemoveNode(TxnId id) {
  std::size_t idx = FindIndex(id);
  if (idx < nodes_.size()) {
    nodes_.erase(nodes_.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  for (Node& node : nodes_) {
    for (std::size_t i = 0; i < node.out.size();) {
      if (node.out[i] == id) {
        node.out.erase(i);
      } else {
        ++i;
      }
    }
  }
}

std::vector<TxnId> WaitsForGraph::ResolveAllDeadlocks() {
  AuditInvariants();
  std::vector<TxnId> victims;
  for (;;) {
    auto cycle = FindAnyCycle();
    if (cycle.empty()) break;
    TxnId victim = YoungestOf(cycle);
    victims.push_back(victim);
    RemoveNode(victim);
  }
  return victims;
}

void WaitsForGraph::AuditInvariants() const {
  if (!sim::kAuditEnabled) return;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    CCSIM_DCHECK_MSG(i == 0 || nodes_[i - 1].id < node.id,
                     "graph nodes not sorted by TxnId");
    for (TxnId out : node.out) {
      CCSIM_DCHECK_MSG(out != node.id, "self-wait edge in waits-for graph");
      CCSIM_DCHECK_MSG(FindIndex(out) < nodes_.size(),
                       "edge target missing from adjacency");
    }
  }
}

}  // namespace ccsim::cc
