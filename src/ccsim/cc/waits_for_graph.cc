#include "ccsim/cc/waits_for_graph.h"

#include <algorithm>
#include <unordered_map>

#include "ccsim/sim/check.h"

namespace ccsim::cc {

void WaitsForGraph::AddEdge(const WaitEdge& edge) {
  if (edge.waiter == edge.holder) return;  // self-waits are impossible; guard
  adjacency_[edge.waiter].push_back(edge.holder);
  adjacency_.try_emplace(edge.holder);
  // Keep the earliest timestamp seen for each transaction (they should all
  // agree; edges from different nodes carry the same initial_ts).
  timestamps_.try_emplace(edge.waiter, edge.waiter_ts);
  timestamps_.try_emplace(edge.holder, edge.holder_ts);
}

void WaitsForGraph::AddEdges(const std::vector<WaitEdge>& edges) {
  for (const auto& e : edges) AddEdge(e);
}

std::size_t WaitsForGraph::num_edges() const {
  std::size_t n = 0;
  for (const auto& [id, outs] : adjacency_) n += outs.size();
  return n;
}

std::vector<TxnId> WaitsForGraph::FindCycleFrom(TxnId start) const {
  if (adjacency_.find(start) == adjacency_.end()) return {};
  // Iterative DFS tracking the current path; a back-edge onto the path
  // yields the cycle members.
  std::unordered_map<TxnId, int> state;  // 0 unvisited, 1 on path, 2 done
  std::vector<std::pair<TxnId, std::size_t>> stack;  // (node, next edge idx)
  std::vector<TxnId> path;

  stack.emplace_back(start, 0);
  state[start] = 1;
  path.push_back(start);

  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    auto ait = adjacency_.find(node);
    const std::vector<TxnId>* outs = ait != adjacency_.end() ? &ait->second : nullptr;
    if (outs == nullptr || idx >= outs->size()) {
      state[node] = 2;
      stack.pop_back();
      path.pop_back();
      continue;
    }
    TxnId next = (*outs)[idx++];
    int s = state.count(next) ? state[next] : 0;
    if (s == 1) {
      // Found a cycle: members are the path suffix from `next`.
      auto pit = std::find(path.begin(), path.end(), next);
      CCSIM_CHECK(pit != path.end());
      return std::vector<TxnId>(pit, path.end());
    }
    if (s == 0) {
      state[next] = 1;
      stack.emplace_back(next, 0);
      path.push_back(next);
    }
  }
  return {};
}

std::vector<TxnId> WaitsForGraph::FindAnyCycle() const {
  for (const auto& [id, outs] : adjacency_) {
    auto cycle = FindCycleFrom(id);
    if (!cycle.empty()) return cycle;
  }
  return {};
}

TxnId WaitsForGraph::YoungestOf(const std::vector<TxnId>& cycle) const {
  CCSIM_CHECK(!cycle.empty());
  TxnId youngest = cycle.front();
  Timestamp best = timestamps_.at(youngest);
  for (TxnId id : cycle) {
    Timestamp ts = timestamps_.at(id);
    if (best < ts) {  // larger timestamp = more recent startup = younger
      best = ts;
      youngest = id;
    }
  }
  return youngest;
}

void WaitsForGraph::RemoveNode(TxnId id) {
  adjacency_.erase(id);
  for (auto& [node, outs] : adjacency_) {
    outs.erase(std::remove(outs.begin(), outs.end(), id), outs.end());
  }
}

std::vector<TxnId> WaitsForGraph::ResolveAllDeadlocks() {
  AuditInvariants();
  std::vector<TxnId> victims;
  for (;;) {
    auto cycle = FindAnyCycle();
    if (cycle.empty()) break;
    TxnId victim = YoungestOf(cycle);
    victims.push_back(victim);
    RemoveNode(victim);
  }
  return victims;
}

void WaitsForGraph::AuditInvariants() const {
  if (!sim::kAuditEnabled) return;
  for (const auto& [node, outs] : adjacency_) {
    CCSIM_DCHECK_MSG(timestamps_.count(node) == 1,
                     "graph node without a timestamp");
    for (TxnId out : outs) {
      CCSIM_DCHECK_MSG(out != node, "self-wait edge in waits-for graph");
      CCSIM_DCHECK_MSG(adjacency_.count(out) == 1,
                       "edge target missing from adjacency");
      CCSIM_DCHECK_MSG(timestamps_.count(out) == 1,
                       "edge target without a timestamp");
    }
  }
}

}  // namespace ccsim::cc
