#ifndef CCSIM_CC_BTO_H_
#define CCSIM_CC_BTO_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ccsim/cc/cc_manager.h"
#include "ccsim/common/types.h"
#include "ccsim/stats/tally.h"

namespace ccsim::cc {

/// Basic timestamp ordering (Sec 2.4, [Bern80/Bern81]).
///
/// Each data item carries a committed read timestamp (rts) and write
/// timestamp (wts); conflicting accesses must occur in timestamp order,
/// where a transaction's timestamp is its (per-attempt) startup timestamp.
///
///  * Read at ts: rejected if ts < wts. If a granted-but-uncommitted
///    ("pending") write with an earlier timestamp exists, the reader blocks
///    until that write commits or aborts (readers must not see uncommitted
///    data; a pending write locks out later reads until it becomes visible).
///    Otherwise granted; rts = max(rts, ts).
///  * Write at ts: rejected if ts < rts. If ts < wts the Thomas write rule
///    applies: the write is granted but will never be installed. Otherwise
///    the write is queued as pending, in timestamp order, without blocking
///    the writer (updates live in a private workspace until commit).
///
/// Rejections surface as AccessOutcome::kAborted to the requesting cohort.
/// Waits are always younger-reader-for-older-writer, so no deadlock is
/// possible and no detector is needed.
class BtoManager : public CcManager {
 public:
  BtoManager(CcContext* ctx, NodeId node);

  std::shared_ptr<sim::Completion<AccessOutcome>> RequestAccess(
      const txn::TxnPtr& txn, int cohort_index, const PageRef& page,
      AccessMode mode) override;
  std::shared_ptr<sim::Completion<Vote>> Prepare(const txn::TxnPtr& txn,
                                                 int cohort_index) override {
    (void)txn;
    (void)cohort_index;
    return ImmediateVote(&ctx_->simulation(), Vote::kYes);
  }
  void CommitCohort(const txn::TxnPtr& txn, int cohort_index) override;
  void AbortCohort(const txn::TxnPtr& txn, int cohort_index) override;

  const stats::Tally* blocking_times() const override { return &wait_times_; }
  void ResetStats() override { wait_times_.Reset(); }

  std::uint64_t rejections() const { return rejections_; }
  std::uint64_t thomas_skips() const { return thomas_skips_; }
  std::size_t blocked_readers() const { return blocked_readers_; }

 private:
  struct PendingWrite {
    Timestamp ts;
    txn::TxnPtr txn;
  };
  struct BlockedRead {
    Timestamp ts;
    txn::TxnPtr txn;
    std::shared_ptr<sim::Completion<AccessOutcome>> completion;
    sim::SimTime since;
  };
  struct Item {
    Timestamp rts = kTimestampZero;
    Timestamp wts = kTimestampZero;
    std::vector<PendingWrite> pending_writes;  // ascending timestamp order
    std::vector<BlockedRead> blocked_reads;
  };
  struct TxnLocal {
    std::vector<std::uint64_t> pending_write_keys;
    std::vector<std::uint64_t> thomas_skipped_keys;
    // Items this transaction blocked a read on (possibly already granted;
    // entries are only hints for abort cleanup).
    std::vector<std::uint64_t> blocked_read_keys;
  };

  /// Re-examines an item's blocked readers after pending writes changed:
  /// grants those no longer blocked, rejects those now out of order.
  void ReevaluateBlockedReads(std::uint64_t key);

  CcContext* ctx_;
  NodeId node_;
  std::unordered_map<std::uint64_t, Item> items_;
  std::unordered_map<TxnId, TxnLocal> txn_state_;
  stats::Tally wait_times_;
  std::uint64_t rejections_ = 0;
  std::uint64_t thomas_skips_ = 0;
  std::size_t blocked_readers_ = 0;
};

}  // namespace ccsim::cc

#endif  // CCSIM_CC_BTO_H_
