#ifndef CCSIM_CC_WAIT_DIE_H_
#define CCSIM_CC_WAIT_DIE_H_

#include <memory>

#include "ccsim/cc/two_phase_locking.h"

namespace ccsim::cc {

/// Wait-die locking - the second deadlock-prevention scheme of [Rose78]
/// (extension; the paper evaluates only its sibling, wound-wait).
///
/// Timestamp rule, dual to wound-wait: an *older* requester may wait for a
/// younger lock holder, but a *younger* requester conflicting with an older
/// transaction aborts itself immediately ("dies"). Deaths are cheap - they
/// happen at request time, before any work is wasted on waiting - and, like
/// wound-wait, the scheme is deadlock-free (all waits are old-waits-for-
/// young). Restarted transactions keep their initial timestamps, so every
/// transaction eventually becomes the oldest and cannot die forever.
class WaitDieManager : public TwoPhaseLockingManager {
 public:
  WaitDieManager(CcContext* ctx, NodeId node);

  std::shared_ptr<sim::Completion<AccessOutcome>> RequestAccess(
      const txn::TxnPtr& txn, int cohort_index, const PageRef& page,
      AccessMode mode) override;

  std::uint64_t deaths() const { return deaths_; }

 private:
  std::uint64_t deaths_ = 0;
};

}  // namespace ccsim::cc

#endif  // CCSIM_CC_WAIT_DIE_H_
