#ifndef CCSIM_CC_OPTIMISTIC_H_
#define CCSIM_CC_OPTIMISTIC_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ccsim/cc/cc_manager.h"
#include "ccsim/common/types.h"

namespace ccsim::cc {

/// Distributed, timestamp-based optimistic concurrency control
/// (Sec 2.5, the first algorithm of [Sinh85]).
///
/// Execution never blocks or aborts: cohorts read freely (remembering the
/// version - the write timestamp - of each item read) and buffer updates in a
/// private workspace. When all cohorts finish, the coordinator assigns the
/// transaction a globally unique commit timestamp and sends it in the
/// "prepare" message; each cohort then certifies its reads and writes
/// locally, atomically (a critical section; the simulation is
/// single-threaded, so Prepare runs indivisibly):
///
///  * a read is certified iff the version it read is still the current
///    committed version AND no uncommitted write on the item has been
///    locally certified (such a write would create a version the read
///    should or could not have seen);
///  * a write at commit ts c is certified iff no read with a timestamp
///    later than c has committed (rts <= c) AND no later read is currently
///    locally certified.
///
/// On commit, certified writes install (wts = c), certified reads bump rts,
/// and the in-doubt entries clear; on abort the entries just clear.
class OptimisticManager : public CcManager {
 public:
  OptimisticManager(CcContext* ctx, NodeId node);

  std::shared_ptr<sim::Completion<AccessOutcome>> RequestAccess(
      const txn::TxnPtr& txn, int cohort_index, const PageRef& page,
      AccessMode mode) override;
  /// Runs the local certification atomically; the vote is available
  /// immediately (certification is a critical section, Sec 2.5).
  std::shared_ptr<sim::Completion<Vote>> Prepare(const txn::TxnPtr& txn,
                                                 int cohort_index) override;
  void CommitCohort(const txn::TxnPtr& txn, int cohort_index) override;
  void AbortCohort(const txn::TxnPtr& txn, int cohort_index) override;

  std::uint64_t certification_failures() const { return cert_failures_; }

 private:
  Vote Certify(const txn::TxnPtr& txn, int cohort_index);

  struct Item {
    Timestamp rts = kTimestampZero;
    Timestamp wts = kTimestampZero;  // doubles as the current version id
    // In-doubt (certified, not yet committed) operations, by transaction.
    std::map<TxnId, Timestamp> cert_reads;
    std::map<TxnId, Timestamp> cert_writes;
  };
  struct TxnLocal {
    std::vector<std::pair<std::uint64_t, Timestamp>> reads;  // key, version
    std::vector<std::uint64_t> writes;
    bool certified = false;
  };

  CcContext* ctx_;
  NodeId node_;
  std::unordered_map<std::uint64_t, Item> items_;
  std::unordered_map<TxnId, TxnLocal> txn_state_;
  std::uint64_t cert_failures_ = 0;
};

}  // namespace ccsim::cc

#endif  // CCSIM_CC_OPTIMISTIC_H_
