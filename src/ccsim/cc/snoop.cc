#include "ccsim/cc/snoop.h"

#include <utility>

#include "ccsim/cc/waits_for_graph.h"
#include "ccsim/sim/check.h"
#include "ccsim/sim/completion.h"

namespace ccsim::cc {

Snoop::Snoop(CcContext* ctx, net::Network* network,
             std::vector<TwoPhaseLockingManager*> managers_by_proc_node,
             double interval_sec)
    : ctx_(ctx),
      network_(network),
      managers_(std::move(managers_by_proc_node)),
      interval_(interval_sec) {
  CCSIM_CHECK(!managers_.empty());
  CCSIM_CHECK(interval_sec > 0.0);
}

void Snoop::Start() {
  CCSIM_CHECK_MSG(!started_, "Snoop started twice");
  started_ = true;
  Run();
}

sim::Process Snoop::Run() {
  auto& sim = ctx_->simulation();
  int num_nodes = static_cast<int>(managers_.size());
  NodeId current = 1;  // duty starts at the first processing node
  for (;;) {
    co_await sim.Delay(interval_);
    ++rounds_;

    // Gather waits-for information from every node. The duty node reads its
    // own table directly; remote tables are fetched with a query/reply
    // message pair each.
    auto edges = std::make_shared<std::vector<WaitEdge>>(
        manager(current)->LocalWaitsForEdges());
    auto latch = std::make_shared<sim::Latch>(&sim, num_nodes - 1);
    for (NodeId m = 1; m <= num_nodes; ++m) {
      if (m == current) continue;
      network_->Send(current, m, net::MsgTag::kSnoopQuery,
                     [this, m, current, edges, latch] {
                       auto local = manager(m)->LocalWaitsForEdges();
                       network_->Send(
                           m, current, net::MsgTag::kSnoopReply,
                           [edges, latch, local = std::move(local)] {
                             edges->insert(edges->end(), local.begin(),
                                           local.end());
                             latch->CountDown();
                           });
                     });
    }
    co_await sim::Await(latch->completion());

    WaitsForGraph graph;
    graph.AddEdges(*edges);
    for (TxnId victim_id : graph.ResolveAllDeadlocks()) {
      // Resolve the victim to a live handle through any node that knows it.
      // Stale victims (already aborted/committed since the snapshot) simply
      // fail to resolve, or are ignored by the coordinator.
      txn::TxnPtr victim;
      for (auto* mgr : managers_) {
        victim = mgr->FindTxn(victim_id);
        if (victim) break;
      }
      if (!victim) continue;
      ++victims_;
      ctx_->RequestAbort(victim, victim->attempt(), current,
                         txn::AbortReason::kGlobalDeadlock);
    }

    // Pass the duty on (round-robin).
    NodeId next = (current % num_nodes) + 1;
    if (next != current) {
      network_->Send(current, next, net::MsgTag::kSnoopHandoff, [] {});
    }
    current = next;
  }
}

}  // namespace ccsim::cc
