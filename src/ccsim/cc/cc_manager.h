#ifndef CCSIM_CC_CC_MANAGER_H_
#define CCSIM_CC_CC_MANAGER_H_

#include <memory>
#include <vector>

#include "ccsim/common/types.h"
#include "ccsim/config/params.h"
#include "ccsim/sim/completion.h"
#include "ccsim/sim/simulation.h"
#include "ccsim/stats/tally.h"
#include "ccsim/txn/transaction.h"

namespace ccsim::cc {

/// Result of a concurrency control access request, delivered (possibly after
/// blocking) to the requesting cohort.
enum class AccessOutcome {
  kGranted,
  kAborted,  // the cohort's transaction must abort (rejection, wound, victim)
};

/// Cohort vote in the first phase of the commit protocol.
enum class Vote { kYes, kNo };

/// A waits-for edge between transactions (with the timestamps deadlock victim
/// selection needs), as reported by a node's lock manager to the Snoop.
struct WaitEdge {
  TxnId waiter = 0;
  Timestamp waiter_ts{};
  TxnId holder = 0;
  Timestamp holder_ts{};
};

/// Services a concurrency control manager obtains from the surrounding
/// engine. Implemented by engine::System.
class CcContext {
 public:
  virtual ~CcContext() = default;

  virtual sim::Simulation& simulation() = 0;

  /// The run's configuration (CC managers read their algorithm options).
  virtual const config::SystemConfig& config() const = 0;

  /// Requests that the coordinator abort `txn`'s current attempt. The
  /// request is raised at `from_node` and travels to the host as a message;
  /// the coordinator ignores it if the attempt is stale or already past the
  /// point of no return (committing).
  virtual void RequestAbort(const txn::TxnPtr& txn, int attempt,
                            NodeId from_node, txn::AbortReason reason) = 0;

  /// Audit hook: `t` (current attempt) observed the current committed
  /// version of `page`. No-op when auditing is disabled.
  virtual void AuditRead(txn::Transaction& t, const PageRef& page) = 0;

  /// Audit hook: `t` installed a new committed version of `page`.
  virtual void AuditInstallWrite(txn::Transaction& t, const PageRef& page) = 0;

  /// Audit hook: `t`'s write of `page` was skipped by the Thomas write rule
  /// (BTO): the transaction commits but no version is installed.
  virtual void AuditSkippedWrite(txn::Transaction& t, const PageRef& page) = 0;
};

/// A node's concurrency control manager (Sec 3.6): one instance per node,
/// implementing one algorithm. All calls refer to the cohort of `txn` local
/// to this node (`cohort_index` into the transaction's cohort list).
///
/// Threading/reentrancy: the simulation is single-threaded; implementations
/// may complete requests inline (the completion machinery defers the
/// cohort's resumption through the calendar).
class CcManager {
 public:
  virtual ~CcManager() = default;

  /// Called (at the cohort's node) before the cohort's first access.
  virtual void BeginCohort(const txn::TxnPtr& txn, int cohort_index) {
    (void)txn;
    (void)cohort_index;
  }

  /// Requests permission for one page access. The completion yields
  /// kGranted when the access may proceed, or kAborted if the transaction
  /// must abort (the cohort then informs the coordinator).
  virtual std::shared_ptr<sim::Completion<AccessOutcome>> RequestAccess(
      const txn::TxnPtr& txn, int cohort_index, const PageRef& page,
      AccessMode mode) = 0;

  /// First phase of commit at this node. OPT runs certification here; the
  /// deferred-write 2PL variant upgrades its write locks here (and may
  /// block, hence the completion). If the transaction aborts while the
  /// prepare is pending, the completion fires with kNo after AbortCohort's
  /// cleanup; the caller checks the cohort's abort flag before voting.
  virtual std::shared_ptr<sim::Completion<Vote>> Prepare(
      const txn::TxnPtr& txn, int cohort_index) = 0;

 protected:
  /// Helper for managers whose first commit phase never waits.
  static std::shared_ptr<sim::Completion<Vote>> ImmediateVote(
      sim::Simulation* sim, Vote vote) {
    auto c = sim::MakeCompletion<Vote>(sim);
    c->Complete(vote);
    return c;
  }

 public:

  /// Second phase, commit: release locks / install pending or certified
  /// writes / bump timestamps.
  virtual void CommitCohort(const txn::TxnPtr& txn, int cohort_index) = 0;

  /// Abort cleanup at this node. Must be idempotent and safe to call even if
  /// the cohort never began or already self-aborted. Wakes any request of
  /// this cohort still blocked here (with kAborted).
  virtual void AbortCohort(const txn::TxnPtr& txn, int cohort_index) = 0;

  /// Local waits-for edges (lock-based algorithms; empty otherwise).
  virtual std::vector<WaitEdge> LocalWaitsForEdges() const { return {}; }

  /// Time cohorts spent blocked in this manager (lock-based algorithms).
  virtual const stats::Tally* blocking_times() const { return nullptr; }

  virtual void ResetStats() {}
};

}  // namespace ccsim::cc

#endif  // CCSIM_CC_CC_MANAGER_H_
