#ifndef CCSIM_CC_CC_FACTORY_H_
#define CCSIM_CC_CC_FACTORY_H_

#include <memory>

#include "ccsim/cc/cc_manager.h"
#include "ccsim/common/types.h"
#include "ccsim/config/params.h"

namespace ccsim::cc {

/// Creates the concurrency control manager for one node. The CC manager is
/// the only module that changes between algorithms (Sec 3.6).
std::unique_ptr<CcManager> CreateCcManager(config::CcAlgorithm algorithm,
                                           CcContext* ctx, NodeId node);

}  // namespace ccsim::cc

#endif  // CCSIM_CC_CC_FACTORY_H_
