#ifndef CCSIM_CC_TWO_PHASE_LOCKING_TIMEOUT_H_
#define CCSIM_CC_TWO_PHASE_LOCKING_TIMEOUT_H_

#include <memory>

#include "ccsim/cc/two_phase_locking.h"

namespace ccsim::cc {

/// 2PL with timeout-based deadlock handling (extension; footnote 2 of the
/// paper cites [Jenq89]'s finding that the timeout interval is a critical
/// and sensitive parameter - bench/ablation_lock_timeout reproduces that).
///
/// No deadlock detection runs at all (no local cycle search, no Snoop): a
/// request that has waited longer than LockingParams::timeout_sec simply
/// aborts its transaction. Short timeouts slaughter transactions that were
/// merely queued; long timeouts let deadlocked transactions clog the system.
class TwoPhaseLockingTimeoutManager : public TwoPhaseLockingManager {
 public:
  TwoPhaseLockingTimeoutManager(CcContext* ctx, NodeId node);

  std::shared_ptr<sim::Completion<AccessOutcome>> RequestAccess(
      const txn::TxnPtr& txn, int cohort_index, const PageRef& page,
      AccessMode mode) override;

  /// Timeouts never consult waits-for information.
  std::vector<WaitEdge> LocalWaitsForEdges() const override { return {}; }

  std::uint64_t timeouts_fired() const { return timeouts_; }

 private:
  double timeout_sec_;
  std::uint64_t timeouts_ = 0;
};

}  // namespace ccsim::cc

#endif  // CCSIM_CC_TWO_PHASE_LOCKING_TIMEOUT_H_
