#include "ccsim/cc/two_phase_locking_timeout.h"

namespace ccsim::cc {

TwoPhaseLockingTimeoutManager::TwoPhaseLockingTimeoutManager(CcContext* ctx,
                                                             NodeId node)
    : TwoPhaseLockingManager(ctx, node),
      timeout_sec_(ctx->config().locking.timeout_sec) {}

std::shared_ptr<sim::Completion<AccessOutcome>>
TwoPhaseLockingTimeoutManager::RequestAccess(const txn::TxnPtr& txn,
                                             int cohort_index,
                                             const PageRef& page,
                                             AccessMode mode) {
  (void)cohort_index;
  LockMode lock_mode =
      mode == AccessMode::kWrite ? LockMode::kExclusive : LockMode::kShared;
  auto result = lock_table_.Request(txn, page, lock_mode);
  if (result.granted_immediately) {
    if (mode == AccessMode::kRead) ctx_->AuditRead(*txn, page);
    return result.completion;
  }

  // Arm the timeout. If the request is still pending when it fires, cancel
  // it: the completion delivers kAborted to the cohort, which informs the
  // coordinator. If the request was granted (or the transaction aborted for
  // another reason) in the meantime, CancelRequest finds nothing. The
  // completion is held by the timer closure, so its lifetime is safe.
  auto completion = result.completion;
  TxnId id = txn->id();
  // ccsim-analyze: coro-ok(the CC service is owned by System alongside the calendar and is destroyed after it; pending timers never outlive this)
  ctx_->simulation().After(timeout_sec_, [this, id, page, completion] {
    if (completion->done()) return;  // granted or aborted already
    if (lock_table_.CancelRequest(id, page)) ++timeouts_;
  });
  return result.completion;
}

}  // namespace ccsim::cc
