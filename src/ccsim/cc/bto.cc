#include "ccsim/cc/bto.h"

#include <algorithm>

#include "ccsim/sim/check.h"

namespace ccsim::cc {

namespace {
PageRef PageFromKey(std::uint64_t key) {
  return PageRef{static_cast<FileId>(key >> 32),
                 static_cast<int>(key & 0xffffffffu)};
}
}  // namespace

BtoManager::BtoManager(CcContext* ctx, NodeId node)
    : ctx_(ctx), node_(node) {
  (void)node_;
}

std::shared_ptr<sim::Completion<AccessOutcome>> BtoManager::RequestAccess(
    const txn::TxnPtr& txn, int cohort_index, const PageRef& page,
    AccessMode mode) {
  (void)cohort_index;
  auto& sim = ctx_->simulation();
  auto completion = sim::MakeCompletion<AccessOutcome>(&sim);
  Timestamp ts = txn->attempt_ts();
  std::uint64_t key = page.Key();
  Item& item = items_[key];

  if (mode == AccessMode::kRead) {
    if (ts < item.wts) {
      ++rejections_;
      completion->Complete(AccessOutcome::kAborted);
      return completion;
    }
    bool blocked = std::any_of(
        item.pending_writes.begin(), item.pending_writes.end(),
        [&](const PendingWrite& pw) { return pw.ts < ts; });
    if (blocked) {
      item.blocked_reads.push_back(BlockedRead{ts, txn, completion, sim.Now()});
      txn_state_[txn->id()].blocked_read_keys.push_back(key);
      ++blocked_readers_;
      return completion;
    }
    if (item.rts < ts) item.rts = ts;
    ctx_->AuditRead(*txn, page);
    completion->Complete(AccessOutcome::kGranted);
    return completion;
  }

  // Write request.
  if (ts < item.rts) {
    ++rejections_;
    completion->Complete(AccessOutcome::kAborted);
    return completion;
  }
  if (ts < item.wts) {
    // Thomas write rule: granted, but the value will never become visible.
    ++thomas_skips_;
    txn_state_[txn->id()].thomas_skipped_keys.push_back(key);
    completion->Complete(AccessOutcome::kGranted);
    return completion;
  }
  auto pos = std::upper_bound(
      item.pending_writes.begin(), item.pending_writes.end(), ts,
      [](const Timestamp& t, const PendingWrite& pw) { return t < pw.ts; });
  item.pending_writes.insert(pos, PendingWrite{ts, txn});
  txn_state_[txn->id()].pending_write_keys.push_back(key);
  completion->Complete(AccessOutcome::kGranted);
  return completion;
}

void BtoManager::ReevaluateBlockedReads(std::uint64_t key) {
  auto iit = items_.find(key);
  if (iit == items_.end()) return;
  Item& item = iit->second;
  if (item.blocked_reads.empty()) return;

  // Grant in ascending timestamp order for fairness.
  std::stable_sort(item.blocked_reads.begin(), item.blocked_reads.end(),
                   [](const BlockedRead& a, const BlockedRead& b) {
                     return a.ts < b.ts;
                   });
  auto& sim = ctx_->simulation();
  std::vector<BlockedRead> still_blocked;
  for (auto& br : item.blocked_reads) {
    if (br.ts < item.wts) {
      // A later pending write committed first; this read is now out of order.
      ++rejections_;
      --blocked_readers_;
      br.completion->Complete(AccessOutcome::kAborted);
      continue;
    }
    bool blocked = std::any_of(
        item.pending_writes.begin(), item.pending_writes.end(),
        [&](const PendingWrite& pw) { return pw.ts < br.ts; });
    if (blocked) {
      still_blocked.push_back(std::move(br));
      continue;
    }
    if (item.rts < br.ts) item.rts = br.ts;
    wait_times_.Record(sim.Now() - br.since);
    --blocked_readers_;
    ctx_->AuditRead(*br.txn, PageFromKey(key));
    br.completion->Complete(AccessOutcome::kGranted);
  }
  item.blocked_reads = std::move(still_blocked);
}

void BtoManager::CommitCohort(const txn::TxnPtr& txn, int cohort_index) {
  (void)cohort_index;
  auto tit = txn_state_.find(txn->id());
  if (tit == txn_state_.end()) return;
  TxnLocal local = std::move(tit->second);
  txn_state_.erase(tit);

  for (std::uint64_t key : local.pending_write_keys) {
    Item& item = items_.at(key);
    auto pw = std::find_if(
        item.pending_writes.begin(), item.pending_writes.end(),
        [&](const PendingWrite& p) { return p.txn->id() == txn->id(); });
    CCSIM_CHECK_MSG(pw != item.pending_writes.end(),
                    "pending write vanished before commit");
    Timestamp ts = pw->ts;
    item.pending_writes.erase(pw);
    if (ts > item.wts) {
      item.wts = ts;
      ctx_->AuditInstallWrite(*txn, PageFromKey(key));
    } else {
      // A later write was installed while this one was pending.
      ctx_->AuditSkippedWrite(*txn, PageFromKey(key));
    }
    ReevaluateBlockedReads(key);
  }
  for (std::uint64_t key : local.thomas_skipped_keys) {
    ctx_->AuditSkippedWrite(*txn, PageFromKey(key));
  }
}

void BtoManager::AbortCohort(const txn::TxnPtr& txn, int cohort_index) {
  (void)cohort_index;
  // Drop this cohort's pending writes (never installed) and wake any of its
  // own still-blocked reads with kAborted.
  auto tit = txn_state_.find(txn->id());
  if (tit == txn_state_.end()) return;
  TxnLocal local = std::move(tit->second);
  txn_state_.erase(tit);
  for (std::uint64_t key : local.pending_write_keys) {
    Item& item = items_.at(key);
    auto pw = std::find_if(
        item.pending_writes.begin(), item.pending_writes.end(),
        [&](const PendingWrite& p) { return p.txn->id() == txn->id(); });
    if (pw != item.pending_writes.end()) item.pending_writes.erase(pw);
    ReevaluateBlockedReads(key);
  }
  // Wake the cohort's own still-blocked reads with kAborted (the keys are
  // hints: an already-granted or rejected read simply is not found).
  for (std::uint64_t key : local.blocked_read_keys) {
    auto iit = items_.find(key);
    if (iit == items_.end()) continue;
    auto& reads = iit->second.blocked_reads;
    for (auto it = reads.begin(); it != reads.end();) {
      if (it->txn->id() == txn->id()) {
        --blocked_readers_;
        it->completion->Complete(AccessOutcome::kAborted);
        it = reads.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace ccsim::cc
