#include "ccsim/txn/transaction.h"

#include <utility>

#include "ccsim/sim/check.h"

namespace ccsim::txn {

const char* ToString(TxnPhase phase) {
  switch (phase) {
    case TxnPhase::kRunning: return "running";
    case TxnPhase::kPreparing: return "preparing";
    case TxnPhase::kCommitting: return "committing";
    case TxnPhase::kAborting: return "aborting";
    case TxnPhase::kRestartWait: return "restart-wait";
    case TxnPhase::kCommitted: return "committed";
  }
  return "?";
}

const char* ToString(AbortReason reason) {
  switch (reason) {
    case AbortReason::kLocalDeadlock: return "local-deadlock";
    case AbortReason::kGlobalDeadlock: return "global-deadlock";
    case AbortReason::kWound: return "wound";
    case AbortReason::kTimestampOrder: return "timestamp-order";
    case AbortReason::kCertification: return "certification";
    case AbortReason::kDie: return "die";
    case AbortReason::kTimeout: return "timeout";
    case AbortReason::kNodeCrash: return "node-crash";
    case AbortReason::kCommTimeout: return "comm-timeout";
  }
  return "?";
}

namespace {

/// Legal arcs of the per-attempt 2PC state machine (see TxnPhase). The
/// kRestartWait -> kRunning arc is taken by BeginAttempt(), not set_phase().
bool LegalPhaseTransition(TxnPhase from, TxnPhase to) {
  switch (from) {
    case TxnPhase::kRunning:
      return to == TxnPhase::kPreparing || to == TxnPhase::kAborting;
    case TxnPhase::kPreparing:
      return to == TxnPhase::kCommitting || to == TxnPhase::kAborting;
    case TxnPhase::kCommitting:
      return to == TxnPhase::kCommitted;
    case TxnPhase::kAborting:
      return to == TxnPhase::kRestartWait;
    case TxnPhase::kRestartWait:
    case TxnPhase::kCommitted:
      return false;  // terminal for set_phase
  }
  return false;
}

}  // namespace

void Transaction::set_phase(TxnPhase phase) {
  if (sim::kAuditEnabled && !LegalPhaseTransition(phase_, phase)) {
    CCSIM_DCHECK_MSG(false, "illegal 2PC phase transition");
  }
  phase_ = phase;
}

Transaction::Transaction(TxnId id, workload::TransactionSpec spec,
                         sim::SimTime origin_time,
                         std::shared_ptr<sim::Completion<sim::Unit>> done)
    : done(std::move(done)),
      id_(id),
      origin_time_(origin_time),
      spec_(std::move(spec)),
      cohorts_(spec_.cohorts.size()) {
  CCSIM_CHECK(!spec_.cohorts.empty());
}

void Transaction::ReplaceSpec(workload::TransactionSpec spec) {
  CCSIM_CHECK_MSG(phase_ == TxnPhase::kRestartWait,
                  "spec replaced mid-attempt");
  CCSIM_CHECK(!spec.cohorts.empty());
  spec_ = std::move(spec);
  cohorts_.assign(spec_.cohorts.size(), CohortRuntime{});
}

void Transaction::BeginAttempt(sim::SimTime attempt_time) {
  ++attempt_;
  attempt_start_time_ = attempt_time;
  attempt_ts_ = Timestamp{attempt_time, id_};
  if (attempt_ == 0) initial_ts_ = attempt_ts_;
  phase_ = TxnPhase::kRunning;
  for (auto& c : cohorts_) c = CohortRuntime{};
  loads_sent = 0;
  ready_count = 0;
  votes_received = 0;
  yes_votes = 0;
  commit_acks = 0;
  abort_acks = 0;
  phase_timer = 0;
  decision_resends = 0;
  exec_start_time = attempt_time;
  prepare_start_time = attempt_time;
  audit.clear();
}

}  // namespace ccsim::txn
