#ifndef CCSIM_TXN_COORDINATOR_H_
#define CCSIM_TXN_COORDINATOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "ccsim/sim/process.h"
#include "ccsim/txn/cohort.h"
#include "ccsim/txn/services.h"
#include "ccsim/txn/transaction.h"
#include "ccsim/workload/spec.h"

namespace ccsim::txn {

/// Host-side transaction management: one coordinator per transaction
/// (Sec 2.1), implemented as an event-driven state machine over the phases
/// in transaction.h. Runs the centralized two-phase commit protocol used by
/// all four concurrency control algorithms, the abort protocol, and
/// restart-after-one-average-response-time (Sec 3.3).
///
/// Message protocol per attempt and cohort:
///   LOAD -> (cohort executes) -> READY        } parallel: all at once,
///   PREPARE -> VOTE                           } sequential: LOAD chains
///   COMMIT -> ACK   or   ABORT -> ACK
/// Abort requests (deadlock victim, wound, snoop, cohort self-abort) are
/// accepted in kRunning/kPreparing and ignored from kCommitting on - a
/// transaction in the second phase of its commit protocol can no longer be
/// aborted (the wound-wait rule of Sec 2.3).
class CoordinatorService {
 public:
  CoordinatorService(Services services, CohortService* cohorts);

  /// Admits a transaction; the returned completion fires when it commits.
  std::shared_ptr<sim::Completion<sim::Unit>> Submit(
      workload::TransactionSpec spec);

  // Message-driven entry points (invoked at the host on delivery).
  void OnCohortReady(const TxnPtr& txn, int attempt, int cohort_index);
  void OnVote(const TxnPtr& txn, int attempt, int cohort_index, cc::Vote vote);
  void OnCommitAck(const TxnPtr& txn, int attempt, int cohort_index);
  void OnAbortAck(const TxnPtr& txn, int attempt, int cohort_index);
  /// Abort raised by a CC manager somewhere in the machine.
  void OnAbortRequest(const TxnPtr& txn, int attempt, AbortReason reason);
  /// Abort raised by the transaction's own cohort (self-detected rejection).
  void OnCohortAborted(const TxnPtr& txn, int attempt, AbortReason reason);

  /// Crash notification from the fault layer: every live transaction with a
  /// cohort at `node` is drained there (locks released, coroutine silenced)
  /// and then aborted (before the commit point) or force-completed with
  /// presumed acknowledgements (after it).
  void OnNodeCrash(NodeId node);

  std::size_t live_transactions() const { return live_.size(); }
  std::uint64_t commits() const { return commits_; }
  std::uint64_t aborts() const { return aborts_; }
  std::uint64_t aborts_by_reason(AbortReason r) const {
    return aborts_by_reason_[static_cast<std::size_t>(r)];
  }
  /// 2PC protocol instances completed by presuming missing acknowledgements
  /// after exhausting decision resends (fault runs only).
  std::uint64_t forced_terminations() const { return forced_terminations_; }

  /// Coordinator process frames live in the simulation's arena (process.h).
  sim::Arena* process_arena() { return s_.sim->arena(); }

 private:
  void StartAttempt(const TxnPtr& txn, bool first_attempt);
  sim::Process StartAttemptProcess(TxnPtr txn, bool first_attempt);
  void SendLoad(const TxnPtr& txn, int cohort_index);
  void SendPrepares(const TxnPtr& txn);
  /// Sends COMMIT to every cohort whose ack is outstanding (first pass and
  /// decision resends); acks from down nodes are presumed.
  void SendCommits(const TxnPtr& txn);
  /// Same for ABORT, to the cohorts that were loaded this attempt.
  void SendAborts(const TxnPtr& txn);
  void BeginAbort(const TxnPtr& txn, AbortReason reason);
  void FinalizeCommit(const TxnPtr& txn);
  void ScheduleRestart(const TxnPtr& txn);

  // --- fault hardening (all no-ops / unreachable when faults are off) ----
  bool NodeUp(NodeId node) const { return !s_.node_up || s_.node_up(node); }
  /// (Re)arms the per-transaction phase timeout; no-op unless
  /// FaultParams::any() and msg_timeout_sec > 0. Every protocol progress
  /// event rearms it, so it only fires after a genuinely silent period.
  void ArmPhaseTimer(const TxnPtr& txn);
  void DisarmPhaseTimer(const TxnPtr& txn);
  void OnPhaseTimeout(const TxnPtr& txn, int attempt);
  /// Out-of-band termination after resend exhaustion: applies the decision
  /// directly at unresponsive-but-up cohorts (modeling a termination
  /// protocol) and presumes the missing acks.
  void ForceTerminate(const TxnPtr& txn);

  Services s_;
  CohortService* cohorts_;
  TxnId next_id_ = 1;
  std::unordered_map<TxnId, TxnPtr> live_;
  std::uint64_t commits_ = 0;
  std::uint64_t aborts_ = 0;
  std::uint64_t forced_terminations_ = 0;
  std::array<std::uint64_t, kNumAbortReasons> aborts_by_reason_{};
};

}  // namespace ccsim::txn

#endif  // CCSIM_TXN_COORDINATOR_H_
