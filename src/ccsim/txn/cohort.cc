#include "ccsim/txn/cohort.h"

#include <utility>

#include "ccsim/sim/check.h"
#include "ccsim/txn/coordinator.h"

namespace ccsim::txn {

using resource::CpuJobClass;
using resource::DiskOp;

CohortService::CohortService(Services services) : s_(std::move(services)) {}

AbortReason CohortService::SelfAbortReason() const {
  switch (s_.config->algorithm) {
    case config::CcAlgorithm::kWaitDie:
      return AbortReason::kDie;
    case config::CcAlgorithm::kTwoPhaseLockingTimeout:
      return AbortReason::kTimeout;
    default:
      return AbortReason::kTimestampOrder;  // BTO rejection
  }
}

void CohortService::HandleLoad(const TxnPtr& txn, int attempt,
                               int cohort_index) {
  if (txn->IsStaleAttempt(attempt)) return;
  if (txn->cohort(cohort_index).abort_flag) return;  // abort raced the load
  ++cohorts_started_;
  RunCohort(txn, attempt, cohort_index);
}

sim::Process CohortService::RunCohort(TxnPtr txn, int attempt,
                                      int cohort_index) {
  const workload::CohortSpec& spec = txn->cohort_spec(cohort_index);
  NodeId node = spec.node;
  resource::Cpu* cpu = s_.cpu_at(node);
  cc::CcManager* cc = s_.cc_at(node);
  const auto& cls =
      s_.config->workload.classes[static_cast<std::size_t>(
          txn->spec().class_index)];

  // Process initiation (InstPerStartup) at the cohort's node.
  co_await sim::Await(
      cpu->Execute(s_.config->costs.inst_per_startup, CpuJobClass::kUser));
  if (txn->IsStaleAttempt(attempt) || txn->cohort(cohort_index).abort_flag)
    co_return;

  cc->BeginCohort(txn, cohort_index);
  for (const workload::PageAccess& access : spec.accesses) {
    // Concurrency control request (InstPerCCReq of CPU, usually 0).
    if (s_.config->costs.inst_per_cc_req > 0) {
      co_await sim::Await(cpu->Execute(s_.config->costs.inst_per_cc_req,
                                       CpuJobClass::kUser));
      if (txn->IsStaleAttempt(attempt) || txn->cohort(cohort_index).abort_flag)
        co_return;
    }
    cc::AccessOutcome outcome = co_await sim::Await(cc->RequestAccess(
        txn, cohort_index, access.page,
        access.is_write ? AccessMode::kWrite : AccessMode::kRead));
    if (txn->IsStaleAttempt(attempt)) co_return;
    if (outcome == cc::AccessOutcome::kAborted) {
      if (!txn->cohort(cohort_index).abort_flag) {
        // Self-detected rejection (BTO out-of-order access, wait-die death,
        // or lock-wait timeout): inform the coordinator; cleanup happens
        // when its ABORT message returns.
        AbortReason reason = SelfAbortReason();
        s_.network->Send(node, kHostNode, net::MsgTag::kCohortAborted,
                         [this, txn, attempt, reason] {
                           coord_->OnCohortAborted(txn, attempt, reason);
                         });
      }
      co_return;
    }
    if (txn->cohort(cohort_index).abort_flag) co_return;

    if (!access.is_write) {
      // Synchronous read I/O; updated pages defer their I/O to after commit.
      co_await sim::Await(s_.disk_access(node, DiskOp::kRead));
      if (txn->IsStaleAttempt(attempt) || txn->cohort(cohort_index).abort_flag)
        co_return;
    }

    // Page processing: exponentially distributed around InstPerPage.
    double instructions = s_.node_rng(node)->Exponential(cls.inst_per_page);
    co_await sim::Await(cpu->Execute(instructions, CpuJobClass::kUser));
    if (txn->IsStaleAttempt(attempt) || txn->cohort(cohort_index).abort_flag)
      co_return;
  }

  txn->cohort(cohort_index).ready = true;
  s_.network->Send(node, kHostNode, net::MsgTag::kCohortReady,
                   [this, txn, attempt, cohort_index] {
                     coord_->OnCohortReady(txn, attempt, cohort_index);
                   });

  // Cohort-side presumed abort (fault runs only): READY is out, and until
  // the cohort votes it is not in-doubt, so if no PREPARE (or ABORT) shows
  // up within the timeout it may abort unilaterally instead of holding its
  // locks behind a lost message.
  const config::FaultParams& f = s_.config->faults;
  if (f.any() && f.msg_timeout_sec > 0.0) {
    // ccsim-analyze: coro-ok(CohortService lives in System beyond the calendar; txn is a shared_ptr kept alive by the capture and staleness is re-checked on fire)
    s_.sim->After(f.msg_timeout_sec, [this, txn, attempt, cohort_index, node] {
      if (txn->IsStaleAttempt(attempt)) return;
      CohortRuntime& c = txn->cohort(cohort_index);
      if (c.voted || c.abort_flag || c.decision_handled) return;  // progressed
      c.decision_handled = true;
      c.abort_flag = true;
      s_.cc_at(node)->AbortCohort(txn, cohort_index);
      s_.network->Send(node, kHostNode, net::MsgTag::kCohortAborted,
                       [this, txn, attempt] {
                         coord_->OnCohortAborted(txn, attempt,
                                                 AbortReason::kCommTimeout);
                       });
    });
  }
}

void CohortService::HandlePrepare(const TxnPtr& txn, int attempt,
                                  int cohort_index) {
  if (txn->IsStaleAttempt(attempt)) return;
  if (txn->cohort(cohort_index).abort_flag) return;  // abort raced; moot
  PrepareProcess(txn, attempt, cohort_index);
}

sim::Process CohortService::PrepareProcess(TxnPtr txn, int attempt,
                                           int cohort_index) {
  NodeId node = txn->cohort_spec(cohort_index).node;
  // Most managers vote immediately; 2PL-DW may block here while its write
  // locks upgrade.
  cc::Vote vote =
      co_await sim::Await(s_.cc_at(node)->Prepare(txn, cohort_index));
  if (txn->IsStaleAttempt(attempt) || txn->cohort(cohort_index).abort_flag)
    co_return;  // aborted while preparing; the vote is moot
  txn->cohort(cohort_index).voted = true;  // in-doubt from here on
  s_.network->Send(node, kHostNode, net::MsgTag::kVote,
                   [this, txn, attempt, cohort_index, vote] {
                     coord_->OnVote(txn, attempt, cohort_index, vote);
                   });
}

void CohortService::HandleCommit(const TxnPtr& txn, int attempt,
                                 int cohort_index) {
  // Fault-free this is never stale (it used to be a CCSIM_CHECK); with
  // decision resends a duplicate COMMIT is normal - apply once, re-ack
  // every time (the previous ack may have been the message that was lost).
  if (txn->IsStaleAttempt(attempt)) return;
  NodeId node = txn->cohort_spec(cohort_index).node;
  CohortRuntime& c = txn->cohort(cohort_index);
  if (!c.decision_handled) {
    c.decision_handled = true;
    s_.cc_at(node)->CommitCohort(txn, cohort_index);
    // Kick off the asynchronous write-back of every updated page.
    for (const workload::PageAccess& access :
         txn->cohort_spec(cohort_index).accesses) {
      if (access.is_write) {
        ++async_writes_;
        AsyncPageWrite(node);
      }
    }
  }
  s_.network->Send(node, kHostNode, net::MsgTag::kAck,
                   [this, txn, attempt, cohort_index] {
                     coord_->OnCommitAck(txn, attempt, cohort_index);
                   });
}

sim::Process CohortService::AsyncPageWrite(NodeId node) {
  // InstPerUpdate of CPU to initiate, then the transfer on a random disk
  // (write-priority queue). Nothing awaits this process.
  co_await sim::Await(s_.cpu_at(node)->Execute(
      s_.config->costs.inst_per_update, CpuJobClass::kUser));
  co_await sim::Await(s_.disk_access(node, DiskOp::kWrite));
}

void CohortService::HandleAbort(const TxnPtr& txn, int attempt,
                                int cohort_index) {
  if (txn->IsStaleAttempt(attempt)) return;
  NodeId node = txn->cohort_spec(cohort_index).node;
  CohortRuntime& c = txn->cohort(cohort_index);
  if (!c.decision_handled) {
    c.decision_handled = true;
    // Order matters: the flag silences the cohort coroutine before cleanup
    // wakes any request it has blocked in the CC manager.
    c.abort_flag = true;
    s_.cc_at(node)->AbortCohort(txn, cohort_index);
  }
  // Always (re-)acknowledge: under faults this may be a resent ABORT whose
  // first ack was dropped, or a duplicate after a unilateral cohort abort.
  s_.network->Send(node, kHostNode, net::MsgTag::kAck,
                   [this, txn, attempt, cohort_index] {
                     coord_->OnAbortAck(txn, attempt, cohort_index);
                   });
}

}  // namespace ccsim::txn
