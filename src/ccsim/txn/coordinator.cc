#include "ccsim/txn/coordinator.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "ccsim/sim/check.h"

namespace ccsim::txn {

using resource::CpuJobClass;

CoordinatorService::CoordinatorService(Services services,
                                       CohortService* cohorts)
    : s_(std::move(services)), cohorts_(cohorts) {
  cohorts_->set_coordinator(this);
}

std::shared_ptr<sim::Completion<sim::Unit>> CoordinatorService::Submit(
    workload::TransactionSpec spec) {
  auto done = sim::MakeCompletion<sim::Unit>(s_.sim);
  // Transaction state (object + control block) lives in the simulation's
  // arena: transactions are a fixed closed population (<= NumTerminals
  // live), created and destroyed once per terminal cycle.
  auto txn = std::allocate_shared<Transaction>(
      sim::ArenaAllocator<Transaction>(s_.sim->arena()), next_id_++,
      std::move(spec), s_.sim->Now(), done);
  live_.emplace(txn->id(), txn);
  StartAttempt(txn, /*first_attempt=*/true);
  return done;
}

void CoordinatorService::StartAttempt(const TxnPtr& txn, bool first_attempt) {
  txn->BeginAttempt(s_.sim->Now());
  StartAttemptProcess(txn, first_attempt);
  ArmPhaseTimer(txn);
}

sim::Process CoordinatorService::StartAttemptProcess(TxnPtr txn,
                                                     bool first_attempt) {
  // The coordinator process itself is started once per transaction
  // (InstPerStartup at the host); cohort processes restart on every attempt.
  int attempt = txn->attempt();
  if (first_attempt) {
    co_await sim::Await(s_.cpu_at(kHostNode)->Execute(
        s_.config->costs.inst_per_startup, CpuJobClass::kUser));
    if (txn->IsStaleAttempt(attempt) || txn->phase() != TxnPhase::kRunning)
      co_return;
  }
  txn->exec_start_time = s_.sim->Now();  // host startup queue/CPU is behind us
  if (txn->spec().exec_pattern == config::ExecPattern::kParallel) {
    for (int i = 0; i < txn->num_cohorts(); ++i) SendLoad(txn, i);
  } else {
    SendLoad(txn, 0);  // sequential: chain via OnCohortReady
  }
}

void CoordinatorService::SendLoad(const TxnPtr& txn, int cohort_index) {
  txn->cohort(cohort_index).load_sent = true;
  ++txn->loads_sent;
  int attempt = txn->attempt();
  NodeId node = txn->cohort_spec(cohort_index).node;
  s_.network->Send(kHostNode, node, net::MsgTag::kLoadCohort,
                   [this, txn, attempt, cohort_index] {
                     cohorts_->HandleLoad(txn, attempt, cohort_index);
                   });
}

void CoordinatorService::OnCohortReady(const TxnPtr& txn, int attempt,
                                       int cohort_index) {
  (void)cohort_index;
  if (txn->IsStaleAttempt(attempt) || txn->phase() != TxnPhase::kRunning)
    return;
  ++txn->ready_count;
  if (txn->ready_count < txn->num_cohorts()) {
    if (txn->spec().exec_pattern == config::ExecPattern::kSequential) {
      SendLoad(txn, txn->ready_count);  // next cohort in line
    }
    ArmPhaseTimer(txn);  // progress: restart the silence clock
    return;
  }
  // All cohorts done: enter the commit protocol with a globally unique
  // certification timestamp (used by OPT).
  txn->set_phase(TxnPhase::kPreparing);
  txn->prepare_start_time = s_.sim->Now();
  txn->set_commit_ts(Timestamp{s_.sim->Now(), txn->id()});
  SendPrepares(txn);
  ArmPhaseTimer(txn);
}

void CoordinatorService::SendPrepares(const TxnPtr& txn) {
  int attempt = txn->attempt();
  for (int i = 0; i < txn->num_cohorts(); ++i) {
    NodeId node = txn->cohort_spec(i).node;
    s_.network->Send(kHostNode, node, net::MsgTag::kPrepare,
                     [this, txn, attempt, i] {
                       cohorts_->HandlePrepare(txn, attempt, i);
                     });
  }
}

void CoordinatorService::OnVote(const TxnPtr& txn, int attempt,
                                int cohort_index, cc::Vote vote) {
  (void)cohort_index;
  if (txn->IsStaleAttempt(attempt) || txn->phase() != TxnPhase::kPreparing)
    return;
  ++txn->votes_received;
  if (vote == cc::Vote::kNo) {
    BeginAbort(txn, AbortReason::kCertification);
    return;
  }
  ++txn->yes_votes;
  if (txn->votes_received == txn->num_cohorts()) {
    txn->set_phase(TxnPhase::kCommitting);
    SendCommits(txn);
  } else {
    ArmPhaseTimer(txn);
  }
}

void CoordinatorService::SendCommits(const TxnPtr& txn) {
  int attempt = txn->attempt();
  for (int i = 0; i < txn->num_cohorts(); ++i) {
    if (txn->cohort(i).ack_counted) continue;  // resend pass: already done
    NodeId node = txn->cohort_spec(i).node;
    if (!NodeUp(node)) {
      // The cohort's node is down: presume its ack (the decision is durable
      // at the host; the node re-converges on recovery) so the protocol
      // terminates instead of waiting for a message that cannot arrive.
      txn->cohort(i).ack_counted = true;
      ++txn->commit_acks;
      continue;
    }
    s_.network->Send(kHostNode, node, net::MsgTag::kCommit,
                     [this, txn, attempt, i] {
                       cohorts_->HandleCommit(txn, attempt, i);
                     });
  }
  // Zero-cost messages deliver synchronously, so the acks (and the finalize)
  // may already have happened inside the loop above.
  if (txn->phase() != TxnPhase::kCommitting) return;
  if (txn->commit_acks == txn->num_cohorts()) {
    FinalizeCommit(txn);
    return;
  }
  ArmPhaseTimer(txn);
}

void CoordinatorService::OnCommitAck(const TxnPtr& txn, int attempt,
                                     int cohort_index) {
  // Fault-free, a stale or out-of-phase ack is impossible (this used to be a
  // CCSIM_CHECK); with resends and forced terminations a duplicate or late
  // ack is legitimate protocol traffic - ignore it.
  if (txn->IsStaleAttempt(attempt)) return;
  if (txn->phase() != TxnPhase::kCommitting) return;
  CohortRuntime& c = txn->cohort(cohort_index);
  if (c.ack_counted) return;
  c.ack_counted = true;
  ++txn->commit_acks;
  if (txn->commit_acks == txn->num_cohorts()) {
    FinalizeCommit(txn);
  } else {
    ArmPhaseTimer(txn);
  }
}

void CoordinatorService::FinalizeCommit(const TxnPtr& txn) {
  DisarmPhaseTimer(txn);
  txn->set_phase(TxnPhase::kCommitted);
  ++commits_;
  if (s_.on_commit) s_.on_commit(*txn);
  txn->done->Complete(sim::Unit{});
  live_.erase(txn->id());
}

void CoordinatorService::BeginAbort(const TxnPtr& txn, AbortReason reason) {
  CCSIM_CHECK(txn->phase() == TxnPhase::kRunning ||
              txn->phase() == TxnPhase::kPreparing);
  txn->set_phase(TxnPhase::kAborting);
  ++txn->total_aborts;
  ++aborts_;
  ++aborts_by_reason_[static_cast<std::size_t>(reason)];
  if (s_.on_abort) s_.on_abort(*txn, reason);
  if (txn->loads_sent == 0) {
    // No cohort was ever loaded this attempt; nothing to clean up remotely.
    DisarmPhaseTimer(txn);
    ScheduleRestart(txn);
    return;
  }
  SendAborts(txn);
}

void CoordinatorService::SendAborts(const TxnPtr& txn) {
  int attempt = txn->attempt();
  for (int i = 0; i < txn->num_cohorts(); ++i) {
    CohortRuntime& c = txn->cohort(i);
    if (!c.load_sent || c.ack_counted) continue;
    NodeId node = txn->cohort_spec(i).node;
    if (!NodeUp(node)) {
      // Down node: its cohort state was drained by the crash handling (or
      // vanishes with the node); presume the ack.
      c.ack_counted = true;
      ++txn->abort_acks;
      continue;
    }
    s_.network->Send(kHostNode, node, net::MsgTag::kAbort,
                     [this, txn, attempt, i] {
                       cohorts_->HandleAbort(txn, attempt, i);
                     });
  }
  // As in SendCommits: zero-cost messages may have completed the whole
  // abort round (and scheduled the restart) synchronously.
  if (txn->phase() != TxnPhase::kAborting) return;
  if (txn->abort_acks == txn->loads_sent) {
    DisarmPhaseTimer(txn);
    ScheduleRestart(txn);
    return;
  }
  ArmPhaseTimer(txn);
}

void CoordinatorService::OnAbortAck(const TxnPtr& txn, int attempt,
                                    int cohort_index) {
  // Duplicates and late acks are legitimate under faults; see OnCommitAck.
  if (txn->IsStaleAttempt(attempt)) return;
  if (txn->phase() != TxnPhase::kAborting) return;
  CohortRuntime& c = txn->cohort(cohort_index);
  if (c.ack_counted) return;
  c.ack_counted = true;
  ++txn->abort_acks;
  if (txn->abort_acks == txn->loads_sent) {
    DisarmPhaseTimer(txn);
    ScheduleRestart(txn);
  } else {
    ArmPhaseTimer(txn);
  }
}

void CoordinatorService::ScheduleRestart(const TxnPtr& txn) {
  txn->set_phase(TxnPhase::kRestartWait);
  double delay = s_.restart_delay ? s_.restart_delay() : 0.0;
  // ccsim-analyze: coro-ok(CoordinatorService lives in System beyond the calendar; txn is a shared_ptr kept alive by the capture)
  s_.sim->After(delay, [this, txn] {
    if (s_.regenerate_spec) {
      txn->ReplaceSpec(s_.regenerate_spec(txn->spec()));
    }
    StartAttempt(txn, /*first_attempt=*/false);
  });
}

void CoordinatorService::OnAbortRequest(const TxnPtr& txn, int attempt,
                                        AbortReason reason) {
  if (txn->IsStaleAttempt(attempt)) return;
  if (txn->phase() != TxnPhase::kRunning &&
      txn->phase() != TxnPhase::kPreparing) {
    return;  // committing (wound not fatal), already aborting, or done
  }
  BeginAbort(txn, reason);
}

void CoordinatorService::OnCohortAborted(const TxnPtr& txn, int attempt,
                                         AbortReason reason) {
  OnAbortRequest(txn, attempt, reason);
}

// --- fault hardening ------------------------------------------------------

void CoordinatorService::ArmPhaseTimer(const TxnPtr& txn) {
  const config::FaultParams& f = s_.config->faults;
  if (!f.any() || f.msg_timeout_sec <= 0.0) return;
  DisarmPhaseTimer(txn);
  int attempt = txn->attempt();
  // ccsim-analyze: coro-ok(CoordinatorService lives in System beyond the calendar; txn is a shared_ptr kept alive by the capture and the attempt guard rejects stale fires)
  txn->phase_timer = s_.sim->After(f.msg_timeout_sec, [this, txn, attempt] {
    txn->phase_timer = 0;
    OnPhaseTimeout(txn, attempt);
  });
}

void CoordinatorService::DisarmPhaseTimer(const TxnPtr& txn) {
  if (txn->phase_timer != 0) {
    s_.sim->Cancel(txn->phase_timer);
    txn->phase_timer = 0;
  }
}

void CoordinatorService::OnPhaseTimeout(const TxnPtr& txn, int attempt) {
  if (txn->IsStaleAttempt(attempt)) return;
  const config::FaultParams& f = s_.config->faults;
  switch (txn->phase()) {
    case TxnPhase::kRunning:
    case TxnPhase::kPreparing:
      // Presumed abort: no reply for a whole timeout window before the
      // commit point means a participant or its messages are gone.
      BeginAbort(txn, AbortReason::kCommTimeout);
      break;
    case TxnPhase::kCommitting:
      if (txn->decision_resends < f.max_decision_resends) {
        ++txn->decision_resends;
        SendCommits(txn);  // resends to un-acked cohorts only; rearms
      } else {
        ForceTerminate(txn);
      }
      break;
    case TxnPhase::kAborting:
      if (txn->decision_resends < f.max_decision_resends) {
        ++txn->decision_resends;
        SendAborts(txn);
      } else {
        ForceTerminate(txn);
      }
      break;
    case TxnPhase::kRestartWait:
    case TxnPhase::kCommitted:
      break;  // already resolved; stray timer
  }
}

void CoordinatorService::ForceTerminate(const TxnPtr& txn) {
  ++forced_terminations_;
  DisarmPhaseTimer(txn);
  bool committing = txn->phase() == TxnPhase::kCommitting;
  for (int i = 0; i < txn->num_cohorts(); ++i) {
    CohortRuntime& c = txn->cohort(i);
    if (c.ack_counted) continue;
    if (!committing && !c.load_sent) continue;
    NodeId node = txn->cohort_spec(i).node;
    if (!c.decision_handled && NodeUp(node)) {
      // The cohort is reachable but its acks never made it through the
      // configured resends; apply the decision out of band (modeling the
      // termination protocol a real system would run) so no lock is held
      // forever by a decided transaction.
      c.decision_handled = true;
      if (committing) {
        s_.cc_at(node)->CommitCohort(txn, i);
      } else {
        c.abort_flag = true;
        s_.cc_at(node)->AbortCohort(txn, i);
      }
    }
    c.ack_counted = true;
    if (committing) {
      ++txn->commit_acks;
    } else {
      ++txn->abort_acks;
    }
  }
  if (committing) {
    FinalizeCommit(txn);
  } else {
    ScheduleRestart(txn);
  }
}

void CoordinatorService::OnNodeCrash(NodeId node) {
  // Snapshot and sort the victims: live_ is an unordered map, and the order
  // in which transactions are drained is observable (CC wakeups, counters).
  std::vector<TxnPtr> victims;
  victims.reserve(live_.size());
  for (const auto& entry : live_) {  // ccsim-lint: unordered-iter-ok(sorted below)
    const TxnPtr& txn = entry.second;
    if (txn->phase() == TxnPhase::kRestartWait) continue;  // nothing on nodes
    for (int i = 0; i < txn->num_cohorts(); ++i) {
      if (txn->cohort_spec(i).node == node) {
        victims.push_back(txn);
        break;
      }
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const TxnPtr& a, const TxnPtr& b) { return a->id() < b->id(); });

  for (const TxnPtr& txn : victims) {
    // Drain the crashed node's share of the transaction: silence the cohort
    // coroutine and release its CC state (locks, queue entries), waking any
    // waiters. In-flight work at the node is discarded with it.
    for (int i = 0; i < txn->num_cohorts(); ++i) {
      if (txn->cohort_spec(i).node != node) continue;
      CohortRuntime& c = txn->cohort(i);
      if (c.load_sent && !c.decision_handled) {
        c.decision_handled = true;
        c.abort_flag = true;
        s_.cc_at(node)->AbortCohort(txn, i);
      }
    }
    switch (txn->phase()) {
      case TxnPhase::kRunning:
      case TxnPhase::kPreparing:
        BeginAbort(txn, AbortReason::kNodeCrash);
        break;
      case TxnPhase::kCommitting: {
        // Past the commit point the decision stands; the crashed cohort's
        // ack is presumed (recovery re-converges it).
        for (int i = 0; i < txn->num_cohorts(); ++i) {
          CohortRuntime& c = txn->cohort(i);
          if (txn->cohort_spec(i).node != node || c.ack_counted) continue;
          c.ack_counted = true;
          ++txn->commit_acks;
        }
        if (txn->commit_acks == txn->num_cohorts()) FinalizeCommit(txn);
        break;
      }
      case TxnPhase::kAborting: {
        for (int i = 0; i < txn->num_cohorts(); ++i) {
          CohortRuntime& c = txn->cohort(i);
          if (txn->cohort_spec(i).node != node || !c.load_sent ||
              c.ack_counted) {
            continue;
          }
          c.ack_counted = true;
          ++txn->abort_acks;
        }
        if (txn->abort_acks == txn->loads_sent) {
          DisarmPhaseTimer(txn);
          ScheduleRestart(txn);
        }
        break;
      }
      case TxnPhase::kRestartWait:
      case TxnPhase::kCommitted:
        break;
    }
  }
}

}  // namespace ccsim::txn
