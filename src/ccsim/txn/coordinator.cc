#include "ccsim/txn/coordinator.h"

#include <utility>

#include "ccsim/sim/check.h"

namespace ccsim::txn {

using resource::CpuJobClass;

CoordinatorService::CoordinatorService(Services services,
                                       CohortService* cohorts)
    : s_(std::move(services)), cohorts_(cohorts) {
  cohorts_->set_coordinator(this);
}

std::shared_ptr<sim::Completion<sim::Unit>> CoordinatorService::Submit(
    workload::TransactionSpec spec) {
  auto done = sim::MakeCompletion<sim::Unit>(s_.sim);
  auto txn = std::make_shared<Transaction>(next_id_++, std::move(spec),
                                           s_.sim->Now(), done);
  live_.emplace(txn->id(), txn);
  StartAttempt(txn, /*first_attempt=*/true);
  return done;
}

void CoordinatorService::StartAttempt(const TxnPtr& txn, bool first_attempt) {
  txn->BeginAttempt(s_.sim->Now());
  StartAttemptProcess(txn, first_attempt);
}

sim::Process CoordinatorService::StartAttemptProcess(TxnPtr txn,
                                                     bool first_attempt) {
  // The coordinator process itself is started once per transaction
  // (InstPerStartup at the host); cohort processes restart on every attempt.
  int attempt = txn->attempt();
  if (first_attempt) {
    co_await sim::Await(s_.cpu_at(kHostNode)->Execute(
        s_.config->costs.inst_per_startup, CpuJobClass::kUser));
    if (txn->IsStaleAttempt(attempt) || txn->phase() != TxnPhase::kRunning)
      co_return;
  }
  if (txn->spec().exec_pattern == config::ExecPattern::kParallel) {
    for (int i = 0; i < txn->num_cohorts(); ++i) SendLoad(txn, i);
  } else {
    SendLoad(txn, 0);  // sequential: chain via OnCohortReady
  }
}

void CoordinatorService::SendLoad(const TxnPtr& txn, int cohort_index) {
  txn->cohort(cohort_index).load_sent = true;
  ++txn->loads_sent;
  int attempt = txn->attempt();
  NodeId node = txn->cohort_spec(cohort_index).node;
  s_.network->Send(kHostNode, node, net::MsgTag::kLoadCohort,
                   [this, txn, attempt, cohort_index] {
                     cohorts_->HandleLoad(txn, attempt, cohort_index);
                   });
}

void CoordinatorService::OnCohortReady(const TxnPtr& txn, int attempt,
                                       int cohort_index) {
  (void)cohort_index;
  if (txn->IsStaleAttempt(attempt) || txn->phase() != TxnPhase::kRunning)
    return;
  ++txn->ready_count;
  if (txn->ready_count < txn->num_cohorts()) {
    if (txn->spec().exec_pattern == config::ExecPattern::kSequential) {
      SendLoad(txn, txn->ready_count);  // next cohort in line
    }
    return;
  }
  // All cohorts done: enter the commit protocol with a globally unique
  // certification timestamp (used by OPT).
  txn->set_phase(TxnPhase::kPreparing);
  txn->set_commit_ts(Timestamp{s_.sim->Now(), txn->id()});
  SendPrepares(txn);
}

void CoordinatorService::SendPrepares(const TxnPtr& txn) {
  int attempt = txn->attempt();
  for (int i = 0; i < txn->num_cohorts(); ++i) {
    NodeId node = txn->cohort_spec(i).node;
    s_.network->Send(kHostNode, node, net::MsgTag::kPrepare,
                     [this, txn, attempt, i] {
                       cohorts_->HandlePrepare(txn, attempt, i);
                     });
  }
}

void CoordinatorService::OnVote(const TxnPtr& txn, int attempt,
                                int cohort_index, cc::Vote vote) {
  (void)cohort_index;
  if (txn->IsStaleAttempt(attempt) || txn->phase() != TxnPhase::kPreparing)
    return;
  ++txn->votes_received;
  if (vote == cc::Vote::kNo) {
    BeginAbort(txn, AbortReason::kCertification);
    return;
  }
  ++txn->yes_votes;
  if (txn->votes_received == txn->num_cohorts()) {
    txn->set_phase(TxnPhase::kCommitting);
    SendCommits(txn);
  }
}

void CoordinatorService::SendCommits(const TxnPtr& txn) {
  int attempt = txn->attempt();
  for (int i = 0; i < txn->num_cohorts(); ++i) {
    NodeId node = txn->cohort_spec(i).node;
    s_.network->Send(kHostNode, node, net::MsgTag::kCommit,
                     [this, txn, attempt, i] {
                       cohorts_->HandleCommit(txn, attempt, i);
                     });
  }
}

void CoordinatorService::OnCommitAck(const TxnPtr& txn, int attempt,
                                     int cohort_index) {
  (void)cohort_index;
  CCSIM_CHECK(!txn->IsStaleAttempt(attempt));
  CCSIM_CHECK(txn->phase() == TxnPhase::kCommitting);
  ++txn->commit_acks;
  if (txn->commit_acks == txn->num_cohorts()) FinalizeCommit(txn);
}

void CoordinatorService::FinalizeCommit(const TxnPtr& txn) {
  txn->set_phase(TxnPhase::kCommitted);
  ++commits_;
  if (s_.on_commit) s_.on_commit(*txn);
  txn->done->Complete(sim::Unit{});
  live_.erase(txn->id());
}

void CoordinatorService::BeginAbort(const TxnPtr& txn, AbortReason reason) {
  CCSIM_CHECK(txn->phase() == TxnPhase::kRunning ||
              txn->phase() == TxnPhase::kPreparing);
  txn->set_phase(TxnPhase::kAborting);
  ++txn->total_aborts;
  ++aborts_;
  ++aborts_by_reason_[static_cast<std::size_t>(reason)];
  if (s_.on_abort) s_.on_abort(*txn, reason);
  if (txn->loads_sent == 0) {
    // No cohort was ever loaded this attempt; nothing to clean up remotely.
    ScheduleRestart(txn);
    return;
  }
  int attempt = txn->attempt();
  for (int i = 0; i < txn->num_cohorts(); ++i) {
    if (!txn->cohort(i).load_sent) continue;
    NodeId node = txn->cohort_spec(i).node;
    s_.network->Send(kHostNode, node, net::MsgTag::kAbort,
                     [this, txn, attempt, i] {
                       cohorts_->HandleAbort(txn, attempt, i);
                     });
  }
}

void CoordinatorService::OnAbortAck(const TxnPtr& txn, int attempt,
                                    int cohort_index) {
  (void)cohort_index;
  if (txn->IsStaleAttempt(attempt)) return;
  CCSIM_CHECK(txn->phase() == TxnPhase::kAborting);
  ++txn->abort_acks;
  if (txn->abort_acks == txn->loads_sent) ScheduleRestart(txn);
}

void CoordinatorService::ScheduleRestart(const TxnPtr& txn) {
  txn->set_phase(TxnPhase::kRestartWait);
  double delay = s_.restart_delay ? s_.restart_delay() : 0.0;
  s_.sim->After(delay, [this, txn] {
    if (s_.regenerate_spec) {
      txn->ReplaceSpec(s_.regenerate_spec(txn->spec()));
    }
    StartAttempt(txn, /*first_attempt=*/false);
  });
}

void CoordinatorService::OnAbortRequest(const TxnPtr& txn, int attempt,
                                        AbortReason reason) {
  if (txn->IsStaleAttempt(attempt)) return;
  if (txn->phase() != TxnPhase::kRunning &&
      txn->phase() != TxnPhase::kPreparing) {
    return;  // committing (wound not fatal), already aborting, or done
  }
  BeginAbort(txn, reason);
}

void CoordinatorService::OnCohortAborted(const TxnPtr& txn, int attempt,
                                         AbortReason reason) {
  OnAbortRequest(txn, attempt, reason);
}

}  // namespace ccsim::txn
