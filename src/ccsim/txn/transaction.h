#ifndef CCSIM_TXN_TRANSACTION_H_
#define CCSIM_TXN_TRANSACTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ccsim/common/types.h"
#include "ccsim/sim/completion.h"
#include "ccsim/sim/time.h"
#include "ccsim/workload/spec.h"

namespace ccsim::txn {

/// Lifecycle of a transaction attempt, as seen by the coordinator.
///
///   kRunning ----(all cohorts READY)----> kPreparing
///   kPreparing --(all votes yes)--------> kCommitting --(all acks)--> kCommitted
///   kRunning/kPreparing --(abort)-------> kAborting --(all acks)--> kRestartWait
///   kRestartWait --(restart delay)------> kRunning (next attempt)
///
/// Abort requests that arrive in kCommitting or later are ignored: the
/// transaction is in the second phase of its commit protocol, so e.g. a
/// wound-wait "wound" is no longer fatal (Sec 2.3).
enum class TxnPhase {
  kRunning,
  kPreparing,
  kCommitting,
  kAborting,
  kRestartWait,
  kCommitted,
};

const char* ToString(TxnPhase phase);

/// Why an attempt was aborted (metrics/diagnostics).
enum class AbortReason {
  kLocalDeadlock,
  kGlobalDeadlock,
  kWound,
  kTimestampOrder,   // BTO out-of-order access
  kCertification,    // OPT validation failure
  kDie,              // wait-die: younger requester dies
  kTimeout,          // timeout-based blocking expired
  kNodeCrash,        // a node holding one of the cohorts crashed
  kCommTimeout,      // a 2PC phase timed out waiting for replies
};

/// Number of AbortReason values (sizing per-reason counters).
inline constexpr int kNumAbortReasons = 9;

const char* ToString(AbortReason reason);

/// Per-attempt, per-cohort runtime flags. The 2PC dedupe flags exist for the
/// fault paths: with decision resends and crash draining, COMMIT/ABORT can
/// reach a cohort more than once and acks can be presumed by the
/// coordinator; each transition must apply exactly once. Fault-free runs
/// never set them twice, so the flags are inert there.
struct CohortRuntime {
  bool load_sent = false;   // coordinator sent LOAD this attempt
  bool ready = false;       // cohort reported READY this attempt
  bool abort_flag = false;  // ABORT processed at the cohort's node
  bool voted = false;           // cohort's PREPARE vote left the node
  bool decision_handled = false;  // cohort applied COMMIT/ABORT (dedupe)
  bool ack_counted = false;     // coordinator counted this cohort's ack
                                // (received or presumed)
};

/// Audit records (enabled by RunParams::enable_audit): which version each
/// read observed and which version each write installed, against the
/// engine's shadow version store. Feeds the serializability checker.
struct AuditRecord {
  PageRef page;
  std::uint64_t version = 0;
  bool is_write = false;
  bool installed = true;  // false for Thomas-write-rule skipped writes
};

/// All coordinator- and cohort-visible state of one transaction. Owned by
/// shared_ptr: message closures, cohort coroutines, and CC wait queues all
/// hold references; the object outlives every in-flight activity.
class Transaction {
 public:
  Transaction(TxnId id, workload::TransactionSpec spec,
              sim::SimTime origin_time,
              std::shared_ptr<sim::Completion<sim::Unit>> done);

  /// Resets per-attempt state and stamps a fresh attempt timestamp.
  /// `attempt_time` is the simulated time the attempt starts.
  void BeginAttempt(sim::SimTime attempt_time);

  /// Replaces the access set before a restart ("fake restarts", Sec 3.3
  /// variant). Only legal between attempts (kRestartWait).
  void ReplaceSpec(workload::TransactionSpec spec);

  /// True when `attempt` refers to a finished (superseded) attempt; stale
  /// messages and coroutine wakeups check this and bow out.
  bool IsStaleAttempt(int attempt) const { return attempt != attempt_; }

  TxnId id() const { return id_; }
  int attempt() const { return attempt_; }
  sim::SimTime origin_time() const { return origin_time_; }
  sim::SimTime attempt_start_time() const { return attempt_start_time_; }

  /// Timestamp from the transaction's *initial* startup; retained across
  /// restarts. Used by WW wounds and 2PL deadlock victim selection ("most
  /// recent initial startup time").
  Timestamp initial_ts() const { return initial_ts_; }

  /// Fresh per attempt; used by BTO so restarted transactions can make
  /// progress against advanced read/write timestamps.
  Timestamp attempt_ts() const { return attempt_ts_; }

  /// OPT's globally unique certification timestamp, assigned when the
  /// coordinator starts the commit protocol.
  Timestamp commit_ts() const { return commit_ts_; }
  void set_commit_ts(Timestamp ts) { commit_ts_ = ts; }

  TxnPhase phase() const { return phase_; }
  /// Advances the attempt's 2PC state machine. Audit builds (CCSIM_AUDIT)
  /// verify the transition is one of the legal arcs documented on TxnPhase;
  /// kRestartWait -> kRunning goes through BeginAttempt(), never here.
  void set_phase(TxnPhase phase);

  const workload::TransactionSpec& spec() const { return spec_; }
  int num_cohorts() const { return static_cast<int>(spec_.cohorts.size()); }
  const workload::CohortSpec& cohort_spec(int i) const {
    return spec_.cohorts[static_cast<std::size_t>(i)];
  }
  CohortRuntime& cohort(int i) { return cohorts_[static_cast<std::size_t>(i)]; }
  const CohortRuntime& cohort(int i) const {
    return cohorts_[static_cast<std::size_t>(i)];
  }

  // --- 2PC bookkeeping (coordinator side, per attempt) -------------------
  int loads_sent = 0;
  int ready_count = 0;
  int votes_received = 0;
  int yes_votes = 0;
  int commit_acks = 0;
  int abort_acks = 0;

  /// Total aborted attempts over the transaction's lifetime.
  int total_aborts = 0;

  // --- fault hardening (coordinator side, per attempt) -------------------
  /// Pending 2PC phase-timeout event (sim calendar id; 0 = none armed).
  /// Armed only when FaultParams::any() and msg_timeout_sec > 0.
  std::uint64_t phase_timer = 0;
  /// COMMIT/ABORT decision resends performed so far this attempt.
  int decision_resends = 0;

  // --- per-phase latency stamps (per attempt) ----------------------------
  /// When the attempt's cohorts started executing (after the host startup
  /// queue/CPU on the first attempt; equals attempt_start_time on
  /// restarts). Stamped by the coordinator just before LOADs go out.
  sim::SimTime exec_start_time = 0.0;
  /// When the attempt entered kPreparing (all cohorts READY); the commit
  /// protocol (prepare votes + commit acks) runs from here to completion.
  sim::SimTime prepare_start_time = 0.0;

  /// Completion handed back to the terminal; fulfilled on commit.
  std::shared_ptr<sim::Completion<sim::Unit>> done;

  /// Audit log of the *current* attempt (discarded on abort, harvested on
  /// commit).
  std::vector<AuditRecord> audit;

 private:
  TxnId id_;
  int attempt_ = -1;
  sim::SimTime origin_time_;
  sim::SimTime attempt_start_time_ = 0.0;
  Timestamp initial_ts_{};
  Timestamp attempt_ts_{};
  Timestamp commit_ts_{};
  TxnPhase phase_ = TxnPhase::kRunning;
  workload::TransactionSpec spec_;
  std::vector<CohortRuntime> cohorts_;
};

using TxnPtr = std::shared_ptr<Transaction>;

}  // namespace ccsim::txn

#endif  // CCSIM_TXN_TRANSACTION_H_
