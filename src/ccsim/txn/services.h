#ifndef CCSIM_TXN_SERVICES_H_
#define CCSIM_TXN_SERVICES_H_

#include <functional>
#include <memory>

#include "ccsim/cc/cc_manager.h"
#include "ccsim/common/types.h"
#include "ccsim/config/params.h"
#include "ccsim/net/network.h"
#include "ccsim/resource/cpu.h"
#include "ccsim/resource/disk.h"
#include "ccsim/sim/completion.h"
#include "ccsim/sim/random.h"
#include "ccsim/sim/simulation.h"
#include "ccsim/txn/transaction.h"

namespace ccsim::txn {

/// Everything the transaction-management layer (coordinator + cohorts) needs
/// from the surrounding engine, expressed as narrow accessors so the layer
/// stays independently testable against a miniature engine.
struct Services {
  sim::Simulation* sim = nullptr;
  net::Network* network = nullptr;
  const config::SystemConfig* config = nullptr;

  /// Concurrency control manager at a node.
  std::function<cc::CcManager*(NodeId)> cc_at;
  /// CPU of a node.
  std::function<resource::Cpu*(NodeId)> cpu_at;
  /// Enqueue a disk access on a random disk of a node.
  std::function<std::shared_ptr<sim::Completion<sim::Unit>>(
      NodeId, resource::DiskOp)>
      disk_access;
  /// Per-node variate stream (page-processing instruction counts).
  std::function<sim::RandomStream*(NodeId)> node_rng;

  /// Whether a node is currently up. Null = no fault layer, always up.
  /// The protocol uses it to presume acknowledgements from crashed nodes
  /// instead of waiting for messages that can never arrive.
  std::function<bool(NodeId)> node_up;

  /// Metrics callbacks (coordinator side, fired at the host).
  std::function<void(Transaction&)> on_commit;
  std::function<void(Transaction&, AbortReason)> on_abort;
  /// Current restart delay: one average observed response time (Sec 3.3).
  std::function<double()> restart_delay;
  /// When set (WorkloadParams::fake_restarts), draws a fresh access set for
  /// a restarting transaction (same terminal, class, and relation).
  std::function<workload::TransactionSpec(const workload::TransactionSpec&)>
      regenerate_spec;
};

}  // namespace ccsim::txn

#endif  // CCSIM_TXN_SERVICES_H_
