#ifndef CCSIM_TXN_COHORT_H_
#define CCSIM_TXN_COHORT_H_

#include <cstdint>

#include "ccsim/sim/process.h"
#include "ccsim/txn/services.h"
#include "ccsim/txn/transaction.h"

namespace ccsim::txn {

class CoordinatorService;

/// Node-side transaction management: runs cohort processes and handles the
/// coordinator's LOAD / PREPARE / COMMIT / ABORT messages at the cohort's
/// node (Secs 2.1, 3.3).
///
/// A cohort process executes its access list: per access, a concurrency
/// control request (which may block or return kAborted), then - for plain
/// reads - a synchronous disk read, then an exponentially distributed amount
/// of page-processing CPU. Updated pages skip the synchronous I/O; their
/// disk writes happen asynchronously after commit (InstPerUpdate CPU to
/// initiate, write-priority disk queue).
///
/// Abort handling is cooperative: the ABORT message handler marks the
/// cohort's abort flag and cleans up CC state (waking a blocked request with
/// kAborted); the cohort coroutine checks the flag and its attempt number
/// after every await and bows out silently. ABORT acknowledgements come from
/// the message handler, never from the coroutine.
class CohortService {
 public:
  explicit CohortService(Services services);

  void set_coordinator(CoordinatorService* coord) { coord_ = coord; }

  // Message handlers (run at the cohort's node on message delivery).
  void HandleLoad(const TxnPtr& txn, int attempt, int cohort_index);
  void HandlePrepare(const TxnPtr& txn, int attempt, int cohort_index);
  void HandleCommit(const TxnPtr& txn, int attempt, int cohort_index);
  void HandleAbort(const TxnPtr& txn, int attempt, int cohort_index);

  std::uint64_t cohorts_started() const { return cohorts_started_; }
  std::uint64_t async_writes_issued() const { return async_writes_; }

  /// Cohort process frames live in the simulation's arena (process.h).
  sim::Arena* process_arena() { return s_.sim->arena(); }

 private:
  sim::Process RunCohort(TxnPtr txn, int attempt, int cohort_index);
  sim::Process PrepareProcess(TxnPtr txn, int attempt, int cohort_index);
  sim::Process AsyncPageWrite(NodeId node);
  /// Abort reason reported when a cohort's own access is rejected by the CC
  /// manager (depends on the algorithm in use).
  AbortReason SelfAbortReason() const;

  Services s_;
  CoordinatorService* coord_ = nullptr;
  std::uint64_t cohorts_started_ = 0;
  std::uint64_t async_writes_ = 0;
};

}  // namespace ccsim::txn

#endif  // CCSIM_TXN_COHORT_H_
