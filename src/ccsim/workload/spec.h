#ifndef CCSIM_WORKLOAD_SPEC_H_
#define CCSIM_WORKLOAD_SPEC_H_

#include <cstddef>
#include <vector>

#include "ccsim/common/types.h"
#include "ccsim/config/params.h"

namespace ccsim::workload {

/// One page access a cohort will perform, in execution order.
struct PageAccess {
  PageRef page;
  bool is_write = false;  // read that will also be updated (WriteProb)
};

/// The work of one cohort: all accesses target data local to `node`.
struct CohortSpec {
  NodeId node = 0;
  std::vector<PageAccess> accesses;

  std::size_t num_writes() const {
    std::size_t n = 0;
    for (const auto& a : accesses) n += a.is_write ? 1 : 0;
    return n;
  }
};

/// A complete transaction as drawn by the source. Restarted attempts re-run
/// the same spec (same pages, same update marks), per [Agra87a].
struct TransactionSpec {
  int terminal = 0;
  int class_index = 0;
  int relation = 0;
  config::ExecPattern exec_pattern = config::ExecPattern::kParallel;
  std::vector<CohortSpec> cohorts;

  std::size_t total_reads() const {
    std::size_t n = 0;
    for (const auto& c : cohorts) n += c.accesses.size();
    return n;
  }
  std::size_t total_writes() const {
    std::size_t n = 0;
    for (const auto& c : cohorts) n += c.num_writes();
    return n;
  }
};

}  // namespace ccsim::workload

#endif  // CCSIM_WORKLOAD_SPEC_H_
