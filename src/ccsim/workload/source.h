#ifndef CCSIM_WORKLOAD_SOURCE_H_
#define CCSIM_WORKLOAD_SOURCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ccsim/config/params.h"
#include "ccsim/db/catalog.h"
#include "ccsim/sim/completion.h"
#include "ccsim/sim/process.h"
#include "ccsim/sim/random.h"
#include "ccsim/sim/simulation.h"
#include "ccsim/stats/time_weighted.h"
#include "ccsim/workload/access_generator.h"
#include "ccsim/workload/spec.h"

namespace ccsim::workload {

/// The source component of the host node (Sec 3.2): a closed population of
/// terminals. Each terminal thinks for an exponential period, submits a
/// transaction, and waits for it to complete successfully before thinking
/// again.
class Source {
 public:
  /// Called to hand a transaction to the transaction manager. Returns a
  /// completion that fires when the transaction has committed (after any
  /// number of abort/restart cycles).
  using SubmitFn = std::function<std::shared_ptr<sim::Completion<sim::Unit>>(
      TransactionSpec spec)>;

  Source(sim::Simulation* sim, const config::SystemConfig* config,
         const db::Catalog* catalog, SubmitFn submit);

  /// Spawns one process per terminal. Call once, before running.
  void Start();

  std::uint64_t transactions_submitted() const { return submitted_; }

  /// Time-weighted mean number of terminals with a transaction in the
  /// system (submitted, not yet committed) — the measured multiprogramming
  /// level, as opposed to the configured NumTerminals. Purely observational:
  /// the tracker samples sim_->Now() at submit/complete transitions that
  /// already exist, so it schedules no events and cannot perturb
  /// determinism.
  double mean_active_txns(sim::SimTime now) const {
    return active_txns_.Mean(now);
  }

  /// Warmup deletion: restart the active-txn integration at `now`.
  void ResetStats(sim::SimTime now) { active_txns_.Reset(now); }

  const AccessGenerator& generator() const { return generator_; }

  /// Terminal process frames live in the simulation's arena (process.h).
  sim::Arena* process_arena() { return sim_->arena(); }

 private:
  sim::Process TerminalProcess(int terminal);

  sim::Simulation* sim_;
  const config::SystemConfig* config_;
  AccessGenerator generator_;
  SubmitFn submit_;
  std::vector<std::unique_ptr<sim::RandomStream>> terminal_rngs_;
  std::uint64_t submitted_ = 0;
  stats::TimeWeighted active_txns_;
  bool started_ = false;
};

}  // namespace ccsim::workload

#endif  // CCSIM_WORKLOAD_SOURCE_H_
