#include "ccsim/workload/access_generator.h"

#include <algorithm>

#include "ccsim/common/small_vec.h"
#include "ccsim/sim/check.h"

namespace ccsim::workload {

AccessGenerator::AccessGenerator(const config::WorkloadParams* workload,
                                 const db::Catalog* catalog)
    : workload_(workload), catalog_(catalog) {}

int AccessGenerator::ClassOfTerminal(int terminal) const {
  CCSIM_CHECK(terminal >= 0 && terminal < workload_->num_terminals);
  // Classes occupy contiguous blocks of terminals proportional to ClassFrac.
  double cumulative = 0.0;
  double position = (terminal + 0.5) / workload_->num_terminals;
  for (std::size_t i = 0; i < workload_->classes.size(); ++i) {
    cumulative += workload_->classes[i].fraction;
    if (position < cumulative) return static_cast<int>(i);
  }
  return static_cast<int>(workload_->classes.size()) - 1;
}

int AccessGenerator::GroupRelationOfTerminal(int terminal) const {
  // Terminals are divided into equal groups, one per relation (Sec 4.1:
  // "128 terminals ... divided into groups of 16, with terminals in each
  // group generating transactions that access a common relation").
  int group_size = workload_->num_terminals / catalog_->num_relations();
  CCSIM_CHECK(group_size >= 1);
  return std::min(terminal / group_size, catalog_->num_relations() - 1);
}

int AccessGenerator::DrawPageCount(const config::TransactionClassParams& cls,
                                   sim::RandomStream& rng) const {
  auto avg = cls.pages_per_partition_avg;
  std::int64_t lo = static_cast<std::int64_t>(avg / 2.0);
  std::int64_t hi = cls.spread == config::PageCountSpread::kSymmetric
                        ? static_cast<std::int64_t>(3.0 * avg / 2.0)
                        : static_cast<std::int64_t>(2.0 * avg);
  return static_cast<int>(rng.UniformInt(lo, hi));
}

TransactionSpec AccessGenerator::Generate(int terminal,
                                          sim::RandomStream& rng) const {
  TransactionSpec spec;
  spec.terminal = terminal;
  spec.class_index = ClassOfTerminal(terminal);
  const auto& cls = workload_->classes[static_cast<std::size_t>(spec.class_index)];
  spec.exec_pattern = cls.exec_pattern;

  if (cls.relation_choice == config::RelationChoice::kByTerminalGroup) {
    spec.relation = GroupRelationOfTerminal(terminal);
  } else {
    spec.relation = static_cast<int>(
        rng.UniformInt(0, catalog_->num_relations() - 1));
  }

  // One cohort per node holding a partition of the relation, in node order;
  // within a cohort, partitions in partition order, pages in sampled order.
  // The catalog's precomputed per-node file lists visit the exact (node,
  // file) sequence the per-call filtering used to, so the RNG draw order -
  // and with it every determinism golden - is unchanged.
  const std::vector<NodeId>& nodes = catalog_->NodesOfRelation(spec.relation);
  spec.cohorts.reserve(nodes.size());
  for (std::size_t node_index = 0; node_index < nodes.size(); ++node_index) {
    CohortSpec cohort;
    cohort.node = nodes[node_index];
    for (FileId f :
         catalog_->FilesOfRelationAt(spec.relation, node_index)) {
      int count = DrawPageCount(cls, rng);
      // Distinct pages via rejection; counts are small relative to file size
      // (validated in SystemConfig::Validate), so a linear membership scan
      // over an inline vector beats a heap-allocated hash set. Accept and
      // reject the same draws the set did.
      common::SmallVec<int, 16> chosen;
      while (static_cast<int>(chosen.size()) < count) {
        int page = static_cast<int>(
            rng.UniformInt(0, catalog_->pages_per_file() - 1));
        if (std::find(chosen.begin(), chosen.end(), page) != chosen.end()) {
          continue;
        }
        chosen.push_back(page);
        PageAccess access;
        access.page = PageRef{f, page};
        access.is_write = rng.Bernoulli(cls.write_prob);
        cohort.accesses.push_back(access);
      }
    }
    CCSIM_CHECK_MSG(!cohort.accesses.empty(),
                    "cohort generated with no accesses");
    spec.cohorts.push_back(std::move(cohort));
  }
  CCSIM_CHECK(!spec.cohorts.empty());
  return spec;
}

}  // namespace ccsim::workload
