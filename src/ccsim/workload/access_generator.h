#ifndef CCSIM_WORKLOAD_ACCESS_GENERATOR_H_
#define CCSIM_WORKLOAD_ACCESS_GENERATOR_H_

#include "ccsim/config/params.h"
#include "ccsim/db/catalog.h"
#include "ccsim/sim/random.h"
#include "ccsim/workload/spec.h"

namespace ccsim::workload {

/// Draws transaction access sets per the paper's workload model (Sec 3.2,
/// Sec 4.1): a transaction accesses every partition of one relation, reading
/// a uniformly spread number of distinct pages from each partition and
/// updating each read page with probability WriteProb. Accesses are grouped
/// into one cohort per node holding any of the touched partitions.
class AccessGenerator {
 public:
  AccessGenerator(const config::WorkloadParams* workload,
                  const db::Catalog* catalog);

  /// Draws a fresh transaction for `terminal`, consuming variates from `rng`
  /// (the terminal's own stream).
  TransactionSpec Generate(int terminal, sim::RandomStream& rng) const;

  /// Which transaction class a terminal belongs to (ClassFrac splits the
  /// terminal population proportionally, in class order).
  int ClassOfTerminal(int terminal) const;

  /// Which relation a terminal's transactions access under
  /// RelationChoice::kByTerminalGroup.
  int GroupRelationOfTerminal(int terminal) const;

 private:
  int DrawPageCount(const config::TransactionClassParams& cls,
                    sim::RandomStream& rng) const;

  const config::WorkloadParams* workload_;
  const db::Catalog* catalog_;
};

}  // namespace ccsim::workload

#endif  // CCSIM_WORKLOAD_ACCESS_GENERATOR_H_
