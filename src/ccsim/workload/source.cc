#include "ccsim/workload/source.h"

#include <utility>

#include "ccsim/sim/check.h"
#include "ccsim/sim/stream_ids.h"

namespace ccsim::workload {

using sim::stream_ids::kTerminalStreamBase;

Source::Source(sim::Simulation* sim, const config::SystemConfig* config,
               const db::Catalog* catalog, SubmitFn submit)
    : sim_(sim),
      config_(config),
      generator_(&config->workload, catalog),
      submit_(std::move(submit)) {
  int n = config_->workload.num_terminals;
  terminal_rngs_.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    terminal_rngs_.push_back(std::make_unique<sim::RandomStream>(
        config_->run.seed, kTerminalStreamBase + static_cast<std::uint64_t>(t)));
  }
}

void Source::Start() {
  CCSIM_CHECK_MSG(!started_, "Source started twice");
  started_ = true;
  for (int t = 0; t < config_->workload.num_terminals; ++t) {
    TerminalProcess(t);
  }
}

sim::Process Source::TerminalProcess(int terminal) {
  auto& rng = *terminal_rngs_[static_cast<std::size_t>(terminal)];
  for (;;) {
    co_await sim_->Delay(rng.Exponential(config_->workload.think_time_sec));
    TransactionSpec spec = generator_.Generate(terminal, rng);
    ++submitted_;
    active_txns_.Add(sim_->Now(), 1.0);
    auto done = submit_(std::move(spec));
    co_await sim::Await(std::move(done));
    active_txns_.Add(sim_->Now(), -1.0);
  }
}

}  // namespace ccsim::workload
