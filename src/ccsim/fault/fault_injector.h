#ifndef CCSIM_FAULT_FAULT_INJECTOR_H_
#define CCSIM_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "ccsim/common/types.h"
#include "ccsim/config/params.h"
#include "ccsim/net/network.h"
#include "ccsim/sim/process.h"
#include "ccsim/sim/random.h"
#include "ccsim/sim/simulation.h"
#include "ccsim/sim/stream_ids.h"

namespace ccsim::fault {

/// Deterministic fault generator (DESIGN.md decision #9). The injector owns
/// the *schedule* - when nodes crash and recover, which message
/// transmissions drop, which disk accesses hit a transient error - drawn
/// from dedicated named RNG streams so that the same master seed and the
/// same FaultParams replay the same fault history regardless of what the
/// rest of the model does with its own streams. The *effects* (draining a
/// crashed node, presuming acks, ...) belong to the engine and are reached
/// through the hooks.
///
/// With all fault rates zero a System never constructs an injector, no
/// stream is seeded, and no event is scheduled: the simulation is
/// event-for-event the paper's failure-free machine.
class FaultInjector {
 public:
  struct Hooks {
    /// Applied when a node fails / comes back. The engine updates node
    /// state, drains in-flight work, and records availability.
    std::function<void(NodeId)> crash_node;
    std::function<void(NodeId)> recover_node;
  };

  FaultInjector(sim::Simulation* sim, const config::FaultParams& params,
                std::uint64_t master_seed, int num_proc_nodes, Hooks hooks);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Spawns the per-node crash/recovery cycles (no-op when mttf == 0).
  /// The host node (node 0) never fails - see FaultParams.
  void Start();

  /// Per-transmission-attempt drop decision for the network. The Snoop's
  /// deadlock-detection round trip (kSnoopQuery/Reply/Handoff) is exempt:
  /// it is modeled as a latch over all nodes with no retry path, so a
  /// dropped reply would wedge global detection forever; treat it as
  /// control-plane traffic on a reliable channel.
  bool ShouldDropMessage(NodeId from, NodeId to, net::MsgTag tag);

  /// Extra disk busy seconds for the access now entering service (0 almost
  /// always; disk_error_delay_ms with probability disk_error_prob).
  double DiskErrorDelay();

  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t disk_errors() const { return disk_errors_; }

  /// Diagnostic dump section: per-stream RNG positions and fault counters,
  /// so a divergent fault replay can be localized to a stream.
  void DumpState(std::FILE* out) const;

  /// Crash-cycle process frames live in the simulation's arena (process.h).
  sim::Arena* process_arena() { return sim_->arena(); }

 private:
  sim::Process CrashCycle(NodeId node);

  sim::Simulation* sim_;
  config::FaultParams params_;
  Hooks hooks_;
  int num_proc_nodes_;
  bool started_ = false;
  std::vector<std::unique_ptr<sim::RandomStream>> crash_rngs_;  // per node
  sim::RandomStream drop_rng_;
  sim::RandomStream disk_rng_;
  std::uint64_t crashes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t disk_errors_ = 0;
};

}  // namespace ccsim::fault

#endif  // CCSIM_FAULT_FAULT_INJECTOR_H_
