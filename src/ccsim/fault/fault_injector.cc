#include "ccsim/fault/fault_injector.h"

#include <cinttypes>
#include <utility>

#include "ccsim/sim/check.h"

namespace ccsim::fault {

FaultInjector::FaultInjector(sim::Simulation* sim,
                             const config::FaultParams& params,
                             std::uint64_t master_seed, int num_proc_nodes,
                             Hooks hooks)
    : sim_(sim),
      params_(params),
      hooks_(std::move(hooks)),
      num_proc_nodes_(num_proc_nodes),
      drop_rng_(master_seed, sim::stream_ids::kFaultDropStream),
      disk_rng_(master_seed, sim::stream_ids::kFaultDiskStream) {
  CCSIM_CHECK(num_proc_nodes >= 1);
  if (params_.node_mttf_sec > 0.0) {
    crash_rngs_.reserve(static_cast<std::size_t>(num_proc_nodes));
    for (NodeId id = 1; id <= num_proc_nodes; ++id) {
      crash_rngs_.push_back(std::make_unique<sim::RandomStream>(
          master_seed,
          sim::stream_ids::kFaultCrashStreamBase +
              static_cast<std::uint64_t>(id)));
    }
  }
}

void FaultInjector::Start() {
  CCSIM_CHECK_MSG(!started_, "FaultInjector started twice");
  started_ = true;
  if (params_.node_mttf_sec <= 0.0) return;
  CCSIM_CHECK(hooks_.crash_node && hooks_.recover_node);
  for (NodeId id = 1; id <= num_proc_nodes_; ++id) CrashCycle(id);
}

sim::Process FaultInjector::CrashCycle(NodeId node) {
  sim::RandomStream& rng = *crash_rngs_[static_cast<std::size_t>(node - 1)];
  // Runs for the life of the simulation; the still-suspended frame is
  // reclaimed by the Simulation at teardown like any other process.
  for (;;) {
    co_await sim_->Delay(rng.Exponential(params_.node_mttf_sec));
    ++crashes_;
    hooks_.crash_node(node);
    co_await sim_->Delay(rng.Exponential(params_.node_mttr_sec));
    hooks_.recover_node(node);
  }
}

bool FaultInjector::ShouldDropMessage(NodeId from, NodeId to, net::MsgTag tag) {
  (void)from;
  (void)to;
  if (tag == net::MsgTag::kSnoopQuery || tag == net::MsgTag::kSnoopReply ||
      tag == net::MsgTag::kSnoopHandoff) {
    return false;  // control plane; see the header
  }
  if (!drop_rng_.Bernoulli(params_.msg_drop_prob)) return false;
  ++drops_;
  return true;
}

double FaultInjector::DiskErrorDelay() {
  if (!disk_rng_.Bernoulli(params_.disk_error_prob)) return 0.0;
  ++disk_errors_;
  return params_.disk_error_delay_ms / 1000.0;
}

void FaultInjector::DumpState(std::FILE* out) const {
  std::fprintf(out,
               "crashes=%" PRIu64 " drops=%" PRIu64 " disk_errors=%" PRIu64
               "\n",
               crashes_, drops_, disk_errors_);
  std::fprintf(out, "drop stream draws=%" PRIu64 ", disk stream draws=%" PRIu64
                    "\n",
               drop_rng_.draws(), disk_rng_.draws());
  for (std::size_t i = 0; i < crash_rngs_.size(); ++i) {
    std::fprintf(out, "crash stream node %zu draws=%" PRIu64 "\n", i + 1,
                 crash_rngs_[i]->draws());
  }
}

}  // namespace ccsim::fault
