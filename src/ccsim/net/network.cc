#include "ccsim/net/network.h"

#include <utility>

#include "ccsim/sim/check.h"
#include "ccsim/sim/completion.h"

namespace ccsim::net {

const char* ToString(MsgTag tag) {
  switch (tag) {
    case MsgTag::kLoadCohort: return "LOAD_COHORT";
    case MsgTag::kCohortReady: return "COHORT_READY";
    case MsgTag::kCohortAborted: return "COHORT_ABORTED";
    case MsgTag::kPrepare: return "PREPARE";
    case MsgTag::kVote: return "VOTE";
    case MsgTag::kCommit: return "COMMIT";
    case MsgTag::kAbort: return "ABORT";
    case MsgTag::kAck: return "ACK";
    case MsgTag::kAbortRequest: return "ABORT_REQUEST";
    case MsgTag::kSnoopQuery: return "SNOOP_QUERY";
    case MsgTag::kSnoopReply: return "SNOOP_REPLY";
    case MsgTag::kSnoopHandoff: return "SNOOP_HANDOFF";
    case MsgTag::kCount: break;
  }
  return "?";
}

Network::Network(sim::Simulation* sim, std::vector<resource::Cpu*> node_cpus,
                 double inst_per_msg)
    : sim_(sim), cpus_(std::move(node_cpus)), inst_per_msg_(inst_per_msg) {
  CCSIM_CHECK(inst_per_msg >= 0.0);
}

void Network::Send(NodeId from, NodeId to, MsgTag tag, sim::EventFn deliver) {
  CCSIM_CHECK(from >= 0 && from < static_cast<NodeId>(cpus_.size()));
  CCSIM_CHECK(to >= 0 && to < static_cast<NodeId>(cpus_.size()));
  if (from == to) {
    sim_->After(0.0, std::move(deliver));
    return;
  }
  ++total_sent_;
  ++counts_[static_cast<std::size_t>(tag)];
  auto send_done = cpus_[static_cast<std::size_t>(from)]->Execute(
      inst_per_msg_, resource::CpuJobClass::kMessage);
  DeliverProcess(to, std::move(deliver), std::move(send_done));
}

sim::Process Network::DeliverProcess(
    NodeId to, sim::EventFn deliver,
    std::shared_ptr<sim::Completion<sim::Unit>> send_done) {
  co_await sim::Await(std::move(send_done));
  co_await sim::Await(cpus_[static_cast<std::size_t>(to)]->Execute(
      inst_per_msg_, resource::CpuJobClass::kMessage));
  deliver();
}

void Network::ResetStats() {
  total_sent_ = 0;
  counts_.fill(0);
}

}  // namespace ccsim::net
