#include "ccsim/net/network.h"

#include <utility>

#include "ccsim/sim/check.h"
#include "ccsim/sim/completion.h"

namespace ccsim::net {

const char* ToString(MsgTag tag) {
  switch (tag) {
    case MsgTag::kLoadCohort: return "LOAD_COHORT";
    case MsgTag::kCohortReady: return "COHORT_READY";
    case MsgTag::kCohortAborted: return "COHORT_ABORTED";
    case MsgTag::kPrepare: return "PREPARE";
    case MsgTag::kVote: return "VOTE";
    case MsgTag::kCommit: return "COMMIT";
    case MsgTag::kAbort: return "ABORT";
    case MsgTag::kAck: return "ACK";
    case MsgTag::kAbortRequest: return "ABORT_REQUEST";
    case MsgTag::kSnoopQuery: return "SNOOP_QUERY";
    case MsgTag::kSnoopReply: return "SNOOP_REPLY";
    case MsgTag::kSnoopHandoff: return "SNOOP_HANDOFF";
    case MsgTag::kCount: break;
  }
  return "?";
}

Network::Network(sim::Simulation* sim, std::vector<resource::Cpu*> node_cpus,
                 double inst_per_msg)
    : sim_(sim), cpus_(std::move(node_cpus)), inst_per_msg_(inst_per_msg) {
  CCSIM_CHECK(inst_per_msg >= 0.0);
}

void Network::Send(NodeId from, NodeId to, MsgTag tag, sim::EventFn deliver) {
  CCSIM_CHECK(from >= 0 && from < static_cast<NodeId>(cpus_.size()));
  CCSIM_CHECK(to >= 0 && to < static_cast<NodeId>(cpus_.size()));
  if (from == to) {
    sim_->After(0.0, std::move(deliver));
    return;
  }
  ++total_sent_;
  ++counts_[static_cast<std::size_t>(tag)];
  auto send_done = cpus_[static_cast<std::size_t>(from)]->Execute(
      inst_per_msg_, resource::CpuJobClass::kMessage);
  DeliverProcess(from, to, tag, std::move(deliver), std::move(send_done));
}

sim::Process Network::DeliverProcess(
    NodeId from, NodeId to, MsgTag tag, sim::EventFn deliver,
    std::shared_ptr<sim::Completion<sim::Unit>> send_done) {
  co_await sim::Await(std::move(send_done));
  if (faults_.should_drop) {
    int attempt = 0;
    while (faults_.should_drop(from, to, tag)) {
      ++dropped_;
      if (attempt >= faults_.max_retries) {
        ++lost_;
        co_return;
      }
      // Exponential backoff, then a full retransmission: the sender's CPU is
      // recharged and the attempt is counted like any other send.
      double backoff = faults_.retry_backoff_sec;
      for (int i = 0; i < attempt && backoff < 1e6; ++i) backoff *= 2.0;
      ++attempt;
      co_await sim_->Delay(backoff);
      ++total_sent_;
      ++counts_[static_cast<std::size_t>(tag)];
      co_await sim::Await(cpus_[static_cast<std::size_t>(from)]->Execute(
          inst_per_msg_, resource::CpuJobClass::kMessage));
    }
  }
  if (faults_.node_up && !faults_.node_up(to)) {
    // Receiver is crashed: the message is gone for good (delivery to a node
    // that lost its state would be meaningless; recovery re-converges).
    ++lost_;
    co_return;
  }
  co_await sim::Await(cpus_[static_cast<std::size_t>(to)]->Execute(
      inst_per_msg_, resource::CpuJobClass::kMessage));
  deliver();
}

void Network::ResetStats() {
  total_sent_ = 0;
  dropped_ = 0;
  lost_ = 0;
  counts_.fill(0);
}

}  // namespace ccsim::net
