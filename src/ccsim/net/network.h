#ifndef CCSIM_NET_NETWORK_H_
#define CCSIM_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "ccsim/common/types.h"
#include "ccsim/resource/cpu.h"
#include "ccsim/sim/event_fn.h"
#include "ccsim/sim/process.h"
#include "ccsim/sim/simulation.h"

namespace ccsim::net {

/// Message kinds, used only for accounting (the payload travels in the
/// delivery closure).
enum class MsgTag {
  kLoadCohort,
  kCohortReady,
  kCohortAborted,
  kPrepare,
  kVote,
  kCommit,
  kAbort,
  kAck,
  kAbortRequest,
  kSnoopQuery,
  kSnoopReply,
  kSnoopHandoff,
  kCount,  // sentinel
};

const char* ToString(MsgTag tag);

/// The network manager of Sec 3.5: a switch with negligible wire time.
/// Sending a message charges `InstPerMsg` of message-class CPU at the sender;
/// on completion the message crosses instantaneously and charges `InstPerMsg`
/// at the receiver; then the delivery closure runs at the receiving node.
///
/// Local sends (from == to) model intra-node hand-offs: they cost no CPU and
/// deliver through the calendar at the current time.
class Network {
 public:
  Network(sim::Simulation* sim, std::vector<resource::Cpu*> node_cpus,
          double inst_per_msg);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// `deliver` is a move-only EventFn: small delivery closures ride inline
  /// through the calendar and the delivery coroutine without heap traffic.
  void Send(NodeId from, NodeId to, MsgTag tag, sim::EventFn deliver);

  /// Fault model for remote transmissions. Absent (the default), the network
  /// is the paper's reliable switch and the delivery path is byte-identical
  /// to the pre-fault simulator. Local sends (from == to) are intra-node
  /// hand-offs and never subject to faults.
  struct FaultPolicy {
    /// Called once per transmission attempt (initial send and every
    /// retransmission); true = this attempt is lost in the switch.
    std::function<bool(NodeId from, NodeId to, MsgTag tag)> should_drop;
    /// False = `node` is crashed. A message arriving at a down node vanishes
    /// (no retransmission helps until recovery; protocol timeouts and the
    /// crash-draining logic resolve the wait instead). Null = always up.
    std::function<bool(NodeId node)> node_up;
    /// Retransmissions per message after the initial attempt; a message
    /// whose attempts are exhausted is counted lost and never delivered.
    int max_retries = 0;
    /// Backoff before the first retransmission; doubles per retry. Each
    /// retransmission recharges InstPerMsg of sender CPU.
    double retry_backoff_sec = 0.0;
  };
  void SetFaultPolicy(FaultPolicy policy) { faults_ = std::move(policy); }
  bool faults_active() const {
    return static_cast<bool>(faults_.should_drop) ||
           static_cast<bool>(faults_.node_up);
  }

  std::uint64_t messages_sent() const { return total_sent_; }
  std::uint64_t messages_sent(MsgTag tag) const {
    return counts_[static_cast<std::size_t>(tag)];
  }
  /// Transmission attempts eaten by the drop hook (retries included).
  std::uint64_t messages_dropped() const { return dropped_; }

  /// Messages abandoned for good: retries exhausted or receiver down.
  std::uint64_t messages_lost() const { return lost_; }
  void ResetStats();

  /// Delivery process frames live in the simulation's arena (process.h).
  sim::Arena* process_arena() { return sim_->arena(); }

 private:
  sim::Process DeliverProcess(
      NodeId from, NodeId to, MsgTag tag, sim::EventFn deliver,
      std::shared_ptr<sim::Completion<sim::Unit>> send_done);

  sim::Simulation* sim_;
  std::vector<resource::Cpu*> cpus_;
  double inst_per_msg_;
  std::uint64_t total_sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t lost_ = 0;
  FaultPolicy faults_;
  std::array<std::uint64_t, static_cast<std::size_t>(MsgTag::kCount)> counts_{};
};

}  // namespace ccsim::net

#endif  // CCSIM_NET_NETWORK_H_
