#ifndef CCSIM_NET_NETWORK_H_
#define CCSIM_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <vector>

#include "ccsim/common/types.h"
#include "ccsim/resource/cpu.h"
#include "ccsim/sim/event_fn.h"
#include "ccsim/sim/process.h"
#include "ccsim/sim/simulation.h"

namespace ccsim::net {

/// Message kinds, used only for accounting (the payload travels in the
/// delivery closure).
enum class MsgTag {
  kLoadCohort,
  kCohortReady,
  kCohortAborted,
  kPrepare,
  kVote,
  kCommit,
  kAbort,
  kAck,
  kAbortRequest,
  kSnoopQuery,
  kSnoopReply,
  kSnoopHandoff,
  kCount,  // sentinel
};

const char* ToString(MsgTag tag);

/// The network manager of Sec 3.5: a switch with negligible wire time.
/// Sending a message charges `InstPerMsg` of message-class CPU at the sender;
/// on completion the message crosses instantaneously and charges `InstPerMsg`
/// at the receiver; then the delivery closure runs at the receiving node.
///
/// Local sends (from == to) model intra-node hand-offs: they cost no CPU and
/// deliver through the calendar at the current time.
class Network {
 public:
  Network(sim::Simulation* sim, std::vector<resource::Cpu*> node_cpus,
          double inst_per_msg);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// `deliver` is a move-only EventFn: small delivery closures ride inline
  /// through the calendar and the delivery coroutine without heap traffic.
  void Send(NodeId from, NodeId to, MsgTag tag, sim::EventFn deliver);

  std::uint64_t messages_sent() const { return total_sent_; }
  std::uint64_t messages_sent(MsgTag tag) const {
    return counts_[static_cast<std::size_t>(tag)];
  }
  void ResetStats();

 private:
  sim::Process DeliverProcess(
      NodeId to, sim::EventFn deliver,
      std::shared_ptr<sim::Completion<sim::Unit>> send_done);

  sim::Simulation* sim_;
  std::vector<resource::Cpu*> cpus_;
  double inst_per_msg_;
  std::uint64_t total_sent_ = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(MsgTag::kCount)> counts_{};
};

}  // namespace ccsim::net

#endif  // CCSIM_NET_NETWORK_H_
