#include "ccsim/engine/node.h"

#include "ccsim/sim/stream_ids.h"
#include "ccsim/sim/time.h"

namespace ccsim::engine {

Node MakeNode(sim::Simulation* sim, const config::SystemConfig& config,
              NodeId id) {
  Node node;
  node.id = id;
  node.is_host = (id == kHostNode);
  double mips =
      node.is_host ? config.machine.host_mips : config.machine.node_mips;
  // The host holds no data in this model, so it gets no disks; any attempt
  // to do I/O there trips a check in ResourceManager.
  int disks = node.is_host ? 0 : config.machine.disks_per_node;
  node.resources = std::make_unique<resource::ResourceManager>(
      sim, mips, disks, sim::FromMillis(config.machine.min_disk_ms),
      sim::FromMillis(config.machine.max_disk_ms), config.run.seed,
      sim::stream_ids::kNodeResourceStreamBase +
          static_cast<std::uint64_t>(id) *
              sim::stream_ids::kNodeResourceStreamStride);
  return node;
}

}  // namespace ccsim::engine
