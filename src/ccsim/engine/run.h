#ifndef CCSIM_ENGINE_RUN_H_
#define CCSIM_ENGINE_RUN_H_

#include <cstdint>
#include <string>

#include "ccsim/config/params.h"

namespace ccsim::engine {

/// Steady-state metrics of one simulation run, gathered over the measurement
/// window (after warmup deletion). The paper's four main metrics (Sec 4.1)
/// are response time, throughput, and the speedups derived from them by the
/// experiment harness; the auxiliary metrics (utilizations, abort ratio,
/// blocking time) are here too.
struct RunResult {
  // Primary metrics.
  double throughput = 0.0;          // committed transactions per second
  double mean_response_time = 0.0;  // origin to successful completion, sec
  double rt_ci_half_width = 0.0;    // 95% batch-means CI half width
  double max_response_time = 0.0;
  double rt_p50 = 0.0;  // response-time percentiles (log-bucketed histogram
  double rt_p90 = 0.0;  // estimates, <= ~1.6% relative error)
  double rt_p99 = 0.0;
  double rt_p999 = 0.0;

  // Per-phase response-time decomposition, mean seconds per committed
  // transaction. The four phases partition the response time exactly:
  //   restart-wasted : origin to the start of the finally-successful
  //                    attempt (all failed attempts + restart delays; 0 for
  //                    first-attempt commits)
  //   queue          : host startup queue + startup CPU of that attempt
  //   exec           : cohorts executing (reads, writes, CC waits)
  //   commit-wait    : the 2PC prepare/commit rounds
  // so mean_queue + mean_exec + mean_commit_wait + mean_restart_wasted ==
  // mean_response_time (up to FP rounding).
  double mean_queue_time = 0.0;
  double mean_exec_time = 0.0;
  double mean_commit_wait_time = 0.0;
  double mean_restart_wasted_time = 0.0;

  /// Measured multiprogramming level: time-weighted mean number of
  /// terminals with a transaction in the system (the x-axis actually
  /// offered to the machine, vs the configured NumTerminals).
  double mean_active_txns = 0.0;

  // Auxiliary metrics.
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;   // aborted attempts
  double abort_ratio = 0.0;   // aborts per commit (Sec 4.1)
  // Abort breakdown by cause (same window as `aborts`).
  std::uint64_t aborts_local_deadlock = 0;
  std::uint64_t aborts_global_deadlock = 0;
  std::uint64_t aborts_wound = 0;
  std::uint64_t aborts_timestamp = 0;
  std::uint64_t aborts_certification = 0;
  std::uint64_t aborts_die = 0;      // wait-die
  std::uint64_t aborts_timeout = 0;  // timeout-based blocking
  double host_cpu_util = 0.0;
  double proc_cpu_util = 0.0;  // mean over processing nodes
  double disk_util = 0.0;      // mean over processing-node disks
  double mean_blocking_time = 0.0;  // lock/queue waits (2PL, WW, BTO reads)
  std::uint64_t blocked_waits = 0;
  double messages_per_commit = 0.0;

  // Fault metrics (all trivial when FaultParams are zero: availability 1,
  // goodput == throughput, counters 0).
  double availability = 1.0;  // time-weighted fraction of proc nodes up
  double goodput = 0.0;       // commits per second of node-up capacity
  std::uint64_t node_crashes = 0;
  std::uint64_t messages_dropped = 0;  // transmissions lost (pre-retry)
  std::uint64_t messages_lost = 0;     // gave up after retries / node down
  std::uint64_t aborts_node_crash = 0;
  std::uint64_t aborts_comm_timeout = 0;
  std::uint64_t forced_terminations = 0;  // 2PC gave up resending a decision

  // Run accounting.
  std::uint64_t transactions_submitted = 0;
  std::uint64_t live_at_end = 0;
  std::uint64_t events = 0;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;

  // Audit (only when RunParams::enable_audit).
  bool audited = false;
  bool serializable = true;
  // ccsim-analyze: cache-exempt(free-form diagnostic text; the cache stores the numeric audit verdict, not the prose)
  std::string audit_note;
};

/// Validates `config`, builds a System, runs warmup + measurement, and
/// extracts the metrics. Aborts the process on an invalid configuration
/// (use SystemConfig::Validate() first for recoverable handling).
RunResult RunSimulation(const config::SystemConfig& config);

}  // namespace ccsim::engine

#endif  // CCSIM_ENGINE_RUN_H_
