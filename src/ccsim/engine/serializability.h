#ifndef CCSIM_ENGINE_SERIALIZABILITY_H_
#define CCSIM_ENGINE_SERIALIZABILITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ccsim/common/types.h"
#include "ccsim/txn/transaction.h"

namespace ccsim::engine {

/// One committed transaction's audited operations (versions read and versions
/// installed against the engine's shadow version store).
struct CommittedTxn {
  TxnId id = 0;
  double commit_time = 0.0;
  std::vector<txn::AuditRecord> ops;
};

/// Result of the serializability audit.
struct SerializabilityResult {
  bool serializable = true;
  /// A cycle witness (transaction ids) when not serializable.
  std::vector<TxnId> cycle;
  std::string Describe() const;
};

/// Checks that the committed transactions form a (view-)serializable history
/// using the recorded version order:
///   * writer of version v precedes the writer of version v+1 (ww),
///   * writer of version v precedes every reader of v (wr),
///   * every reader of v precedes the writer of v+1 (rw).
/// Thomas-write-rule skipped writes (installed == false) never became
/// visible and add no constraints. The history is serializable iff the
/// resulting precedence graph is acyclic.
SerializabilityResult CheckSerializability(
    const std::vector<CommittedTxn>& log);

}  // namespace ccsim::engine

#endif  // CCSIM_ENGINE_SERIALIZABILITY_H_
