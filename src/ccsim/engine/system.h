#ifndef CCSIM_ENGINE_SYSTEM_H_
#define CCSIM_ENGINE_SYSTEM_H_

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ccsim/cc/cc_manager.h"
#include "ccsim/cc/snoop.h"
#include "ccsim/config/params.h"
#include "ccsim/db/catalog.h"
#include "ccsim/engine/node.h"
#include "ccsim/engine/run.h"
#include "ccsim/engine/serializability.h"
#include "ccsim/net/network.h"
#include "ccsim/sim/random.h"
#include "ccsim/sim/simulation.h"
#include "ccsim/stats/batch_means.h"
#include "ccsim/stats/histogram.h"
#include "ccsim/stats/tally.h"
#include "ccsim/txn/coordinator.h"
#include "ccsim/txn/cohort.h"
#include "ccsim/workload/source.h"

namespace ccsim::engine {

/// The assembled database machine: one host node plus NumProcNodes
/// processing nodes, the network, the per-node CC managers, the transaction
/// management layer, the workload source, and the metrics plumbing
/// (Fig. 1 of the paper). Also implements cc::CcContext.
class System : public cc::CcContext {
 public:
  explicit System(const config::SystemConfig& config);
  ~System() override = default;
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Spawns terminals (and the Snoop under 2PL). Called by Run(); exposed
  /// separately for tests that drive the simulation manually.
  void Start();

  /// Runs warmup + measurement and extracts the metrics.
  RunResult Run();

  // --- cc::CcContext ------------------------------------------------------
  sim::Simulation& simulation() override { return sim_; }
  const config::SystemConfig& config() const override { return config_; }
  void RequestAbort(const txn::TxnPtr& txn, int attempt, NodeId from_node,
                    txn::AbortReason reason) override;
  void AuditRead(txn::Transaction& t, const PageRef& page) override;
  void AuditInstallWrite(txn::Transaction& t, const PageRef& page) override;
  void AuditSkippedWrite(txn::Transaction& t, const PageRef& page) override;

  // --- accessors (tests, examples) ----------------------------------------
  sim::Simulation& sim() { return sim_; }
  const db::Catalog& catalog() const { return catalog_; }
  net::Network& network() { return *network_; }
  txn::CoordinatorService& coordinator() { return *coordinator_; }
  workload::Source& source() { return *source_; }
  cc::CcManager* cc_at(NodeId id) {
    return nodes_[static_cast<std::size_t>(id)].cc.get();
  }
  resource::ResourceManager& resources(NodeId id) {
    return *nodes_[static_cast<std::size_t>(id)].resources;
  }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<CommittedTxn>& commit_log() const { return commit_log_; }
  const cc::Snoop* snoop() const { return snoop_.get(); }

  /// Current restart delay (one average observed response time).
  double RestartDelay() const;

 private:
  void ResetStatsAtWarmup();
  RunResult ExtractResult(double measured_seconds, double wall_seconds);

  config::SystemConfig config_;
  sim::Simulation sim_;
  db::Catalog catalog_;
  std::vector<Node> nodes_;  // index == NodeId; 0 is the host
  std::vector<std::unique_ptr<sim::RandomStream>> node_rngs_;
  std::unique_ptr<sim::RandomStream> restart_rng_;  // fake-restart draws
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<txn::CohortService> cohort_service_;
  std::unique_ptr<txn::CoordinatorService> coordinator_;
  std::unique_ptr<workload::Source> source_;
  std::unique_ptr<cc::Snoop> snoop_;
  bool started_ = false;

  // Metrics.
  stats::Tally rt_alltime_;   // never reset; drives the restart delay
  stats::Tally rt_measured_;  // reset at warmup
  stats::BatchMeans rt_batches_;
  stats::Histogram rt_histogram_;
  std::uint64_t commits_measured_ = 0;
  std::uint64_t aborts_measured_ = 0;
  std::array<std::uint64_t, txn::kNumAbortReasons>
      aborts_by_reason_measured_{};
  std::uint64_t messages_at_reset_ = 0;

  // Shadow version store + commit log for the serializability audit.
  struct ShadowEntry {
    TxnId writer = 0;
    std::uint64_t version = 0;
  };
  std::unordered_map<std::uint64_t, ShadowEntry> shadow_;
  std::vector<CommittedTxn> commit_log_;
};

}  // namespace ccsim::engine

#endif  // CCSIM_ENGINE_SYSTEM_H_
