#ifndef CCSIM_ENGINE_SYSTEM_H_
#define CCSIM_ENGINE_SYSTEM_H_

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ccsim/cc/cc_manager.h"
#include "ccsim/cc/snoop.h"
#include "ccsim/config/params.h"
#include "ccsim/db/catalog.h"
#include "ccsim/engine/node.h"
#include "ccsim/engine/run.h"
#include "ccsim/engine/serializability.h"
#include "ccsim/fault/fault_injector.h"
#include "ccsim/net/network.h"
#include "ccsim/sim/random.h"
#include "ccsim/sim/simulation.h"
#include "ccsim/stats/batch_means.h"
#include "ccsim/stats/latency_histogram.h"
#include "ccsim/stats/tally.h"
#include "ccsim/stats/time_weighted.h"
#include "ccsim/txn/coordinator.h"
#include "ccsim/txn/cohort.h"
#include "ccsim/workload/source.h"

namespace ccsim::engine {

/// The assembled database machine: one host node plus NumProcNodes
/// processing nodes, the network, the per-node CC managers, the transaction
/// management layer, the workload source, and the metrics plumbing
/// (Fig. 1 of the paper). Also implements cc::CcContext.
class System : public cc::CcContext {
 public:
  explicit System(const config::SystemConfig& config);
  ~System() override = default;
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Spawns terminals (and the Snoop under 2PL). Called by Run(); exposed
  /// separately for tests that drive the simulation manually.
  void Start();

  /// Runs warmup + measurement and extracts the metrics.
  RunResult Run();

  // --- cc::CcContext ------------------------------------------------------
  sim::Simulation& simulation() override { return sim_; }
  const config::SystemConfig& config() const override { return config_; }
  void RequestAbort(const txn::TxnPtr& txn, int attempt, NodeId from_node,
                    txn::AbortReason reason) override;
  void AuditRead(txn::Transaction& t, const PageRef& page) override;
  void AuditInstallWrite(txn::Transaction& t, const PageRef& page) override;
  void AuditSkippedWrite(txn::Transaction& t, const PageRef& page) override;

  // --- accessors (tests, examples) ----------------------------------------
  sim::Simulation& sim() { return sim_; }
  const db::Catalog& catalog() const { return catalog_; }
  net::Network& network() { return *network_; }
  txn::CoordinatorService& coordinator() { return *coordinator_; }
  workload::Source& source() { return *source_; }
  cc::CcManager* cc_at(NodeId id) {
    return nodes_[static_cast<std::size_t>(id)].cc.get();
  }
  resource::ResourceManager& resources(NodeId id) {
    return *nodes_[static_cast<std::size_t>(id)].resources;
  }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<CommittedTxn>& commit_log() const { return commit_log_; }
  const cc::Snoop* snoop() const { return snoop_.get(); }

  /// Current restart delay (one average observed response time).
  double RestartDelay() const;

  // --- fault layer --------------------------------------------------------
  /// True while `id` is up (always true without a fault layer; the host is
  /// always up).
  bool NodeUp(NodeId id) const {
    return nodes_[static_cast<std::size_t>(id)].up;
  }
  /// Crash effects: mark the node down, track availability, and have the
  /// coordinator drain every transaction with a cohort there. Called by the
  /// FaultInjector's schedule; exposed for targeted protocol tests.
  void CrashNode(NodeId id);
  /// The node returns empty (its in-flight state died with it); restarting
  /// transactions will find it organically.
  void RecoverNode(NodeId id);
  const fault::FaultInjector* fault_injector() const {
    return fault_injector_.get();
  }

 private:
  void ResetStatsAtWarmup();
  RunResult ExtractResult(double measured_seconds, double wall_seconds);

  config::SystemConfig config_;
  sim::Simulation sim_;
  db::Catalog catalog_;
  std::vector<Node> nodes_;  // index == NodeId; 0 is the host
  std::vector<std::unique_ptr<sim::RandomStream>> node_rngs_;
  std::unique_ptr<sim::RandomStream> restart_rng_;  // fake-restart draws
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<txn::CohortService> cohort_service_;
  std::unique_ptr<txn::CoordinatorService> coordinator_;
  std::unique_ptr<workload::Source> source_;
  std::unique_ptr<cc::Snoop> snoop_;
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  bool started_ = false;

  // Metrics.
  stats::Tally rt_alltime_;   // never reset; drives the restart delay
  stats::Tally rt_measured_;  // reset at warmup
  stats::BatchMeans rt_batches_;
  stats::LatencyHistogram rt_histogram_;
  // Per-phase response-time decomposition (see RunResult); reset at warmup.
  stats::Tally phase_queue_;
  stats::Tally phase_exec_;
  stats::Tally phase_commit_wait_;
  stats::Tally phase_restart_wasted_;
  std::uint64_t commits_measured_ = 0;
  std::uint64_t aborts_measured_ = 0;
  std::array<std::uint64_t, txn::kNumAbortReasons>
      aborts_by_reason_measured_{};
  std::uint64_t messages_at_reset_ = 0;
  // Fault metrics (inert without a fault layer).
  stats::TimeWeighted up_fraction_{1.0};  // fraction of proc nodes up
  int nodes_down_ = 0;
  std::uint64_t node_crashes_measured_ = 0;
  std::uint64_t dropped_at_reset_ = 0;
  std::uint64_t lost_at_reset_ = 0;
  std::uint64_t forced_at_reset_ = 0;

  // Shadow version store + commit log for the serializability audit.
  struct ShadowEntry {
    TxnId writer = 0;
    std::uint64_t version = 0;
  };
  std::unordered_map<std::uint64_t, ShadowEntry> shadow_;
  std::vector<CommittedTxn> commit_log_;
};

}  // namespace ccsim::engine

#endif  // CCSIM_ENGINE_SYSTEM_H_
