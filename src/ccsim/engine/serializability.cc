#include "ccsim/engine/serializability.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace ccsim::engine {

std::string SerializabilityResult::Describe() const {
  if (serializable) return "serializable";
  std::ostringstream out;
  out << "NOT serializable; cycle:";
  for (TxnId id : cycle) out << " " << id;
  return out.str();
}

SerializabilityResult CheckSerializability(
    const std::vector<CommittedTxn>& log) {
  // Per page: version -> writer, and version -> readers.
  struct PageHistory {
    std::map<std::uint64_t, TxnId> writers;                 // version -> txn
    std::map<std::uint64_t, std::vector<TxnId>> readers;    // version -> txns
  };
  // Ordered containers end to end: the offline checker is not hot, and
  // hash-order iteration here would make edge insertion order (and the
  // reported cycle) vary across stdlib versions.
  std::map<std::uint64_t, PageHistory> pages;
  std::set<TxnId> committed;

  for (const CommittedTxn& t : log) {
    committed.insert(t.id);
    for (const txn::AuditRecord& op : t.ops) {
      auto& hist = pages[op.page.Key()];
      if (op.is_write) {
        if (op.installed) hist.writers[op.version] = t.id;
      } else {
        hist.readers[op.version].push_back(t.id);
      }
    }
  }

  // Precedence edges.
  std::map<TxnId, std::vector<TxnId>> adj;
  std::map<TxnId, int> indeg;
  for (TxnId id : committed) {
    adj.try_emplace(id);
    indeg.try_emplace(id, 0);
  }
  auto add_edge = [&](TxnId a, TxnId b) {
    if (a == b) return;
    if (!committed.count(a) || !committed.count(b)) return;
    adj[a].push_back(b);
    ++indeg[b];
  };

  for (auto& [key, hist] : pages) {
    // ww edges between successive installed versions.
    TxnId prev_writer = 0;
    bool have_prev = false;
    for (auto& [version, writer] : hist.writers) {
      if (have_prev) add_edge(prev_writer, writer);
      prev_writer = writer;
      have_prev = true;
    }
    // wr and rw edges.
    for (auto& [version, readers] : hist.readers) {
      auto wit = hist.writers.find(version);
      if (wit != hist.writers.end()) {
        for (TxnId r : readers) add_edge(wit->second, r);
      }
      auto next = hist.writers.upper_bound(version);
      if (next != hist.writers.end()) {
        for (TxnId r : readers) add_edge(r, next->second);
      }
    }
  }

  // Kahn's algorithm; leftovers form (or feed) a cycle.
  std::vector<TxnId> queue;
  for (auto& [id, d] : indeg) {
    if (d == 0) queue.push_back(id);
  }
  std::size_t processed = 0;
  while (!queue.empty()) {
    TxnId id = queue.back();
    queue.pop_back();
    ++processed;
    for (TxnId next : adj[id]) {
      if (--indeg[next] == 0) queue.push_back(next);
    }
  }

  SerializabilityResult result;
  if (processed == committed.size()) return result;

  result.serializable = false;
  for (auto& [id, d] : indeg) {
    if (d > 0) result.cycle.push_back(id);
  }
  std::sort(result.cycle.begin(), result.cycle.end());
  return result;
}

}  // namespace ccsim::engine
