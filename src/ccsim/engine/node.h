#ifndef CCSIM_ENGINE_NODE_H_
#define CCSIM_ENGINE_NODE_H_

#include <memory>

#include "ccsim/cc/cc_manager.h"
#include "ccsim/common/types.h"
#include "ccsim/config/params.h"
#include "ccsim/resource/resource_manager.h"
#include "ccsim/sim/simulation.h"

namespace ccsim::engine {

/// One machine node: the host (id 0, fast CPU, terminals, coordinators, no
/// data and hence no disks in the model) or a processing node (1 MIPS CPU,
/// NumDisks disks, data, cohorts, a CC manager).
struct Node {
  NodeId id = 0;
  bool is_host = false;
  /// False while the node is crashed (fault runs only; the host never
  /// fails). Maintained by System::CrashNode / System::RecoverNode; the
  /// network and the 2PC layer consult it to treat the node as unreachable.
  bool up = true;
  std::unique_ptr<resource::ResourceManager> resources;
  std::unique_ptr<cc::CcManager> cc;
};

/// Builds a node's resource manager per the machine parameters. The CC
/// manager is attached separately (it needs the CcContext, i.e. the System).
Node MakeNode(sim::Simulation* sim, const config::SystemConfig& config,
              NodeId id);

}  // namespace ccsim::engine

#endif  // CCSIM_ENGINE_NODE_H_
