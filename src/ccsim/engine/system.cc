#include "ccsim/engine/system.h"

#include <chrono>
#include <utility>

#include "ccsim/cc/cc_factory.h"
#include "ccsim/cc/two_phase_locking.h"
#include "ccsim/db/placement.h"
#include "ccsim/sim/check.h"
#include "ccsim/sim/stream_ids.h"
#include "ccsim/txn/services.h"

namespace ccsim::engine {

using sim::stream_ids::kNodeVariateStreamBase;

System::System(const config::SystemConfig& config)
    : config_(config),
      catalog_(config.database,
               db::ComputePlacement(config.database,
                                    config.machine.num_proc_nodes,
                                    config.placement.degree)),
      rt_batches_(config.run.rt_batch_size),
      // Log-bucketed over [2^-20 s, 2^13 s) ~ [0.95 us, 8192 s): covers
      // every response time a valid configuration can produce at <= ~1.6%
      // relative quantile error throughout (DESIGN.md decision #11).
      rt_histogram_(-20, 13) {
  std::string error = config_.Validate();
  CCSIM_CHECK_MSG(error.empty(), error.c_str());

  int total_nodes = config_.machine.num_proc_nodes + 1;
  nodes_.reserve(static_cast<std::size_t>(total_nodes));
  std::vector<resource::Cpu*> cpus;
  for (NodeId id = 0; id < total_nodes; ++id) {
    nodes_.push_back(MakeNode(&sim_, config_, id));
    nodes_.back().cc = cc::CreateCcManager(config_.algorithm, this, id);
    cpus.push_back(&nodes_.back().resources->cpu());
    node_rngs_.push_back(std::make_unique<sim::RandomStream>(
        config_.run.seed,
        kNodeVariateStreamBase + static_cast<std::uint64_t>(id)));
  }
  network_ = std::make_unique<net::Network>(&sim_, std::move(cpus),
                                            config_.costs.inst_per_msg);

  txn::Services services;
  services.sim = &sim_;
  services.network = network_.get();
  services.config = &config_;
  services.cc_at = [this](NodeId id) { return cc_at(id); };
  services.cpu_at = [this](NodeId id) {
    return &nodes_[static_cast<std::size_t>(id)].resources->cpu();
  };
  services.disk_access = [this](NodeId id, resource::DiskOp op) {
    return nodes_[static_cast<std::size_t>(id)].resources->DiskAccess(op);
  };
  services.node_rng = [this](NodeId id) {
    return node_rngs_[static_cast<std::size_t>(id)].get();
  };
  services.node_up = [this](NodeId id) { return NodeUp(id); };
  services.on_commit = [this](txn::Transaction& t) {
    sim_.NoteProgress();  // feeds the watchdog's stall clock
    double rt = sim_.Now() - t.origin_time();
    rt_alltime_.Record(rt);
    rt_measured_.Record(rt);
    rt_batches_.Record(rt);
    rt_histogram_.Record(rt);
    // Phase decomposition of the same response time (see RunResult): the
    // stamps are read at transitions that happen anyway, so this adds no
    // events and cannot shift the schedule.
    phase_restart_wasted_.Record(t.attempt_start_time() - t.origin_time());
    phase_queue_.Record(t.exec_start_time - t.attempt_start_time());
    phase_exec_.Record(t.prepare_start_time - t.exec_start_time);
    phase_commit_wait_.Record(sim_.Now() - t.prepare_start_time);
    ++commits_measured_;
    if (config_.run.enable_audit) {
      commit_log_.push_back(CommittedTxn{t.id(), sim_.Now(), t.audit});
    }
  };
  services.on_abort = [this](txn::Transaction& t, txn::AbortReason reason) {
    (void)t;
    ++aborts_measured_;
    ++aborts_by_reason_measured_[static_cast<std::size_t>(reason)];
  };
  services.restart_delay = [this] { return RestartDelay(); };
  if (config_.workload.fake_restarts) {
    services.regenerate_spec =
        [this](const workload::TransactionSpec& old_spec) {
          return source_->generator().Generate(old_spec.terminal,
                                               *restart_rng_);
        };
    restart_rng_ = std::make_unique<sim::RandomStream>(
        config_.run.seed, sim::stream_ids::kFakeRestartStream);
  }

  cohort_service_ = std::make_unique<txn::CohortService>(services);
  coordinator_ = std::make_unique<txn::CoordinatorService>(
      services, cohort_service_.get());

  source_ = std::make_unique<workload::Source>(
      &sim_, &config_, &catalog_, [this](workload::TransactionSpec spec) {
        return coordinator_->Submit(std::move(spec));
      });

  if (config_.faults.any()) {
    // The fault layer exists only when some rate is nonzero; otherwise no
    // injector, no network policy, no timers - the event stream (and thus
    // every determinism digest) is identical to the failure-free machine.
    fault_injector_ = std::make_unique<fault::FaultInjector>(
        &sim_, config_.faults, config_.run.seed, config_.machine.num_proc_nodes,
        fault::FaultInjector::Hooks{
            [this](NodeId id) { CrashNode(id); },
            [this](NodeId id) { RecoverNode(id); }});
    net::Network::FaultPolicy policy;
    if (config_.faults.msg_drop_prob > 0.0) {
      policy.should_drop = [this](NodeId from, NodeId to, net::MsgTag tag) {
        return fault_injector_->ShouldDropMessage(from, to, tag);
      };
      policy.max_retries = config_.faults.max_msg_retries;
      policy.retry_backoff_sec = config_.faults.retry_backoff_sec;
    }
    if (config_.faults.node_mttf_sec > 0.0) {
      policy.node_up = [this](NodeId id) { return NodeUp(id); };
    }
    network_->SetFaultPolicy(std::move(policy));
    if (config_.faults.disk_error_prob > 0.0) {
      for (NodeId id = 1; id <= config_.machine.num_proc_nodes; ++id) {
        resources(id).SetDiskFaultHook(
            [this] { return fault_injector_->DiskErrorDelay(); });
      }
    }
  }

  // Diagnostic dump sections for the watchdog / CCSIM_CHECK failure path.
  sim_.AddDumpSection("engine", [this](std::FILE* out) {
    std::fprintf(out, "algorithm=%s live_txns=%zu commits=%llu aborts=%llu\n",
                 config::ToString(config_.algorithm),
                 coordinator_->live_transactions(),
                 static_cast<unsigned long long>(coordinator_->commits()),
                 static_cast<unsigned long long>(coordinator_->aborts()));
    for (const Node& node : nodes_) {
      if (!node.is_host && !node.up) {
        std::fprintf(out, "node %d: DOWN\n", node.id);
      }
    }
  });
  sim_.AddDumpSection("rng-streams", [this](std::FILE* out) {
    for (std::size_t i = 0; i < node_rngs_.size(); ++i) {
      std::fprintf(out, "node-variates %zu: draws=%llu\n", i,
                   static_cast<unsigned long long>(node_rngs_[i]->draws()));
    }
    if (restart_rng_) {
      std::fprintf(out, "fake-restart: draws=%llu\n",
                   static_cast<unsigned long long>(restart_rng_->draws()));
    }
    if (fault_injector_) fault_injector_->DumpState(out);
  });

  if (config_.algorithm == config::CcAlgorithm::kTwoPhaseLocking ||
      config_.algorithm == config::CcAlgorithm::kTwoPhaseLockingDeferred) {
    std::vector<cc::TwoPhaseLockingManager*> managers;
    for (NodeId id = 1; id < total_nodes; ++id) {
      managers.push_back(
          static_cast<cc::TwoPhaseLockingManager*>(cc_at(id)));
    }
    snoop_ = std::make_unique<cc::Snoop>(this, network_.get(),
                                         std::move(managers),
                                         config_.costs.deadlock_interval_sec);
  }
}

double System::RestartDelay() const {
  return rt_alltime_.count() > 0 ? rt_alltime_.mean()
                                 : config_.run.initial_rt_estimate_sec;
}

void System::RequestAbort(const txn::TxnPtr& txn, int attempt,
                          NodeId from_node, txn::AbortReason reason) {
  network_->Send(from_node, kHostNode, net::MsgTag::kAbortRequest,
                 [this, txn, attempt, reason] {
                   coordinator_->OnAbortRequest(txn, attempt, reason);
                 });
}

void System::AuditRead(txn::Transaction& t, const PageRef& page) {
  if (!config_.run.enable_audit) return;
  auto it = shadow_.find(page.Key());
  std::uint64_t version = it != shadow_.end() ? it->second.version : 0;
  t.audit.push_back(txn::AuditRecord{page, version, false, true});
}

void System::AuditInstallWrite(txn::Transaction& t, const PageRef& page) {
  if (!config_.run.enable_audit) return;
  ShadowEntry& entry = shadow_[page.Key()];
  ++entry.version;
  entry.writer = t.id();
  t.audit.push_back(txn::AuditRecord{page, entry.version, true, true});
}

void System::AuditSkippedWrite(txn::Transaction& t, const PageRef& page) {
  if (!config_.run.enable_audit) return;
  t.audit.push_back(txn::AuditRecord{page, 0, true, false});
}

void System::Start() {
  CCSIM_CHECK_MSG(!started_, "System started twice");
  started_ = true;
  source_->Start();
  if (snoop_) snoop_->Start();
  if (fault_injector_) fault_injector_->Start();
}

void System::CrashNode(NodeId id) {
  Node& node = nodes_[static_cast<std::size_t>(id)];
  CCSIM_CHECK_MSG(!node.is_host, "the host node cannot crash");
  if (!node.up) return;
  node.up = false;
  ++nodes_down_;
  ++node_crashes_measured_;
  up_fraction_.Set(sim_.Now(),
                   1.0 - static_cast<double>(nodes_down_) /
                             config_.machine.num_proc_nodes);
  // Drain every transaction with a cohort there: in-flight work at the node
  // is discarded, lock/queue state released, victims abort (or complete via
  // presumed acks past the commit point) and restart later. The node's
  // resource queues are intentionally left alone: whatever was in service
  // finishes charging time, modeling work the crash wasted (decision #9).
  coordinator_->OnNodeCrash(id);
}

void System::RecoverNode(NodeId id) {
  Node& node = nodes_[static_cast<std::size_t>(id)];
  if (node.up) return;
  node.up = true;
  --nodes_down_;
  up_fraction_.Set(sim_.Now(),
                   1.0 - static_cast<double>(nodes_down_) /
                             config_.machine.num_proc_nodes);
  // The node comes back with no residual transaction state; restarting
  // transactions simply find it reachable again.
}

void System::ResetStatsAtWarmup() {
  rt_measured_.Reset();
  rt_batches_.Reset();
  rt_histogram_.Reset();
  phase_queue_.Reset();
  phase_exec_.Reset();
  phase_commit_wait_.Reset();
  phase_restart_wasted_.Reset();
  source_->ResetStats(sim_.Now());
  commits_measured_ = 0;
  aborts_measured_ = 0;
  aborts_by_reason_measured_.fill(0);
  messages_at_reset_ = network_->messages_sent();
  node_crashes_measured_ = 0;
  dropped_at_reset_ = network_->messages_dropped();
  lost_at_reset_ = network_->messages_lost();
  forced_at_reset_ = coordinator_->forced_terminations();
  up_fraction_.Reset(sim_.Now());
  for (auto& node : nodes_) {
    node.resources->ResetStats();
    node.cc->ResetStats();
  }
}

RunResult System::ExtractResult(double measured_seconds, double wall_seconds) {
  RunResult r;
  r.commits = commits_measured_;
  r.aborts = aborts_measured_;
  r.throughput = measured_seconds > 0
                     ? static_cast<double>(commits_measured_) / measured_seconds
                     : 0.0;
  r.mean_response_time = rt_measured_.mean();
  r.max_response_time = rt_measured_.max();
  r.rt_ci_half_width = rt_batches_.half_width_95();
  r.rt_p50 = rt_histogram_.Quantile(0.50);
  r.rt_p90 = rt_histogram_.Quantile(0.90);
  r.rt_p99 = rt_histogram_.Quantile(0.99);
  r.rt_p999 = rt_histogram_.Quantile(0.999);
  r.mean_queue_time = phase_queue_.mean();
  r.mean_exec_time = phase_exec_.mean();
  r.mean_commit_wait_time = phase_commit_wait_.mean();
  r.mean_restart_wasted_time = phase_restart_wasted_.mean();
  r.mean_active_txns = source_->mean_active_txns(sim_.Now());
  r.abort_ratio = commits_measured_ > 0
                      ? static_cast<double>(aborts_measured_) /
                            static_cast<double>(commits_measured_)
                      : 0.0;
  using AR = txn::AbortReason;
  r.aborts_local_deadlock =
      aborts_by_reason_measured_[static_cast<std::size_t>(AR::kLocalDeadlock)];
  r.aborts_global_deadlock =
      aborts_by_reason_measured_[static_cast<std::size_t>(AR::kGlobalDeadlock)];
  r.aborts_wound =
      aborts_by_reason_measured_[static_cast<std::size_t>(AR::kWound)];
  r.aborts_timestamp =
      aborts_by_reason_measured_[static_cast<std::size_t>(AR::kTimestampOrder)];
  r.aborts_certification =
      aborts_by_reason_measured_[static_cast<std::size_t>(AR::kCertification)];
  r.aborts_die = aborts_by_reason_measured_[static_cast<std::size_t>(AR::kDie)];
  r.aborts_timeout =
      aborts_by_reason_measured_[static_cast<std::size_t>(AR::kTimeout)];
  r.host_cpu_util = nodes_[0].resources->cpu().Utilization();
  double cpu_sum = 0.0, disk_sum = 0.0;
  int proc_nodes = config_.machine.num_proc_nodes;
  for (NodeId id = 1; id <= proc_nodes; ++id) {
    cpu_sum += resources(id).cpu().Utilization();
    disk_sum += resources(id).MeanDiskUtilization();
  }
  r.proc_cpu_util = cpu_sum / proc_nodes;
  r.disk_util = disk_sum / proc_nodes;

  double block_sum = 0.0;
  std::uint64_t block_count = 0;
  for (NodeId id = 1; id <= proc_nodes; ++id) {
    const stats::Tally* waits = cc_at(id)->blocking_times();
    if (waits != nullptr) {
      block_sum += waits->sum();
      block_count += waits->count();
    }
  }
  r.blocked_waits = block_count;
  r.mean_blocking_time =
      block_count > 0 ? block_sum / static_cast<double>(block_count) : 0.0;
  r.messages_per_commit =
      commits_measured_ > 0
          ? static_cast<double>(network_->messages_sent() - messages_at_reset_) /
                static_cast<double>(commits_measured_)
          : 0.0;
  r.availability = up_fraction_.Mean(sim_.Now());
  r.goodput = r.availability > 0.0 ? r.throughput / r.availability : 0.0;
  r.node_crashes = node_crashes_measured_;
  r.messages_dropped = network_->messages_dropped() - dropped_at_reset_;
  r.messages_lost = network_->messages_lost() - lost_at_reset_;
  r.aborts_node_crash =
      aborts_by_reason_measured_[static_cast<std::size_t>(AR::kNodeCrash)];
  r.aborts_comm_timeout =
      aborts_by_reason_measured_[static_cast<std::size_t>(AR::kCommTimeout)];
  r.forced_terminations = coordinator_->forced_terminations() - forced_at_reset_;
  r.transactions_submitted = source_->transactions_submitted();
  r.live_at_end = coordinator_->live_transactions();
  r.events = sim_.events_fired();
  r.sim_seconds = sim_.Now();
  r.wall_seconds = wall_seconds;

  if (config_.run.enable_audit &&
      config_.algorithm != config::CcAlgorithm::kNoDc) {
    r.audited = true;
    auto audit = CheckSerializability(commit_log_);
    r.serializable = audit.serializable;
    r.audit_note = audit.Describe();
  }
  return r;
}

RunResult System::Run() {
  auto wall_start = std::chrono::steady_clock::now();
  if (!started_) Start();
  double warmup = config_.run.warmup_sec;
  double measure = config_.run.measure_sec;
  if (warmup > 0) {
    // ccsim-analyze: coro-ok(sim_ is a member of this System; the event cannot fire after System is gone)
    sim_.At(warmup, [this] { ResetStatsAtWarmup(); });
  }
  sim_.ConfigureWatchdog(
      {config_.run.watchdog_max_events, config_.run.watchdog_stall_sec});
  sim_.RunUntil(warmup + measure);
  double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return ExtractResult(measure, wall_seconds);
}

RunResult RunSimulation(const config::SystemConfig& config) {
  System system(config);
  return system.Run();
}

}  // namespace ccsim::engine
