#include "ccsim/stats/batch_means.h"

#include <cmath>
#include <cstddef>

#include "ccsim/sim/check.h"

namespace ccsim::stats {

namespace {
// Two-sided 97.5% Student-t quantiles for df = 1..30; normal beyond.
constexpr double kT975[] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};

double TQuantile975(std::size_t df) {
  if (df == 0) return 0.0;
  if (df <= 30) return kT975[df - 1];
  return 1.96;
}
}  // namespace

BatchMeans::BatchMeans(std::uint64_t batch_size) : batch_size_(batch_size) {
  CCSIM_CHECK(batch_size >= 1);
}

void BatchMeans::Record(double x) {
  ++observations_;
  running_sum_ += x;
  current_batch_sum_ += x;
  if (++current_batch_count_ == batch_size_) {
    batch_means_.push_back(current_batch_sum_ /
                           static_cast<double>(batch_size_));
    current_batch_sum_ = 0.0;
    current_batch_count_ = 0;
  }
}

void BatchMeans::Reset() {
  observations_ = 0;
  running_sum_ = 0.0;
  current_batch_sum_ = 0.0;
  current_batch_count_ = 0;
  batch_means_.clear();
}

double BatchMeans::mean() const {
  return observations_ ? running_sum_ / static_cast<double>(observations_)
                       : 0.0;
}

double BatchMeans::half_width_95() const {
  std::size_t n = batch_means_.size();
  if (n < 2) return 0.0;
  // The CI is over completed batch means only, so its center is the grand
  // mean of those batches - not mean(), which also sees the partial batch.
  double grand = 0.0;
  for (double m : batch_means_) grand += m;
  grand /= static_cast<double>(n);
  double ss = 0.0;
  for (double m : batch_means_) ss += (m - grand) * (m - grand);
  double var = ss / static_cast<double>(n - 1);
  return TQuantile975(n - 1) * std::sqrt(var / static_cast<double>(n));
}

double BatchMeans::relative_half_width_95() const {
  double m = mean();
  if (m == 0.0) return 0.0;
  return half_width_95() / std::abs(m);
}

}  // namespace ccsim::stats
