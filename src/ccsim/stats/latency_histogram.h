#ifndef CCSIM_STATS_LATENCY_HISTOGRAM_H_
#define CCSIM_STATS_LATENCY_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace ccsim::stats {

/// Log-bucketed latency histogram (HdrHistogram-style), built for response
/// times whose interesting structure spans many orders of magnitude: fixed
/// memory, O(1) Record, mergeable across runs, and quantiles with a bounded
/// *relative* error everywhere in range (unlike the fixed-width Histogram,
/// whose absolute bin width is useless for sub-second tails under a
/// 1000-second range).
///
/// Bucketing: the representable range [2^min_exp2, 2^max_exp2) is split
/// into power-of-two octaves, each divided into kSubBuckets equal-width
/// sub-buckets, so bucket boundaries sit at 2^e * (1 + j/kSubBuckets).
/// With kSubBuckets = 64 a bucket is at most 1/64 ~ 1.6% wide relative to
/// its lower edge; quantiles interpolate linearly inside the bucket and are
/// clamped to the tracked true min/max, so the relative quantile error is
/// <= 1/64 < 2% (typically far better). Decomposition uses std::frexp and
/// exact power-of-two arithmetic only, so bucket choice (and therefore
/// every quantile) is bit-deterministic across runs and platforms.
///
/// Out-of-range and pathological samples never alias into the range:
/// samples below the range land in an underflow counter, samples at or
/// above the top in an overflow counter (both still feed min/max and the
/// quantile walk), and non-finite samples land in a dedicated nonfinite
/// counter (a CCSIM_DCHECK failure under audit builds - a NaN response
/// time is always a simulator bug).
class LatencyHistogram {
 public:
  /// Sub-buckets per power-of-two octave; see the error bound above.
  static constexpr int kSubBuckets = 64;

  /// Covers [2^min_exp2, 2^max_exp2). Both exponents are powers of two of
  /// *seconds* when used for response times; the default engine range is
  /// (-20, 13): ~0.95 us to 8192 s.
  LatencyHistogram(int min_exp2, int max_exp2);

  void Record(double x);
  void Reset();

  /// Adds `other`'s samples into this histogram. Both must have identical
  /// geometry (checked). Merge is associative and commutative, so per-shard
  /// histograms can be combined in any order with an identical result.
  void Merge(const LatencyHistogram& other);

  /// Finite samples recorded (in-range + underflow + overflow).
  std::uint64_t count() const { return count_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  /// Non-finite samples rejected (NaN / +-inf); never part of count().
  std::uint64_t nonfinite() const { return nonfinite_; }
  /// True when tail mass fell past the top of the range; quantiles landing
  /// there report the tracked true max instead of a fabricated edge.
  bool saturated() const { return overflow_ > 0; }

  /// Smallest / largest finite sample recorded (0 when empty). Exact, not
  /// bucket-quantized: quantile results are clamped to these.
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  std::size_t num_buckets() const { return bins_.size(); }
  std::uint64_t bucket_count(std::size_t i) const { return bins_[i]; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// Approximate quantile, q in [0, 1]: linear interpolation inside the
  /// landing bucket, clamped to [min(), max()]. Quantiles that land in the
  /// underflow (overflow) region return the tracked min (max). 0 when no
  /// finite sample was recorded.
  double Quantile(double q) const;

 private:
  int min_exp2_;
  int max_exp2_;
  double lo_;  // 2^min_exp2
  double hi_;  // 2^max_exp2
  std::vector<std::uint64_t> bins_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t nonfinite_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ccsim::stats

#endif  // CCSIM_STATS_LATENCY_HISTOGRAM_H_
