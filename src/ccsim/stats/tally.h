#ifndef CCSIM_STATS_TALLY_H_
#define CCSIM_STATS_TALLY_H_

#include <cstdint>

namespace ccsim::stats {

/// Streaming sample statistics (count, mean, variance, min, max) using
/// Welford's numerically stable update. Used for observation-based metrics:
/// response times, blocking times, queue waits.
class Tally {
 public:
  Tally() = default;

  void Record(double x);

  /// Discards all recorded observations (warmup deletion).
  void Reset();

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return count_ ? mean_ * static_cast<double>(count_) : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ccsim::stats

#endif  // CCSIM_STATS_TALLY_H_
