#include "ccsim/stats/tally.h"

#include <cmath>

namespace ccsim::stats {

void Tally::Record(double x) {
  ++count_;
  if (count_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = x;
    max_ = x;
    return;
  }
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

void Tally::Reset() {
  count_ = 0;
  mean_ = m2_ = min_ = max_ = 0.0;
}

double Tally::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Tally::stddev() const { return std::sqrt(variance()); }

}  // namespace ccsim::stats
