#include "ccsim/stats/latency_histogram.h"

#include <algorithm>
#include <cmath>

#include "ccsim/sim/check.h"

namespace ccsim::stats {

namespace {

// Flat bucket index of an in-range sample, or SIZE_MAX sentinels for the
// two out-of-range regions. x = m * 2^e with m in [0.5, 1) via frexp, so
// the octave is (e - 1) and the sub-bucket is floor((m - 0.5) * 2 * kSub).
// All operations are exact power-of-two scalings and a floor, so the same
// sample always lands in the same bucket on every conforming platform.
constexpr std::size_t kUnderflowIdx = static_cast<std::size_t>(-1);
constexpr std::size_t kOverflowIdx = static_cast<std::size_t>(-2);

std::size_t BucketIndex(double x, int min_exp2, int max_exp2) {
  int e = 0;
  double m = std::frexp(x, &e);  // x = m * 2^e, m in [0.5, 1)
  int octave = e - 1;            // x in [2^octave, 2^(octave+1))
  if (octave < min_exp2) return kUnderflowIdx;
  if (octave >= max_exp2) return kOverflowIdx;
  auto sub = static_cast<std::size_t>(
      (m - 0.5) * (2.0 * LatencyHistogram::kSubBuckets));
  // (m - 0.5) * 2 is in [0, 1) exactly, but guard the boundary anyway.
  sub = std::min<std::size_t>(sub, LatencyHistogram::kSubBuckets - 1);
  return static_cast<std::size_t>(octave - min_exp2) *
             LatencyHistogram::kSubBuckets +
         sub;
}

}  // namespace

LatencyHistogram::LatencyHistogram(int min_exp2, int max_exp2)
    : min_exp2_(min_exp2),
      max_exp2_(max_exp2),
      lo_(std::ldexp(1.0, min_exp2)),
      hi_(std::ldexp(1.0, max_exp2)),
      bins_(static_cast<std::size_t>(max_exp2 - min_exp2) * kSubBuckets, 0) {
  CCSIM_CHECK(max_exp2 > min_exp2);
}

void LatencyHistogram::Record(double x) {
  if (!std::isfinite(x)) {
    CCSIM_DCHECK(false && "non-finite sample recorded into LatencyHistogram");
    ++nonfinite_;
    return;
  }
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  std::size_t idx = BucketIndex(x, min_exp2_, max_exp2_);
  if (idx == kOverflowIdx || idx == kUnderflowIdx) {
    // x >= lo_ but frexp still placed it below range only for x == lo_
    // rounding artifacts, which cannot happen for exact powers of two;
    // anything left here is past the top.
    ++overflow_;
    return;
  }
  ++bins_[idx];
}

void LatencyHistogram::Reset() {
  std::fill(bins_.begin(), bins_.end(), 0);
  count_ = underflow_ = overflow_ = nonfinite_ = 0;
  min_ = max_ = 0.0;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  CCSIM_CHECK(min_exp2_ == other.min_exp2_ && max_exp2_ == other.max_exp2_);
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  nonfinite_ += other.nonfinite_;
}

double LatencyHistogram::bucket_lo(std::size_t i) const {
  int octave = min_exp2_ + static_cast<int>(i / kSubBuckets);
  auto sub = static_cast<double>(i % kSubBuckets);
  return std::ldexp(1.0 + sub / kSubBuckets, octave);
}

double LatencyHistogram::bucket_hi(std::size_t i) const {
  int octave = min_exp2_ + static_cast<int>(i / kSubBuckets);
  auto sub = static_cast<double>(i % kSubBuckets) + 1.0;
  return std::ldexp(1.0 + sub / kSubBuckets, octave);
}

double LatencyHistogram::Quantile(double q) const {
  CCSIM_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return min_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    double next = cum + static_cast<double>(bins_[i]);
    if (next >= target) {
      double frac = (target - cum) / static_cast<double>(bins_[i]);
      double v = bucket_lo(i) + frac * (bucket_hi(i) - bucket_lo(i));
      return std::clamp(v, min_, max_);
    }
    cum = next;
  }
  // The quantile lands in the overflow region (or floating-point slack at
  // q == 1): report the tracked true maximum, never a fabricated edge.
  return max_;
}

}  // namespace ccsim::stats
