#include "ccsim/stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "ccsim/sim/check.h"

namespace ccsim::stats {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(num_bins)),
      bins_(num_bins, 0) {
  CCSIM_CHECK(hi > lo);
  CCSIM_CHECK(num_bins >= 1);
}

void Histogram::Record(double x) {
  // NaN fails `x < lo_` and +inf overflows the size_t cast below — both
  // were UB before this guard. A non-finite response time is always a
  // simulator bug, so audit builds trap; release builds count and drop.
  if (!std::isfinite(x)) {
    CCSIM_DCHECK(false && "non-finite sample recorded into Histogram");
    ++nonfinite_;
    return;
  }
  if (count_ == 0 || x > max_) max_ = x;
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= bins_.size()) {
    ++overflow_;
    return;
  }
  ++bins_[idx];
}

void Histogram::Reset() {
  std::fill(bins_.begin(), bins_.end(), 0);
  count_ = underflow_ = overflow_ = nonfinite_ = 0;
  max_ = 0.0;
}

double Histogram::Quantile(double q) const {
  CCSIM_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return lo_;
  double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    double next = cum + static_cast<double>(bins_[i]);
    if (next >= target && bins_[i] > 0) {
      double frac = (target - cum) / static_cast<double>(bins_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  // The quantile lands in the overflow region: the old code clamped to
  // bin_hi(last), silently under-reporting any tail past `hi`. Report the
  // tracked true maximum instead.
  return max_;
}

}  // namespace ccsim::stats
