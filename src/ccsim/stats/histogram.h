#ifndef CCSIM_STATS_HISTOGRAM_H_
#define CCSIM_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace ccsim::stats {

/// Fixed-width-bin histogram over [lo, hi) with underflow/overflow buckets.
/// Used for response-time distributions in the examples and for diagnostic
/// output. For latency quantiles over a wide dynamic range prefer
/// LatencyHistogram, whose relative error is bounded everywhere.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t num_bins);

  void Record(double x);
  void Reset();

  std::uint64_t count() const { return count_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  /// Non-finite samples rejected (NaN / +-inf); never part of count().
  std::uint64_t nonfinite() const { return nonfinite_; }
  /// True when mass fell past `hi`: quantiles landing there report the
  /// tracked true max instead of silently clamping to the last bin edge.
  bool saturated() const { return overflow_ > 0; }
  /// Largest finite sample recorded (0 when empty).
  double max() const { return count_ ? max_ : 0.0; }
  std::size_t num_bins() const { return bins_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return bins_[i]; }
  double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

  /// Approximate quantile (linear interpolation within a bin); q in [0, 1].
  /// Quantiles that land in the overflow region return max().
  double Quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t nonfinite_ = 0;
  double max_ = 0.0;
};

}  // namespace ccsim::stats

#endif  // CCSIM_STATS_HISTOGRAM_H_
