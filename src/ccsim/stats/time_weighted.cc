#include "ccsim/stats/time_weighted.h"

#include "ccsim/sim/check.h"

namespace ccsim::stats {

void TimeWeighted::Set(sim::SimTime now, double value) {
  CCSIM_CHECK(now >= last_);
  integral_ += value_ * (now - last_);
  last_ = now;
  value_ = value;
}

void TimeWeighted::Add(sim::SimTime now, double delta) {
  Set(now, value_ + delta);
}

void TimeWeighted::Reset(sim::SimTime now) {
  integral_ = 0.0;
  start_ = now;
  last_ = now;
}

double TimeWeighted::Mean(sim::SimTime now) const {
  CCSIM_CHECK(now >= last_);
  double total = integral_ + value_ * (now - last_);
  double elapsed = now - start_;
  return elapsed > 0.0 ? total / elapsed : value_;
}

}  // namespace ccsim::stats
