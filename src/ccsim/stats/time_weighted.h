#ifndef CCSIM_STATS_TIME_WEIGHTED_H_
#define CCSIM_STATS_TIME_WEIGHTED_H_

#include "ccsim/sim/time.h"

namespace ccsim::stats {

/// Time-weighted average of a piecewise-constant signal (queue length,
/// busy/idle state). Utilization of a server is the time-weighted average of
/// its 0/1 busy indicator.
class TimeWeighted {
 public:
  explicit TimeWeighted(double initial_value = 0.0)
      : value_(initial_value) {}

  /// Records that the signal changed to `value` at time `now`. Integrates the
  /// previous value over [last_change, now).
  void Set(sim::SimTime now, double value);

  /// Adds `delta` to the current value at time `now`.
  void Add(sim::SimTime now, double delta);

  /// Restarts integration at `now`, keeping the current value (warmup
  /// deletion).
  void Reset(sim::SimTime now);

  /// Time-weighted mean over [reset_time, now].
  double Mean(sim::SimTime now) const;

  double current() const { return value_; }
  /// Integral of the signal since the last reset, up to the last change.
  double integral() const { return integral_; }

 private:
  double value_;
  double integral_ = 0.0;
  sim::SimTime start_ = 0.0;
  sim::SimTime last_ = 0.0;
};

}  // namespace ccsim::stats

#endif  // CCSIM_STATS_TIME_WEIGHTED_H_
