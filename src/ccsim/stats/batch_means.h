#ifndef CCSIM_STATS_BATCH_MEANS_H_
#define CCSIM_STATS_BATCH_MEANS_H_

#include <cstdint>
#include <vector>

namespace ccsim::stats {

/// Batch-means confidence interval estimator for steady-state simulation
/// output (the standard remedy for autocorrelated observations such as
/// successive transaction response times).
///
/// Observations are grouped into fixed-size batches; the batch means are
/// treated as (approximately) independent samples and a t-based confidence
/// interval is formed over them.
class BatchMeans {
 public:
  explicit BatchMeans(std::uint64_t batch_size);

  void Record(double x);
  void Reset();

  std::uint64_t observations() const { return observations_; }
  std::uint64_t num_batches() const { return batch_means_.size(); }

  /// Mean over *all* observations, including the in-progress partial batch.
  /// (The CI below still uses completed batches only; discarding the partial
  /// batch from the point estimate biased short runs.)
  double mean() const;

  /// Half-width of the confidence interval at ~95% confidence over batch
  /// means (complete batches only). Returns 0 with fewer than two completed
  /// batches.
  double half_width_95() const;

  /// Relative half-width (half_width / |mean|), or 0 if mean is 0.
  double relative_half_width_95() const;

 private:
  std::uint64_t batch_size_;
  std::uint64_t observations_ = 0;
  double running_sum_ = 0.0;
  double current_batch_sum_ = 0.0;
  std::uint64_t current_batch_count_ = 0;
  std::vector<double> batch_means_;
};

}  // namespace ccsim::stats

#endif  // CCSIM_STATS_BATCH_MEANS_H_
