#include "ccsim/resource/disk.h"

#include <utility>

#include "ccsim/sim/check.h"

namespace ccsim::resource {

Disk::Disk(sim::Simulation* sim, sim::SimTime min_access_time,
           sim::SimTime max_access_time, sim::RandomStream rng)
    : sim_(sim),
      min_time_(min_access_time),
      max_time_(max_access_time),
      rng_(std::move(rng)) {
  CCSIM_CHECK(min_access_time >= 0.0);
  CCSIM_CHECK(max_access_time >= min_access_time);
}

std::shared_ptr<sim::Completion<sim::Unit>> Disk::Access(DiskOp op) {
  auto completion = sim::MakeCompletion<sim::Unit>(sim_);
  Request req{completion, sim_->Now()};
  if (op == DiskOp::kWrite) {
    write_queue_.push_back(std::move(req));
  } else {
    read_queue_.push_back(std::move(req));
  }
  if (!in_service_) StartNext();
  return completion;
}

void Disk::StartNext() {
  CCSIM_CHECK(!in_service_);
  std::deque<Request>* q =
      !write_queue_.empty() ? &write_queue_
                            : (!read_queue_.empty() ? &read_queue_ : nullptr);
  if (q == nullptr) {
    busy_metric_.Set(sim_->Now(), 0.0);
    return;
  }
  Request req = std::move(q->front());
  q->pop_front();
  in_service_ = true;
  busy_metric_.Set(sim_->Now(), 1.0);
  wait_times_.Record(sim_->Now() - req.enqueue_time);
  sim::SimTime service = rng_.Uniform(min_time_, max_time_);
  if (fault_extra_time_) service += fault_extra_time_();
  // ccsim-analyze: coro-ok(Disk is owned by its Node which System keeps alive past the calendar teardown)
  sim_->After(service, [this, req = std::move(req)] {
    in_service_ = false;
    ++accesses_completed_;
    req.completion->Complete(sim::Unit{});
    StartNext();
  });
}

void Disk::ResetStats() {
  busy_metric_.Reset(sim_->Now());
  wait_times_.Reset();
  accesses_completed_ = 0;
}

}  // namespace ccsim::resource
