#ifndef CCSIM_RESOURCE_DISK_H_
#define CCSIM_RESOURCE_DISK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "ccsim/sim/completion.h"
#include "ccsim/sim/random.h"
#include "ccsim/sim/simulation.h"
#include "ccsim/stats/tally.h"
#include "ccsim/stats/time_weighted.h"

namespace ccsim::resource {

enum class DiskOp { kRead, kWrite };

/// A single disk with its own FIFO queue. Writes have (non-preemptive)
/// priority over reads, per Sec 3.4 of the paper: the asynchronous post-commit
/// write stream must keep up with demand. Access times are uniform over
/// [min_access_time, max_access_time].
class Disk {
 public:
  Disk(sim::Simulation* sim, sim::SimTime min_access_time,
       sim::SimTime max_access_time, sim::RandomStream rng);
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Enqueues an access; the completion fires when the transfer finishes.
  std::shared_ptr<sim::Completion<sim::Unit>> Access(DiskOp op);

  double Utilization() const { return busy_metric_.Mean(sim_->Now()); }
  void ResetStats();

  /// Fault hook: called once per access at service start; the returned
  /// extra seconds extend that access's busy time (a transient disk error
  /// retried in place). Null (default) = the paper's fault-free disk.
  void SetFaultHook(std::function<double()> hook) {
    fault_extra_time_ = std::move(hook);
  }

  /// Time requests spent waiting before service (since last stats reset).
  const stats::Tally& wait_times() const { return wait_times_; }
  std::uint64_t accesses_completed() const { return accesses_completed_; }
  std::size_t queue_length() const {
    return read_queue_.size() + write_queue_.size() +
           (in_service_ ? 1u : 0u);
  }

 private:
  struct Request {
    std::shared_ptr<sim::Completion<sim::Unit>> completion;
    sim::SimTime enqueue_time;
  };

  void StartNext();

  sim::Simulation* sim_;
  sim::SimTime min_time_;
  sim::SimTime max_time_;
  sim::RandomStream rng_;
  std::function<double()> fault_extra_time_;

  std::deque<Request> read_queue_;
  std::deque<Request> write_queue_;
  bool in_service_ = false;

  stats::TimeWeighted busy_metric_{0.0};
  stats::Tally wait_times_;
  std::uint64_t accesses_completed_ = 0;
};

}  // namespace ccsim::resource

#endif  // CCSIM_RESOURCE_DISK_H_
