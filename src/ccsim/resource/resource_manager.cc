#include "ccsim/resource/resource_manager.h"

#include "ccsim/sim/check.h"

namespace ccsim::resource {

ResourceManager::ResourceManager(sim::Simulation* sim, double mips,
                                 int num_disks, sim::SimTime min_disk_time,
                                 sim::SimTime max_disk_time,
                                 std::uint64_t master_seed,
                                 std::uint64_t node_stream_base)
    : sim_(sim),
      cpu_(sim, mips),
      disk_pick_(master_seed, node_stream_base) {
  CCSIM_CHECK(num_disks >= 0);
  disks_.reserve(static_cast<std::size_t>(num_disks));
  for (int i = 0; i < num_disks; ++i) {
    disks_.push_back(std::make_unique<Disk>(
        sim, min_disk_time, max_disk_time,
        sim::RandomStream(master_seed,
                          node_stream_base + 1 + static_cast<std::uint64_t>(i))));
  }
}

std::shared_ptr<sim::Completion<sim::Unit>> ResourceManager::DiskAccess(
    DiskOp op) {
  CCSIM_CHECK_MSG(!disks_.empty(), "disk access on a node with no disks");
  auto idx = static_cast<std::size_t>(
      disk_pick_.UniformInt(0, static_cast<std::int64_t>(disks_.size()) - 1));
  return disks_[idx]->Access(op);
}

double ResourceManager::MeanDiskUtilization() const {
  if (disks_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& d : disks_) sum += d->Utilization();
  return sum / static_cast<double>(disks_.size());
}

void ResourceManager::ResetStats() {
  cpu_.ResetStats();
  for (auto& d : disks_) d->ResetStats();
}

}  // namespace ccsim::resource
