#ifndef CCSIM_RESOURCE_RESOURCE_MANAGER_H_
#define CCSIM_RESOURCE_RESOURCE_MANAGER_H_

#include <memory>
#include <vector>

#include "ccsim/resource/cpu.h"
#include "ccsim/resource/disk.h"
#include "ccsim/sim/random.h"
#include "ccsim/sim/simulation.h"

namespace ccsim::resource {

/// The per-node resource manager of Sec 3.4: one CPU and `num_disks` disks.
/// Files at a node are assumed evenly spread over its disks, so each access
/// picks a disk uniformly at random.
class ResourceManager {
 public:
  ResourceManager(sim::Simulation* sim, double mips, int num_disks,
                  sim::SimTime min_disk_time, sim::SimTime max_disk_time,
                  std::uint64_t master_seed, std::uint64_t node_stream_base);
  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  Cpu& cpu() { return cpu_; }
  const Cpu& cpu() const { return cpu_; }

  int num_disks() const { return static_cast<int>(disks_.size()); }
  Disk& disk(int i) { return *disks_[static_cast<std::size_t>(i)]; }

  /// Enqueues an access on a uniformly chosen disk.
  std::shared_ptr<sim::Completion<sim::Unit>> DiskAccess(DiskOp op);

  /// Mean utilization across this node's disks.
  double MeanDiskUtilization() const;

  /// Installs a shared transient-error hook on every disk of this node
  /// (see Disk::SetFaultHook).
  void SetDiskFaultHook(std::function<double()> hook) {
    for (auto& d : disks_) d->SetFaultHook(hook);
  }

  void ResetStats();

 private:
  sim::Simulation* sim_;
  Cpu cpu_;
  std::vector<std::unique_ptr<Disk>> disks_;
  sim::RandomStream disk_pick_;
};

}  // namespace ccsim::resource

#endif  // CCSIM_RESOURCE_RESOURCE_MANAGER_H_
