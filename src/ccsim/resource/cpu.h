#ifndef CCSIM_RESOURCE_CPU_H_
#define CCSIM_RESOURCE_CPU_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "ccsim/sim/completion.h"
#include "ccsim/sim/simulation.h"
#include "ccsim/sim/time.h"
#include "ccsim/stats/time_weighted.h"

namespace ccsim::resource {

/// Scheduling class for CPU work, per the paper's resource manager (Sec 3.4):
/// message handling is served FIFO at higher priority; all other work shares
/// the processor (processor sharing).
enum class CpuJobClass {
  kMessage,  // FIFO, non-preemptive per job, preempts processor-sharing work
  kUser,     // processor sharing
};

/// A single CPU with the paper's two-class discipline.
///
/// Implementation: classic virtual-time processor sharing. A PS job with
/// demand `d` seconds completes when the PS virtual clock has advanced by
/// `d`; the virtual clock runs at rate 1/n with n active PS jobs, and at rate
/// 0 while message-class work occupies the CPU (priority preemption of the PS
/// class as a whole).
class Cpu {
 public:
  /// `mips`: instruction rate in millions of instructions per second.
  Cpu(sim::Simulation* sim, double mips);
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Submits `instructions` of work in the given class. The returned
  /// completion fires when the work finishes. Zero (or negative) demand
  /// completes immediately without occupying the CPU.
  std::shared_ptr<sim::Completion<sim::Unit>> Execute(double instructions,
                                                      CpuJobClass cls);

  /// Convenience: demand expressed directly in seconds.
  std::shared_ptr<sim::Completion<sim::Unit>> ExecuteSeconds(sim::SimTime
                                                                 seconds,
                                                             CpuJobClass cls);

  double mips() const { return mips_; }

  /// Fraction of time the CPU was busy (either class) since the last reset.
  double Utilization() const { return busy_.Mean(sim_->Now()); }
  /// Restarts utilization integration (warmup deletion).
  void ResetStats() { busy_.Reset(sim_->Now()); }

  /// Diagnostics.
  std::size_t ps_jobs_active() const { return ps_jobs_.size(); }
  std::size_t messages_queued() const { return msg_queue_.size(); }
  std::uint64_t jobs_completed() const { return jobs_completed_; }

 private:
  struct MsgJob {
    sim::SimTime duration;
    std::shared_ptr<sim::Completion<sim::Unit>> completion;
  };

  void UpdateVirtualTime();
  void UpdateBusy();
  void StartNextMessage();
  void ReschedulePsEvent();
  void OnPsEvent();
  void OnMessageDone();

  sim::Simulation* sim_;
  double mips_;

  // Message (priority, FIFO) class.
  std::deque<MsgJob> msg_queue_;
  bool msg_in_service_ = false;

  // Processor-sharing class, keyed by virtual completion time. A multimap
  // because independent jobs can share a virtual end time.
  std::multimap<double, std::shared_ptr<sim::Completion<sim::Unit>>> ps_jobs_;
  double v_now_ = 0.0;
  sim::SimTime last_update_ = 0.0;
  // The one pending PS-completion event, re-armed on every quantum change
  // (arrival, message preemption, harvest). Generation-tagged ids make the
  // cancel of a just-fired event safe.
  sim::Simulation::EventId ps_event_ = sim::Simulation::kInvalidEventId;
  bool ps_event_pending_ = false;

  stats::TimeWeighted busy_;
  std::uint64_t jobs_completed_ = 0;
};

}  // namespace ccsim::resource

#endif  // CCSIM_RESOURCE_CPU_H_
