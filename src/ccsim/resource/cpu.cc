#include "ccsim/resource/cpu.h"

#include <utility>

#include "ccsim/sim/check.h"

namespace ccsim::resource {

namespace {
// Relative slack when harvesting PS completions, to absorb floating-point
// drift in the virtual clock.
constexpr double kVirtualEps = 1e-9;
}  // namespace

Cpu::Cpu(sim::Simulation* sim, double mips) : sim_(sim), mips_(mips) {
  CCSIM_CHECK(mips > 0.0);
}

std::shared_ptr<sim::Completion<sim::Unit>> Cpu::Execute(double instructions,
                                                         CpuJobClass cls) {
  return ExecuteSeconds(sim::InstructionsToSeconds(instructions, mips_), cls);
}

std::shared_ptr<sim::Completion<sim::Unit>> Cpu::ExecuteSeconds(
    sim::SimTime seconds, CpuJobClass cls) {
  auto completion = sim::MakeCompletion<sim::Unit>(sim_);
  if (seconds <= 0.0) {
    completion->Complete(sim::Unit{});
    ++jobs_completed_;
    return completion;
  }
  UpdateVirtualTime();
  if (cls == CpuJobClass::kMessage) {
    msg_queue_.push_back(MsgJob{seconds, completion});
    if (!msg_in_service_) StartNextMessage();
    // Message service preempts PS work: the PS completion event (if any) is
    // now stale and must be pushed out.
    ReschedulePsEvent();
  } else {
    ps_jobs_.emplace(v_now_ + seconds, completion);
    ReschedulePsEvent();
  }
  UpdateBusy();
  return completion;
}

void Cpu::UpdateVirtualTime() {
  sim::SimTime now = sim_->Now();
  CCSIM_CHECK(now >= last_update_);
  if (!msg_in_service_ && !ps_jobs_.empty()) {
    v_now_ += (now - last_update_) / static_cast<double>(ps_jobs_.size());
  }
  last_update_ = now;
}

void Cpu::UpdateBusy() {
  bool busy = msg_in_service_ || !ps_jobs_.empty();
  busy_.Set(sim_->Now(), busy ? 1.0 : 0.0);
}

void Cpu::StartNextMessage() {
  CCSIM_CHECK(!msg_in_service_ && !msg_queue_.empty());
  msg_in_service_ = true;
  sim::SimTime duration = msg_queue_.front().duration;
  // ccsim-analyze: coro-ok(Cpu is owned by its Node which System keeps alive past the calendar teardown)
  sim_->After(duration, [this] { OnMessageDone(); });
}

void Cpu::OnMessageDone() {
  UpdateVirtualTime();
  CCSIM_CHECK(msg_in_service_ && !msg_queue_.empty());
  auto completion = std::move(msg_queue_.front().completion);
  msg_queue_.pop_front();
  msg_in_service_ = false;
  ++jobs_completed_;
  completion->Complete(sim::Unit{});
  if (!msg_queue_.empty()) {
    StartNextMessage();
  } else {
    // PS work resumes; schedule its next completion.
    ReschedulePsEvent();
  }
  UpdateBusy();
}

void Cpu::ReschedulePsEvent() {
  if (ps_event_pending_) {
    sim_->Cancel(ps_event_);
    ps_event_pending_ = false;
  }
  if (msg_in_service_ || !msg_queue_.empty() || ps_jobs_.empty()) return;
  double v_min = ps_jobs_.begin()->first;
  double dv = v_min - v_now_;
  if (dv < 0.0) dv = 0.0;
  sim::SimTime dt = dv * static_cast<double>(ps_jobs_.size());
  // ccsim-analyze: coro-ok(Cpu outlives the calendar; the PS event is additionally cancelled on reschedule)
  ps_event_ = sim_->After(dt, [this] { OnPsEvent(); });
  ps_event_pending_ = true;
}

void Cpu::OnPsEvent() {
  ps_event_pending_ = false;
  UpdateVirtualTime();
  CCSIM_CHECK(!ps_jobs_.empty());
  // Snap the virtual clock onto the earliest completion to absorb drift, then
  // harvest every job whose virtual end has been reached.
  double v_min = ps_jobs_.begin()->first;
  if (v_now_ < v_min) v_now_ = v_min;
  double cutoff = v_now_ * (1.0 + kVirtualEps) + kVirtualEps;
  while (!ps_jobs_.empty() && ps_jobs_.begin()->first <= cutoff) {
    auto completion = std::move(ps_jobs_.begin()->second);
    ps_jobs_.erase(ps_jobs_.begin());
    ++jobs_completed_;
    completion->Complete(sim::Unit{});
  }
  ReschedulePsEvent();
  UpdateBusy();
}

}  // namespace ccsim::resource
