#ifndef CCSIM_COMMON_SMALL_VEC_H_
#define CCSIM_COMMON_SMALL_VEC_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "ccsim/sim/check.h"

namespace ccsim::common {

/// A vector with inline storage for its first `N` elements, used where the
/// common case is tiny (lock holders, wait queues, per-txn key lists) and
/// per-element heap nodes would dominate memory: a SmallVec that never
/// exceeds N elements performs zero heap allocations, so churning millions
/// of them leaves malloc untouched (the megascale memory diet, DESIGN.md
/// decision #12).
///
/// Deliberately minimal: grow-only capacity, move-only (the element types it
/// holds — TxnPtr, Completion handles — are reference-counted, and copying a
/// container of them is always a bug in this codebase), and only the
/// operations the lock table and waits-for graph need. Iterators are plain
/// pointers; any mutation invalidates them.
template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "inline capacity must be at least 1");
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "elements must be nothrow-movable (grow moves them)");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() noexcept : data_(inline_data()), size_(0), capacity_(N) {}

  SmallVec(SmallVec&& other) noexcept : SmallVec() { StealFrom(other); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      DestroyAll();
      StealFrom(other);
    }
    return *this;
  }
  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  ~SmallVec() { DestroyAll(); }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  /// True while the elements live in the inline buffer (test hook).
  bool is_inline() const noexcept { return data_ == inline_data(); }

  T& operator[](std::size_t i) {
    CCSIM_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    CCSIM_DCHECK(i < size_);
    return data_[i];
  }
  T& front() { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }

  iterator begin() noexcept { return data_; }
  iterator end() noexcept { return data_ + size_; }
  const_iterator begin() const noexcept { return data_; }
  const_iterator end() const noexcept { return data_ + size_; }

  void push_back(T value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  /// Inserts before index `pos` (0..size), shifting the tail up.
  void insert(std::size_t pos, T value) {
    CCSIM_DCHECK(pos <= size_);
    emplace_back(std::move(value));  // may grow; constructs at the end
    for (std::size_t i = size_ - 1; i > pos; --i) {
      std::swap(data_[i - 1], data_[i]);
    }
  }

  /// Erases index `pos`, shifting the tail down (preserves order).
  void erase(std::size_t pos) {
    CCSIM_DCHECK(pos < size_);
    for (std::size_t i = pos + 1; i < size_; ++i) {
      data_[i - 1] = std::move(data_[i]);
    }
    pop_back();
  }

  void pop_back() {
    CCSIM_DCHECK(size_ > 0);
    --size_;
    data_[size_].~T();
  }

  void clear() noexcept { DestroyElements(); }

  /// Shrinks to `n` elements (n <= size), destroying the tail. The
  /// sort+unique idiom needs this in place of a range erase.
  void truncate(std::size_t n) {
    CCSIM_DCHECK(n <= size_);
    while (size_ > n) pop_back();
  }

  void reserve(std::size_t n) {
    if (n > capacity_) Grow(n);
  }

 private:
  T* inline_data() noexcept { return reinterpret_cast<T*>(inline_buf_); }
  const T* inline_data() const noexcept {
    return reinterpret_cast<const T*>(inline_buf_);
  }

  void Grow(std::size_t new_cap) {
    T* fresh = static_cast<T*>(
        ::operator new(new_cap * sizeof(T), std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    ReleaseHeap();
    data_ = fresh;
    capacity_ = new_cap;
  }

  /// Moves `other`'s contents here: steals the heap buffer outright, or
  /// moves elements one by one when they sit in `other`'s inline buffer.
  void StealFrom(SmallVec& other) noexcept {
    if (other.is_inline()) {
      for (std::size_t i = 0; i < other.size_; ++i) {
        ::new (static_cast<void*>(inline_data() + i))
            T(std::move(other.data_[i]));
      }
      size_ = other.size_;
      other.DestroyElements();
    } else {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_data();
      other.size_ = 0;
      other.capacity_ = N;
    }
  }

  void DestroyElements() noexcept {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  void ReleaseHeap() noexcept {
    if (!is_inline()) {
      ::operator delete(data_, std::align_val_t{alignof(T)});
    }
  }

  void DestroyAll() noexcept {
    DestroyElements();
    ReleaseHeap();
    data_ = inline_data();
    capacity_ = N;
  }

  alignas(T) unsigned char inline_buf_[N * sizeof(T)];
  T* data_;
  std::size_t size_;
  std::size_t capacity_;
};

}  // namespace ccsim::common

#endif  // CCSIM_COMMON_SMALL_VEC_H_
