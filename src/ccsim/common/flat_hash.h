#ifndef CCSIM_COMMON_FLAT_HASH_H_
#define CCSIM_COMMON_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "ccsim/sim/check.h"

namespace ccsim::common {

/// Fibonacci hash for integral keys (page keys, TxnIds). Multiplicative
/// mixing spreads sequential ids; the high bits are the well-mixed ones, so
/// shift before the table masks.
struct FibHash {
  std::size_t operator()(std::uint64_t k) const noexcept {
    return static_cast<std::size_t>((k * 0x9e3779b97f4a7c15ull) >> 16);
  }
};

/// Open-addressing hash map with linear probing and backward-shift deletion
/// (same scheme as sim::SuspendedSet), storing slots inline in one flat
/// array: no per-node heap allocation, ever. Replaces the per-page
/// ordered-map / unordered-map nodes in the lock table and waits-for graph,
/// where node churn dominated the megascale memory profile (DESIGN.md
/// decision #12).
///
/// Deliberately minimal and value-oriented:
///   - Keys are integral (hashed via FibHash); values need only be
///     nothrow-movable. Slots are move-relocated on growth and on
///     backward-shift deletion, so pointers/references returned by Find()
///     are invalidated by ANY mutation of the map — callers re-Find after
///     mutating, never hold references across inserts or erases.
///   - No iterators. ForEach visits entries in table (hash) order, which is
///     deterministic for a given insert/erase history but not sorted —
///     semantic iteration sites must sort keys first, exactly as they had
///     to with std::unordered_map (enforced by ccsim_lint/ccsim_analyze).
///   - Move-only, like the containers it replaces.
template <typename K, typename V, typename Hash = FibHash>
class FlatHashMap {
  static_assert(std::is_integral_v<K>, "flat map keys are integral ids");
  static_assert(std::is_nothrow_move_constructible_v<V>,
                "values must be nothrow-movable (relocation moves them)");

 public:
  FlatHashMap() noexcept = default;
  FlatHashMap(FlatHashMap&& other) noexcept { Steal(other); }
  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    if (this != &other) {
      Clear();
      ReleaseStorage();
      Steal(other);
    }
    return *this;
  }
  FlatHashMap(const FlatHashMap&) = delete;
  FlatHashMap& operator=(const FlatHashMap&) = delete;
  ~FlatHashMap() {
    Clear();
    ReleaseStorage();
  }

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// Pointer to the value for `key`, or nullptr. Invalidated by mutation.
  V* Find(K key) {
    if (count_ == 0) return nullptr;
    std::size_t i = Probe(key);
    return occupied_[i] ? &slots_[i].value : nullptr;
  }
  const V* Find(K key) const {
    return const_cast<FlatHashMap*>(this)->Find(key);
  }

  bool Contains(K key) const { return Find(key) != nullptr; }

  /// Inserts a default-constructed value if absent; returns the value.
  V& operator[](K key) { return *TryEmplace(key).first; }

  /// Inserts V(args...) if `key` is absent. Returns {value, inserted}.
  template <typename... Args>
  std::pair<V*, bool> TryEmplace(K key, Args&&... args) {
    if ((count_ + 1) * 4 > capacity_ * 3) Grow();
    std::size_t i = Probe(key);
    if (occupied_[i]) return {&slots_[i].value, false};
    ::new (static_cast<void*>(&slots_[i])) Slot{
        key, V(std::forward<Args>(args)...)};
    occupied_[i] = 1;
    ++count_;
    return {&slots_[i].value, true};
  }

  /// Removes `key`; returns true if it was present.
  bool Erase(K key) {
    if (count_ == 0) return false;
    std::size_t i = Probe(key);
    if (!occupied_[i]) return false;
    slots_[i].~Slot();
    occupied_[i] = 0;
    // Backward-shift deletion: relocate displaced successors into the hole
    // so probe chains stay intact (see sim::SuspendedSet::Erase).
    std::size_t mask = capacity_ - 1;
    std::size_t hole = i;
    for (std::size_t j = (i + 1) & mask; occupied_[j]; j = (j + 1) & mask) {
      std::size_t home = hash_(static_cast<std::uint64_t>(slots_[j].key)) &
                         mask;
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        ::new (static_cast<void*>(&slots_[hole]))
            Slot(std::move(slots_[j]));
        slots_[j].~Slot();
        occupied_[hole] = 1;
        occupied_[j] = 0;
        hole = j;
      }
    }
    --count_;
    return true;
  }

  void Clear() noexcept {
    for (std::size_t i = 0; count_ > 0 && i < capacity_; ++i) {
      if (!occupied_[i]) continue;
      slots_[i].~Slot();
      occupied_[i] = 0;
      --count_;
    }
  }

  /// Visits every (key, value) in table order — deterministic but unsorted;
  /// sort keys first when order is observable. Must not mutate the map.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (occupied_[i]) fn(slots_[i].key, slots_[i].value);
    }
  }
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (occupied_[i]) fn(slots_[i].key, slots_[i].value);
    }
  }

 private:
  struct Slot {
    K key;
    V value;
  };

  /// Index of `key`'s slot, or of the empty slot where it would go.
  std::size_t Probe(K key) const {
    std::size_t mask = capacity_ - 1;
    std::size_t i = hash_(static_cast<std::uint64_t>(key)) & mask;
    while (occupied_[i] && slots_[i].key != key) i = (i + 1) & mask;
    return i;
  }

  void Grow() {
    std::size_t new_cap = capacity_ == 0 ? 16 : capacity_ * 2;
    Slot* old_slots = slots_;
    std::vector<unsigned char> old_occupied = std::move(occupied_);
    std::size_t old_cap = capacity_;

    slots_ = static_cast<Slot*>(::operator new(
        new_cap * sizeof(Slot), std::align_val_t{alignof(Slot)}));
    occupied_.assign(new_cap, 0);
    capacity_ = new_cap;

    for (std::size_t i = 0; i < old_cap; ++i) {
      if (!old_occupied[i]) continue;
      std::size_t j = Probe(old_slots[i].key);
      ::new (static_cast<void*>(&slots_[j])) Slot(std::move(old_slots[i]));
      occupied_[j] = 1;
      old_slots[i].~Slot();
    }
    if (old_slots != nullptr) {
      ::operator delete(old_slots, std::align_val_t{alignof(Slot)});
    }
  }

  void Steal(FlatHashMap& other) noexcept {
    slots_ = other.slots_;
    occupied_ = std::move(other.occupied_);
    capacity_ = other.capacity_;
    count_ = other.count_;
    other.slots_ = nullptr;
    other.occupied_.clear();
    other.capacity_ = 0;
    other.count_ = 0;
  }

  void ReleaseStorage() noexcept {
    if (slots_ != nullptr) {
      ::operator delete(slots_, std::align_val_t{alignof(Slot)});
      slots_ = nullptr;
    }
    capacity_ = 0;
  }

  Slot* slots_ = nullptr;
  std::vector<unsigned char> occupied_;
  std::size_t capacity_ = 0;
  std::size_t count_ = 0;
  [[no_unique_address]] Hash hash_;
};

}  // namespace ccsim::common

#endif  // CCSIM_COMMON_FLAT_HASH_H_
