#ifndef CCSIM_COMMON_TYPES_H_
#define CCSIM_COMMON_TYPES_H_

#include <cstdint>
#include <functional>

namespace ccsim {

/// Node identifier. Node 0 is the host node (where terminals attach and
/// coordinators run); nodes 1..NumProcNodes are processing nodes (where data
/// lives and cohorts run).
using NodeId = int;
inline constexpr NodeId kHostNode = 0;

/// Transaction identifier; unique across the whole run (never reused, also
/// not across restarts of the same logical transaction -- restart attempts
/// share the TxnId but carry a distinct attempt number).
using TxnId = std::uint64_t;

/// File identifier: one file per relation partition.
using FileId = int;

/// A page of a file: the unit of data access, locking, and timestamping.
struct PageRef {
  FileId file = 0;
  int page = 0;

  friend bool operator==(const PageRef&, const PageRef&) = default;

  /// Dense 64-bit key for hash maps.
  std::uint64_t Key() const {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(file))
            << 32) |
           static_cast<std::uint32_t>(page);
  }
};

struct PageRefHash {
  std::size_t operator()(const PageRef& p) const {
    return std::hash<std::uint64_t>{}(p.Key());
  }
};

/// A logical timestamp: (wall-clock simulated time, transaction id) ordered
/// lexicographically, so ties at identical simulated times are broken
/// deterministically and every transaction's timestamp is globally unique.
struct Timestamp {
  double time = 0.0;
  TxnId id = 0;

  friend bool operator==(const Timestamp&, const Timestamp&) = default;
  friend bool operator<(const Timestamp& a, const Timestamp& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.id < b.id;
  }
  friend bool operator<=(const Timestamp& a, const Timestamp& b) {
    return a < b || a == b;
  }
  friend bool operator>(const Timestamp& a, const Timestamp& b) {
    return b < a;
  }
  friend bool operator>=(const Timestamp& a, const Timestamp& b) {
    return b <= a;
  }
};

/// The timestamp every data item starts with ("written by the initial load").
inline constexpr Timestamp kTimestampZero{-1.0, 0};

/// Kind of data access a cohort requests.
enum class AccessMode { kRead, kWrite };

}  // namespace ccsim

#endif  // CCSIM_COMMON_TYPES_H_
