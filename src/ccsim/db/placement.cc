#include "ccsim/db/placement.h"

#include <algorithm>

#include "ccsim/sim/check.h"

namespace ccsim::db {

std::vector<NodeId> ComputePlacement(const config::DatabaseParams& db,
                                     int num_proc_nodes, int degree) {
  CCSIM_CHECK(degree >= 1 && degree <= num_proc_nodes);
  CCSIM_CHECK(db.partitions_per_relation % degree == 0);
  CCSIM_CHECK(num_proc_nodes % degree == 0);

  int parts = db.partitions_per_relation;
  int block = parts / degree;            // partitions per hosting node
  int stride = num_proc_nodes / degree;  // node stride between blocks

  std::vector<NodeId> file_to_node(
      static_cast<std::size_t>(db.num_files()));
  for (int r = 0; r < db.num_relations; ++r) {
    for (int j = 0; j < parts; ++j) {
      FileId f = r * parts + j;
      int k = j / block;  // which hosting node of this relation
      int proc = (r + k * stride) % num_proc_nodes;
      file_to_node[static_cast<std::size_t>(f)] = proc + 1;  // 1-based
    }
  }
  return file_to_node;
}

std::vector<NodeId> NodesOfRelation(const std::vector<NodeId>& file_to_node,
                                    const config::DatabaseParams& db, int r) {
  CCSIM_CHECK(r >= 0 && r < db.num_relations);
  std::vector<NodeId> nodes;
  int parts = db.partitions_per_relation;
  for (int j = 0; j < parts; ++j) {
    NodeId n = file_to_node[static_cast<std::size_t>(r * parts + j)];
    if (std::find(nodes.begin(), nodes.end(), n) == nodes.end())
      nodes.push_back(n);
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

}  // namespace ccsim::db
