#ifndef CCSIM_DB_CATALOG_H_
#define CCSIM_DB_CATALOG_H_

#include <vector>

#include "ccsim/common/types.h"
#include "ccsim/config/params.h"

namespace ccsim::db {

/// The database catalog: the set of files (relation partitions), their sizes
/// in pages, and the FileLocations mapping of files to processing nodes
/// (Table 1). Immutable once built.
///
/// Per-relation layouts (files, nodes, files-per-node) are precomputed at
/// construction and returned by reference: the access generator walks them
/// once per transaction, and recomputing them allocated O(degree^2) vectors
/// per generated transaction (a measurable slice of the megascale memory
/// churn, DESIGN.md decision #12).
class Catalog {
 public:
  Catalog(const config::DatabaseParams& db, std::vector<NodeId> file_to_node);

  int num_relations() const { return db_.num_relations; }
  int partitions_per_relation() const { return db_.partitions_per_relation; }
  int num_files() const { return db_.num_files(); }
  int pages_per_file() const { return db_.pages_per_file; }

  NodeId NodeOfFile(FileId f) const;
  NodeId NodeOfPage(const PageRef& p) const { return NodeOfFile(p.file); }

  int RelationOfFile(FileId f) const;
  FileId FileOf(int relation, int partition) const;

  /// All files of a relation, in partition order.
  const std::vector<FileId>& FilesOfRelation(int r) const;

  /// Distinct nodes holding relation `r`'s partitions, ascending.
  const std::vector<NodeId>& NodesOfRelation(int r) const;

  /// Files of relation `r` placed at NodesOfRelation(r)[node_index], in
  /// partition order.
  const std::vector<FileId>& FilesOfRelationAt(int r,
                                               std::size_t node_index) const;

  const std::vector<NodeId>& file_to_node() const { return file_to_node_; }

 private:
  struct RelationLayout {
    std::vector<FileId> files;  // partition order
    std::vector<NodeId> nodes;  // distinct, ascending
    // files_by_node[i]: files at nodes[i], partition order.
    std::vector<std::vector<FileId>> files_by_node;
  };

  const RelationLayout& LayoutOf(int r) const;

  config::DatabaseParams db_;
  std::vector<NodeId> file_to_node_;
  std::vector<RelationLayout> layouts_;  // index = relation
};

}  // namespace ccsim::db

#endif  // CCSIM_DB_CATALOG_H_
