#include "ccsim/db/catalog.h"

#include <utility>

#include "ccsim/db/placement.h"
#include "ccsim/sim/check.h"

namespace ccsim::db {

Catalog::Catalog(const config::DatabaseParams& db,
                 std::vector<NodeId> file_to_node)
    : db_(db), file_to_node_(std::move(file_to_node)) {
  CCSIM_CHECK(static_cast<int>(file_to_node_.size()) == db_.num_files());
}

NodeId Catalog::NodeOfFile(FileId f) const {
  CCSIM_CHECK(f >= 0 && f < num_files());
  return file_to_node_[static_cast<std::size_t>(f)];
}

int Catalog::RelationOfFile(FileId f) const {
  CCSIM_CHECK(f >= 0 && f < num_files());
  return f / db_.partitions_per_relation;
}

FileId Catalog::FileOf(int relation, int partition) const {
  CCSIM_CHECK(relation >= 0 && relation < db_.num_relations);
  CCSIM_CHECK(partition >= 0 && partition < db_.partitions_per_relation);
  return relation * db_.partitions_per_relation + partition;
}

std::vector<FileId> Catalog::FilesOfRelation(int r) const {
  CCSIM_CHECK(r >= 0 && r < db_.num_relations);
  std::vector<FileId> files;
  files.reserve(static_cast<std::size_t>(db_.partitions_per_relation));
  for (int j = 0; j < db_.partitions_per_relation; ++j)
    files.push_back(FileOf(r, j));
  return files;
}

std::vector<NodeId> Catalog::NodesOfRelation(int r) const {
  return db::NodesOfRelation(file_to_node_, db_, r);
}

}  // namespace ccsim::db
