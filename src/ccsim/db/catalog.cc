#include "ccsim/db/catalog.h"

#include <utility>

#include "ccsim/db/placement.h"
#include "ccsim/sim/check.h"

namespace ccsim::db {

Catalog::Catalog(const config::DatabaseParams& db,
                 std::vector<NodeId> file_to_node)
    : db_(db), file_to_node_(std::move(file_to_node)) {
  CCSIM_CHECK(static_cast<int>(file_to_node_.size()) == db_.num_files());
  layouts_.resize(static_cast<std::size_t>(db_.num_relations));
  for (int r = 0; r < db_.num_relations; ++r) {
    RelationLayout& layout = layouts_[static_cast<std::size_t>(r)];
    layout.files.reserve(static_cast<std::size_t>(db_.partitions_per_relation));
    for (int j = 0; j < db_.partitions_per_relation; ++j) {
      layout.files.push_back(FileOf(r, j));
    }
    layout.nodes = db::NodesOfRelation(file_to_node_, db_, r);
    layout.files_by_node.resize(layout.nodes.size());
    for (std::size_t i = 0; i < layout.nodes.size(); ++i) {
      for (FileId f : layout.files) {
        if (NodeOfFile(f) == layout.nodes[i]) {
          layout.files_by_node[i].push_back(f);
        }
      }
    }
  }
}

NodeId Catalog::NodeOfFile(FileId f) const {
  CCSIM_CHECK(f >= 0 && f < num_files());
  return file_to_node_[static_cast<std::size_t>(f)];
}

int Catalog::RelationOfFile(FileId f) const {
  CCSIM_CHECK(f >= 0 && f < num_files());
  return f / db_.partitions_per_relation;
}

FileId Catalog::FileOf(int relation, int partition) const {
  CCSIM_CHECK(relation >= 0 && relation < db_.num_relations);
  CCSIM_CHECK(partition >= 0 && partition < db_.partitions_per_relation);
  return relation * db_.partitions_per_relation + partition;
}

const Catalog::RelationLayout& Catalog::LayoutOf(int r) const {
  CCSIM_CHECK(r >= 0 && r < db_.num_relations);
  return layouts_[static_cast<std::size_t>(r)];
}

const std::vector<FileId>& Catalog::FilesOfRelation(int r) const {
  return LayoutOf(r).files;
}

const std::vector<NodeId>& Catalog::NodesOfRelation(int r) const {
  return LayoutOf(r).nodes;
}

const std::vector<FileId>& Catalog::FilesOfRelationAt(
    int r, std::size_t node_index) const {
  const RelationLayout& layout = LayoutOf(r);
  CCSIM_CHECK(node_index < layout.files_by_node.size());
  return layout.files_by_node[node_index];
}

}  // namespace ccsim::db
