#ifndef CCSIM_DB_PLACEMENT_H_
#define CCSIM_DB_PLACEMENT_H_

#include <vector>

#include "ccsim/common/types.h"
#include "ccsim/config/params.h"

namespace ccsim::db {

/// Computes the paper's declustered placement (Secs 4.2-4.4).
///
/// Relation `r`'s partitions are spread over `degree` processing nodes,
/// starting at node `(r mod num_proc_nodes)` and striding by
/// `num_proc_nodes / degree` so that every node hosts the same number of
/// partition groups. Partitions are assigned to those nodes in contiguous
/// blocks of `partitions_per_relation / degree`:
///   degree=1: all partitions of R_r at node S_r                 (1-way)
///   degree=4 on 8 nodes: R_r at S_r, S_r+2, S_r+4, S_r+6        (4-way)
///   degree=8 on 8 nodes: partition j of R_r at S_(r+j mod 8)    (8-way)
/// Returned vector maps FileId -> NodeId (processing nodes are 1-based:
/// node ids 1..num_proc_nodes; the host is node 0 and holds no data).
std::vector<NodeId> ComputePlacement(const config::DatabaseParams& db,
                                     int num_proc_nodes, int degree);

/// Nodes that hold at least one partition of relation `r` (ascending order).
std::vector<NodeId> NodesOfRelation(const std::vector<NodeId>& file_to_node,
                                    const config::DatabaseParams& db, int r);

}  // namespace ccsim::db

#endif  // CCSIM_DB_PLACEMENT_H_
