#ifndef CCSIM_CONFIG_PARAMS_H_
#define CCSIM_CONFIG_PARAMS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ccsim::config {

/// The concurrency control algorithms studied in the paper (Sec 2), plus the
/// NO_DC ideal ("2PL with an infinitely large database": every request is
/// granted, nothing ever aborts).
enum class CcAlgorithm {
  kNoDc,
  kTwoPhaseLocking,   // 2PL  [Gray79] + rotating "Snoop" global detection
  kWoundWait,         // WW   [Rose78]
  kBasicTimestamp,    // BTO  [Bern80]
  kOptimistic,        // OPT  [Sinh85], distributed certification
  /// Extension (not in the paper's figure set): 2PL with deferred write
  /// locks, after the remark in the paper's conclusions [Care89] - write
  /// accesses take shared locks during execution and upgrade to exclusive
  /// in the first phase of the commit protocol, shortening exclusive hold
  /// times at the cost of certification-like late aborts (via deadlocks).
  kTwoPhaseLockingDeferred,
  /// Extension: wait-die locking, the sibling scheme of wound-wait in
  /// [Rose78] - a requester that would wait for an *older* transaction
  /// aborts itself instead ("dies"); older requesters wait. No deadlocks,
  /// cheap self-aborts at request time.
  kWaitDie,
  /// Extension: 2PL with timeout-based deadlock handling (footnote 2 /
  /// [Jenq89]): no detection at all; a request that waits longer than
  /// LockingParams::timeout_sec aborts its transaction.
  kTwoPhaseLockingTimeout,
};

/// Cohort execution pattern of a transaction class (Sec 3.3).
enum class ExecPattern {
  kSequential,  // cohorts one after another (remote-procedure-call style)
  kParallel,    // cohorts started together (database machine style)
};

/// How the per-partition page count is spread around its mean. Section 3.2 of
/// the paper says "between half and twice the average" while footnote 12 says
/// 4..12 pages for an average of 8 (and derives the observed 64/12 = 5.33
/// speedup limit); the footnote reading is the default.
enum class PageCountSpread {
  kSymmetric,    // uniform integer in [avg/2, 3*avg/2]  (footnote 12)
  kHalfToTwice,  // uniform integer in [avg/2, 2*avg]    (Sec 3.2 text)
};

/// How a transaction picks the relation it accesses.
enum class RelationChoice {
  kByTerminalGroup,  // terminals divided into groups of equal size, group g
                     // always accesses relation g (the paper's workload)
  kUniform,          // uniformly random relation per transaction
};

/// Machine configuration (Tables 1 and 3).
struct MachineParams {
  int num_proc_nodes = 8;    // NumProcNodes (1 host node is implicit)
  double host_mips = 10.0;   // CPURate of the host node
  double node_mips = 1.0;    // CPURate of each processing node
  int disks_per_node = 2;    // NumDisks per processing node
  double min_disk_ms = 10.0;  // MinDiskTime
  double max_disk_ms = 30.0;  // MaxDiskTime
};

/// Database shape (Table 1). Placement is configured separately.
struct DatabaseParams {
  int num_relations = 8;
  int partitions_per_relation = 8;  // files per relation
  int pages_per_file = 300;         // FileSize (300 small / 1200 large)

  int num_files() const { return num_relations * partitions_per_relation; }
  std::int64_t total_pages() const {
    return static_cast<std::int64_t>(num_files()) * pages_per_file;
  }
};

/// Degree of horizontal partitioning (declustering): each relation's
/// partitions are spread over `degree` processing nodes, offset by relation
/// index so load stays balanced (Secs 4.2-4.4). `degree` must divide
/// `partitions_per_relation` and `num_proc_nodes`.
struct PlacementParams {
  int degree = 8;
};

/// One transaction class (Table 2 per-class parameters).
struct TransactionClassParams {
  double fraction = 1.0;  // ClassFrac: fraction of terminals in this class
  ExecPattern exec_pattern = ExecPattern::kParallel;
  RelationChoice relation_choice = RelationChoice::kByTerminalGroup;
  double pages_per_partition_avg = 8.0;  // NumPages per accessed file
  double write_prob = 0.25;              // WriteProb per accessed page
  double inst_per_page = 8000.0;         // InstPerPage (mean, exponential)
  PageCountSpread spread = PageCountSpread::kSymmetric;
};

/// Workload shape of the host node (Table 2).
struct WorkloadParams {
  int num_terminals = 128;       // NumTerminals
  double think_time_sec = 8.0;   // ThinkTime (mean, exponential)
  std::vector<TransactionClassParams> classes = {TransactionClassParams{}};
  /// Restart semantics. false (default): a restarted transaction re-runs
  /// with the same access set (it is the same transaction). true: "fake
  /// restarts" in the sense of [Agra87a] - the restart draws a fresh access
  /// set from the same class and relation, decorrelating repeated conflicts
  /// between the same transaction pairs.
  bool fake_restarts = false;
};

/// Options of the lock-based managers (2PL, WW). `queue_jump` selects the
/// lock queue policy: false = strict FIFO (a request never overtakes an
/// occupied queue; no writer starvation); true = requests compatible with
/// the current holders are granted immediately (fewer waits and deadlocks,
/// readers can starve writers). The paper does not pin this detail; strict
/// FIFO is the default.
struct LockingParams {
  bool queue_jump = false;
  /// Wait timeout for CcAlgorithm::kTwoPhaseLockingTimeout. [Jenq89] (and
  /// the paper's footnote 2) found this a critical, sensitive parameter;
  /// bench/ablation_lock_timeout sweeps it.
  double timeout_sec = 1.0;
};

/// CPU overhead parameters (Tables 3 and the CC manager parameter).
struct CostParams {
  double inst_per_update = 2000.0;   // InstPerUpdate: initiate one disk write
  double inst_per_startup = 2000.0;  // InstPerStartup: start a process
  double inst_per_msg = 1000.0;      // InstPerMsg: send or receive a message
  double inst_per_cc_req = 0.0;      // InstPerCCReq: one CC request
  double deadlock_interval_sec = 1.0;  // DetectionInterval (2PL Snoop)
};

/// Deterministic fault injection (extension; the paper's model of Sec 3 is
/// failure-free). All rates default to zero, which reproduces the paper's
/// machine exactly: with every rate at zero no fault process is spawned, no
/// timeout is armed, and no extra RNG stream is consumed, so metric digests
/// are byte-identical to the failure-free model. Faults are driven by
/// dedicated named RNG streams (DESIGN.md decision #9), so the same seed and
/// the same FaultParams replay the same crash/drop/error schedule.
///
/// The host node (node 0) never fails: it stands in for the paper's
/// centralized transaction manager, whose durability is out of scope here.
struct FaultParams {
  /// Mean time to failure of each processing node (exponential). 0 = nodes
  /// never crash.
  double node_mttf_sec = 0.0;
  /// Mean time to repair a crashed node (exponential; used when mttf > 0).
  double node_mttr_sec = 10.0;
  /// Probability that a remote message transmission is lost (per attempt,
  /// including retransmissions). 0 = reliable network.
  double msg_drop_prob = 0.0;
  /// Probability that a disk access suffers a transient error and is
  /// retried in place, occupying the disk for an extra delay.
  double disk_error_prob = 0.0;
  /// Extra disk busy time per transient error.
  double disk_error_delay_ms = 50.0;

  // --- protocol hardening knobs (armed only when any() is true) ----------
  /// Coordinator/cohort 2PC reply timeout: how long a waiting party lets a
  /// phase sit without progress before it presumes abort (or, past the
  /// commit point, resends the decision). 0 disables protocol timeouts
  /// (useful for constructing deliberately wedged runs in tests).
  double msg_timeout_sec = 30.0;
  /// Network-level retransmissions per message before it is lost for good.
  int max_msg_retries = 3;
  /// First retransmission backoff; doubles per retry.
  double retry_backoff_sec = 0.05;
  /// Coordinator resends of a COMMIT/ABORT decision (each after another
  /// msg_timeout_sec) before it force-terminates the protocol: missing
  /// acknowledgements are presumed (the cohort re-converges on recovery).
  int max_decision_resends = 2;

  /// True when any fault rate is nonzero, i.e. the fault machinery (the
  /// injector process, protocol timeouts, retransmission) is active.
  bool any() const {
    return node_mttf_sec > 0.0 || msg_drop_prob > 0.0 || disk_error_prob > 0.0;
  }
};

/// Run control: warmup deletion and measurement window.
struct RunParams {
  double warmup_sec = 300.0;
  double measure_sec = 1500.0;
  std::uint64_t seed = 42;
  /// Restart delay prior used before the first commit has been observed
  /// (after that, the running mean response time is used, as in the paper).
  double initial_rt_estimate_sec = 1.0;
  /// Record read/write sets and run the serializability audit (testing).
  bool enable_audit = false;
  /// Batch size for response-time batch-means confidence intervals.
  std::uint64_t rt_batch_size = 200;
  /// Watchdog: fail the run (with a diagnostic dump) after this many fired
  /// events. 0 = unlimited. Diagnostic-only: not part of Fingerprint().
  // ccsim-analyze: fp-exempt(diagnostic kill switch; a tripped watchdog aborts the process instead of returning a result, so it can never change a cached metric)
  std::uint64_t watchdog_max_events = 0;
  /// Watchdog: fail the run if this much virtual time passes without any
  /// transaction committing (a wedged or livelocked protocol). 0 = off.
  /// Diagnostic-only: not part of Fingerprint().
  // ccsim-analyze: fp-exempt(diagnostic kill switch; a tripped watchdog aborts the process instead of returning a result, so it can never change a cached metric)
  double watchdog_stall_sec = 0.0;
};

/// Complete configuration of one simulation run.
struct SystemConfig {
  MachineParams machine;
  DatabaseParams database;
  PlacementParams placement;
  WorkloadParams workload;
  CostParams costs;
  LockingParams locking;
  FaultParams faults;
  RunParams run;
  CcAlgorithm algorithm = CcAlgorithm::kTwoPhaseLocking;

  /// Returns an empty string if the configuration is consistent, else a
  /// human-readable description of the first problem found.
  std::string Validate() const;

  /// Stable content hash (used as the bench result-cache key).
  std::uint64_t Fingerprint() const;
};

/// The paper's Table 4 settings: 8 relations x 8 partitions, 128 terminals,
/// 8 pages/partition, write prob 1/4, 8K instructions/page, 10 MIPS host,
/// 1 MIPS nodes, 2 disks/node at 10-30 ms, 2K/2K/1K/0 cost instructions,
/// 1 s detection interval.
SystemConfig PaperBaseConfig();

const char* ToString(CcAlgorithm a);
const char* ToString(ExecPattern p);

/// All five algorithms in the paper's presentation order.
inline constexpr CcAlgorithm kAllAlgorithms[] = {
    CcAlgorithm::kTwoPhaseLocking, CcAlgorithm::kBasicTimestamp,
    CcAlgorithm::kWoundWait, CcAlgorithm::kOptimistic, CcAlgorithm::kNoDc};

}  // namespace ccsim::config

#endif  // CCSIM_CONFIG_PARAMS_H_
