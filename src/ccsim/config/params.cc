#include "ccsim/config/params.h"

#include <cmath>
#include <cstring>
#include <sstream>

namespace ccsim::config {

namespace {

// FNV-1a over a byte-serialized view of the config. Doubles are hashed via
// their bit patterns; this is a cache key, not a cryptographic digest.
class Hasher {
 public:
  void Mix(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    MixBits(bits);
  }
  void Mix(std::uint64_t v) { MixBits(v); }
  void Mix(int v) { MixBits(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void Mix(bool v) { MixBits(v ? 1 : 0); }
  std::uint64_t digest() const { return h_; }

 private:
  void MixBits(std::uint64_t bits) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (bits >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace

std::string SystemConfig::Validate() const {
  std::ostringstream err;
  if (machine.num_proc_nodes < 1) return "num_proc_nodes must be >= 1";
  if (machine.host_mips <= 0 || machine.node_mips <= 0)
    return "CPU rates must be positive";
  if (machine.disks_per_node < 1) return "disks_per_node must be >= 1";
  if (machine.min_disk_ms < 0 || machine.max_disk_ms < machine.min_disk_ms)
    return "disk time range invalid";
  if (database.num_relations < 1 || database.partitions_per_relation < 1)
    return "database shape invalid";
  if (database.pages_per_file < 1) return "pages_per_file must be >= 1";
  if (placement.degree < 1) return "placement degree must be >= 1";
  if (placement.degree > machine.num_proc_nodes)
    return "placement degree exceeds number of processing nodes";
  if (database.partitions_per_relation % placement.degree != 0)
    return "placement degree must divide partitions_per_relation";
  if (machine.num_proc_nodes % placement.degree != 0)
    return "placement degree must divide num_proc_nodes";
  if (workload.num_terminals < 1) return "num_terminals must be >= 1";
  if (workload.think_time_sec < 0) return "think_time_sec must be >= 0";
  if (workload.classes.empty()) return "at least one transaction class";
  double frac = 0.0;
  for (const auto& c : workload.classes) {
    if (c.fraction < 0) return "class fraction must be >= 0";
    frac += c.fraction;
    if (c.pages_per_partition_avg <= 0) return "pages_per_partition_avg must be > 0";
    if (c.write_prob < 0 || c.write_prob > 1) return "write_prob out of range";
    if (c.inst_per_page < 0) return "inst_per_page must be >= 0";
    int lo = static_cast<int>(c.pages_per_partition_avg / 2.0);
    if (lo < 1) return "pages_per_partition_avg too small (min count < 1)";
    // The largest possible per-partition count must fit in the file.
    int hi = (c.spread == PageCountSpread::kSymmetric)
                 ? static_cast<int>(3.0 * c.pages_per_partition_avg / 2.0)
                 : static_cast<int>(2.0 * c.pages_per_partition_avg);
    if (hi > database.pages_per_file)
      return "pages_per_partition max exceeds pages_per_file";
  }
  if (std::abs(frac - 1.0) > 1e-9) return "class fractions must sum to 1";
  if (workload.classes[0].relation_choice == RelationChoice::kByTerminalGroup &&
      workload.num_terminals % database.num_relations != 0)
    return "num_terminals must be a multiple of num_relations for "
           "terminal-group relation choice";
  if (costs.inst_per_update < 0 || costs.inst_per_startup < 0 ||
      costs.inst_per_msg < 0 || costs.inst_per_cc_req < 0)
    return "cost instruction counts must be >= 0";
  if (costs.deadlock_interval_sec <= 0)
    return "deadlock_interval_sec must be > 0";
  if (locking.timeout_sec <= 0) return "locking timeout_sec must be > 0";
  if (faults.node_mttf_sec < 0) return "node_mttf_sec must be >= 0";
  if (faults.node_mttf_sec > 0 && faults.node_mttr_sec <= 0)
    return "node_mttr_sec must be > 0 when node_mttf_sec > 0";
  if (faults.msg_drop_prob < 0 || faults.msg_drop_prob >= 1)
    return "msg_drop_prob out of range [0, 1)";
  if (faults.disk_error_prob < 0 || faults.disk_error_prob >= 1)
    return "disk_error_prob out of range [0, 1)";
  if (faults.disk_error_prob > 0 && faults.disk_error_delay_ms <= 0)
    return "disk_error_delay_ms must be > 0 when disk_error_prob > 0";
  if (faults.msg_timeout_sec < 0) return "msg_timeout_sec must be >= 0";
  if (faults.max_msg_retries < 0) return "max_msg_retries must be >= 0";
  if (faults.max_msg_retries > 0 && faults.retry_backoff_sec <= 0)
    return "retry_backoff_sec must be > 0 when max_msg_retries > 0";
  if (faults.max_decision_resends < 0)
    return "max_decision_resends must be >= 0";
  if (faults.msg_drop_prob > 0 && faults.msg_timeout_sec == 0 &&
      faults.node_mttf_sec == 0)
    // Without node crashes the only way a dropped 2PC reply resolves is a
    // protocol timeout; forbid the combination that can only wedge. (Tests
    // that *want* a wedge inject drops via a test hook, not msg_drop_prob.)
    return "msg_drop_prob > 0 requires msg_timeout_sec > 0";
  if (run.warmup_sec < 0 || run.measure_sec <= 0) return "run window invalid";
  if (run.watchdog_stall_sec < 0) return "watchdog_stall_sec must be >= 0";
  return "";
}

std::uint64_t SystemConfig::Fingerprint() const {
  Hasher h;
  h.Mix(machine.num_proc_nodes);
  h.Mix(machine.host_mips);
  h.Mix(machine.node_mips);
  h.Mix(machine.disks_per_node);
  h.Mix(machine.min_disk_ms);
  h.Mix(machine.max_disk_ms);
  h.Mix(database.num_relations);
  h.Mix(database.partitions_per_relation);
  h.Mix(database.pages_per_file);
  h.Mix(placement.degree);
  h.Mix(workload.num_terminals);
  h.Mix(workload.think_time_sec);
  // Later-added optional knobs are mixed only when they deviate from their
  // defaults, so fingerprints of existing configurations stay stable across
  // releases (the bench result cache keys on them).
  if (workload.fake_restarts) h.Mix(workload.fake_restarts);
  if (algorithm == CcAlgorithm::kTwoPhaseLockingTimeout)
    h.Mix(locking.timeout_sec);
  // rt_batch_size changes rt_ci_half_width, so it must key the cache too.
  if (run.rt_batch_size != RunParams{}.rt_batch_size) h.Mix(run.rt_batch_size);
  // enable_audit never perturbs the event stream, but it changes what the
  // result *reports* (audited/serializable), so an audit run must not be
  // served a cached non-audit result or vice versa. Mixed only when set:
  // every committed cache entry was produced with the audit off and keeps
  // its fingerprint.
  if (run.enable_audit) h.Mix(run.enable_audit);
  // Fault injection: mixed only when active, so every fault-free config
  // keeps its pre-fault fingerprint (and cached result). The watchdog knobs
  // are deliberately excluded - they never change metrics, only whether a
  // broken run dies loudly.
  if (faults.any()) {
    h.Mix(faults.node_mttf_sec);
    h.Mix(faults.node_mttr_sec);
    h.Mix(faults.msg_drop_prob);
    h.Mix(faults.disk_error_prob);
    h.Mix(faults.disk_error_delay_ms);
    h.Mix(faults.msg_timeout_sec);
    h.Mix(faults.max_msg_retries);
    h.Mix(faults.retry_backoff_sec);
    h.Mix(faults.max_decision_resends);
  }
  h.Mix(static_cast<int>(workload.classes.size()));
  for (const auto& c : workload.classes) {
    h.Mix(c.fraction);
    h.Mix(static_cast<int>(c.exec_pattern));
    h.Mix(static_cast<int>(c.relation_choice));
    h.Mix(c.pages_per_partition_avg);
    h.Mix(c.write_prob);
    h.Mix(c.inst_per_page);
    h.Mix(static_cast<int>(c.spread));
  }
  h.Mix(costs.inst_per_update);
  h.Mix(costs.inst_per_startup);
  h.Mix(costs.inst_per_msg);
  h.Mix(costs.inst_per_cc_req);
  h.Mix(costs.deadlock_interval_sec);
  h.Mix(locking.queue_jump);
  h.Mix(run.warmup_sec);
  h.Mix(run.measure_sec);
  h.Mix(run.seed);
  h.Mix(run.initial_rt_estimate_sec);
  h.Mix(static_cast<int>(algorithm));
  return h.digest();
}

SystemConfig PaperBaseConfig() {
  SystemConfig cfg;  // defaults in the struct definitions are Table 4 values
  return cfg;
}

const char* ToString(CcAlgorithm a) {
  switch (a) {
    case CcAlgorithm::kNoDc: return "NO_DC";
    case CcAlgorithm::kTwoPhaseLocking: return "2PL";
    case CcAlgorithm::kWoundWait: return "WW";
    case CcAlgorithm::kBasicTimestamp: return "BTO";
    case CcAlgorithm::kOptimistic: return "OPT";
    case CcAlgorithm::kTwoPhaseLockingDeferred: return "2PL-DW";
    case CcAlgorithm::kWaitDie: return "WD";
    case CcAlgorithm::kTwoPhaseLockingTimeout: return "2PL-TO";
  }
  return "?";
}

const char* ToString(ExecPattern p) {
  switch (p) {
    case ExecPattern::kSequential: return "sequential";
    case ExecPattern::kParallel: return "parallel";
  }
  return "?";
}

}  // namespace ccsim::config
