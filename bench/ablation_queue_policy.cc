// Ablation: lock queue policy for the lock-based algorithms. The paper does
// not pin whether a request compatible with the current holders may overtake
// queued waiters; ccsim defaults to strict FIFO (no overtaking). This
// ablation quantifies the difference.

#include <cstdio>

#include "bench_common.h"

CCSIM_BENCH_FIGURE(ablation_queue_policy) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Ablation: lock queue policy",
      "2PL and WW under strict-FIFO vs. reader-overtaking lock queues",
      "overtaking slightly reduces blocking for read-dominated workloads at "
      "the risk of writer starvation; with the paper's parameters the effect "
      "is small (most waits are write requests against read locks)");
  PrintRunScaleNote();

  ResultCache cache;
  std::printf("%-6s %12s %14s %12s %14s %14s\n", "alg", "queue", "response(s)",
              "txns/sec", "abort ratio", "blocking(ms)");
  for (auto alg : {config::CcAlgorithm::kTwoPhaseLocking,
                   config::CcAlgorithm::kWoundWait}) {
    for (bool jump : {false, true}) {
      auto cfg = experiments::Exp2Config(8, 300, alg, 4.0);
      cfg.locking.queue_jump = jump;
      auto r = cache.GetOrRun(cfg);
      std::printf("%-6s %12s %14.3f %12.3f %14.3f %14.2f\n",
                  config::ToString(alg), jump ? "overtake" : "fifo",
                  r.mean_response_time, r.throughput, r.abort_ratio,
                  r.mean_blocking_time * 1000.0);
    }
  }
  return 0;
}
