// Figure 17: Response time speedup vs. partitioning degree at think time 8 s
// with InstPerMsg raised to 4K instructions (InstPerStartup 0) (Sec 4.4).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig17_speedup_msg4k_tt8) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Figure 17",
      "RT speedup vs. partitioning degree, InstPerMsg=4K, think time 8 s",
      "like Figure 16 at a lighter load: speedups below the free-message "
      "case of Figure 15, and little or no gain from 4-way to 8-way");
  PrintRunScaleNote();

  ResultCache cache;
  auto sweep = Exp3Sweep(cache, 0, 4000, /*think=*/8);
  ReportSeries("fig17_speedup_msg4k_tt8", "RT speedup vs 1-way (msg 4K, think 8)", "degree",
      {1, 2, 4, 8}, Algorithms(), [&](config::CcAlgorithm alg, double degree) {
        double base = At(sweep, alg, 1).mean_response_time;
        double rt = At(sweep, alg, degree).mean_response_time;
        return rt > 0 ? base / rt : 0.0;
      });
  return 0;
}
