// Footnote 7 of the paper: "In addition to an 8-node configuration, we also
// ran several experiments with 16-node and 32-node configurations (with
// larger update transactions). Since the trends were similar ... we present
// only the 8-node results." This binary reproduces the 16-node variant with
// a proportionally larger transaction (16 partitions per relation).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(exp1_scale16) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Sec 4.2 footnote (16-node variant)",
      "Throughput and RT speedups, 16-node vs. 1-node, 128-page transactions",
      "same trends as Figures 4-5 at double the scale: throughput speedup "
      "approaches 16 under load; RT speedup spikes at intermediate think "
      "times");
  PrintRunScaleNote();

  auto make = [](int nodes) {
    return [nodes](config::CcAlgorithm alg, double think) {
      auto cfg = experiments::Exp1Config(1, alg, think);
      cfg.machine.num_proc_nodes = nodes;
      cfg.placement.degree = nodes;
      // Larger transactions: 16 partitions per relation so a transaction
      // still touches every partition (128 reads, ~32 updates).
      cfg.database.partitions_per_relation = 16;
      return cfg;
    };
  };

  ResultCache cache;
  std::vector<double> thinks{0, 8, 16, 32, 64, 120};
  auto one = experiments::RunGrid(cache, Algorithms(), thinks, make(1));
  auto sixteen = experiments::RunGrid(cache, Algorithms(), thinks, make(16));

  ReportSeries("exp1_scale16", "Throughput speedup (16-node / 1-node)", "think(s)", thinks,
      Algorithms(), [&](config::CcAlgorithm alg, double x) {
        double denom = At(one, alg, x).throughput;
        return denom > 0 ? At(sixteen, alg, x).throughput / denom : 0.0;
      });
  ReportSeries("exp1_scale16_2", "Response time speedup (1-node / 16-node)", "think(s)",
      thinks, Algorithms(), [&](config::CcAlgorithm alg, double x) {
        double denom = At(sixteen, alg, x).mean_response_time;
        return denom > 0 ? At(one, alg, x).mean_response_time / denom : 0.0;
      });
  return 0;
}
