// Ablation: sensitivity of 2PL to the Snoop's DetectionInterval (Sec 2.2 /
// Table 4 fix it at 1 s; footnote 2 of the paper notes that timeout-based
// schemes found the interval "critical and sensitive"). Shows how detection
// latency trades off against Snoop message traffic.

#include <cstdio>

#include "bench_common.h"

CCSIM_BENCH_FIGURE(ablation_detection_interval) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Ablation: deadlock detection interval",
      "2PL metrics vs. Snoop DetectionInterval, 8-way, think time 4 s",
      "longer intervals leave global deadlocks undetected longer (higher "
      "response time, more blocking) but cost fewer messages; the paper's "
      "1 s sits on the flat part of the curve");
  PrintRunScaleNote();

  ResultCache cache;
  std::vector<double> intervals{0.1, 0.25, 0.5, 1.0, 2.0, 4.0};
  auto points = experiments::RunGrid(
      cache, {config::CcAlgorithm::kTwoPhaseLocking}, intervals,
      [](config::CcAlgorithm alg, double interval) {
        auto cfg = experiments::Exp2Config(8, 300, alg, 4.0);
        cfg.costs.deadlock_interval_sec = interval;
        return cfg;
      });

  std::printf("%12s %14s %12s %14s %16s %14s\n", "interval(s)", "response(s)",
              "txns/sec", "abort ratio", "global-dl aborts", "msgs/commit");
  for (double i : intervals) {
    const auto& r = At(points, config::CcAlgorithm::kTwoPhaseLocking, i);
    std::printf("%12.2f %14.3f %12.3f %14.3f %16llu %14.1f\n", i,
                r.mean_response_time, r.throughput, r.abort_ratio,
                static_cast<unsigned long long>(r.aborts_global_deadlock),
                r.messages_per_commit);
  }
  return 0;
}
