// Figure 5: Response time speedup (1-node RT / 8-node RT) vs. think time
// (Sec 4.2).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig05_response_speedup) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Figure 5",
      "Response time speedup: 1-node RT / 8-node RT",
      "about 6.5 at think 0 (eight times the hardware), about 5.3 at think "
      "120 (parallelism limited by the largest cohort, 64/12), with a huge "
      "spike (NO_DC > 100) at intermediate think times where the 8-node "
      "system has already left the saturated regime");
  PrintRunScaleNote();

  ResultCache cache;
  auto one = Exp1Sweep(cache, 1);
  auto eight = Exp1Sweep(cache, 8);
  auto xs = experiments::PaperThinkTimes();

  ReportSeries("fig05_response_speedup", "Response time speedup (1-node / 8-node)", "think(s)", xs,
      Algorithms(), [&](config::CcAlgorithm alg, double x) {
        double denom = At(eight, alg, x).mean_response_time;
        return denom > 0 ? At(one, alg, x).mean_response_time / denom : 0.0;
      });

  // The light-load asymptote: with one transaction in the machine at a time
  // the speedup is limited by the longest cohort (64/12 = 5.33; footnote 12
  // of the paper). Demonstrated with very large think times.
  std::vector<double> tail{240, 480, 960};
  auto make1 = [](config::CcAlgorithm alg, double think) {
    return experiments::Exp1Config(1, alg, think);
  };
  auto make8 = [](config::CcAlgorithm alg, double think) {
    return experiments::Exp1Config(8, alg, think);
  };
  auto one_tail = experiments::RunGrid(cache, Algorithms(), tail, make1);
  auto eight_tail = experiments::RunGrid(cache, Algorithms(), tail, make8);
  ReportSeries("fig05_response_speedup_2",
      "Light-load asymptote (expect ~5.3, the 64/12 longest-cohort limit)",
      "think(s)", tail, Algorithms(), [&](config::CcAlgorithm alg, double x) {
        double denom = At(eight_tail, alg, x).mean_response_time;
        return denom > 0 ? At(one_tail, alg, x).mean_response_time / denom
                         : 0.0;
      });
  return 0;
}
