// Tables 1-4 of the paper: the model parameters and the simulation settings
// used by every experiment binary. Printed from the live configuration
// structs so this output cannot drift from the code.

#include <cstdio>

#include "ccsim/config/params.h"

#include "bench_common.h"

CCSIM_BENCH_FIGURE(tables_params) {
  using namespace ccsim::config;
  SystemConfig cfg = PaperBaseConfig();

  std::printf("Table 1: Database Model Parameters\n");
  std::printf("  %-18s %s\n", "Parameter", "Value");
  std::printf("  %-18s 1 host\n", "NumHostNodes");
  std::printf("  %-18s 1, 2, 4, 8 nodes (8 when fixed); default %d\n",
              "NumProcNodes", cfg.machine.num_proc_nodes);
  std::printf("  %-18s %d files (%d relations x %d partitions)\n", "NumFiles",
              cfg.database.num_files(), cfg.database.num_relations,
              cfg.database.partitions_per_relation);
  std::printf("  %-18s 300 or 1200 pages/file; default %d\n", "FileSize",
              cfg.database.pages_per_file);
  std::printf("  %-18s declustered, degree 1/2/4/8; default %d\n",
              "FileLocations", cfg.placement.degree);

  std::printf("\nTable 2: Workload Model Parameters (host node)\n");
  const TransactionClassParams& cls = cfg.workload.classes[0];
  std::printf("  %-18s %d terminals (groups of %d per relation)\n",
              "NumTerminals", cfg.workload.num_terminals,
              cfg.workload.num_terminals / cfg.database.num_relations);
  std::printf("  %-18s 0-120 seconds (swept); default %.0f s\n", "ThinkTime",
              cfg.workload.think_time_sec);
  std::printf("  %-18s %zu\n", "NumClasses", cfg.workload.classes.size());
  std::printf("  %-18s %s\n", "ExecPattern", ToString(cls.exec_pattern));
  std::printf("  %-18s %d files (all partitions of one relation)\n",
              "FileCount", cfg.database.partitions_per_relation);
  std::printf("  %-18s %.0f pages per partition (uniform %.0f..%.0f)\n",
              "NumPages", cls.pages_per_partition_avg,
              cls.pages_per_partition_avg / 2,
              3 * cls.pages_per_partition_avg / 2);
  std::printf("  %-18s %.2f\n", "WriteProb", cls.write_prob);
  std::printf("  %-18s %.0fK instructions (exponential)\n", "InstPerPage",
              cls.inst_per_page / 1000);

  std::printf("\nTable 3: Resource Manager Parameters\n");
  std::printf("  %-18s host %.0f MIPS, nodes %.0f MIPS\n", "CPURate",
              cfg.machine.host_mips, cfg.machine.node_mips);
  std::printf("  %-18s %d disks/node\n", "NumDisks",
              cfg.machine.disks_per_node);
  std::printf("  %-18s %.0f ms\n", "MinDiskTime", cfg.machine.min_disk_ms);
  std::printf("  %-18s %.0f ms\n", "MaxDiskTime", cfg.machine.max_disk_ms);
  std::printf("  %-18s %.0fK instructions\n", "InstPerUpdate",
              cfg.costs.inst_per_update / 1000);
  std::printf("  %-18s 0, 2K, 20K instructions (2K when fixed)\n",
              "InstPerStartup");
  std::printf("  %-18s 0, 1K, 4K instructions (1K when fixed)\n",
              "InstPerMsg");

  std::printf("\nTable 4: Additional Settings\n");
  std::printf("  %-18s %.0f (negligible)\n", "InstPerCCReq",
              cfg.costs.inst_per_cc_req);
  std::printf("  %-18s %.0f second(s)\n", "DetectionInterval",
              cfg.costs.deadlock_interval_sec);
  std::printf("  %-18s abort restart delay = one average response time\n",
              "RestartDelay");
  return 0;
}
