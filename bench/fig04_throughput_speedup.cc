// Figure 4: Throughput speedup (8-node vs. 1-node) vs. think time (Sec 4.2).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig04_throughput_speedup) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Figure 4",
      "Throughput speedup: 8-node throughput / 1-node throughput",
      "close to 8 at low think times, decaying toward 1 at high think "
      "times; CC algorithms slightly exceed NO_DC (parallelism also relieves "
      "contention), OPT gaining the most extra speedup and 2PL the least");
  PrintRunScaleNote();

  ResultCache cache;
  auto one = Exp1Sweep(cache, 1);
  auto eight = Exp1Sweep(cache, 8);
  auto xs = experiments::PaperThinkTimes();

  ReportSeries("fig04_throughput_speedup", "Throughput speedup (8-node / 1-node)", "think(s)", xs,
      Algorithms(), [&](config::CcAlgorithm alg, double x) {
        double denom = At(one, alg, x).throughput;
        return denom > 0 ? At(eight, alg, x).throughput / denom : 0.0;
      });
  return 0;
}
