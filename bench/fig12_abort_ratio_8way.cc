// Figure 12: Abort ratio (aborts per commit) vs. think time, 8-way
// partitioning, small database (Sec 4.3).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig12_abort_ratio_8way) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Figure 12",
      "Abort ratio (aborts per commit), 8-way partitioning, small DB",
      "consistent with Figure 10: the more an algorithm relies on aborts, "
      "the higher its ratio - OPT and WW high, BTO moderate, 2PL lowest "
      "(deadlocks only)");
  PrintRunScaleNote();

  ResultCache cache;
  auto sweep = Exp2Sweep(cache, 8, 300);
  auto xs = experiments::PaperThinkTimes();

  ReportSeries("fig12_abort_ratio_8way", "Abort ratio (8-way)", "think(s)", xs,
                          RealAlgorithms(),
                          [&](config::CcAlgorithm alg, double x) {
                            return At(sweep, alg, x).abort_ratio;
                          });
  return 0;
}
