#ifndef CCSIM_BENCH_BENCH_COMMON_H_
#define CCSIM_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <vector>

#include "ccsim/config/params.h"
#include "ccsim/experiments/cache.h"
#include "ccsim/experiments/experiments.h"
#include "ccsim/experiments/report.h"
#include "ccsim/experiments/runner.h"
#include "ccsim/experiments/sweep.h"

namespace ccsim::bench {

using experiments::At;
using experiments::Point;
using experiments::ResultCache;

/// Figure registration. Every figure binary defines its body with
/// CCSIM_BENCH_FIGURE(name) and links the shared bench_main.cc, which
/// provides main(): flag parsing (--jobs) plus running every registered
/// figure in name order. Individual binaries register exactly one figure;
/// the run_all driver links all of them and regenerates every table and
/// CSV in a single invocation over one shared warm cache.
using FigureFn = int (*)();
bool RegisterFigure(const char* name, FigureFn fn);

/// Parses common bench flags (--jobs N / --jobs=N sets the ParallelRunner
/// pool size; $CCSIM_JOBS is the env equivalent). Exits on unknown flags.
void InitBench(int argc, char** argv);

/// Runs every registered figure in name order; returns the first non-zero
/// figure exit code, else 0.
int RunRegisteredFigures();

inline const std::vector<config::CcAlgorithm>& Algorithms() {
  static const std::vector<config::CcAlgorithm> algs(
      std::begin(config::kAllAlgorithms), std::end(config::kAllAlgorithms));
  return algs;
}

inline const std::vector<config::CcAlgorithm>& RealAlgorithms() {
  static const std::vector<config::CcAlgorithm> algs{
      config::CcAlgorithm::kTwoPhaseLocking, config::CcAlgorithm::kBasicTimestamp,
      config::CcAlgorithm::kWoundWait, config::CcAlgorithm::kOptimistic};
  return algs;
}

/// Experiment 1 sweep (Sec 4.2): think-time grid at one machine size.
inline std::vector<Point> Exp1Sweep(const ResultCache& cache, int nodes) {
  return experiments::RunGrid(
      cache, Algorithms(), experiments::PaperThinkTimes(),
      [nodes](config::CcAlgorithm alg, double think) {
        return experiments::Exp1Config(nodes, alg, think);
      });
}

/// Experiment 2 sweep (Sec 4.3): think-time grid at one partitioning degree
/// and database size.
inline std::vector<Point> Exp2Sweep(const ResultCache& cache, int degree,
                                    int pages_per_file) {
  return experiments::RunGrid(
      cache, Algorithms(), experiments::PaperThinkTimes(),
      [degree, pages_per_file](config::CcAlgorithm alg, double think) {
        return experiments::Exp2Config(degree, pages_per_file, alg, think);
      });
}

/// Experiment 3 sweep (Sec 4.4): partitioning-degree grid at one overhead
/// setting and think time.
inline std::vector<Point> Exp3Sweep(const ResultCache& cache,
                                    double inst_per_startup,
                                    double inst_per_msg, double think) {
  return experiments::RunGrid(
      cache, Algorithms(), {1, 2, 4, 8},
      [=](config::CcAlgorithm alg, double degree) {
        return experiments::Exp3Config(static_cast<int>(degree),
                                       inst_per_startup, inst_per_msg, alg,
                                       think);
      });
}

inline void PrintRunScaleNote() {
  std::cout << "Run windows: set CCSIM_QUICK=1 for smoke runs, CCSIM_FULL=1 "
               "for long runs.\nResults are cached in "
            << ResultCache().directory()
            << " (delete to recompute; shared across figure binaries).\n\n";
}

/// Prints one series as an ASCII table AND writes it as CSV under
/// $CCSIM_CSV_DIR (default ./bench_results) for plotting.
inline void ReportSeries(const std::string& slug, const std::string& title,
                         const std::string& x_label,
                         const std::vector<double>& xs,
                         const std::vector<config::CcAlgorithm>& algorithms,
                         const experiments::CellFn& cell, int precision = 3) {
  experiments::PrintTable(std::cout, title, x_label, xs, algorithms, cell,
                          precision);
  const char* env = std::getenv("CCSIM_CSV_DIR");
  std::string dir = env != nullptr && env[0] != '\0' ? env : "bench_results";
  std::string path = dir + "/" + slug + ".csv";
  if (experiments::WriteCsvFile(path, x_label, xs, algorithms, cell)) {
    std::cout << "[csv] " << path << "\n";
  }
}

}  // namespace ccsim::bench

/// Defines the body of one figure and registers it under `name` (which is
/// also the binary's CMake target name).
#define CCSIM_BENCH_FIGURE(name)                                     \
  static int name##_figure_body();                                   \
  [[maybe_unused]] static const bool name##_registered =             \
      ccsim::bench::RegisterFigure(#name, &name##_figure_body);      \
  static int name##_figure_body()

#endif  // CCSIM_BENCH_BENCH_COMMON_H_
