// Megascale extension (ROADMAP item 5): 256- and 1024-node machines with
// millions of pages, an order of magnitude past the paper's figures. The
// workload is a scaleup of Experiment 1 — per-transaction parallelism stays
// at 8 cohorts while relations and terminals grow with the machine — so the
// quantities under test are the *kernel's* scaling limits, not the paper's
// algorithm ranking: events/sec of simulated machine and peak-RSS
// memory-per-node. Both are printed per machine size; peak RSS is sampled
// after each size's sweep (run sizes ascending, cold cache) so the delta is
// attributable. tools/check_bench_regression.py gates a 256-node smoke run
// of this figure (CCSIM_MEGASCALE_SMOKE=1) on both metrics.

#include <sys/resource.h>

#include <cstdlib>
#include <fstream>

#include "bench_common.h"

namespace {

// Peak RSS of this process in MB (Linux getrusage reports KB). Monotone
// non-decreasing over process lifetime, hence the ascending-size run order.
double PeakRssMb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

bool EnvSet(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

CCSIM_BENCH_FIGURE(ext_megascale) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Megascale extension",
      "events/sec and peak-RSS memory-per-node on 256/1024-node machines "
      "(millions of pages), think 8 s",
      "sim rate stays flat per node while memory-per-node bounds the largest "
      "machine one process can hold");
  PrintRunScaleNote();
  std::cout << "Peak-RSS numbers are meaningful for cold-cache runs only "
               "(cached points skip the simulation).\n\n";

  // PR CI runs the 256-node smoke (one algorithm); nightly runs the full
  // grid cold. CCSIM_QUICK alone also stops at 256 nodes so local smoke
  // invocations stay light.
  std::vector<int> sizes = experiments::MegascaleNodeCounts();
  std::vector<config::CcAlgorithm> algorithms{
      config::CcAlgorithm::kTwoPhaseLocking, config::CcAlgorithm::kNoDc};
  const bool smoke = EnvSet("CCSIM_MEGASCALE_SMOKE");
  if (smoke || EnvSet("CCSIM_QUICK")) sizes = {256};
  if (smoke) algorithms = {config::CcAlgorithm::kTwoPhaseLocking};

  ResultCache cache;
  std::vector<experiments::Point> points;
  struct SizeReport {
    int nodes;
    double peak_rss_mb;
  };
  std::vector<SizeReport> rss;
  for (int nodes : sizes) {
    auto sweep = experiments::RunGrid(
        cache, algorithms, {static_cast<double>(nodes)},
        [](config::CcAlgorithm alg, double n) {
          return experiments::MegascaleConfig(static_cast<int>(n), alg,
                                              /*think_time=*/8.0);
        });
    points.insert(points.end(), sweep.begin(), sweep.end());
    rss.push_back({nodes, PeakRssMb()});
  }

  std::vector<double> xs(sizes.begin(), sizes.end());
  ReportSeries("ext_megascale_throughput",
      "committed transactions/sec vs machine size",
      "nodes", xs, algorithms, [&](config::CcAlgorithm alg, double x) {
        return At(points, alg, x).throughput;
      });
  ReportSeries("ext_megascale_events_per_sec",
      "simulation events/sec of wall time (from the computing run)",
      "nodes", xs, algorithms, [&](config::CcAlgorithm alg, double x) {
        const auto& r = At(points, alg, x);
        return r.wall_seconds > 0.0
                   ? static_cast<double>(r.events) / r.wall_seconds
                   : 0.0;
      },
      /*precision=*/0);
  ReportSeries("ext_megascale_rt_p99",
      "p99 response time (s) vs machine size",
      "nodes", xs, algorithms, [&](config::CcAlgorithm alg, double x) {
        return At(points, alg, x).rt_p99;
      });

  // Memory accounting, one row per machine size (cumulative across the
  // ascending sweep; the per-size delta is what each machine costs).
  const char* env = std::getenv("CCSIM_CSV_DIR");
  std::string dir = env != nullptr && env[0] != '\0' ? env : "bench_results";
  std::ofstream csv(dir + "/ext_megascale_memory.csv");
  csv << "nodes,peak_rss_mb,mb_per_node\n";
  std::cout << "Peak RSS after each machine size (ascending, cumulative):\n";
  for (const auto& s : rss) {
    double per_node = s.peak_rss_mb / s.nodes;
    std::printf("  nodes=%-5d peak_rss_mb=%-9.1f mb_per_node=%.3f\n",
                s.nodes, s.peak_rss_mb, per_node);
    csv << s.nodes << ',' << s.peak_rss_mb << ',' << per_node << '\n';
  }
  std::cout << "[csv] " << dir << "/ext_megascale_memory.csv\n";
  return 0;
}
