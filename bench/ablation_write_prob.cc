// Ablation: write probability. The paper's text is internally inconsistent
// (Table 4 says WriteProb = 1/4, i.e. ~16 updates per 64-page transaction,
// while Sec 4.1 says transactions "do an average of 8 writes", i.e. 1/8).
// ccsim follows Table 4; this ablation shows how the choice shifts the
// contention level and each algorithm's abort ratio.

#include <cstdio>

#include "bench_common.h"

CCSIM_BENCH_FIGURE(ablation_write_prob) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Ablation: WriteProb 1/4 vs 1/8",
      "All algorithms at 8-way, think time 4 s, small DB",
      "halving the update rate roughly halves abort ratios and shrinks the "
      "spread between the algorithms; the ordering is unchanged");
  PrintRunScaleNote();

  ResultCache cache;
  std::printf("%-6s %12s %14s %12s %14s\n", "alg", "write_prob", "response(s)",
              "txns/sec", "abort ratio");
  for (double wp : {0.25, 0.125}) {
    for (auto alg : Algorithms()) {
      auto cfg = experiments::Exp2Config(8, 300, alg, 4.0);
      cfg.workload.classes[0].write_prob = wp;
      auto r = cache.GetOrRun(cfg);
      std::printf("%-6s %12.3f %14.3f %12.3f %14.3f\n", config::ToString(alg),
                  wp, r.mean_response_time, r.throughput, r.abort_ratio);
    }
  }
  return 0;
}
