// Figure 13: Abort ratio (aborts per commit) vs. think time, 1-way
// partitioning, small database (Sec 4.3).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig13_abort_ratio_1way) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Figure 13",
      "Abort ratio (aborts per commit), 1-way partitioning, small DB",
      "same ordering as Figure 12; WW aborts are cheaper than OPT aborts "
      "(they occur earlier in a transaction's life), which is why WW "
      "outperforms OPT despite comparable ratios");
  PrintRunScaleNote();

  ResultCache cache;
  auto sweep = Exp2Sweep(cache, 1, 300);
  auto xs = experiments::PaperThinkTimes();

  ReportSeries("fig13_abort_ratio_1way", "Abort ratio (1-way)", "think(s)", xs,
                          RealAlgorithms(),
                          [&](config::CcAlgorithm alg, double x) {
                            return At(sweep, alg, x).abort_ratio;
                          });
  return 0;
}
