// Section 4.2 text: the 4-node variant of Experiment 1. The paper reports
// (without figures) that the curves look like Figures 4-5 with the maximum
// throughput speedup slightly above four and the mid-load NO_DC response
// time speedup reaching almost 60.

#include "bench_common.h"

CCSIM_BENCH_FIGURE(exp1_fournode) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Sec 4.2 (4-node variant)",
      "Throughput and response-time speedups, 4-node vs. 1-node",
      "throughput speedup peaks slightly above 4; response-time speedup "
      "peaks near 60 for NO_DC at intermediate think times, higher for the "
      "CC algorithms");
  PrintRunScaleNote();

  ResultCache cache;
  auto one = Exp1Sweep(cache, 1);
  auto four = Exp1Sweep(cache, 4);
  auto xs = experiments::PaperThinkTimes();

  ReportSeries("exp1_fournode", "Throughput speedup (4-node / 1-node)", "think(s)", xs,
      Algorithms(), [&](config::CcAlgorithm alg, double x) {
        double denom = At(one, alg, x).throughput;
        return denom > 0 ? At(four, alg, x).throughput / denom : 0.0;
      });
  ReportSeries("exp1_fournode_2", "Response time speedup (1-node / 4-node)", "think(s)", xs,
      Algorithms(), [&](config::CcAlgorithm alg, double x) {
        double denom = At(four, alg, x).mean_response_time;
        return denom > 0 ? At(one, alg, x).mean_response_time / denom : 0.0;
      });
  return 0;
}
