// Section 4.4 text: the heavyweight-process variant of Experiment 3
// (InstPerStartup=20K, InstPerMsg=0). The paper reports results "very close
// to those of Figures 16 and 17", with process initiation cost replacing
// message cost as the factor limiting speedup.

#include "bench_common.h"

CCSIM_BENCH_FIGURE(exp3_startup20k) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Sec 4.4 (startup 20K variant)",
      "RT speedup vs. partitioning degree, InstPerStartup=20K, InstPerMsg=0",
      "very close to Figures 16/17: heavyweight process initiation caps the "
      "gain from higher degrees of parallelism");
  PrintRunScaleNote();

  ResultCache cache;
  for (double think : {0.0, 8.0}) {
    auto sweep = Exp3Sweep(cache, /*inst_per_startup=*/20000,
                           /*inst_per_msg=*/0, think);
    std::string think_tag = std::to_string(static_cast<int>(think));
    std::string title =
        "RT speedup vs 1-way (startup 20K, think " + think_tag + ")";
    ReportSeries("exp3_startup20k_tt" + think_tag, title, "degree",
                 {1, 2, 4, 8}, Algorithms(),
        [&](config::CcAlgorithm alg, double degree) {
          double base = At(sweep, alg, 1).mean_response_time;
          double rt = At(sweep, alg, degree).mean_response_time;
          return rt > 0 ? base / rt : 0.0;
        });
  }
  return 0;
}
