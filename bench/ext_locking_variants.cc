// Extension experiment: the full family of lock-based schemes side by side -
// detection-based 2PL (the paper's), wound-wait (the paper's), wait-die
// ([Rose78]'s sibling scheme), timeout-based 2PL ([Jenq89]/footnote 2), and
// deferred-write 2PL ([Care89]/footnote 13) - on the paper's 8-way workload.

#include "bench_common.h"

CCSIM_BENCH_FIGURE(ext_locking_variants) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Extension: locking-scheme family",
      "All lock-based schemes, 8-way partitioning, small DB",
      "detection (2PL) and prevention (WW/WD) trade blocking for aborts in "
      "different places: WD aborts more but earlier than WW; timeout-based "
      "2PL tracks detection-based 2PL only when its interval is tuned; "
      "2PL-DW shortens write contention");
  PrintRunScaleNote();

  ResultCache cache;
  std::vector<config::CcAlgorithm> algs{
      config::CcAlgorithm::kTwoPhaseLocking,
      config::CcAlgorithm::kTwoPhaseLockingDeferred,
      config::CcAlgorithm::kTwoPhaseLockingTimeout,
      config::CcAlgorithm::kWoundWait,
      config::CcAlgorithm::kWaitDie,
      config::CcAlgorithm::kNoDc};
  std::vector<double> thinks{0, 4, 8, 12, 16, 24, 48};
  auto sweep = experiments::RunGrid(
      cache, algs, thinks, [](config::CcAlgorithm alg, double think) {
        return experiments::Exp2Config(8, 300, alg, think);
      });

  ReportSeries("ext_locking_variants_rt", "Response time (sec)", "think(s)",
               thinks, algs, [&](config::CcAlgorithm alg, double x) {
                 return At(sweep, alg, x).mean_response_time;
               });
  ReportSeries("ext_locking_variants_thr", "Throughput (txns/sec)", "think(s)",
               thinks, algs, [&](config::CcAlgorithm alg, double x) {
                 return At(sweep, alg, x).throughput;
               });
  ReportSeries("ext_locking_variants_abort", "Abort ratio", "think(s)",
               thinks, algs, [&](config::CcAlgorithm alg, double x) {
                 return At(sweep, alg, x).abort_ratio;
               });
  return 0;
}
