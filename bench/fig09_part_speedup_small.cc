// Figure 9: Response time improvement of 8-way over 1-way partitioning vs.
// think time, SMALL database (300 pages/file), 8-node machine (Sec 4.3).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig09_part_speedup_small) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Figure 9",
      "Response time speedup of 8-way vs. 1-way partitioning, small DB",
      "like Figure 8 but with clearer contention effects: 2PL gains the most "
      "at low think times (shorter lock hold times), OPT the most at the "
      "highest think times");
  PrintRunScaleNote();

  ResultCache cache;
  auto one_way = Exp2Sweep(cache, 1, 300);
  auto eight_way = Exp2Sweep(cache, 8, 300);
  auto xs = experiments::PaperThinkTimes();

  ReportSeries("fig09_part_speedup_small", "RT speedup, 8-way vs 1-way (FileSize 300)", "think(s)", xs,
      Algorithms(), [&](config::CcAlgorithm alg, double x) {
        double denom = At(eight_way, alg, x).mean_response_time;
        return denom > 0 ? At(one_way, alg, x).mean_response_time / denom
                         : 0.0;
      });
  return 0;
}
