// Footnote 9 of the paper: "We also ran experiments with other transaction
// sizes (e.g., 32 reads). The basic trends were similar." This binary runs
// the Figure 9 experiment (8-way vs 1-way partitioning speedup, small DB)
// with 32-read transactions (4 pages per partition) next to the standard
// 64-read size.

#include "bench_common.h"

CCSIM_BENCH_FIGURE(exp_txn_size) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Sec 4.1 footnote (transaction size)",
      "8-way/1-way RT speedup with 64-read vs. 32-read transactions",
      "same shape at both sizes; the asymptotic speedup is lower for small "
      "transactions (a 32-read transaction splits into cohorts of 2-6 pages, "
      "so the longest-cohort limit binds sooner)");
  PrintRunScaleNote();

  ResultCache cache;
  std::vector<double> thinks{0, 4, 8, 16, 32, 64, 120};
  for (double pages : {8.0, 4.0}) {
    auto make = [pages](int degree) {
      return [degree, pages](config::CcAlgorithm alg, double think) {
        auto cfg = experiments::Exp2Config(degree, 300, alg, think);
        cfg.workload.classes[0].pages_per_partition_avg = pages;
        return cfg;
      };
    };
    auto one_way = experiments::RunGrid(cache, Algorithms(), thinks, make(1));
    auto eight_way =
        experiments::RunGrid(cache, Algorithms(), thinks, make(8));
    std::string size_tag = std::to_string(static_cast<int>(pages * 8));
    std::string title =
        size_tag + "-read transactions: RT speedup 8-way vs 1-way";
    ReportSeries("exp_txn_size_" + size_tag + "read", title, "think(s)",
                 thinks, Algorithms(),
        [&](config::CcAlgorithm alg, double x) {
          double denom = At(eight_way, alg, x).mean_response_time;
          return denom > 0 ? At(one_way, alg, x).mean_response_time / denom
                           : 0.0;
        });
  }
  return 0;
}
