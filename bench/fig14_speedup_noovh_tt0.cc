// Figure 14: Response time speedup vs. partitioning degree at think time 0
// with zero message and process-initiation overheads (Sec 4.4).

#include "bench_common.h"

namespace {
void PrintDegreeSpeedup(const char* title,
                        const std::vector<ccsim::experiments::Point>& sweep) {
  using namespace ccsim;
  using namespace ccsim::bench;
  ReportSeries("fig14_speedup_noovh_tt0", title, "degree", {1, 2, 4, 8}, Algorithms(),
      [&](config::CcAlgorithm alg, double degree) {
        double base = At(sweep, alg, 1).mean_response_time;
        double rt = At(sweep, alg, degree).mean_response_time;
        return rt > 0 ? base / rt : 0.0;
      });
}
}  // namespace

CCSIM_BENCH_FIGURE(fig14_speedup_noovh_tt0) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Figure 14",
      "RT speedup vs. partitioning degree, zero overheads, think time 0",
      "NO_DC gains almost nothing (the machine is saturated), but the CC "
      "algorithms gain from shorter lock/validation windows: 2PL speeds up "
      "the most, OPT the least");
  PrintRunScaleNote();

  ResultCache cache;
  auto sweep = Exp3Sweep(cache, /*inst_per_startup=*/0, /*inst_per_msg=*/0,
                         /*think=*/0);
  PrintDegreeSpeedup("RT speedup vs 1-way (no overheads, think 0)", sweep);
  return 0;
}
