// Figure 16: Response time speedup vs. partitioning degree at think time 0
// with InstPerMsg raised to 4K instructions (InstPerStartup 0) (Sec 4.4).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig16_speedup_msg4k_tt0) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Figure 16",
      "RT speedup vs. partitioning degree, InstPerMsg=4K, think time 0",
      "speedups drop versus Figure 14; several algorithms (especially OPT) "
      "do worse 8-way than 4-way - distributed (re)starts and aborts are "
      "expensive when messages cost 4K instructions");
  PrintRunScaleNote();

  ResultCache cache;
  auto sweep = Exp3Sweep(cache, /*inst_per_startup=*/0,
                         /*inst_per_msg=*/4000, /*think=*/0);
  ReportSeries("fig16_speedup_msg4k_tt0", "RT speedup vs 1-way (msg 4K, think 0)", "degree",
      {1, 2, 4, 8}, Algorithms(), [&](config::CcAlgorithm alg, double degree) {
        double base = At(sweep, alg, 1).mean_response_time;
        double rt = At(sweep, alg, degree).mean_response_time;
        return rt > 0 ? base / rt : 0.0;
      });
  return 0;
}
