// Figure 8: Response time improvement of 8-way over 1-way partitioning vs.
// think time, LARGE database (1200 pages/file), 8-node machine (Sec 4.3).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig08_part_speedup_large) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Figure 8",
      "Response time speedup of 8-way vs. 1-way partitioning, large DB",
      "no improvement at think 0 (saturated), rising to about 5 at large "
      "think times; CC algorithms slightly above NO_DC; contention effects "
      "subtle at this database size");
  PrintRunScaleNote();

  ResultCache cache;
  auto one_way = Exp2Sweep(cache, 1, 1200);
  auto eight_way = Exp2Sweep(cache, 8, 1200);
  auto xs = experiments::PaperThinkTimes();

  ReportSeries("fig08_part_speedup_large", "RT speedup, 8-way vs 1-way (FileSize 1200)", "think(s)", xs,
      Algorithms(), [&](config::CcAlgorithm alg, double x) {
        double denom = At(eight_way, alg, x).mean_response_time;
        return denom > 0 ? At(one_way, alg, x).mean_response_time / denom
                         : 0.0;
      });
  return 0;
}
