// Figure 10: Percentage response-time degradation relative to NO_DC, 8-way
// partitioning, small database (Sec 4.3).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig10_degradation_8way) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Figure 10",
      "% RT degradation vs NO_DC, 8-way partitioning, small DB",
      "2PL smallest loss, then BTO, then WW, OPT largest; differences are "
      "more pronounced than in the 1-way case (Figure 11)");
  PrintRunScaleNote();

  ResultCache cache;
  auto sweep = Exp2Sweep(cache, 8, 300);
  auto xs = experiments::PaperThinkTimes();

  ReportSeries("fig10_degradation_8way", "% response-time degradation vs NO_DC (8-way)", "think(s)",
      xs, RealAlgorithms(), [&](config::CcAlgorithm alg, double x) {
        double base = At(sweep, config::CcAlgorithm::kNoDc, x)
                          .mean_response_time;
        double rt = At(sweep, alg, x).mean_response_time;
        return base > 0 ? 100.0 * (rt - base) / base : 0.0;
      }, 1);
  return 0;
}
