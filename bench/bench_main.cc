// Shared main() for all figure binaries and the run_all driver: figure
// registry, common flag parsing, and the run loop. Each binary links this
// file plus one or more CCSIM_BENCH_FIGURE translation units.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

namespace ccsim::bench {

namespace {

std::vector<std::pair<std::string, FigureFn>>& Registry() {
  static std::vector<std::pair<std::string, FigureFn>> figures;
  return figures;
}

[[noreturn]] void Usage(const char* argv0, int rc) {
  std::fprintf(
      stderr,
      "usage: %s [--jobs N]\n"
      "  --jobs N   simulation worker threads (default: $CCSIM_JOBS, else\n"
      "             hardware concurrency). Parallelism only changes wall\n"
      "             time: results are bit-identical to --jobs 1.\n",
      argv0);
  std::exit(rc);
}

}  // namespace

bool RegisterFigure(const char* name, FigureFn fn) {
  Registry().emplace_back(name, fn);
  return true;
}

void InitBench(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage(argv[0], 0);
    } else if (std::strcmp(arg, "--jobs") == 0 || std::strcmp(arg, "-j") == 0) {
      if (i + 1 >= argc) Usage(argv[0], 2);
      value = argv[++i];
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      value = arg + 7;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], arg);
      Usage(argv[0], 2);
    }
    if (value != nullptr) {
      char* end = nullptr;
      long jobs = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || jobs < 1) {
        std::fprintf(stderr, "%s: --jobs needs a positive integer, got '%s'\n",
                     argv[0], value);
        std::exit(2);
      }
      experiments::SetDefaultJobs(static_cast<int>(jobs));
    }
  }
}

int RunRegisteredFigures() {
  auto& figures = Registry();
  // Static-initialization order across translation units is unspecified;
  // name order makes run_all output deterministic.
  std::sort(figures.begin(), figures.end());
  int rc = 0;
  for (const auto& [name, fn] : figures) {
    if (figures.size() > 1) {
      std::printf("==================== %s ====================\n",
                  name.c_str());
    }
    int figure_rc = fn();
    if (rc == 0 && figure_rc != 0) rc = figure_rc;
  }
  return rc;
}

}  // namespace ccsim::bench

int main(int argc, char** argv) {
  ccsim::bench::InitBench(argc, argv);
  return ccsim::bench::RunRegisteredFigures();
}
