// Fault extension: throughput and abort breakdown versus node MTTF on the
// 8-node Experiment 1 machine. Not a paper figure - the paper assumes a
// reliable machine (Sec 2) - but the natural robustness question for its
// model: how quickly does each algorithm's throughput degrade as nodes
// start failing, and what does the failure traffic turn into (node-crash
// aborts, communication timeouts, forced 2PC terminations)?

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig_fault_degradation) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Fault extension",
      "throughput & abort breakdown vs node MTTF, 8 nodes, think 8 s",
      "shorter MTTF -> lower throughput for every algorithm; blocking "
      "algorithms also pay crash-induced restarts of waiters");
  PrintRunScaleNote();

  // Per-node exponential MTTF in seconds; MTTR is fixed at 10 s. The last
  // column is the fault-free paper model for reference.
  const std::vector<double> mttfs = {30, 60, 120, 240, 480, 960, 0};
  auto algorithms = RealAlgorithms();
  algorithms.push_back(config::CcAlgorithm::kNoDc);

  ResultCache cache;
  auto sweep = experiments::RunGrid(
      cache, algorithms, mttfs, [](config::CcAlgorithm alg, double mttf) {
        return experiments::FaultConfig(alg, 8.0, mttf);
      });

  ReportSeries("fig_fault_throughput", "throughput (commits/s) vs node MTTF (s; 0 = no faults)",
      "mttf(s)", mttfs, algorithms, [&](config::CcAlgorithm alg, double x) {
        return At(sweep, alg, x).throughput;
      });
  ReportSeries("fig_fault_availability", "machine availability (fraction of proc nodes up)",
      "mttf(s)", mttfs, algorithms, [&](config::CcAlgorithm alg, double x) {
        return At(sweep, alg, x).availability;
      });
  ReportSeries("fig_fault_crash_aborts", "node-crash aborts per 100 commits",
      "mttf(s)", mttfs, algorithms, [&](config::CcAlgorithm alg, double x) {
        const auto& r = At(sweep, alg, x);
        return r.commits > 0 ? 100.0 * static_cast<double>(r.aborts_node_crash) /
                                   static_cast<double>(r.commits)
                             : 0.0;
      });
  ReportSeries("fig_fault_timeout_aborts", "comm-timeout aborts per 100 commits",
      "mttf(s)", mttfs, algorithms, [&](config::CcAlgorithm alg, double x) {
        const auto& r = At(sweep, alg, x);
        return r.commits > 0 ? 100.0 * static_cast<double>(r.aborts_comm_timeout) /
                                   static_cast<double>(r.commits)
                             : 0.0;
      });
  return 0;
}
