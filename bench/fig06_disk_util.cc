// Figure 6: Disk utilization vs. think time, 1-node vs. 8-node (Sec 4.2).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig06_disk_util) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Figure 6", "Mean disk utilization vs. think time",
      "near 1.0 under load (the system is slightly I/O bound); the 8-node "
      "utilization falls much earlier with increasing think time than the "
      "1-node utilization");
  PrintRunScaleNote();

  ResultCache cache;
  auto one = Exp1Sweep(cache, 1);
  auto eight = Exp1Sweep(cache, 8);
  auto xs = experiments::PaperThinkTimes();

  ReportSeries("fig06_disk_util", "Disk utilization, 1-node system",
                          "think(s)", xs, Algorithms(),
                          [&](config::CcAlgorithm alg, double x) {
                            return At(one, alg, x).disk_util;
                          });
  ReportSeries("fig06_disk_util_2", "Disk utilization, 8-node system",
                          "think(s)", xs, Algorithms(),
                          [&](config::CcAlgorithm alg, double x) {
                            return At(eight, alg, x).disk_util;
                          });
  return 0;
}
