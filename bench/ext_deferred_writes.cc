// Extension experiment: 2PL with deferred write locks (2PL-DW) versus the
// paper's algorithms. Footnote 13 of the paper reports ([Care89]) that
// deferring write-lock acquisition to the first phase of the commit protocol
// lets 2PL dominate OPT even when messages are expensive. This experiment
// runs the Figure 16-style setup (InstPerMsg = 4K) plus the standard-cost
// setup and places 2PL-DW alongside 2PL and OPT.

#include "bench_common.h"

CCSIM_BENCH_FIGURE(ext_deferred_writes) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Extension: deferred write locks ([Care89], footnote 13)",
      "2PL-DW vs 2PL vs OPT, 8-way partitioning, think-time sweep",
      "2PL-DW holds exclusive locks only for the commit protocol's duration; "
      "it behaves like 2PL with shorter write contention and, per [Care89], "
      "should not fall behind OPT even with 4K-instruction messages");
  PrintRunScaleNote();

  ResultCache cache;
  std::vector<config::CcAlgorithm> algs{
      config::CcAlgorithm::kTwoPhaseLocking,
      config::CcAlgorithm::kTwoPhaseLockingDeferred,
      config::CcAlgorithm::kOptimistic, config::CcAlgorithm::kNoDc};
  std::vector<double> thinks{0, 4, 8, 12, 16, 24, 48};

  for (double msg_cost : {1000.0, 4000.0}) {
    auto sweep = experiments::RunGrid(
        cache, algs, thinks, [msg_cost](config::CcAlgorithm alg, double think) {
          auto cfg = experiments::Exp2Config(8, 300, alg, think);
          cfg.costs.inst_per_msg = msg_cost;
          return cfg;
        });
    std::string tag = msg_cost >= 4000 ? "msg4k" : "msg1k";
    ReportSeries("ext_deferred_writes_rt_" + tag,
                 "Response time (sec), InstPerMsg=" +
                     std::to_string(static_cast<int>(msg_cost)),
                 "think(s)", thinks, algs,
                 [&](config::CcAlgorithm alg, double x) {
                   return At(sweep, alg, x).mean_response_time;
                 });
    ReportSeries("ext_deferred_writes_abort_" + tag,
                 "Abort ratio, InstPerMsg=" +
                     std::to_string(static_cast<int>(msg_cost)),
                 "think(s)", thinks, algs,
                 [&](config::CcAlgorithm alg, double x) {
                   return At(sweep, alg, x).abort_ratio;
                 });
  }
  return 0;
}
