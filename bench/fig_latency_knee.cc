// Tail-latency extension: p50/p99 response time versus offered load (the
// number of terminals, i.e. the closed-system multiprogramming level) on
// the 8-node Experiment 1 machine. Not a paper figure - the paper ranks
// algorithms by *mean* response time - but the production question its
// model raises: where does each algorithm's latency knee sit, and how much
// earlier does the p99 knee arrive than the mean suggests? The per-phase
// breakdown series shows what the tail is made of (lock/CC execution
// stalls vs restart-wasted work).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig_latency_knee) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Tail-latency extension",
      "p50/p99/p999 response time vs offered load (terminals), 8 nodes, "
      "think 8 s",
      "blocking algorithms' p99 knees arrive well before the mean knees; "
      "restart-oriented algorithms convert the tail into wasted work");
  PrintRunScaleNote();

  const std::vector<int> terminals = experiments::KneeTerminalCounts();
  std::vector<double> xs(terminals.begin(), terminals.end());
  auto algorithms = RealAlgorithms();
  algorithms.push_back(config::CcAlgorithm::kNoDc);

  ResultCache cache;
  auto sweep = experiments::RunGrid(
      cache, algorithms, xs, [](config::CcAlgorithm alg, double n) {
        return experiments::KneeConfig(alg, static_cast<int>(n));
      });

  ReportSeries("fig_knee_p50", "p50 response time (s) vs terminals",
      "terminals", xs, algorithms, [&](config::CcAlgorithm alg, double x) {
        return At(sweep, alg, x).rt_p50;
      });
  ReportSeries("fig_knee_p99", "p99 response time (s) vs terminals",
      "terminals", xs, algorithms, [&](config::CcAlgorithm alg, double x) {
        return At(sweep, alg, x).rt_p99;
      });
  ReportSeries("fig_knee_p999", "p999 response time (s) vs terminals",
      "terminals", xs, algorithms, [&](config::CcAlgorithm alg, double x) {
        return At(sweep, alg, x).rt_p999;
      });
  ReportSeries("fig_knee_mpl", "measured multiprogramming level (mean active txns)",
      "terminals", xs, algorithms, [&](config::CcAlgorithm alg, double x) {
        return At(sweep, alg, x).mean_active_txns;
      });
  ReportSeries("fig_knee_exec_share", "exec phase share of mean response time",
      "terminals", xs, algorithms, [&](config::CcAlgorithm alg, double x) {
        const auto& r = At(sweep, alg, x);
        return r.mean_response_time > 0.0
                   ? r.mean_exec_time / r.mean_response_time
                   : 0.0;
      });
  ReportSeries("fig_knee_restart_share",
      "restart-wasted share of mean response time",
      "terminals", xs, algorithms, [&](config::CcAlgorithm alg, double x) {
        const auto& r = At(sweep, alg, x);
        return r.mean_response_time > 0.0
                   ? r.mean_restart_wasted_time / r.mean_response_time
                   : 0.0;
      });
  return 0;
}
