// Micro-benchmarks of the simulator substrate itself (google-benchmark):
// event calendar throughput, processor-sharing CPU, lock table, RNG, and
// whole-machine simulation rates. These gate performance regressions in the
// engine that would make the figure sweeps slow.

#include <benchmark/benchmark.h>

#include "ccsim/cc/lock_table.h"
#include "ccsim/config/params.h"
#include "ccsim/engine/run.h"
#include "ccsim/resource/cpu.h"
#include "ccsim/sim/calendar.h"
#include "ccsim/sim/random.h"
#include "ccsim/sim/simulation.h"
#include "ccsim/workload/access_generator.h"
#include "ccsim/db/placement.h"

namespace {

using namespace ccsim;

void BM_CalendarScheduleFire(benchmark::State& state) {
  sim::Simulation sim;
  double t = 0;
  for (auto _ : state) {
    t += 1.0;
    sim.At(t, [] {});
    sim.RunUntil(t);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CalendarScheduleFire);

void BM_CalendarDeepQueue(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    for (int i = 0; i < depth; ++i) {
      sim.At(static_cast<double>(i), [] {});
    }
    state.ResumeTiming();
    sim.Run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * depth);
}
BENCHMARK(BM_CalendarDeepQueue)->Arg(1024)->Arg(65536);

// Cancel-heavy schedule/cancel churn at a fixed queue depth: the
// processor-sharing CPU re-arms its completion event on every arrival, so
// Cancel is on the whole-machine hot path too.
void BM_CalendarScheduleCancel(benchmark::State& state) {
  sim::Simulation sim;
  double t = 0;
  for (int i = 0; i < 256; ++i) sim.At(1e12 + i, [] {});  // standing depth
  for (auto _ : state) {
    t += 1.0;
    auto id = sim.At(t + 0.5, [] {});
    sim.Cancel(id);
    sim.At(t, [] {});
    sim.RunUntil(t);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CalendarScheduleCancel);

// Allocation-free wakeup path: Delay schedules a bare coroutine handle
// (EventKind::kResume), no closure. Items are process wakeups.
void BM_DelayWakeups(benchmark::State& state) {
  const int wakeups_per_proc = 1024;
  std::uint64_t items = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    auto proc = [](sim::Simulation* s, int n) -> sim::Process {
      for (int i = 0; i < n; ++i) co_await s->Delay(1.0);
    };
    for (int p = 0; p < 4; ++p) proc(&sim, wakeups_per_proc);
    sim.Run();
    items += 4 * wakeups_per_proc;
  }
  state.SetItemsProcessed(static_cast<int64_t>(items));
}
BENCHMARK(BM_DelayWakeups);

void BM_CpuProcessorSharing(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    resource::Cpu cpu(&sim, 1.0);
    for (int i = 0; i < jobs; ++i) {
      cpu.ExecuteSeconds(0.001 * (i + 1), resource::CpuJobClass::kUser);
    }
    sim.Run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * jobs);
}
BENCHMARK(BM_CpuProcessorSharing)->Arg(8)->Arg(64)->Arg(512);

void BM_RandomExponential(benchmark::State& state) {
  sim::RandomStream rng(1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Exponential(8.0));
  }
}
BENCHMARK(BM_RandomExponential);

void BM_AccessGeneration(benchmark::State& state) {
  config::SystemConfig cfg = config::PaperBaseConfig();
  db::Catalog catalog(cfg.database,
                      db::ComputePlacement(cfg.database, 8, 8));
  workload::AccessGenerator gen(&cfg.workload, &catalog);
  sim::RandomStream rng(1, 3);
  int terminal = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Generate(terminal, rng));
    terminal = (terminal + 1) % cfg.workload.num_terminals;
  }
}
BENCHMARK(BM_AccessGeneration);

void BM_LockTableGrantRelease(benchmark::State& state) {
  sim::Simulation sim;
  cc::LockTable table(&sim);
  auto txn = std::make_shared<txn::Transaction>(
      1,
      workload::TransactionSpec{
          0, 0, 0, config::ExecPattern::kParallel,
          {workload::CohortSpec{1, {workload::PageAccess{PageRef{0, 0},
                                                         false}}}}},
      0.0, nullptr);
  txn->BeginAttempt(0.0);
  int page = 0;
  for (auto _ : state) {
    PageRef p{0, page++ & 1023};
    table.Request(txn, p, cc::LockMode::kExclusive);
    table.ReleaseAll(1, false);
  }
}
BENCHMARK(BM_LockTableGrantRelease);

// Whole-machine simulation rate: simulated events per wall second for a
// short paper-shaped run under each algorithm.
void BM_FullSimulation(benchmark::State& state) {
  auto alg = static_cast<config::CcAlgorithm>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    config::SystemConfig cfg = config::PaperBaseConfig();
    cfg.algorithm = alg;
    cfg.workload.think_time_sec = 8.0;
    cfg.run.warmup_sec = 5;
    cfg.run.measure_sec = 45;
    auto r = engine::RunSimulation(cfg);
    events += r.events;
    benchmark::DoNotOptimize(r.throughput);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.SetLabel("items = simulated events");
}
BENCHMARK(BM_FullSimulation)
    ->Arg(static_cast<int>(config::CcAlgorithm::kNoDc))
    ->Arg(static_cast<int>(config::CcAlgorithm::kTwoPhaseLocking))
    ->Arg(static_cast<int>(config::CcAlgorithm::kWoundWait))
    ->Arg(static_cast<int>(config::CcAlgorithm::kBasicTimestamp))
    ->Arg(static_cast<int>(config::CcAlgorithm::kOptimistic))
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
