// Figure 3: Mean response time vs. think time, 1-node vs. 8-node machine
// (Sec 4.2, small database).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig03_response_time) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Figure 3",
      "Mean response time (sec) vs. think time, 1-node and 8-node systems",
      "response times fall steeply with think time; the 8-node curve drops "
      "far sooner; algorithm ordering mirrors Figure 2");
  PrintRunScaleNote();

  ResultCache cache;
  auto one = Exp1Sweep(cache, 1);
  auto eight = Exp1Sweep(cache, 8);
  auto xs = experiments::PaperThinkTimes();

  ReportSeries("fig03_response_time", "Response time, 1-node system (sec)", "think(s)", xs,
      Algorithms(), [&](config::CcAlgorithm alg, double x) {
        return At(one, alg, x).mean_response_time;
      });
  ReportSeries("fig03_response_time_2", "Response time, 8-node system (sec)", "think(s)", xs,
      Algorithms(), [&](config::CcAlgorithm alg, double x) {
        return At(eight, alg, x).mean_response_time;
      });
  return 0;
}
