// Figure 15: Response time speedup vs. partitioning degree at think time 8 s
// with zero message and process-initiation overheads (Sec 4.4).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig15_speedup_noovh_tt8) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Figure 15",
      "RT speedup vs. partitioning degree, zero overheads, think time 8 s",
      "with the load below total saturation every algorithm benefits more "
      "than in Figure 14; 2PL still benefits most, OPT least");
  PrintRunScaleNote();

  ResultCache cache;
  auto sweep = Exp3Sweep(cache, 0, 0, /*think=*/8);
  ReportSeries("fig15_speedup_noovh_tt8", "RT speedup vs 1-way (no overheads, think 8)", "degree",
      {1, 2, 4, 8}, Algorithms(), [&](config::CcAlgorithm alg, double degree) {
        double base = At(sweep, alg, 1).mean_response_time;
        double rt = At(sweep, alg, degree).mean_response_time;
        return rt > 0 ? base / rt : 0.0;
      });
  return 0;
}
