// Execution-pattern study: the paper's introduction contrasts Non-Stop SQL
// (sequential cohort execution, remote-procedure-call style) with the
// Gamma/Bubba/Teradata machines (parallel cohorts). Sec 3.3 models both.
// This binary runs the 8-way-partitioned workload with both patterns and
// shows where intra-transaction parallelism pays and what it costs each
// concurrency control algorithm.

#include "bench_common.h"

CCSIM_BENCH_FIGURE(exp_exec_pattern) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Sec 3.3 (execution patterns)",
      "Sequential vs. parallel cohort execution, 8-way declustering",
      "parallel execution wins response time at every load (up to ~5x when "
      "the machine is lightly loaded); under sequential execution locks are "
      "held far longer, so the blocking/abort costs of every algorithm grow");
  PrintRunScaleNote();

  ResultCache cache;
  std::vector<double> thinks{0, 4, 8, 16, 32, 64, 120};
  auto make = [](config::ExecPattern pattern) {
    return [pattern](config::CcAlgorithm alg, double think) {
      auto cfg = experiments::Exp2Config(8, 300, alg, think);
      cfg.workload.classes[0].exec_pattern = pattern;
      return cfg;
    };
  };
  auto parallel = experiments::RunGrid(cache, Algorithms(), thinks,
                                       make(config::ExecPattern::kParallel));
  auto sequential = experiments::RunGrid(
      cache, Algorithms(), thinks, make(config::ExecPattern::kSequential));

  ReportSeries("exp_exec_pattern_parallel_rt",
               "Response time, parallel cohorts (sec)", "think(s)", thinks,
               Algorithms(), [&](config::CcAlgorithm alg, double x) {
                 return At(parallel, alg, x).mean_response_time;
               });
  ReportSeries("exp_exec_pattern_sequential_rt",
               "Response time, sequential cohorts (sec)", "think(s)", thinks,
               Algorithms(), [&](config::CcAlgorithm alg, double x) {
                 return At(sequential, alg, x).mean_response_time;
               });
  ReportSeries("exp_exec_pattern_speedup",
               "RT speedup of parallel over sequential execution", "think(s)",
               thinks, Algorithms(), [&](config::CcAlgorithm alg, double x) {
                 double denom = At(parallel, alg, x).mean_response_time;
                 return denom > 0
                            ? At(sequential, alg, x).mean_response_time / denom
                            : 0.0;
               });
  return 0;
}
