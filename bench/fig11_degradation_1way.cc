// Figure 11: Percentage response-time degradation relative to NO_DC, 1-way
// partitioning (no intra-transaction parallelism), small database (Sec 4.3).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig11_degradation_1way) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Figure 11",
      "% RT degradation vs NO_DC, 1-way partitioning, small DB",
      "same algorithm ordering as Figure 10 (2PL best, OPT worst) but the "
      "spread between algorithms is narrower without parallelism; 2PL's gap "
      "to NO_DC is larger here than under 8-way (locks held longer)");
  PrintRunScaleNote();

  ResultCache cache;
  auto sweep = Exp2Sweep(cache, 1, 300);
  auto xs = experiments::PaperThinkTimes();

  ReportSeries("fig11_degradation_1way", "% response-time degradation vs NO_DC (1-way)", "think(s)",
      xs, RealAlgorithms(), [&](config::CcAlgorithm alg, double x) {
        double base = At(sweep, config::CcAlgorithm::kNoDc, x)
                          .mean_response_time;
        double rt = At(sweep, alg, x).mean_response_time;
        return base > 0 ? 100.0 * (rt - base) / base : 0.0;
      }, 1);
  return 0;
}
