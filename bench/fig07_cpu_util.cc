// Figure 7: Processing-node CPU utilization vs. think time, 1-node vs.
// 8-node (Sec 4.2).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig07_cpu_util) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Figure 7", "Mean processing-node CPU utilization vs. think time",
      "80-90% of the disks' utilization under load (slightly I/O-bound "
      "parameterization); drops much faster with think time in the 8-node "
      "case");
  PrintRunScaleNote();

  ResultCache cache;
  auto one = Exp1Sweep(cache, 1);
  auto eight = Exp1Sweep(cache, 8);
  auto xs = experiments::PaperThinkTimes();

  ReportSeries("fig07_cpu_util", "CPU utilization, 1-node system",
                          "think(s)", xs, Algorithms(),
                          [&](config::CcAlgorithm alg, double x) {
                            return At(one, alg, x).proc_cpu_util;
                          });
  ReportSeries("fig07_cpu_util_2", "CPU utilization, 8-node system",
                          "think(s)", xs, Algorithms(),
                          [&](config::CcAlgorithm alg, double x) {
                            return At(eight, alg, x).proc_cpu_util;
                          });
  return 0;
}
