// Figure 2: Throughput vs. mean think time, 1-node vs. 8-node machine
// (Sec 4.2, small database: 300 pages/file).

#include "bench_common.h"

CCSIM_BENCH_FIGURE(fig02_throughput) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Figure 2", "Throughput (commits/sec) vs. think time, 1-node and 8-node systems",
      "2PL > BTO > WW > OPT under load, all below NO_DC; all algorithms "
      "thrash at the highest loads; differences vanish at large think times");
  PrintRunScaleNote();

  ResultCache cache;
  auto one = Exp1Sweep(cache, 1);
  auto eight = Exp1Sweep(cache, 8);
  auto xs = experiments::PaperThinkTimes();

  ReportSeries("fig02_throughput", "Throughput, 1-node system (txns/sec)", "think(s)", xs,
      Algorithms(), [&](config::CcAlgorithm alg, double x) {
        return At(one, alg, x).throughput;
      });
  ReportSeries("fig02_throughput_2", "Throughput, 8-node system (txns/sec)", "think(s)", xs,
      Algorithms(), [&](config::CcAlgorithm alg, double x) {
        return At(eight, alg, x).throughput;
      });
  return 0;
}
