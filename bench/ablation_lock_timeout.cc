// Ablation: the lock-wait timeout of timeout-based 2PL. Footnote 2 of the
// paper reports ([Jenq89]) that the timeout interval was "a critical and
// sensitive performance factor" - this sweep reproduces that finding and
// compares the best timeout against detection-based 2PL.

#include <cstdio>

#include "bench_common.h"

CCSIM_BENCH_FIGURE(ablation_lock_timeout) {
  using namespace ccsim;
  using namespace ccsim::bench;
  experiments::PrintFigureHeader(
      std::cout, "Ablation: lock-wait timeout (footnote 2, [Jenq89])",
      "Timeout-based 2PL vs. the timeout interval, 8-way, think time 4 s",
      "a U-shaped response-time curve: short timeouts abort transactions "
      "that were merely queued; long timeouts leave deadlocked transactions "
      "clogging the machine - the interval is critical and sensitive");
  PrintRunScaleNote();

  ResultCache cache;
  std::vector<double> timeouts{0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
  auto sweep = experiments::RunGrid(
      cache, {config::CcAlgorithm::kTwoPhaseLockingTimeout}, timeouts,
      [](config::CcAlgorithm alg, double timeout) {
        auto cfg = experiments::Exp2Config(8, 300, alg, 4.0);
        cfg.locking.timeout_sec = timeout;
        return cfg;
      });

  std::printf("%12s %14s %12s %14s %14s\n", "timeout(s)", "response(s)",
              "txns/sec", "abort ratio", "timeouts");
  for (double t : timeouts) {
    const auto& r = At(sweep, config::CcAlgorithm::kTwoPhaseLockingTimeout, t);
    std::printf("%12.2f %14.3f %12.3f %14.3f %14llu\n", t,
                r.mean_response_time, r.throughput, r.abort_ratio,
                static_cast<unsigned long long>(r.aborts_timeout));
  }

  // Reference: detection-based 2PL on the identical workload.
  auto ref = cache.GetOrRun(experiments::Exp2Config(
      8, 300, config::CcAlgorithm::kTwoPhaseLocking, 4.0));
  std::printf("\nReference, detection-based 2PL: rt=%.3f s thr=%.3f "
              "abort=%.3f\n",
              ref.mean_response_time, ref.throughput, ref.abort_ratio);
  return 0;
}
