// Debit-Credit example: the paper's introduction cites the Tandem Non-Stop
// SQL result that a Debit-Credit workload scales linearly from 2 to 32
// processors using inter-transaction parallelism alone. This example builds
// a Debit-Credit-flavored workload (small transactions touching a single
// partition, i.e. degree-1 placement and 1-page-per-partition accesses) and
// shows near-linear 2PL throughput scaling with machine size on ccsim.
//
//   ./build/examples/debit_credit

#include <cstdio>

#include "ccsim/config/params.h"
#include "ccsim/engine/run.h"

namespace {

ccsim::config::SystemConfig DebitCreditConfig(int nodes) {
  using namespace ccsim::config;
  SystemConfig cfg = PaperBaseConfig();
  cfg.algorithm = CcAlgorithm::kTwoPhaseLocking;
  cfg.machine.num_proc_nodes = nodes;
  // One "account file" per relation, declustered 1-way: each transaction is
  // a short, single-node debit/credit against its terminal's branch.
  cfg.placement.degree = 1;
  cfg.database.num_relations = nodes;  // one branch group per node
  cfg.database.partitions_per_relation = 1;
  cfg.database.pages_per_file = 2000;
  cfg.workload.num_terminals = 16 * nodes;  // scale offered load with size
  cfg.workload.think_time_sec = 1.0;
  auto& cls = cfg.workload.classes[0];
  cls.pages_per_partition_avg = 2.0;  // account + branch page
  cls.write_prob = 1.0;               // debit/credit updates what it reads
  cls.inst_per_page = 8000.0;
  cfg.run.warmup_sec = 100;
  cfg.run.measure_sec = 600;
  return cfg;
}

}  // namespace

int main() {
  using namespace ccsim;
  std::printf(
      "Debit-Credit scaling on ccsim (2PL, inter-transaction parallelism "
      "only)\n\n");
  std::printf("%8s %14s %14s %12s %12s\n", "nodes", "txns/sec", "scaleup",
              "response(s)", "abort ratio");

  double base = 0.0;
  for (int nodes : {1, 2, 4, 8}) {
    engine::RunResult r = engine::RunSimulation(DebitCreditConfig(nodes));
    if (nodes == 1) base = r.throughput;
    std::printf("%8d %14.2f %13.2fx %12.4f %12.4f\n", nodes, r.throughput,
                base > 0 ? r.throughput / base : 0.0, r.mean_response_time,
                r.abort_ratio);
  }
  std::printf(
      "\nThroughput should scale near-linearly with nodes (cf. [Tand88]),\n"
      "since the workload partitions perfectly and transactions are short.\n");
  return 0;
}
