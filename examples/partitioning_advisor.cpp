// Partitioning advisor: Section 4.3-4.4 of the paper show that the best
// degree of declustering depends on system load and message costs. This
// example sweeps the partitioning degree for a workload you describe on the
// command line and reports the degree that minimizes mean response time.
//
//   ./build/examples/partitioning_advisor [think_time] [inst_per_msg]
//   e.g. ./build/examples/partitioning_advisor 8 4000

#include <cstdio>
#include <cstdlib>

#include "ccsim/config/params.h"
#include "ccsim/engine/run.h"

int main(int argc, char** argv) {
  using namespace ccsim;

  double think_time = argc > 1 ? std::atof(argv[1]) : 8.0;
  double inst_per_msg = argc > 2 ? std::atof(argv[2]) : 1000.0;

  std::printf(
      "Partitioning advisor: 8-node machine, 2PL, think time %.1f s, "
      "message cost %.0f instructions\n\n",
      think_time, inst_per_msg);
  std::printf("%8s %14s %14s %14s %12s\n", "degree", "response(s)",
              "txns/sec", "msgs/commit", "blocking(ms)");

  int best_degree = 1;
  double best_rt = 0.0;
  for (int degree : {1, 2, 4, 8}) {
    config::SystemConfig cfg = config::PaperBaseConfig();
    cfg.algorithm = config::CcAlgorithm::kTwoPhaseLocking;
    cfg.placement.degree = degree;
    cfg.workload.think_time_sec = think_time;
    cfg.costs.inst_per_msg = inst_per_msg;
    cfg.run.warmup_sec = 100;
    cfg.run.measure_sec = 600;

    engine::RunResult r = engine::RunSimulation(cfg);
    std::printf("%8d %14.3f %14.3f %14.1f %12.2f\n", degree,
                r.mean_response_time, r.throughput, r.messages_per_commit,
                r.mean_blocking_time * 1000.0);
    if (best_rt == 0.0 || r.mean_response_time < best_rt) {
      best_rt = r.mean_response_time;
      best_degree = degree;
    }
  }

  std::printf(
      "\nRecommendation: declustering degree %d (mean response time %.3f "
      "s).\nHigh loads and expensive messages push the best degree down; "
      "light loads push it up (Secs 4.3-4.4 of the paper).\n",
      best_degree, best_rt);
  return 0;
}
