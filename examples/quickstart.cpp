// Quickstart: configure the paper's 8-node database machine, run one
// simulation per concurrency control algorithm, and print the headline
// metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [think_time_seconds]

#include <cstdio>
#include <cstdlib>

#include "ccsim/config/params.h"
#include "ccsim/engine/run.h"

int main(int argc, char** argv) {
  using namespace ccsim;

  double think_time = argc > 1 ? std::atof(argv[1]) : 8.0;

  std::printf(
      "ccsim quickstart: 8-node shared-nothing database machine, 128 "
      "terminals,\n64-page transactions (25%% updated), think time %.1f s\n\n",
      think_time);
  std::printf("%-6s %12s %14s %12s %10s %10s\n", "alg", "txns/sec",
              "response(s)", "abort/commit", "cpu util", "disk util");

  for (config::CcAlgorithm alg : config::kAllAlgorithms) {
    // Start from the paper's Table 4 settings and override what we need.
    config::SystemConfig cfg = config::PaperBaseConfig();
    cfg.algorithm = alg;
    cfg.workload.think_time_sec = think_time;
    cfg.run.warmup_sec = 100;
    cfg.run.measure_sec = 600;

    engine::RunResult r = engine::RunSimulation(cfg);
    std::printf("%-6s %12.3f %11.3f+-%-5.2f %9.3f %10.2f %10.2f\n",
                config::ToString(alg), r.throughput, r.mean_response_time,
                r.rt_ci_half_width, r.abort_ratio, r.proc_cpu_util,
                r.disk_util);
  }

  std::printf(
      "\nExpected ordering under load (the paper's main result):\n"
      "  NO_DC (ideal) > 2PL > BTO > WW > OPT\n");
  return 0;
}
