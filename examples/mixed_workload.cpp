// Mixed workload example: the paper's workload model (Sec 3.2) supports
// multiple transaction classes per host with their own execution patterns
// and access profiles. This example runs a 75/25 mix of parallel "report"
// transactions (read-mostly, all partitions) and sequential "update batch"
// transactions (write-heavy) and compares how the four algorithms handle
// the mix.
//
//   ./build/examples/mixed_workload

#include <cstdio>

#include "ccsim/config/params.h"
#include "ccsim/engine/run.h"

namespace {

ccsim::config::SystemConfig MixedConfig(ccsim::config::CcAlgorithm alg) {
  using namespace ccsim::config;
  SystemConfig cfg = PaperBaseConfig();
  cfg.algorithm = alg;
  cfg.workload.think_time_sec = 4.0;

  TransactionClassParams report;
  report.fraction = 0.75;
  report.exec_pattern = ExecPattern::kParallel;
  report.pages_per_partition_avg = 8.0;
  report.write_prob = 0.05;  // read-mostly
  report.inst_per_page = 8000.0;

  TransactionClassParams batch;
  batch.fraction = 0.25;
  batch.exec_pattern = ExecPattern::kSequential;
  batch.pages_per_partition_avg = 4.0;
  batch.write_prob = 0.75;  // write-heavy
  batch.inst_per_page = 12000.0;

  cfg.workload.classes = {report, batch};
  cfg.run.warmup_sec = 100;
  cfg.run.measure_sec = 600;
  return cfg;
}

}  // namespace

int main() {
  using namespace ccsim;
  std::printf(
      "Mixed workload: 75%% parallel read-mostly reports + 25%% sequential "
      "write-heavy batches\n8-node machine, 8-way declustering, think time "
      "4 s\n\n");
  std::printf("%-6s %12s %14s %12s %14s\n", "alg", "txns/sec", "response(s)",
              "abort ratio", "blocking(ms)");

  for (config::CcAlgorithm alg : config::kAllAlgorithms) {
    engine::RunResult r = engine::RunSimulation(MixedConfig(alg));
    std::printf("%-6s %12.3f %14.3f %12.3f %14.2f\n", config::ToString(alg),
                r.throughput, r.mean_response_time, r.abort_ratio,
                r.mean_blocking_time * 1000.0);
  }
  std::printf(
      "\nBlocking algorithms (2PL, WW) shield the long sequential batches "
      "from\nrepeated restarts; abort-based algorithms pay for every "
      "conflict with redone work.\n");
  return 0;
}
