#!/usr/bin/env python3
"""Plots the paper-figure CSVs produced by the bench binaries.

Usage:
    for b in build/bench/fig*; do $b; done   # writes bench_results/*.csv
    python3 tools/plot_figures.py [csv_dir] [out_dir]

Each CSV has an x column (think time or partitioning degree) and one column
per concurrency control algorithm; the script renders one PNG per CSV with
the paper's plotting conventions (log-x for think-time sweeps).
Requires matplotlib; prints a note and exits cleanly if it is missing.
"""

import csv
import pathlib
import sys


def main() -> int:
    csv_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "bench_results")
    out_dir = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else "bench_results/plots")
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not installed; skipping plot generation")
        return 0

    files = sorted(csv_dir.glob("*.csv"))
    if not files:
        print(f"no CSVs under {csv_dir}; run the bench binaries first")
        return 1
    out_dir.mkdir(parents=True, exist_ok=True)

    styles = {
        "2PL": dict(color="#1f77b4", marker="o"),
        "BTO": dict(color="#2ca02c", marker="s"),
        "WW": dict(color="#ff7f0e", marker="^"),
        "OPT": dict(color="#d62728", marker="v"),
        "NO_DC": dict(color="#7f7f7f", marker="x", linestyle="--"),
    }

    for path in files:
        with open(path) as f:
            rows = list(csv.reader(f))
        header, data = rows[0], rows[1:]
        xs = [float(r[0]) for r in data]
        fig, ax = plt.subplots(figsize=(6, 4.2))
        for col, name in enumerate(header[1:], start=1):
            ys = [float(r[col]) for r in data]
            ax.plot(xs, ys, label=name, markersize=4,
                    **styles.get(name, {}))
        ax.set_xlabel(header[0])
        ax.set_title(path.stem)
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=8)
        if header[0].startswith("think") and max(xs) > 20:
            ax.set_xscale("symlog", linthresh=4)
        fig.tight_layout()
        out = out_dir / (path.stem + ".png")
        fig.savefig(out, dpi=130)
        plt.close(fig)
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
