#!/usr/bin/env python3
"""Migrate ccsim result-cache entries from format v4 to v5.

v5 (PR 2) parses integer counters as integers and rejects files without a
matching `field_count` trailer. The v4 *writer* already emitted exact
integer text, so v4 entries migrate losslessly:

  - files written before the wait-die / timeout extensions lack the
    `aborts_die` / `aborts_timeout` counters; the v4 parser defaulted them
    to 0, which this migration makes explicit (bit-identical to what every
    reader saw before);
  - the `field_count 30` trailer is appended;
  - the file is renamed v4_<fingerprint> -> v5_<fingerprint> (fingerprints
    are unchanged for all configurations that were cacheable under v4).

Idempotent; files that don't verify are left in place and reported.

Usage: migrate_cache_v4_to_v5.py [CACHE_DIR ...]   (default: ccsim_bench_cache)
"""

from __future__ import annotations

import os
import sys

# Canonical v5 field order (matches kFields in src/ccsim/experiments/cache.cc).
FIELDS = [
    "throughput", "mean_response_time", "rt_ci_half_width",
    "max_response_time", "rt_p50", "rt_p90", "rt_p99", "commits", "aborts",
    "abort_ratio", "aborts_local_deadlock", "aborts_global_deadlock",
    "aborts_wound", "aborts_timestamp", "aborts_certification", "aborts_die",
    "aborts_timeout", "host_cpu_util", "proc_cpu_util", "disk_util",
    "mean_blocking_time", "blocked_waits", "messages_per_commit",
    "transactions_submitted", "live_at_end", "events", "sim_seconds",
    "wall_seconds", "audited", "serializable",
]
# Counters the v4 parser defaulted to 0 when absent (pre-extension entries).
DEFAULTABLE = {"aborts_die": "0", "aborts_timeout": "0"}


def migrate_file(path: str) -> str:
    with open(path, "r", encoding="utf-8") as f:
        pairs = {}
        for line in f:
            parts = line.split()
            if len(parts) != 2:
                return f"unparseable line: {line.rstrip()}"
            pairs[parts[0]] = parts[1]
    for key, default in DEFAULTABLE.items():
        pairs.setdefault(key, default)
    missing = [k for k in FIELDS if k not in pairs]
    if missing:
        return f"missing fields: {', '.join(missing)}"
    unknown = [k for k in pairs if k not in FIELDS]
    if unknown:
        return f"unknown fields: {', '.join(unknown)}"

    dirname, basename = os.path.split(path)
    target = os.path.join(dirname, "v5" + basename[len("v4"):])
    if os.path.exists(target):
        return f"target exists: {target}"
    tmp = target + f".tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as f:
        for key in FIELDS:
            f.write(f"{key} {pairs[key]}\n")
        f.write(f"field_count {len(FIELDS)}\n")
    os.replace(tmp, target)
    os.remove(path)
    return ""


def main(argv: list[str]) -> int:
    dirs = argv[1:] or ["ccsim_bench_cache"]
    migrated = skipped = 0
    for d in dirs:
        if not os.path.isdir(d):
            print(f"migrate_cache: no such directory: {d}", file=sys.stderr)
            return 2
        for name in sorted(os.listdir(d)):
            if not (name.startswith("v4_") and name.endswith(".result")):
                continue
            err = migrate_file(os.path.join(d, name))
            if err:
                print(f"  SKIP {name}: {err}", file=sys.stderr)
                skipped += 1
            else:
                migrated += 1
    print(f"migrate_cache: {migrated} migrated, {skipped} skipped.")
    return 1 if skipped else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
