#!/usr/bin/env bash
# Static-analysis driver for ccsim: runs the repo linter (always) and
# clang-tidy (when installed) over the library sources.
#
# Usage:
#   tools/run_static_analysis.sh [BUILD_DIR] [-- FILE...]
#
#   BUILD_DIR   build tree holding compile_commands.json (default: build;
#               created with a plain configure if missing).
#   FILE...     restrict clang-tidy to these files (e.g. the files changed
#               on a branch); default is every .cc under src/.
#
# Exit status is non-zero if either tool reports findings. clang-tidy being
# absent is a skip, not a failure, so the script is safe in minimal
# containers; CI installs clang-tidy for the lint job.
set -u -o pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)

BUILD_DIR=build
if [[ $# -gt 0 && "$1" != "--" ]]; then
  BUILD_DIR=$1
  shift
fi
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
fi

STATUS=0

echo "== ccsim_lint =="
if ! python3 tools/ccsim_lint.py --self-test; then
  STATUS=1
fi
if ! python3 tools/ccsim_lint.py src tests bench; then
  STATUS=1
fi

echo "== ccsim_analyze =="
if ! python3 tools/ccsim_analyze --self-test; then
  STATUS=1
fi
if ! python3 tools/ccsim_analyze; then
  STATUS=1
fi

echo "== clang-tidy =="
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping (install it to run this stage)."
  exit $STATUS
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "No $BUILD_DIR/compile_commands.json; configuring..."
  cmake -B "$BUILD_DIR" -S . >/dev/null || exit 1
fi

if [[ $# -gt 0 ]]; then
  FILES=("$@")
else
  mapfile -t FILES < <(find src -name '*.cc' | sort)
fi

if ! clang-tidy -p "$BUILD_DIR" --quiet "${FILES[@]}"; then
  STATUS=1
fi

exit $STATUS
