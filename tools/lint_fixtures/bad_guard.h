#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

// Fixture: the guard should be derived from the file path
// (TOOLS_LINT_FIXTURES_BAD_GUARD_H_ relative to the repo root).

#endif  // WRONG_GUARD_NAME_H
