// Clean fixture for ccsim_lint --self-test: none of the rules fire here.
// Never compiled.

#include <chrono>
#include <map>
#include <unordered_map>
#include <vector>

void Clean() {
  // steady_clock is the allowed wall-time source (wall_seconds accounting).
  auto t0 = std::chrono::steady_clock::now();
  (void)t0;

  std::map<int, int> ordered;
  for (const auto& [k, v] : ordered) {  // ordered container: fine
    (void)k;
    (void)v;
  }

  std::unordered_map<int, int> lookup;
  auto it = lookup.find(3);  // point lookups on unordered containers: fine
  (void)it;

  std::unordered_map<int, int> sums;
  // ccsim-lint: unordered-iter-ok(commutative sum; order cannot matter)
  for (const auto& [k, v] : sums) {
    (void)k;
    (void)v;
  }
}
