// Fixture: bare assert() and direct process termination inside src/ must
// trigger bare-assert / no-abort (simulator invariants go through
// CCSIM_CHECK / CCSIM_DCHECK, which fail with simulation context). Never
// compiled.

#include <cassert>
#include <cstdlib>

void BadAssert(int x) {
  assert(x > 0);  // bare-assert
  static_assert(sizeof(int) >= 4);  // fine
}

void BadTermination(int x) {
  if (x < 0) std::abort();  // no-abort
  if (x == 0) exit(1);      // no-abort
  // ccsim-lint: no-abort-ok(fixture exercises the waiver path)
  if (x > 100) quick_exit(2);  // waived
  BadAssert(x);  // a call named like a checker is fine: AbortCohort etc.
}
