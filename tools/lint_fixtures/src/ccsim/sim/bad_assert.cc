// Fixture: bare assert() inside src/ must trigger bare-assert (simulator
// invariants go through CCSIM_CHECK / CCSIM_DCHECK). Never compiled.

#include <cassert>

void BadAssert(int x) {
  assert(x > 0);  // bare-assert
  static_assert(sizeof(int) >= 4);  // fine
}
