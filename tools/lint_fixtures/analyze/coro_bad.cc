// Fixture: coroutine-lifetime pass, violating side.
// Expected: coro-ref-capture, coro-this-capture, coro-raw-resume,
// coro-unregistered-await (one each).
#include "sim.h"

void Node::Arm() {
  int local = 0;
  sim_->After(1.0, [&local] { local++; });
  sim_->After(2.0, [this] { Tick(); });
  handle_.resume();
}

Process Node::Run() {
  co_await custom_awaitable_;
}
