// Fixture: cache-schema pass, clean side (struct). Expected: no findings.
#ifndef CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_CACHE_CLEAN_RUN_H_
#define CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_CACHE_CLEAN_RUN_H_

#include <cstdint>
#include <string>

struct RunResult {
  double throughput = 0.0;
  std::uint64_t commits = 0;
  bool audited = false;
  // ccsim-analyze: cache-exempt(free-form diagnostic text; the cache stores the verdict, not the prose)
  std::string note;
};

#endif  // CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_CACHE_CLEAN_RUN_H_
