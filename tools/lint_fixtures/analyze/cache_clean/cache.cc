// Fixture: cache-schema pass, clean side (table).
#include "run.h"

namespace {

using R = RunResult;

constexpr int kFormatVersion = 2;

constexpr FieldDef kFields[] = {
    D("throughput", &R::throughput),
    U("commits", &R::commits),
    B("audited", &R::audited),
};

}  // namespace
