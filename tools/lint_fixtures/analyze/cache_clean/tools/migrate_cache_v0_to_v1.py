# Fixture: an *older* migration script in the lineage. The pass checks only
# the latest script (v1_to_v2 here), so this one's counts are irrelevant -
# latest-wins must keep the fixture clean.
V0_FIELD_COUNT = 1
V1_FIELD_COUNT = 2
