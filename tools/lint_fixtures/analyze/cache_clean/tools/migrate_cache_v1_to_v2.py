# Fixture: migration script matching the clean table (3 rows, target v2).
V1_FIELD_COUNT = 2
V2_FIELD_COUNT = 3
