// Fixture: fingerprint pass, violating side (implementation).
#include "params.h"

std::uint64_t SystemConfig::Fingerprint() const {
  std::uint64_t h = 0;
  h ^= run.master_seed;
  h ^= static_cast<std::uint64_t>(run.sim_seconds);
  // missing_knob, bad_waiver_knob, top_level_missing: deliberately absent.
  // (Mentions in comments must not count; comments are stripped.)
  return h;
}
