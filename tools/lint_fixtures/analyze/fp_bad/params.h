// Fixture: fingerprint pass, violating side.
// Expected: fingerprint x3 (missing_knob, bad_waiver_knob, top_level_missing)
//           + empty-annotation x1 (bad_waiver_knob's reasonless waiver).
#ifndef CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_FP_BAD_PARAMS_H_
#define CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_FP_BAD_PARAMS_H_

#include <cstdint>

struct RunParams {
  double sim_seconds = 10.0;
  std::uint64_t master_seed = 1;
  double missing_knob = 0.0;

  // ccsim-analyze: fp-exempt()
  std::uint64_t bad_waiver_knob = 0;
};

struct SystemConfig {
  RunParams run;
  double top_level_missing = 1.0;
  std::uint64_t Fingerprint() const;
};

#endif  // CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_FP_BAD_PARAMS_H_
