# Fixture: migration script whose field count disagrees with the table
# (the table in ../cache.cc has 5 rows).
V1_FIELD_COUNT = 2
V2_FIELD_COUNT = 3
