// Fixture: cache-schema pass, violating side (struct).
// Expected (with cache.cc + tools/): cache-schema x6.
#ifndef CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_CACHE_BAD_RUN_H_
#define CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_CACHE_BAD_RUN_H_

#include <cstdint>
#include <string>

struct RunResult {
  double throughput = 0.0;
  std::uint64_t commits = 0;
  double not_in_table = 0.0;   // missing table row
  std::uint64_t mistyped = 0;  // serialized via D() below
  // ccsim-analyze: cache-exempt(free-form text; waiver must hold even in a bad fixture)
  std::string note;
};

#endif  // CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_CACHE_BAD_RUN_H_
