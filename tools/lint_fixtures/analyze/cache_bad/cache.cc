// Fixture: cache-schema pass, violating side (table).
// Violations: key/member mismatch, duplicate member, type-macro mismatch,
// stale row, missing row (run.h), migration field-count mismatch (tools/).
#include "run.h"

namespace {

using R = RunResult;

constexpr int kFormatVersion = 2;

constexpr FieldDef kFields[] = {
    D("throughput", &R::throughput),
    U("commits", &R::commits),
    D("mistyped", &R::mistyped),
    U("stale_row", &R::stale_row),
    D("wrong_key", &R::throughput),
};

}  // namespace
