// Fixture: stream-id registry for the rng-stream pass.
#ifndef CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_RNG_STREAM_IDS_H_
#define CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_RNG_STREAM_IDS_H_

#include <cstdint>

namespace ccsim::sim::stream_ids {

/// Fixture band.
inline constexpr std::uint64_t kGoodStream = 42;

}  // namespace ccsim::sim::stream_ids

#endif  // CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_RNG_STREAM_IDS_H_
