// Fixture: rng-stream pass, clean side. Expected: no findings.
#include <memory>

void F(std::uint64_t seed, std::uint64_t node_stream_base) {
  RandomStream a(seed, sim::stream_ids::kGoodStream);
  RandomStream b(seed, node_stream_base + 3);
  auto d = std::make_unique<sim::RandomStream>(
      seed, sim::stream_ids::kGoodStream + 1);
  // ccsim-analyze: stream-ok(fixture-local scratch stream; never reaches the model)
  RandomStream c(seed, 7);
  RandomStream moved(std::move(a));
}
