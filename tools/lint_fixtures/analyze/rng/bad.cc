// Fixture: rng-stream pass, violating side. Expected: rng-stream x3.
#include <memory>

void F(std::uint64_t seed, std::uint64_t some_id) {
  RandomStream a(seed, 777);
  auto b = std::make_unique<sim::RandomStream>(seed, 9000 + 1);
  RandomStream c(seed, some_id);
}
