// Fixture: coroutine-lifetime pass, clean side. Expected: no findings.
// One audited this-capture waiver, one value capture, sanctioned awaits.
#include "sim.h"

void Node::Arm() {
  // ccsim-analyze: coro-ok(System owns both this node and the calendar and tears the calendar down first)
  sim_->After(1.0, [this] { Tick(); });
  sim_->After(2.0, [id = id_, s = sim_] { s->Touch(id); });
}

Process Node::Run() {
  co_await sim_->Delay(1.0);
  co_await sim::Await(done_);
}
