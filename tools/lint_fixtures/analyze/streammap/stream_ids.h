// Fixture: registry for the stream-map renderer.
#ifndef CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_STREAMMAP_STREAM_IDS_H_
#define CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_STREAMMAP_STREAM_IDS_H_

#include <cstdint>

namespace ccsim::sim::stream_ids {

/// Band A: does things.
inline constexpr std::uint64_t kAlphaStream = 100;

/// Band B: other things,
/// continued on a second line.
inline constexpr std::uint64_t kBetaStreamBase = 200;

}  // namespace ccsim::sim::stream_ids

#endif  // CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_STREAMMAP_STREAM_IDS_H_
