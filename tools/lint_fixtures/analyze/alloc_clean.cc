// Clean fixture for the hot-path-alloc pass: hot paths that stay on flat
// storage, plus a reasoned waiver. Expected findings: none.
#include <map>
#include <memory>
#include <vector>

namespace fixture {

struct Event {
  int id;
};

class Kernel {
 public:
  // ccsim-analyze: hot-path(fires once per simulation event)
  void Fire(int id) {
    flat_.push_back(Event{id});  // vector growth: amortized, flat, fine
    if (!scratch_.empty()) scratch_.clear();
  }

  // ccsim-analyze: hot-path(grant path; the completion hand-off is shared)
  void Grant(int id) {
    // ccsim-analyze: alloc-ok(shared hand-off is the ownership contract)
    done_ = std::make_unique<Event>(Event{id});
  }

  // Allocation in a plain function: not a hot path, not flagged.
  void Setup() { index_.insert({0, Event{0}}); }

 private:
  std::vector<Event> flat_;
  std::vector<int> scratch_;
  std::unique_ptr<Event> done_;
  std::map<int, Event> index_;
};

}  // namespace fixture
