// Violating fixture for the hot-path-alloc pass. Expected findings:
//   hot-path-alloc   5  (new, make_unique, map insert, map operator[],
//                        plus the one whose waiver gives no reason)
//   empty-annotation 1  (an alloc-ok with no reason does not waive)
#include <map>
#include <memory>
#include <vector>

namespace fixture {

struct Event {
  int id;
};

class Kernel {
 public:
  // ccsim-analyze: hot-path(fires once per simulation event)
  void Fire(int id) {
    Event* e = new Event{id};  // finding: new
    auto boxed = std::make_unique<Event>(*e);  // finding: make_unique
    pending_.insert({id, *boxed});  // finding: node-container insert
    pending_[id] = *boxed;  // finding: node-container operator[]
    delete e;
  }

  // ccsim-analyze: hot-path(inner loop of the grant path)
  void Grant(int id) {
    // ccsim-analyze: alloc-ok()
    auto leaked = std::make_unique<Event>(Event{id});  // empty-annotation
    flat_.push_back(*leaked);  // vector growth is not a sink
  }

  // Not annotated: allocations here are none of this pass's business.
  void ColdPath(int id) { cold_ = std::make_unique<Event>(Event{id}); }

 private:
  std::map<int, Event> pending_;
  std::vector<Event> flat_;
  std::unique_ptr<Event> cold_;
};

}  // namespace fixture
