// Fixture: determinism-taint pass, clean side. Expected: no findings.
// Pattern 1: collect, sort, then sink over the ordered copy.
// Pattern 2: commutative fold under a reasoned waiver.
#include <algorithm>
#include <unordered_map>
#include <vector>

void System::Flush() {
  std::unordered_map<int, Txn*> table;
  std::vector<int> ids;
  for (auto& [id, txn] : table) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (int id : ids) stats_.Record(id);
  // ccsim-analyze: taint-ok(commutative sum into the digest accumulator; iteration order cancels)
  for (auto& [id, txn] : table) total_ = MixCommutative(total_, id);
  // Pattern 3: ForEach that only collects keys (sorted before any sink).
  common::FlatHashMap<std::uint64_t, Txn*> flat;
  std::vector<std::uint64_t> keys;
  flat.ForEach([&](std::uint64_t id, Txn*) { keys.push_back(id); });
  std::sort(keys.begin(), keys.end());
  for (std::uint64_t id : keys) stats_.Record(id);
}
