// Fixture: determinism-taint pass, violating side.
// Expected: determinism-taint x3 (schedule, victim-selection, stats sinks).
#include <unordered_map>

void System::Flush() {
  std::unordered_map<int, Txn*> table;
  for (auto& [id, txn] : table) {
    calendar_.After(1.0, MakeEvent(txn));
  }
  for (auto& [id, txn] : table) {
    if (txn->blocked) AbortTransaction(txn);
  }
  for (auto& [id, txn] : table) {
    stats_.Record(id);
  }
}
