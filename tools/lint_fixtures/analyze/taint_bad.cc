// Fixture: determinism-taint pass, violating side.
// Expected: determinism-taint x4 (schedule, victim-selection, stats sinks,
// and a sink inside a FlatHashMap::ForEach callback).
#include <unordered_map>

#include "ccsim/common/flat_hash.h"

void System::Flush() {
  std::unordered_map<int, Txn*> table;
  for (auto& [id, txn] : table) {
    calendar_.After(1.0, MakeEvent(txn));
  }
  for (auto& [id, txn] : table) {
    if (txn->blocked) AbortTransaction(txn);
  }
  for (auto& [id, txn] : table) {
    stats_.Record(id);
  }
  common::FlatHashMap<std::uint64_t, Txn*> flat;
  flat.ForEach([&](std::uint64_t id, Txn* txn) {
    calendar_.After(1.0, MakeEvent(txn));
  });
}
