# Fixture: older script in the lineage; ignored by latest-wins (the broken
# one is v2_to_v3).
V1_FIELD_COUNT = 2
V2_FIELD_COUNT = 2
