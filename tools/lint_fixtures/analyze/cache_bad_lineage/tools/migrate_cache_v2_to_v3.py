# Fixture: the latest migration script, targeting the current version (3)
# but declaring no V3_FIELD_COUNT - the pass must flag the missing
# post-migration field-count assertion.
V2_FIELD_COUNT = 2
