// Fixture: cache-schema pass, lineage-violating side (struct). The table
// and struct agree; only the migration lineage is broken (tools/).
// Expected (with cache.cc + tools/): cache-schema x1.
#ifndef CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_CACHE_BAD_LINEAGE_RUN_H_
#define CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_CACHE_BAD_LINEAGE_RUN_H_

#include <cstdint>

struct RunResult {
  double throughput = 0.0;
  std::uint64_t commits = 0;
  double rt_p999 = 0.0;
};

#endif  // CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_CACHE_BAD_LINEAGE_RUN_H_
