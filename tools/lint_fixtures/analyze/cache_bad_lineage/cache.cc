// Fixture: cache-schema pass, lineage-violating side (table). The table is
// internally consistent and matches run.h; the latest migration script
// (tools/migrate_cache_v2_to_v3.py) targets the right version but declares
// no post-migration field count.
#include "run.h"

namespace {

using R = RunResult;

constexpr int kFormatVersion = 3;

constexpr FieldDef kFields[] = {
    D("throughput", &R::throughput),
    U("commits", &R::commits),
    D("rt_p999", &R::rt_p999),
};

}  // namespace
