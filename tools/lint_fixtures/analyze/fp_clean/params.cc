// Fixture: fingerprint pass, clean side (implementation). One knob mixed
// unconditionally, one via the conditional default-deviation idiom; both
// count as covered.
#include "params.h"

std::uint64_t SystemConfig::Fingerprint() const {
  std::uint64_t h = 0;
  h ^= run.master_seed;
  if (run.sim_seconds != 10.0) {
    h ^= static_cast<std::uint64_t>(run.sim_seconds);
  }
  return h;
}
