// Fixture: fingerprint pass, clean side. Expected: no findings.
#ifndef CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_FP_CLEAN_PARAMS_H_
#define CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_FP_CLEAN_PARAMS_H_

#include <cstdint>

struct RunParams {
  double sim_seconds = 10.0;
  std::uint64_t master_seed = 1;
  // ccsim-analyze: fp-exempt(diagnostic kill switch; can never change a cached metric)
  std::uint64_t debug_knob = 0;
};

struct SystemConfig {
  RunParams run;
  std::uint64_t Fingerprint() const;
};

#endif  // CCSIM_TOOLS_LINT_FIXTURES_ANALYZE_FP_CLEAN_PARAMS_H_
