// Seeded-violation fixture for ccsim_lint --self-test. Never compiled.
// Expected findings: 3x wall-clock, 2x random, 2x unordered-iter,
// 2x include-hygiene, 1x empty-annotation.

#include <ctime>
#include <unordered_map>
#include <unordered_set>
#include "vector"          // include-hygiene: std header in quotes
#include "../sim/check.h"  // include-hygiene: relative include

void Violations() {
  std::time_t now = time(nullptr);       // wall-clock
  (void)now;
  auto tp = std::chrono::system_clock::now();  // wall-clock
  (void)tp;
  struct timeval tv;
  gettimeofday(&tv, nullptr);            // wall-clock

  int r = rand();                        // random
  (void)r;
  std::random_device rd;                 // random

  std::unordered_map<int, int> counts;
  std::unordered_set<int> seen;
  for (const auto& [k, v] : counts) {    // unordered-iter (no annotation)
    (void)k;
    (void)v;
  }
  // ccsim-lint: unordered-iter-ok()
  for (int x : seen) {                   // empty-annotation (reason missing)
    (void)x;
  }
}

void NotViolations() {
  // Mentions of rand() or system_clock in comments are fine.
  const char* s = "time(nullptr) in a string is fine";
  (void)s;
  std::unordered_map<int, int> audited;
  // ccsim-lint: unordered-iter-ok(summing is commutative)
  for (const auto& [k, v] : audited) {   // waived by the line above
    (void)k;
    (void)v;
  }
}
