#!/usr/bin/env python3
"""ccsim_lint: repo-specific determinism and hygiene linter for ccsim.

The simulator's methodology (common random numbers, bit-reproducible runs)
depends on invariants a generic linter cannot know about. This pass
mechanically enforces them over C++ sources:

  wall-clock       Wall-clock time sources (std::chrono::system_clock,
                   time(), gettimeofday, clock_gettime, localtime, gmtime)
                   are banned: simulated time comes from the Calendar, and
                   wall time may only be read through steady_clock (allowed)
                   for wall_seconds accounting.
  random           rand()/srand() and std::random_device are banned: all
                   randomness must flow through sim::RandomStream, seeded
                   from the run's master seed.
  unordered-iter   Iterating a std::unordered_{map,set,multimap,multiset}
                   (range-for or explicit .begin()/.end() loops) is flagged:
                   hash iteration order is unspecified and changes across
                   stdlib versions, which silently changes event ordering
                   and deadlock-victim choice. Sites that are provably
                   order-independent carry an audit annotation:
                       // ccsim-lint: unordered-iter-ok(<reason>)
                   on the loop line or one of the two lines above it.
  header-guard     Headers use #ifndef/#define guards named after the path:
                   src/ccsim/cc/bto.h -> CCSIM_CC_BTO_H_ (leading src/ is
                   dropped; tests/ and bench/ keep their directory name).
  include-hygiene  Project headers are included as "ccsim/..." (quotes, full
                   path from the source root); no "../" relative includes;
                   no <ccsim/...> angle-bracket includes of project headers.
  bare-assert      In src/, invariants use CCSIM_CHECK / CCSIM_DCHECK from
                   ccsim/sim/check.h, never bare assert() (which vanishes
                   under NDEBUG and aborts without a simulator-level
                   message). static_assert and gtest ASSERT_* are fine.
  no-abort         In src/, direct process termination (abort(), exit(),
                   _exit(), quick_exit(), std:: variants) is banned: fatal
                   paths go through CCSIM_CHECK so the failure prints the
                   simulation clock, event context, and diagnostic dump.
                   The one sanctioned call site is ccsim/sim/check.h.

Any rule can be waived for one line with
    // ccsim-lint: <rule>-ok(<reason>)
with a non-empty reason; the annotation marks a human determinism audit.

Usage:
    ccsim_lint.py DIR_OR_FILE...      lint the given trees (exit 1 on findings)
    ccsim_lint.py --self-test         run the linter against its fixtures
"""

from __future__ import annotations

import os
import re
import sys
from dataclasses import dataclass

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")

ANNOTATION_RE = re.compile(r"ccsim-lint:\s*([a-z-]+)-ok\(([^)]*)\)")

WALL_CLOCK_RE = re.compile(
    r"(?<![\w])system_clock\b"
    r"|(?<![\w])gettimeofday\s*\("
    r"|(?<![\w])clock_gettime\s*\("
    r"|(?<![\w])time\s*\(\s*(?:NULL|nullptr|0|&|\))"
    r"|(?<![\w])localtime(?:_r)?\s*\("
    r"|(?<![\w])gmtime(?:_r)?\s*\("
)

RANDOM_RE = re.compile(
    r"(?<![\w])s?rand\s*\("
    r"|(?<![\w])random_device\b"
)

BARE_ASSERT_RE = re.compile(r"(?<![\w])assert\s*\(")

NO_ABORT_RE = re.compile(
    r"(?<![\w])(?:std\s*::\s*)?(?:abort|exit|_exit|quick_exit)\s*\(")

# std::unordered_* plus the in-tree FlatHashMap (common/flat_hash.h), whose
# ForEach visits entries in hash-table order — the same determinism hazard.
UNORDERED_DECL_RE = re.compile(
    r"(?:std\s*::\s*)?unordered_(?:multi)?(?:map|set)\s*<"
    r"|(?:common\s*::\s*)?FlatHashMap\s*<")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"])([^>"]+)[>"]')


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Returns per-line code with comments and string/char literals blanked.

    Keeps line lengths irrelevant; only token presence matters. Handles //
    and /* */ comments and simple escapes within literals. Raw strings are
    treated like plain strings (good enough for this codebase).
    """
    out = []
    in_block = False
    for line in lines:
        code = []
        i = 0
        n = len(line)
        while i < n:
            c = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if c == "/" and nxt == "/":
                break  # rest of line is a comment
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if c in ('"', "'"):
                quote = c
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                code.append(quote + quote)  # keep a token boundary
                continue
            code.append(c)
            i += 1
        out.append("".join(code))
    return out


def annotated_rules(raw_lines: list[str], lineno: int) -> dict[str, str]:
    """Annotations that apply to 1-based line `lineno` (same line or the two
    lines above). Returns {rule: reason}."""
    found: dict[str, str] = {}
    for ln in (lineno, lineno - 1, lineno - 2):
        if 1 <= ln <= len(raw_lines):
            for m in ANNOTATION_RE.finditer(raw_lines[ln - 1]):
                found.setdefault(m.group(1), m.group(2).strip())
    return found


def waived(findings: list[Finding], raw_lines: list[str], finding: Finding) -> bool:
    """True when an annotation waives `finding`. An annotation with an empty
    reason does NOT waive (the reason documents the determinism audit); it
    gets an extra empty-annotation finding instead."""
    ann = annotated_rules(raw_lines, finding.line)
    if finding.rule not in ann:
        return False
    if not ann[finding.rule]:
        findings.append(
            Finding(finding.path, finding.line, "empty-annotation",
                    f"annotation {finding.rule}-ok() needs a reason"))
        return False
    return True


def find_unordered_names(code_lines: list[str]) -> set[str]:
    """Names of variables/members declared with an unordered container type.

    Heuristic: after `unordered_xxx<...>` (balanced angle brackets), an
    identifier followed by ; = { ( , marks a declaration. Type aliases and
    nested uses are conservatively included.
    """
    text = "\n".join(code_lines)
    names: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(text):
        i = m.end()  # just past '<'
        depth = 1
        n = len(text)
        while i < n and depth > 0:
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
            i += 1
        if depth != 0:
            continue
        rest = text[i:i + 160]
        dm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={(,)]", rest)
        if dm:
            names.add(dm.group(1))
    return names


def expected_guard(path: str, root: str) -> str:
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    if rel.startswith("src/"):
        rel = rel[len("src/"):]
    stem = re.sub(r"\.(h|hpp)$", "", rel)
    guard = re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"
    # Repo convention: every guard carries the project prefix, including
    # headers outside src/ (tests/test_util.h -> CCSIM_TESTS_TEST_UTIL_H_).
    if not guard.startswith("CCSIM_"):
        guard = "CCSIM_" + guard
    return guard


# C and C++ standard headers that must be included with angle brackets.
STD_HEADERS = {
    "algorithm", "array", "atomic", "bit", "bitset", "cassert", "cctype",
    "cerrno", "cfloat", "charconv", "chrono", "cinttypes", "climits",
    "cmath", "compare", "complex", "concepts", "condition_variable",
    "coroutine", "csetjmp", "csignal", "cstdarg", "cstddef", "cstdint",
    "cstdio", "cstdlib", "cstring", "ctime", "cwchar", "deque", "exception",
    "execution", "filesystem", "format", "forward_list", "fstream",
    "functional", "future", "initializer_list", "iomanip", "ios", "iosfwd",
    "iostream", "istream", "iterator", "latch", "limits", "list", "locale",
    "map", "memory", "memory_resource", "mutex", "new", "numbers", "numeric",
    "optional", "ostream", "queue", "random", "ranges", "ratio", "regex",
    "scoped_allocator", "semaphore", "set", "shared_mutex", "source_location",
    "span", "sstream", "stack", "stdexcept", "stop_token", "streambuf",
    "string", "string_view", "syncstream", "system_error", "thread", "tuple",
    "type_traits", "typeindex", "typeinfo", "unordered_map", "unordered_set",
    "utility", "valarray", "variant", "vector", "version",
}


def lint_file(path: str, root: str) -> list[Finding]:
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw = f.read().splitlines()
    except OSError as e:
        return [Finding(path, 0, "io", str(e))]

    code = strip_comments_and_strings(raw)
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    in_src = rel.startswith("src/")
    findings: list[Finding] = []

    def add(line: int, rule: str, message: str) -> None:
        f = Finding(rel, line, rule, message)
        if not waived(findings, raw, f):
            findings.append(f)

    # --- line-based bans -------------------------------------------------
    for i, cline in enumerate(code, start=1):
        if WALL_CLOCK_RE.search(cline):
            add(i, "wall-clock",
                "wall-clock time source; simulated time comes from the "
                "Calendar (steady_clock is allowed for wall accounting)")
        if RANDOM_RE.search(cline):
            add(i, "random",
                "uncontrolled randomness; use sim::RandomStream seeded from "
                "the master seed")
        if in_src and BARE_ASSERT_RE.search(cline):
            add(i, "bare-assert",
                "bare assert(); use CCSIM_CHECK / CCSIM_DCHECK from "
                "ccsim/sim/check.h")
        if in_src and NO_ABORT_RE.search(cline):
            add(i, "no-abort",
                "direct process termination; fatal paths go through "
                "CCSIM_CHECK (ccsim/sim/check.h) so the failure carries "
                "simulation context and the diagnostic dump")

    # --- unordered container iteration ----------------------------------
    # Members are typically *declared* in the header and *iterated* in the
    # sibling .cc, so collect unordered names from companion files too
    # (foo.cc <-> foo.h/foo.hpp).
    names = find_unordered_names(code)
    stem = re.sub(r"\.(h|hpp|cc|cpp|cxx)$", "", path)
    for ext in CXX_EXTENSIONS:
        companion = stem + ext
        if companion == path or not os.path.isfile(companion):
            continue
        try:
            with open(companion, "r", encoding="utf-8",
                      errors="replace") as f:
                names |= find_unordered_names(
                    strip_comments_and_strings(f.read().splitlines()))
        except OSError:
            pass
    if names:
        alt = "|".join(re.escape(n) for n in sorted(names))
        range_for = re.compile(
            r"for\s*\(.*:\s*\*?\s*(?:\w+(?:\.|->))?(" + alt + r")\s*\)")
        begin_loop = re.compile(
            r"for\s*\(.*(" + alt + r")\s*\.\s*(?:begin|cbegin)\s*\(")
        foreach_call = re.compile(
            r"\b(" + alt + r")\s*\.\s*ForEach(?:Mutable)?\s*\(")
        for i, cline in enumerate(code, start=1):
            m = (range_for.search(cline) or begin_loop.search(cline)
                 or foreach_call.search(cline))
            if not m:
                # Range-for whose range expression spans to the next line(s)
                # is rare in this codebase; single-line match is enough.
                continue
            add(i, "unordered-iter",
                f"iteration over unordered container '{m.group(1)}' has "
                "unspecified order; iterate a sorted copy, use an ordered "
                "container, or annotate "
                "// ccsim-lint: unordered-iter-ok(<reason>) after a "
                "determinism audit")

    # --- header guards ---------------------------------------------------
    if path.endswith((".h", ".hpp")):
        guard = expected_guard(path, root)
        ifndef_re = re.compile(r"^\s*#\s*ifndef\s+(\w+)")
        first_directive = None
        for i, cline in enumerate(code, start=1):
            if not cline.strip():
                continue
            m = ifndef_re.match(cline)
            first_directive = (i, m.group(1) if m else None)
            break
        if first_directive is None or first_directive[1] is None:
            add(1, "header-guard",
                f"missing include guard (expected #ifndef {guard})")
        else:
            i, got = first_directive
            if got != guard:
                add(i, "header-guard",
                    f"include guard {got} should be {guard}")
            else:
                define_ok = any(
                    re.match(r"^\s*#\s*define\s+" + re.escape(guard) + r"\b",
                             c) for c in code)
                if not define_ok:
                    add(i, "header-guard",
                        f"#ifndef {guard} without matching #define")

    # --- include hygiene -------------------------------------------------
    for i, rline in enumerate(raw, start=1):
        m = INCLUDE_RE.match(rline)
        if not m:
            continue
        bracket, target = m.group(1), m.group(2)
        if "\\" in target or target.startswith("/"):
            add(i, "include-hygiene",
                f'malformed include path "{target}"')
        if ".." in target.split("/"):
            add(i, "include-hygiene",
                f'relative include "{target}"; include as "ccsim/..." from '
                "the source root")
        if bracket == "<" and target.startswith("ccsim/"):
            add(i, "include-hygiene",
                f'project header <{target}> must use quotes')
        if bracket == '"' and (target in STD_HEADERS or
                               target.endswith((".h", ".hpp")) and
                               target.split("/")[0] in ("sys", "bits")):
            if target in STD_HEADERS:
                add(i, "include-hygiene",
                    f'standard header "{target}" must use angle brackets')

    return findings


def collect_files(targets: list[str]) -> list[str]:
    files: list[str] = []
    for t in targets:
        if os.path.isfile(t):
            files.append(t)
            continue
        if not os.path.isdir(t):
            # A typo'd path must not lint an empty set and report "clean".
            sys.stderr.write(f"ccsim_lint: no such file or directory: {t}\n")
            sys.exit(2)
        for dirpath, dirnames, filenames in os.walk(t):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in ("build", ".git", "lint_fixtures"))
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return files


def run_lint(targets: list[str], root: str) -> list[Finding]:
    findings: list[Finding] = []
    for path in collect_files(targets):
        findings.extend(lint_file(path, root))
    return findings


# --------------------------------------------------------------------------
# Self-test against the fixtures in tools/lint_fixtures/.

def self_test() -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    fixtures = os.path.join(here, "lint_fixtures")
    root = os.path.dirname(here)  # repo root, so fixture paths read nicely

    bad = os.path.join(fixtures, "violations.cc")
    bad_header = os.path.join(fixtures, "bad_guard.h")
    clean = os.path.join(fixtures, "clean.cc")

    failures: list[str] = []

    def expect(cond: bool, what: str) -> None:
        if not cond:
            failures.append(what)

    # The fixture is outside src/, so bare-assert does not fire in it (that
    # rule is covered separately below with a faked src/ root).
    bad_findings = run_lint([bad], root)
    got_rules = sorted(f.rule for f in bad_findings)
    expected_rules = sorted([
        "wall-clock", "wall-clock", "wall-clock",
        "random", "random",
        "unordered-iter", "unordered-iter",
        "include-hygiene", "include-hygiene",
        "empty-annotation",
    ])
    expect(got_rules == expected_rules,
           f"violations.cc: expected {expected_rules}, got {got_rules}:\n  "
           + "\n  ".join(f.format() for f in bad_findings))

    header_findings = run_lint([bad_header], root)
    expect(any(f.rule == "header-guard" for f in header_findings),
           "bad_guard.h: expected a header-guard finding, got "
           + str([f.format() for f in header_findings]))

    clean_findings = run_lint([clean], root)
    expect(clean_findings == [],
           "clean.cc: expected no findings, got:\n  "
           + "\n  ".join(f.format() for f in clean_findings))

    # A src/-scoped file with a bare assert or a direct abort()/exit() must
    # fire bare-assert / no-abort: lint the fixture under a faked root so it
    # appears to live in src/. Exactly one bare-assert, two no-abort (the
    # third termination call carries a no-abort-ok waiver).
    src_fixture = os.path.join(fixtures, "src", "ccsim", "sim",
                               "bad_assert.cc")
    assert_findings = run_lint([src_fixture], fixtures)
    src_rules = sorted(f.rule for f in assert_findings)
    expect(src_rules == ["bare-assert", "no-abort", "no-abort"],
           "bad_assert.cc: expected [bare-assert, no-abort x2], got "
           + str([f.format() for f in assert_findings]))

    if failures:
        print("ccsim_lint self-test FAILED:")
        for f in failures:
            print("  -", f)
        return 1
    print("ccsim_lint self-test passed.")
    return 0


def main(argv: list[str]) -> int:
    args = argv[1:]
    if not args:
        print(__doc__)
        return 2
    if args == ["--self-test"]:
        return self_test()
    if any(a.startswith("-") for a in args):
        print(f"unknown option in {args}", file=sys.stderr)
        return 2

    # Repo root = parent of this script's directory; findings print relative
    # to it.
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    findings = run_lint(args, root)
    if findings:
        for f in findings:
            print(f.format())
        print(f"ccsim_lint: {len(findings)} finding(s).")
        return 1
    print("ccsim_lint: clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
