#!/usr/bin/env python3
"""Migrate ccsim result-cache entries from format v5 to v6.

v6 appends the fault metrics (availability, goodput, node crash / message
loss counters, fault abort breakdown, forced terminations) to the per-point
result files. Every v5 entry predates the fault layer, i.e. was produced
with all fault rates zero, so its v6 form is the v5 fields plus the exact
values a fault-free run reports: availability 1, goodput == throughput
(copied verbatim to keep the round-trip bytes identical), all counters 0.
Fingerprints are unchanged (FaultParams are only mixed in when a rate is
nonzero), so only the file name's version prefix moves.

Usage: tools/migrate_cache_v5_to_v6.py [cache_dir]
Idempotent; v5 files are removed only after their v6 twin is in place.
"""

import os
import sys

V5_FIELD_COUNT = 30
V6_FIELD_COUNT = 38

# (key, default) appended in serialization order; None = copy another field.
NEW_FIELDS = [
    ("availability", "1"),
    ("goodput", None),  # equals throughput in a fault-free run
    ("node_crashes", "0"),
    ("messages_dropped", "0"),
    ("messages_lost", "0"),
    ("aborts_node_crash", "0"),
    ("aborts_comm_timeout", "0"),
    ("forced_terminations", "0"),
]


def migrate_file(directory, name):
    path = os.path.join(directory, name)
    with open(path, "r", encoding="ascii") as f:
        lines = f.read().splitlines()
    if not lines or lines[-1] != f"field_count {V5_FIELD_COUNT}":
        print(f"skip (not a clean v5 entry): {name}", file=sys.stderr)
        return False
    fields = dict(line.split(" ", 1) for line in lines[:-1])
    if "throughput" not in fields:
        print(f"skip (no throughput field): {name}", file=sys.stderr)
        return False
    body = lines[:-1]
    for key, default in NEW_FIELDS:
        value = fields["throughput"] if default is None else default
        body.append(f"{key} {value}")
    body.append(f"field_count {V6_FIELD_COUNT}")

    new_name = "v6_" + name[len("v5_"):]
    new_path = os.path.join(directory, new_name)
    tmp = new_path + ".tmp.migrate"
    with open(tmp, "w", encoding="ascii") as f:
        f.write("\n".join(body) + "\n")
    os.replace(tmp, new_path)
    os.remove(path)
    return True


def main():
    directory = sys.argv[1] if len(sys.argv) > 1 else "ccsim_bench_cache"
    if not os.path.isdir(directory):
        print(f"no such directory: {directory}", file=sys.stderr)
        return 1
    migrated = 0
    for name in sorted(os.listdir(directory)):
        if name.startswith("v5_") and name.endswith(".result"):
            if migrate_file(directory, name):
                migrated += 1
    print(f"migrated {migrated} entries in {directory}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
