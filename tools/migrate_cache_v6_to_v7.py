#!/usr/bin/env python3
"""Migrate ccsim result-cache entries from format v6 to v7.

v7 appends the tail-latency metrics (rt_p999 and the per-phase response-time
decomposition plus the measured multiprogramming level) to the per-point
result files. v6 entries predate the instrumentation, so none of these were
measured; they are filled with 0, the explicit "not measured" value (the
engine can never report an all-zero phase breakdown for a run that committed
anything, so 0 is unambiguous). Pre-existing fields are copied byte-for-byte
and fingerprints are unchanged, so regenerated figure CSVs stay
byte-identical for pre-existing columns; only the file name's version prefix
moves.

Usage: tools/migrate_cache_v6_to_v7.py [cache_dir]
Idempotent; v6 files are removed only after their v7 twin is in place.
"""

import os
import sys

V6_FIELD_COUNT = 38
V7_FIELD_COUNT = 44

# (key, default) appended in serialization order; None = copy another field.
NEW_FIELDS = [
    ("rt_p999", "0"),
    ("mean_queue_time", "0"),
    ("mean_exec_time", "0"),
    ("mean_commit_wait_time", "0"),
    ("mean_restart_wasted_time", "0"),
    ("mean_active_txns", "0"),
]


def migrate_file(directory, name):
    path = os.path.join(directory, name)
    with open(path, "r", encoding="ascii") as f:
        lines = f.read().splitlines()
    if not lines or lines[-1] != f"field_count {V6_FIELD_COUNT}":
        print(f"skip (not a clean v6 entry): {name}", file=sys.stderr)
        return False
    fields = dict(line.split(" ", 1) for line in lines[:-1])
    if "throughput" not in fields:
        print(f"skip (no throughput field): {name}", file=sys.stderr)
        return False
    body = lines[:-1]
    for key, default in NEW_FIELDS:
        value = fields["throughput"] if default is None else default
        body.append(f"{key} {value}")
    body.append(f"field_count {V7_FIELD_COUNT}")

    new_name = "v7_" + name[len("v6_"):]
    new_path = os.path.join(directory, new_name)
    tmp = new_path + ".tmp.migrate"
    with open(tmp, "w", encoding="ascii") as f:
        f.write("\n".join(body) + "\n")
    os.replace(tmp, new_path)
    os.remove(path)
    return True


def main():
    directory = sys.argv[1] if len(sys.argv) > 1 else "ccsim_bench_cache"
    if not os.path.isdir(directory):
        print(f"no such directory: {directory}", file=sys.stderr)
        return 1
    migrated = 0
    for name in sorted(os.listdir(directory)):
        if name.startswith("v6_") and name.endswith(".result"):
            if migrate_file(directory, name):
                migrated += 1
    print(f"migrated {migrated} entries in {directory}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
