#!/usr/bin/env python3
"""Round-trip test for tools/migrate_cache_v6_to_v7.py (tier-1).

Builds a synthetic v6 cache entry, migrates it, and checks:
  * the v7 twin appears and the v6 original is gone,
  * pre-existing fields are byte-identical (so regenerated figure CSVs
    cannot move for pre-existing columns),
  * exactly the six v7 fields are appended, defaulted to 0, with the
    field_count trailer updated,
  * stripping the appended fields recovers the original v6 bytes exactly
    (the migration is lossless),
  * re-running migrates nothing (idempotent),
  * entries that are not clean v6 files are left untouched.
"""

import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
MIGRATE = os.path.join(HERE, "migrate_cache_v6_to_v7.py")

# A clean v6 entry: 38 fields + trailer, values chosen to exercise integer,
# 17-significant-digit double, and bool formatting.
V6_FIELDS = [
    ("throughput", "12.199999999999999"),
    ("mean_response_time", "2.4500000000000002"),
    ("rt_ci_half_width", "0.050000000000000003"),
    ("max_response_time", "30.100000000000001"),
    ("rt_p50", "1.8"),
    ("rt_p90", "5.2000000000000002"),
    ("rt_p99", "12"),
    ("commits", "18300"),
    ("aborts", "421"),
    ("abort_ratio", "0.023"),
    ("aborts_local_deadlock", "17"),
    ("aborts_global_deadlock", "3"),
    ("aborts_wound", "0"),
    ("aborts_timestamp", "0"),
    ("aborts_certification", "0"),
    ("aborts_die", "0"),
    ("aborts_timeout", "401"),
    ("host_cpu_util", "0.77000000000000002"),
    ("proc_cpu_util", "0.55000000000000004"),
    ("disk_util", "0.40000000000000002"),
    ("mean_blocking_time", "0.33000000000000002"),
    ("blocked_waits", "9987"),
    ("messages_per_commit", "42.5"),
    ("transactions_submitted", "18500"),
    ("live_at_end", "128"),
    ("events", "12345678901234567890"),  # > 2^53: must survive as text
    ("sim_seconds", "1800"),
    ("wall_seconds", "12.34"),
    ("audited", "0"),
    ("serializable", "1"),
    ("availability", "1"),
    ("goodput", "12.199999999999999"),
    ("node_crashes", "0"),
    ("messages_dropped", "0"),
    ("messages_lost", "0"),
    ("aborts_node_crash", "0"),
    ("aborts_comm_timeout", "0"),
    ("forced_terminations", "0"),
]
NEW_KEYS = [
    "rt_p999",
    "mean_queue_time",
    "mean_exec_time",
    "mean_commit_wait_time",
    "mean_restart_wasted_time",
    "mean_active_txns",
]


def v6_bytes():
    lines = [f"{k} {v}" for k, v in V6_FIELDS]
    lines.append(f"field_count {len(V6_FIELDS)}")
    return "\n".join(lines) + "\n"


def run_migration(directory):
    return subprocess.run(
        [sys.executable, MIGRATE, directory],
        capture_output=True, text=True, check=True)


def main():
    failures = []

    def check(cond, what):
        if not cond:
            failures.append(what)
            print(f"FAIL: {what}", file=sys.stderr)

    with tempfile.TemporaryDirectory() as d:
        name6 = "v6_00000000deadbeef.result"
        name7 = "v7_00000000deadbeef.result"
        with open(os.path.join(d, name6), "w", encoding="ascii") as f:
            f.write(v6_bytes())
        # A file that must be left alone: wrong trailer (truncated write).
        with open(os.path.join(d, "v6_0000000000000bad.result"), "w",
                  encoding="ascii") as f:
            f.write("throughput 1\nfield_count 2\n")

        proc = run_migration(d)
        check("migrated 1 entries" in proc.stdout,
              f"expected 1 migration, got: {proc.stdout!r}")
        check(not os.path.exists(os.path.join(d, name6)),
              "v6 original should be removed")
        check(os.path.exists(os.path.join(d, name7)),
              "v7 twin should exist")
        check(os.path.exists(os.path.join(d, "v6_0000000000000bad.result")),
              "non-clean v6 file must be left untouched")

        with open(os.path.join(d, name7), "r", encoding="ascii") as f:
            lines = f.read().splitlines()
        check(lines[-1] == f"field_count {len(V6_FIELDS) + len(NEW_KEYS)}",
              f"v7 trailer wrong: {lines[-1]!r}")
        # Pre-existing fields byte-identical, in order.
        old_body = [f"{k} {v}" for k, v in V6_FIELDS]
        check(lines[:len(old_body)] == old_body,
              "pre-existing fields must be byte-identical")
        appended = lines[len(old_body):-1]
        check(appended == [f"{k} 0" for k in NEW_KEYS],
              f"appended fields wrong: {appended!r}")
        # Lossless: stripping the appended fields recovers the v6 bytes.
        recovered = "\n".join(
            old_body + [f"field_count {len(V6_FIELDS)}"]) + "\n"
        check(recovered == v6_bytes(), "migration must be lossless")

        # Idempotent: a second run has nothing left to do.
        proc = run_migration(d)
        check("migrated 0 entries" in proc.stdout,
              f"expected idempotent re-run, got: {proc.stdout!r}")

    if failures:
        print(f"{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("ok: migrate_cache_v6_to_v7 round-trip")
    return 0


if __name__ == "__main__":
    sys.exit(main())
