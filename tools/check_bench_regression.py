#!/usr/bin/env python3
"""Collect and gate the DES-kernel benchmark baseline (BENCH_kernel.json).

Two subcommands:

  collect   Run bench/micro_simulator with --benchmark_format=json plus one
            cold-cache engine smoke sweep (a figure binary under CCSIM_QUICK=1
            with a throwaway CCSIM_CACHE_DIR, so the result cache cannot hide
            engine slowdowns) and a cold-cache 256-node megascale smoke whose
            peak RSS (getrusage of the child) gates the kernel's memory
            footprint, and write the combined items/sec snapshot.

  compare   Compare a fresh snapshot against the committed baseline and fail
            (exit 1) if any benchmark's items/sec dropped by more than
            --threshold (default 30%).

The committed baseline lives at bench_results/BENCH_kernel.json. CI runs
`collect` into a scratch file and `compare`s it against the baseline; refresh
instructions are in EXPERIMENTS.md.

Items/sec is the gated metric because it is what the benchmarks advertise
(SetItemsProcessed); for benchmarks that do not set it, the reciprocal of
real time per iteration is used so every row has a comparable rate.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

SCHEMA_VERSION = 1
DEFAULT_BASELINE = "bench_results/BENCH_kernel.json"
# One real engine sweep, run cold: fig02 is the paper's headline throughput
# figure and touches the whole stack (calendar, CPU/disk, locking, network).
SMOKE_FIGURE = "fig02_throughput"
# The memory gate: one cold 256-node megascale point (CCSIM_MEGASCALE_SMOKE
# restricts ext_megascale to 256 nodes / one algorithm). Peak RSS is stored
# as its reciprocal so the compare gate's drops-are-bad logic fires when the
# footprint grows.
MEGASCALE_FIGURE = "ext_megascale"

_TIME_UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def rate_of(bench):
    """items/sec for one google-benchmark JSON entry."""
    if "items_per_second" in bench:
        return float(bench["items_per_second"])
    unit = _TIME_UNIT_SECONDS.get(bench.get("time_unit", "ns"), 1e-9)
    real = float(bench["real_time"]) * unit
    if real <= 0:
        return 0.0
    return 1.0 / real  # iterations/sec


def run_micro_benchmarks(build_dir, min_time, bench_filter):
    binary = os.path.join(build_dir, "bench", "micro_simulator")
    if not os.path.exists(binary):
        sys.exit(f"error: {binary} not found (build the Release tree first)")
    cmd = [
        binary,
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    print(f"[collect] {' '.join(cmd)}", file=sys.stderr)
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    report = json.loads(out.stdout)
    rates = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        rates[bench["name"]] = rate_of(bench)
    if not rates:
        sys.exit("error: micro_simulator produced no benchmark entries")
    return rates


def max_smoke_p99(cache_dir):
    """Largest rt_p99 (simulated seconds) across the sweep's cache entries."""
    worst = 0.0
    seen = 0
    for name in sorted(os.listdir(cache_dir)):
        if not name.endswith(".result"):
            continue
        with open(os.path.join(cache_dir, name)) as f:
            for line in f:
                if line.startswith("rt_p99 "):
                    worst = max(worst, float(line.split(" ", 1)[1]))
                    seen += 1
                    break
    if seen == 0:
        sys.exit("error: smoke sweep produced no rt_p99 fields")
    return worst


def run_cold_smoke_sweep(build_dir):
    """Times one figure sweep with an empty result cache; rate = sweeps/sec.

    Also gates a *tail* metric: the worst per-point p99 response time of the
    sweep, stored as its reciprocal so the compare gate's drops-are-bad logic
    fires when the tail gets worse. Unlike the wall-clock rates, the p99 is
    simulated time - deterministic and machine-independent - so it doubles
    as a behavior pin.
    """
    binary = os.path.join(build_dir, "bench", SMOKE_FIGURE)
    if not os.path.exists(binary):
        sys.exit(f"error: {binary} not found (build the Release tree first)")
    with tempfile.TemporaryDirectory(prefix="ccsim-bench-") as tmp:
        env = dict(os.environ)
        env["CCSIM_QUICK"] = "1"  # smoke-length run windows
        env["CCSIM_CACHE_DIR"] = os.path.join(tmp, "cache")  # cold cache
        env["CCSIM_CSV_DIR"] = os.path.join(tmp, "csv")
        env["CCSIM_JOBS"] = "1"  # deterministic load; CI runners vary in cores
        os.makedirs(env["CCSIM_CACHE_DIR"])
        os.makedirs(env["CCSIM_CSV_DIR"])
        print(f"[collect] cold-cache smoke sweep: {binary}", file=sys.stderr)
        start = time.monotonic()
        subprocess.run([binary], check=True, env=env,
                       stdout=subprocess.DEVNULL)
        elapsed = time.monotonic() - start
        worst_p99 = max_smoke_p99(env["CCSIM_CACHE_DIR"])
    if elapsed <= 0:
        sys.exit("error: smoke sweep finished suspiciously fast")
    return {
        f"EngineSmokeSweep/{SMOKE_FIGURE}_cold": 1.0 / elapsed,
        f"EngineSmokeTail/{SMOKE_FIGURE}_rt_p99_inverse": 1.0 / worst_p99,
    }


def sum_cache_events(cache_dir):
    """Total simulation events recorded across the sweep's cache entries."""
    total = 0
    seen = 0
    for name in sorted(os.listdir(cache_dir)):
        if not name.endswith(".result"):
            continue
        with open(os.path.join(cache_dir, name)) as f:
            for line in f:
                if line.startswith("events "):
                    total += int(line.split(" ", 1)[1])
                    seen += 1
                    break
    if seen == 0:
        sys.exit("error: megascale smoke produced no events fields")
    return total


def run_megascale_smoke(build_dir):
    """Runs the 256-node megascale point cold and gates its memory footprint.

    Peak RSS comes from the child's getrusage (os.wait4), so it covers the
    whole process - arenas, lock tables, coroutine frames - not a sampled
    instant. Rate = simulation events/sec of wall time. Both are inherently
    machine-dependent except that RSS of a deterministic single-threaded run
    is stable to within allocator noise, far inside the 30% gate.
    """
    binary = os.path.join(build_dir, "bench", MEGASCALE_FIGURE)
    if not os.path.exists(binary):
        sys.exit(f"error: {binary} not found (build the Release tree first)")
    with tempfile.TemporaryDirectory(prefix="ccsim-mega-") as tmp:
        env = dict(os.environ)
        env["CCSIM_QUICK"] = "1"
        env["CCSIM_MEGASCALE_SMOKE"] = "1"
        env["CCSIM_CACHE_DIR"] = os.path.join(tmp, "cache")  # cold cache
        env["CCSIM_CSV_DIR"] = os.path.join(tmp, "csv")
        env["CCSIM_JOBS"] = "1"  # one child: its rusage is the whole run
        os.makedirs(env["CCSIM_CACHE_DIR"])
        os.makedirs(env["CCSIM_CSV_DIR"])
        print(f"[collect] cold-cache megascale smoke: {binary}",
              file=sys.stderr)
        start = time.monotonic()
        with open(os.devnull, "wb") as devnull:
            proc = subprocess.Popen([binary], env=env, stdout=devnull)
            _, status, rusage = os.wait4(proc.pid, 0)
        elapsed = time.monotonic() - start
        if os.waitstatus_to_exitcode(status) != 0:
            sys.exit(f"error: {binary} exited with status {status}")
        events = sum_cache_events(env["CCSIM_CACHE_DIR"])
    peak_rss_mb = rusage.ru_maxrss / 1024.0  # Linux reports KB
    if peak_rss_mb <= 0 or elapsed <= 0:
        sys.exit("error: megascale smoke produced no usable measurements")
    print(f"[collect] megascale smoke: peak_rss_mb={peak_rss_mb:.1f} "
          f"events/sec={events / elapsed:.0f}", file=sys.stderr)
    return {
        f"MegascaleSmoke/peak_rss_mb_inverse": 1.0 / peak_rss_mb,
        f"MegascaleSmoke/events_per_sec": events / elapsed,
    }


def cmd_collect(args):
    rates = run_micro_benchmarks(args.build_dir, args.min_time, args.filter)
    if not args.skip_smoke:
        rates.update(run_cold_smoke_sweep(args.build_dir))
        rates.update(run_megascale_smoke(args.build_dir))
    snapshot = {
        "schema": SCHEMA_VERSION,
        "metric": "items_per_second",
        "benchmarks": {name: round(rate, 3) for name, rate in sorted(rates.items())},
    }
    out_dir = os.path.dirname(args.output)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.output, "w") as f:
        json.dump(snapshot, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[collect] wrote {len(rates)} benchmarks to {args.output}")
    return 0


def load_snapshot(path):
    try:
        with open(path) as f:
            snap = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read snapshot {path}: {e}")
    if snap.get("schema") != SCHEMA_VERSION:
        sys.exit(f"error: {path} has schema {snap.get('schema')}, "
                 f"expected {SCHEMA_VERSION}")
    return snap["benchmarks"]


def cmd_compare(args):
    baseline = load_snapshot(args.baseline)
    current = load_snapshot(args.current)
    failures = []
    width = max((len(n) for n in baseline), default=0)
    for name, base_rate in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        cur_rate = current[name]
        if base_rate <= 0:
            continue
        ratio = cur_rate / base_rate
        marker = ""
        if ratio < 1.0 - args.threshold:
            marker = "  <-- REGRESSION"
            failures.append(
                f"{name}: {base_rate:.3g} -> {cur_rate:.3g} items/s "
                f"({(1.0 - ratio) * 100:.1f}% slower)")
        print(f"  {name:<{width}}  {base_rate:>12.4g}  {cur_rate:>12.4g}  "
              f"{ratio:>6.2f}x{marker}")
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name:<{width}}  {'(new)':>12}  {current[name]:>12.4g}")
    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed more than "
              f"{args.threshold * 100:.0f}% vs {args.baseline}:")
        for f in failures:
            print(f"  - {f}")
        print("If the slowdown is intentional, refresh the baseline "
              "(see EXPERIMENTS.md).")
        return 1
    print(f"\nOK: no benchmark regressed more than "
          f"{args.threshold * 100:.0f}% vs {args.baseline}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_collect = sub.add_parser("collect", help="run benchmarks, write snapshot")
    p_collect.add_argument("--build-dir", default="build-rel",
                           help="CMake Release build tree (default: build-rel)")
    p_collect.add_argument("--output", default=DEFAULT_BASELINE,
                           help=f"snapshot path (default: {DEFAULT_BASELINE})")
    p_collect.add_argument("--min-time", default="0.4",
                           help="--benchmark_min_time per benchmark (seconds)")
    p_collect.add_argument("--filter", default="",
                           help="--benchmark_filter regex (default: all)")
    p_collect.add_argument("--skip-smoke", action="store_true",
                           help="skip the cold-cache engine smoke sweep")
    p_collect.set_defaults(fn=cmd_collect)

    p_compare = sub.add_parser("compare", help="gate a snapshot vs baseline")
    p_compare.add_argument("--baseline", default=DEFAULT_BASELINE,
                           help=f"committed baseline (default: {DEFAULT_BASELINE})")
    p_compare.add_argument("--current", required=True,
                           help="snapshot from this run (collect --output)")
    p_compare.add_argument("--threshold", type=float, default=0.30,
                           help="max tolerated fractional slowdown (default 0.30)")
    p_compare.set_defaults(fn=cmd_compare)

    args = parser.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
