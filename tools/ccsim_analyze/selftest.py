"""Fixture suite for the ccsim_analyze rule passes.

Every rule runs against a violating fixture (must produce exactly the
expected rule histogram) and a clean fixture (must produce none), mirroring
ccsim_lint's self-test: the fixtures are the executable specification of
each rule, and a rule change that silently stops firing fails here before it
ships a blind spot to CI.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from collections import Counter

import rules_alloc
import rules_cache
import rules_coro
import rules_fingerprint
import rules_rng
import rules_taint
import streammap
from cppmodel import Finding, SourceFile


def _histogram(findings: list[Finding]) -> Counter:
    return Counter(f.rule for f in findings)


class _Suite:
    def __init__(self) -> None:
        self.failures: list[str] = []
        self.checks = 0

    def expect(self, name: str, findings: list[Finding],
               expected: dict[str, int]) -> None:
        self.checks += 1
        got = _histogram(findings)
        if got != Counter(expected):
            detail = "\n".join("    " + f.format() for f in findings)
            self.failures.append(
                f"{name}: expected {dict(expected)}, got {dict(got)}\n"
                f"{detail if detail else '    (no findings)'}")

    def expect_true(self, name: str, cond: bool, detail: str = "") -> None:
        self.checks += 1
        if not cond:
            self.failures.append(f"{name}: {detail or 'assertion failed'}")


def run(root: str) -> int:
    fx = os.path.join(root, "tools", "lint_fixtures", "analyze")
    s = _Suite()

    # --- fingerprint ------------------------------------------------------
    s.expect("fingerprint/bad",
             rules_fingerprint.run(os.path.join(fx, "fp_bad"), root),
             {"fingerprint": 3, "empty-annotation": 1})
    s.expect("fingerprint/clean",
             rules_fingerprint.run(os.path.join(fx, "fp_clean"), root), {})

    # --- cache-schema -----------------------------------------------------
    s.expect("cache/bad",
             rules_cache.run(os.path.join(fx, "cache_bad", "run.h"),
                             os.path.join(fx, "cache_bad", "cache.cc"),
                             os.path.join(fx, "cache_bad", "tools"), root),
             {"cache-schema": 6})
    # The clean fixture's tools/ holds two scripts (v0->v1 and v1->v2):
    # the pass checks only the latest, so the older one must not disturb a
    # clean verdict (latest-wins).
    s.expect("cache/clean",
             rules_cache.run(os.path.join(fx, "cache_clean", "run.h"),
                             os.path.join(fx, "cache_clean", "cache.cc"),
                             os.path.join(fx, "cache_clean", "tools"), root),
             {})
    # Lineage violation on an otherwise-consistent table: the latest script
    # targets the current version but declares no post-migration field
    # count (the V7-era migration contract).
    s.expect("cache/bad-lineage",
             rules_cache.run(os.path.join(fx, "cache_bad_lineage", "run.h"),
                             os.path.join(fx, "cache_bad_lineage", "cache.cc"),
                             os.path.join(fx, "cache_bad_lineage", "tools"),
                             root),
             {"cache-schema": 1})

    # --- coroutine lifetimes ----------------------------------------------
    s.expect("coro/bad",
             rules_coro.run([SourceFile(os.path.join(fx, "coro_bad.cc"),
                                        root)]),
             {"coro-ref-capture": 1, "coro-this-capture": 1,
              "coro-raw-resume": 1, "coro-unregistered-await": 1})
    s.expect("coro/clean",
             rules_coro.run([SourceFile(os.path.join(fx, "coro_clean.cc"),
                                        root)]), {})

    # --- rng streams ------------------------------------------------------
    rng_registry = os.path.join(fx, "rng", "stream_ids.h")
    s.expect("rng/bad",
             rules_rng.run([SourceFile(os.path.join(fx, "rng", "bad.cc"),
                                       root)], rng_registry, root),
             {"rng-stream": 3})
    s.expect("rng/clean",
             rules_rng.run([SourceFile(os.path.join(fx, "rng", "clean.cc"),
                                       root)], rng_registry, root), {})
    s.expect("rng/missing-registry",
             rules_rng.run([], os.path.join(fx, "rng", "no_such.h"), root),
             {"rng-stream": 1})

    # --- determinism taint ------------------------------------------------
    s.expect("taint/bad",
             rules_taint.run([SourceFile(os.path.join(fx, "taint_bad.cc"),
                                         root)], root),
             {"determinism-taint": 4})
    s.expect("taint/clean",
             rules_taint.run([SourceFile(os.path.join(fx, "taint_clean.cc"),
                                         root)], root), {})

    # --- hot-path allocation ----------------------------------------------
    s.expect("alloc/bad",
             rules_alloc.run([SourceFile(os.path.join(fx, "alloc_bad.cc"),
                                         root)], root),
             {"hot-path-alloc": 5, "empty-annotation": 1})
    s.expect("alloc/clean",
             rules_alloc.run([SourceFile(os.path.join(fx, "alloc_clean.cc"),
                                         root)], root), {})

    # --- stream-map doc ---------------------------------------------------
    map_registry = os.path.join(fx, "streammap", "stream_ids.h")
    s.expect("streammap/stale",
             streammap.run(map_registry,
                           os.path.join(fx, "streammap", "doc_stale.md"),
                           root),
             {"stream-map-doc": 1})
    s.expect("streammap/missing-markers",
             streammap.run(map_registry,
                           os.path.join(fx, "streammap",
                                        "doc_missing_markers.md"), root),
             {"stream-map-doc": 1})
    # emit() must converge: regenerating the stale doc makes it clean and a
    # second emit is a no-op; text outside the markers survives.
    tmpdir = tempfile.mkdtemp(prefix="ccsim_analyze_selftest_")
    try:
        doc = os.path.join(tmpdir, "doc.md")
        shutil.copyfile(os.path.join(fx, "streammap", "doc_stale.md"), doc)
        s.expect_true("streammap/emit-changes",
                      streammap.emit(map_registry, doc),
                      "first emit reported no change")
        s.expect("streammap/emitted-clean",
                 streammap.run(map_registry, doc, root), {})
        s.expect_true("streammap/emit-idempotent",
                      not streammap.emit(map_registry, doc),
                      "second emit still reported changes")
        with open(doc, "r", encoding="utf-8") as f:
            text = f.read()
        s.expect_true("streammap/preserves-surroundings",
                      "Text after the block survives regeneration." in text
                      and text.startswith("# Fixture document"),
                      "content outside the markers was clobbered")
        s.expect_true("streammap/two-line-doc-joined",
                      "other things, continued on a second line." in text,
                      "multi-line /// doc was not joined into one cell")
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    if s.failures:
        print(f"ccsim_analyze self-test: "
              f"{len(s.failures)}/{s.checks} checks FAILED\n")
        for f in s.failures:
            print("  FAIL " + f)
        return 1
    print(f"ccsim_analyze self-test: all {s.checks} checks passed")
    return 0
