"""coroutine-lifetime pass: closures, awaits, and resumptions.

The simulator's processes are C++20 coroutines whose frames can outlive any
lexical scope (they are destroyed at teardown by the suspended-process
registry, DESIGN decision #6) and whose wakeups are calendar events that fire
long after the scheduling statement returned. PR 1 chased a frame leak and
PR 4 a double-finalize through exactly the holes this pass now guards:

  coro-ref-capture    A closure handed to the calendar (At/After/Schedule*)
                      that captures by reference outlives the enclosing
                      scope by construction; when the event fires, the
                      reference dangles. Capture by value, or waive after a
                      lifetime audit.
  coro-this-capture   A `this` captured into a calendar closure is a
                      use-after-free if the object dies before the event
                      fires or is cancelled. Most service objects in this
                      codebase do outlive the calendar (the System owns both
                      and tears the calendar down first) — each such site
                      carries a waiver recording that audit.
  coro-raw-resume     Calling .resume()/.destroy() on a coroutine handle
                      outside the simulation executive bypasses the
                      suspended-process registry and the calendar's event
                      ordering: the registry now tracks a frame that already
                      ran (teardown double-destroys it), and the resumed
                      code runs inside the resumer's stack frame instead of
                      as its own event. Only Simulation::ResumeSuspended /
                      DestroySuspendedProcesses may do this.
  coro-unregistered-await
                      `co_await` on anything other than the sanctioned
                      awaitables (Simulation::Delay, sim::Await over a
                      Completion) suspends a frame the registry never
                      learns about: it leaks at teardown, and member access
                      after resumption races object destruction. New
                      awaitable types must register via NoteSuspended and
                      then be added to the sanctioned list here.

All four waive with `// ccsim-analyze: coro-ok(<reason>)` on the flagged
line or the two lines above. The executive itself (src/ccsim/sim/) is the
sanctioned implementation and is skipped.
"""

from __future__ import annotations

import re

from cppmodel import (Finding, SourceFile, add_finding, match_delim,
                      split_args)

SKIP_REL_PREFIXES = ("src/ccsim/sim/",)

SCHED_CALL_RE = re.compile(r"\b(?:At|After|Schedule|ScheduleResume)\s*\(")
RAW_RESUME_RE = re.compile(r"(?:\.|->)\s*(resume|destroy)\s*\(\s*\)")
CO_AWAIT_RE = re.compile(r"\bco_await\b")
SANCTIONED_AWAIT_RE = re.compile(r"\b(?:Await|Delay)\s*\(")


def _lambdas_in_call(text: str, open_idx: int, close_idx: int):
    """(capture_list_body, bracket_idx) for each lambda that appears as a
    direct argument of the call spanning text[open_idx..close_idx]."""
    out = []
    i = open_idx + 1
    while i < close_idx:
        c = text[i]
        if c == "[":
            # A lambda-introducer only where an expression may start: right
            # after '(' or ',' (subscripts follow an identifier/paren).
            j = i - 1
            while j > open_idx and text[j].isspace():
                j -= 1
            if text[j] in "(,":
                close = match_delim(text, i)
                if close < 0 or close > close_idx:
                    return out
                out.append((text[i + 1:close], i))
                i = close + 1
                continue
        if c in "({":
            # Skip nested calls/braces wholesale; we only want lambdas that
            # are themselves arguments of *this* call.
            close = match_delim(text, i)
            if close < 0 or close > close_idx:
                return out
            # ... but do descend into a lambda body's nested schedule calls?
            # No: those are found by the outer finditer anyway.
            i = close + 1
            continue
        i += 1
    return out


def _check_file(sf: SourceFile, findings: list[Finding]) -> None:
    text = sf.text

    # --- closures scheduled on the calendar ------------------------------
    for m in SCHED_CALL_RE.finditer(text):
        open_idx = text.find("(", m.start())
        close_idx = match_delim(text, open_idx)
        if close_idx < 0:
            continue
        for captures, bracket_idx in _lambdas_in_call(text, open_idx,
                                                      close_idx):
            line = sf.line_of(bracket_idx)
            for cap in split_args(captures):
                cap = cap.strip()
                if not cap:
                    continue
                if cap == "&" or (cap.startswith("&") and cap != "&&"):
                    name = cap if cap == "&" else cap.split("=")[0].strip()
                    add_finding(
                        findings, sf, line, "coro-ref-capture", "coro-ok",
                        f"closure scheduled on the calendar captures "
                        f"'{name}' by reference; the event fires after the "
                        "enclosing scope is gone. Capture by value or waive "
                        "with ccsim-analyze: coro-ok(reason) after a "
                        "lifetime audit")
                elif cap == "this":
                    add_finding(
                        findings, sf, line, "coro-this-capture", "coro-ok",
                        "closure scheduled on the calendar captures `this`; "
                        "if the object can die before the event fires (or "
                        "the event is not cancelled in the destructor) this "
                        "is a use-after-free. Waive with ccsim-analyze: "
                        "coro-ok(reason) recording why the object outlives "
                        "the calendar")

    # --- raw resume/destroy ----------------------------------------------
    for m in RAW_RESUME_RE.finditer(text):
        add_finding(
            findings, sf, sf.line_of(m.start()), "coro-raw-resume", "coro-ok",
            f"direct coroutine_handle::{m.group(1)}() outside the simulation "
            "executive bypasses the suspended-process registry and event "
            "ordering; route wakeups through Simulation::ResumeLater and "
            "teardown through the registry")

    # --- unsanctioned awaitables -----------------------------------------
    for m in CO_AWAIT_RE.finditer(text):
        semi = text.find(";", m.end())
        expr = text[m.end():semi if semi >= 0 else m.end() + 300]
        if SANCTIONED_AWAIT_RE.search(expr):
            continue
        add_finding(
            findings, sf, sf.line_of(m.start()), "coro-unregistered-await",
            "coro-ok",
            "co_await on an awaitable outside the sanctioned set "
            "(Simulation::Delay, sim::Await): the suspended frame is "
            "invisible to the suspended-process registry, so it leaks at "
            "teardown and member access after resumption can touch a "
            "destroyed object. Register the awaitable via NoteSuspended "
            "and add it to the sanctioned list, or waive with "
            "ccsim-analyze: coro-ok(reason)")


def run(files: list[SourceFile],
        skip_prefixes: tuple[str, ...] = SKIP_REL_PREFIXES) -> list[Finding]:
    findings: list[Finding] = []
    for sf in files:
        if any(sf.rel.startswith(p) for p in skip_prefixes):
            continue
        _check_file(sf, findings)
    return findings
