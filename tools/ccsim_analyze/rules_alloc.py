"""hot-path-alloc pass: heap allocation inside annotated kernel hot paths.

The megascale memory work (DESIGN decision #12) moved the simulator's
per-event costs off the general-purpose heap: coroutine frames and
transaction state come from per-simulation arenas, the lock table and
waits-for graph use flat open-addressing storage with inline small-vectors.
What keeps them off the heap is a *convention*, and conventions rot — one
innocent `std::map` in a grant loop reintroduces the per-lock node churn
the whole refactor removed, and nothing fails: the simulation is still
correct, just slowly and noisily fragmenting.

This pass turns the convention into a checked contract. A function whose
definition is annotated

    // ccsim-analyze: hot-path(<why this is per-event work>)

declares itself per-event kernel work, and within its body the pass flags
the allocation sinks:

  * `new` expressions (including `operator new` calls),
  * `make_unique` / `make_shared` / `allocate_shared`,
  * inserts into *node-based* standard containers declared in this file or
    its header companion (`std::map/set/list/...` — every insert is a heap
    node), via `.insert/.emplace/...` or `operator[]`.

`std::vector` growth and the in-tree SmallVec/FlatHashMap are deliberately
not sinks: amortized doubling on flat storage is the pattern the hot paths
are supposed to use.

An allocation a hot path genuinely needs (a one-time lazily built structure,
an unavoidable shared_ptr hand-off) is waived in place with

    // ccsim-analyze: alloc-ok(<reason>)

and the reason is the audit trail.
"""

from __future__ import annotations

import re

from cppmodel import (Finding, SourceFile, add_finding, companion_paths,
                      match_delim)

HOT_PATH_RE = re.compile(r"ccsim-analyze:\s*hot-path\(([^)]*)\)")

# Node-based standard containers: one heap node per element, every insert
# allocates.
NODE_CONTAINER_DECL_RE = re.compile(
    r"(?:std\s*::\s*)?"
    r"(?:multi)?(?:map|set)\s*<"
    r"|(?:std\s*::\s*)?(?:forward_)?list\s*<"
    r"|(?:std\s*::\s*)?unordered_(?:multi)?(?:map|set)\s*<")

# Direct allocation sinks, name-independent.
DIRECT_SINKS = (
    (re.compile(r"\bnew\b"),
     "`new` allocates from the general-purpose heap"),
    (re.compile(r"\b(?:make_unique|make_shared|allocate_shared)\s*<"),
     "smart-pointer factory allocates from the general-purpose heap"),
)


def _find_node_container_names(text: str) -> set[str]:
    """Names declared with a node-based container type (the same balanced
    template-argument heuristic as find_unordered_names)."""
    names: set[str] = set()
    for m in NODE_CONTAINER_DECL_RE.finditer(text):
        i = m.end()  # just past '<'
        depth = 1
        n = len(text)
        while i < n and depth > 0:
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
            i += 1
        if depth != 0:
            continue
        dm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={(,)]", text[i:i + 160])
        if dm:
            names.add(dm.group(1))
    return names


def _hot_path_bodies(sf: SourceFile) -> list[tuple[int, int, int]]:
    """(annotation_line, body_start_idx, body_end_idx) for each function
    definition annotated hot-path. The body is the first brace block opening
    after the annotation line (the function's, given one definition per
    annotation — the codebase is clang-format'd, no brace-less functions)."""
    out: list[tuple[int, int, int]] = []
    for lineno, raw in enumerate(sf.raw, start=1):
        if not HOT_PATH_RE.search(raw):
            continue
        # Offset of the start of the line *after* the annotation.
        start = sum(len(line) + 1 for line in sf.code[:lineno])
        brace = sf.text.find("{", start)
        if brace < 0:
            continue
        close = match_delim(sf.text, brace)
        if close < 0:
            continue
        out.append((lineno, brace + 1, close))
    return out


def _check_file(sf: SourceFile, root: str, findings: list[Finding]) -> None:
    bodies = _hot_path_bodies(sf)
    if not bodies:
        return
    names = _find_node_container_names(sf.text)
    for comp in companion_paths(sf.path):
        names |= _find_node_container_names(SourceFile(comp, root).text)

    sinks = list(DIRECT_SINKS)
    if names:
        alt = "|".join(re.escape(n) for n in sorted(names))
        sinks.append((
            re.compile(rf"\b(?:{alt})\s*(?:\.|->)\s*"
                       rf"(?:insert|emplace\w*|try_emplace|push_back|"
                       rf"push_front|operator\s*\[\s*\])\s*\("),
            "insert into a node-based container allocates one heap node "
            "per element"))
        sinks.append((
            re.compile(rf"\b(?:{alt})\s*\["),
            "operator[] on a node-based container allocates on miss"))

    for ann_line, body_start, body_end in bodies:
        body = sf.text[body_start:body_end]
        for sink_re, why in sinks:
            for sm in sink_re.finditer(body):
                line = sf.line_of(body_start + sm.start())
                add_finding(
                    findings, sf, line, "hot-path-alloc", "alloc-ok",
                    f"allocation in a kernel hot path (annotated at line "
                    f"{ann_line}): {why}. Use the simulation arena, flat "
                    "storage (SmallVec/FlatHashMap), or waive with "
                    "ccsim-analyze: alloc-ok(reason) saying why this "
                    "allocation is off the per-event path")


def run(files: list[SourceFile], root: str) -> list[Finding]:
    findings: list[Finding] = []
    for sf in files:
        _check_file(sf, root, findings)
    return findings
