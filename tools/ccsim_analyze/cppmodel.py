"""Lightweight C++ source model shared by the ccsim_analyze rule passes.

This is deliberately not a real C++ frontend. The rule passes need four
things a frontend would give us and a token scanner can approximate well
enough for this codebase's style (clang-format'd, no macros that generate
declarations, one class per header):

  * comment/string-stripped text with a position -> line mapping,
  * balanced-delimiter extents (call argument lists, brace bodies),
  * struct/class member-field lists with declaration lines,
  * waiver annotations (`// ccsim-analyze: <tag>(<reason>)`).

Where the approximation is wrong it is wrong toward *more* findings, and a
finding can always be waived with a reasoned annotation; silent false
negatives are the failure mode we spend effort avoiding (see the fingerprint
pass, which resolves field names against the whole Fingerprint() body rather
than trying to parse expressions).
"""

from __future__ import annotations

import bisect
import os
import re
from dataclasses import dataclass, field

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")

# Waiver annotation: `ccsim-analyze: <tag>(<reason>)`. The reason is
# mandatory (an empty one yields an `empty-annotation` finding); it is the
# audit trail for why the flagged construct is safe.
ANNOTATION_RE = re.compile(r"ccsim-analyze:\s*([a-z-]+)\(([^)]*)\)")


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Per-line code with comments and string/char literals blanked.

    Handles // and /* */ comments and simple escapes within literals. Raw
    strings are treated like plain strings (good enough for this codebase).
    """
    out = []
    in_block = False
    for line in lines:
        code = []
        i = 0
        n = len(line)
        while i < n:
            c = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if c == "/" and nxt == "/":
                break  # rest of line is a comment
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if c in ('"', "'"):
                quote = c
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                code.append(quote + quote)  # keep a token boundary
                continue
            code.append(c)
            i += 1
        out.append("".join(code))
    return out


class SourceFile:
    """One parsed source file: raw lines, stripped code, and position maps."""

    def __init__(self, path: str, root: str):
        self.path = path
        self.rel = os.path.relpath(path, root).replace(os.sep, "/")
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.raw = f.read().splitlines()
        self.code = strip_comments_and_strings(self.raw)
        self.text = "\n".join(self.code)
        # Offset of the start of each line within `text`, for line_of().
        self._starts = [0]
        for line in self.code[:-1] if self.code else []:
            self._starts.append(self._starts[-1] + len(line) + 1)

    def line_of(self, idx: int) -> int:
        """1-based line number of character offset `idx` in self.text."""
        return bisect.bisect_right(self._starts, idx)

    def annotations(self, lineno: int) -> dict[str, str]:
        """ccsim-analyze annotations applying to 1-based `lineno` (the same
        line or the two lines above it). Returns {tag: reason}."""
        found: dict[str, str] = {}
        for ln in (lineno, lineno - 1, lineno - 2):
            if 1 <= ln <= len(self.raw):
                for m in ANNOTATION_RE.finditer(self.raw[ln - 1]):
                    found.setdefault(m.group(1), m.group(2).strip())
        return found


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def add_finding(findings: list[Finding], sf: SourceFile, line: int, rule: str,
                waiver_tag: str | None, message: str) -> None:
    """Appends a finding unless a reasoned waiver annotation covers it.

    A waiver with an empty reason does not waive; it produces an extra
    `empty-annotation` finding (the reason documents the human audit)."""
    if waiver_tag is not None:
        ann = sf.annotations(line)
        if waiver_tag in ann:
            if ann[waiver_tag]:
                return
            findings.append(Finding(
                sf.rel, line, "empty-annotation",
                f"annotation {waiver_tag}() needs a reason"))
    findings.append(Finding(sf.rel, line, rule, message))


_DELIM_CLOSE = {"(": ")", "[": "]", "{": "}"}


def match_delim(text: str, open_idx: int) -> int:
    """Index of the delimiter closing text[open_idx], or -1 if unbalanced.

    text must be comment/string-stripped. Angle brackets are not tracked
    (they are ambiguous with comparisons); parens/brackets/braces nest."""
    open_c = text[open_idx]
    close_c = _DELIM_CLOSE[open_c]
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == open_c:
            depth += 1
        elif c == close_c:
            depth -= 1
            if depth == 0:
                return i
    return -1


def split_args(text: str) -> list[str]:
    """Splits an argument-list body on top-level commas (parens, brackets,
    braces and single-level template angles respected)."""
    args: list[str] = []
    depth = 0
    angle = 0
    cur: list[str] = []
    for c in text:
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        if c == "," and depth == 0 and angle == 0:
            args.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    if cur and "".join(cur).strip():
        args.append("".join(cur))
    return args


# --------------------------------------------------------------------------
# Struct parsing.


@dataclass
class StructField:
    name: str
    type: str
    line: int


@dataclass
class StructDef:
    name: str
    line: int
    fields: list[StructField] = field(default_factory=list)


_STRUCT_RE = re.compile(r"\b(?:struct|class)\s+([A-Za-z_]\w*)\s*(?:final\s*)?"
                        r"(?::[^{;]*)?\{")

_SKIP_STMT_PREFIXES = ("using ", "typedef ", "friend ", "static ",
                       "static_assert", "template", "enum ", "struct ",
                       "class ", "explicit ", "virtual ", "operator")


def parse_structs(sf: SourceFile) -> dict[str, StructDef]:
    """Member-variable declarations of every struct/class in the file.

    Member functions, nested types, using-declarations and static members are
    skipped. Default member initializers (including brace initializers) are
    understood. Line numbers point at the declaration for waiver lookup."""
    structs: dict[str, StructDef] = {}
    for m in _STRUCT_RE.finditer(sf.text):
        open_idx = m.end() - 1
        close_idx = match_delim(sf.text, open_idx)
        if close_idx < 0:
            continue
        sdef = StructDef(m.group(1), sf.line_of(m.start()))
        _parse_fields(sf, open_idx + 1, close_idx, sdef)
        structs[sdef.name] = sdef
    return structs


def _parse_fields(sf: SourceFile, start: int, end: int,
                  sdef: StructDef) -> None:
    text = sf.text
    i = start
    stmt: list[str] = []
    stmt_start = -1
    while i < end:
        c = text[i]
        if c in "([{":
            close = match_delim(text, i)
            if close < 0 or close > end:
                return  # malformed; bail on this struct
            if c == "{" and "=" not in "".join(stmt):
                # Function body or nested type definition: discard the
                # statement built so far (its declarator is not a field).
                stmt = []
                stmt_start = -1
            else:
                # Call-ish parens or a brace/paren initializer: keep as an
                # opaque blob so inner commas/semicolons don't split us.
                if stmt_start < 0:
                    stmt_start = i
                stmt.append(text[i:close + 1])
            i = close + 1
            continue
        if c == ";":
            _handle_stmt(sf, "".join(stmt), stmt_start, sdef)
            stmt = []
            stmt_start = -1
            i += 1
            continue
        if stmt_start < 0 and not c.isspace():
            stmt_start = i
        stmt.append(c)
        i += 1


def _handle_stmt(sf: SourceFile, stmt: str, stmt_start: int,
                 sdef: StructDef) -> None:
    s = re.sub(r"\b(?:public|private|protected)\s*:", "", stmt).strip()
    s = re.sub(r"^\s*(?:mutable|inline)\s+", "", s)
    if not s or s.startswith(_SKIP_STMT_PREFIXES):
        return
    # Drop any initializer ('=' or trailing brace-init blob).
    s = s.split("=", 1)[0].strip()
    if "(" in s or not s:
        return  # function declaration / constructor
    s = re.sub(r"\{.*\}$", "", s).strip()
    m = re.match(r"(.+?)[\s&*]([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?$", s, re.S)
    if not m:
        return
    type_str = re.sub(r"\s+", " ", m.group(1)).strip()
    name = m.group(2)
    line = sf.line_of(stmt_start) if stmt_start >= 0 else sdef.line
    sdef.fields.append(StructField(name, type_str, line))


def function_body(sf: SourceFile, signature_re: str) -> tuple[str, int] | None:
    """(body_text, body_start_idx) of the first function whose definition
    matches `signature_re` in the stripped text, or None."""
    m = re.search(signature_re, sf.text)
    if not m:
        return None
    brace = sf.text.find("{", m.end())
    if brace < 0:
        return None
    close = match_delim(sf.text, brace)
    if close < 0:
        return None
    return sf.text[brace + 1:close], brace + 1


# --------------------------------------------------------------------------
# Shared helpers for container/variable discovery (used by the taint pass).

# std::unordered_* plus the in-tree open-addressing FlatHashMap
# (common/flat_hash.h): its ForEach order is hash-table order, the same
# determinism hazard as std::unordered_map iteration.
UNORDERED_DECL_RE = re.compile(
    r"(?:std\s*::\s*)?unordered_(?:multi)?(?:map|set)\s*<"
    r"|(?:common\s*::\s*)?FlatHashMap\s*<")


def find_unordered_names(sf_or_text) -> set[str]:
    """Names declared with an unordered container type (same heuristic as
    ccsim_lint: balanced template args, then an identifier that starts a
    declarator)."""
    text = sf_or_text.text if isinstance(sf_or_text, SourceFile) else sf_or_text
    names: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(text):
        i = m.end()  # just past '<'
        depth = 1
        n = len(text)
        while i < n and depth > 0:
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
            i += 1
        if depth != 0:
            continue
        rest = text[i:i + 160]
        dm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={(,)]", rest)
        if dm:
            names.add(dm.group(1))
    return names


def companion_paths(path: str) -> list[str]:
    """Sibling files sharing the stem (foo.cc <-> foo.h), for member types
    declared in the header and used in the implementation file."""
    stem = re.sub(r"\.(h|hpp|cc|cpp|cxx)$", "", path)
    out = []
    for ext in CXX_EXTENSIONS:
        p = stem + ext
        if p != path and os.path.isfile(p):
            out.append(p)
    return out


def collect_files(targets: list[str],
                  skip_dirs: tuple[str, ...] = ("build", ".git",
                                                "lint_fixtures")) -> list[str]:
    files: list[str] = []
    for t in targets:
        if os.path.isfile(t):
            files.append(t)
            continue
        if not os.path.isdir(t):
            raise FileNotFoundError(t)
        for dirpath, dirnames, filenames in os.walk(t):
            dirnames[:] = sorted(d for d in dirnames if d not in skip_dirs)
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return files
