"""Generated RNG stream-map documentation.

The registry (src/ccsim/sim/stream_ids.h) is the single source of truth for
stream-id assignments; EXPERIMENTS.md carries a human-readable table of the
bands between `<!-- ccsim-analyze:stream-map:begin -->` / `:end` markers.
This module renders the table from the registry's doc comments and — as the
`stream-map-doc` rule — verifies the committed table is not stale. Refresh it
with:

    python3 tools/ccsim_analyze --emit-stream-map
"""

from __future__ import annotations

import os
import re

from cppmodel import Finding

CONST_RE = re.compile(
    r"^inline constexpr std::uint64_t (k\w+)\s*=\s*(\d+)\s*;")
DOC_RE = re.compile(r"^///\s?(.*)$")

BEGIN_MARK = "<!-- ccsim-analyze:stream-map:begin -->"
END_MARK = "<!-- ccsim-analyze:stream-map:end -->"
HEADER_NOTE = ("<!-- Generated from src/ccsim/sim/stream_ids.h by "
               "`python3 tools/ccsim_analyze --emit-stream-map`. "
               "Do not edit by hand. -->")


def parse_registry(registry_path: str) -> list[tuple[str, int, str]]:
    """(constant, value, doc) per registry entry, in declaration order. The
    doc is the /// block immediately above the constant."""
    with open(registry_path, "r", encoding="utf-8", errors="replace") as f:
        lines = f.read().splitlines()
    entries: list[tuple[str, int, str]] = []
    doc: list[str] = []
    for line in lines:
        s = line.strip()
        dm = DOC_RE.match(s)
        if dm:
            doc.append(dm.group(1))
            continue
        cm = CONST_RE.match(s)
        if cm:
            entries.append((cm.group(1), int(cm.group(2)),
                            " ".join(d for d in doc if d).strip()))
        # Anything that is not a /// line (blank lines included) ends the
        # contiguous doc block, so the file-header comment is not attached
        # to the first constant.
        doc = []
    return entries


def render_table(registry_path: str) -> str:
    rows = ["| Constant | Stream id | Assignment |",
            "| --- | ---: | --- |"]
    for name, value, doc in parse_registry(registry_path):
        rows.append(f"| `{name}` | {value} | {doc} |")
    return "\n".join([HEADER_NOTE] + rows) + "\n"


def emit(registry_path: str, doc_path: str) -> bool:
    """Rewrites the marker block in `doc_path` in place. Returns True if the
    file changed."""
    with open(doc_path, "r", encoding="utf-8") as f:
        text = f.read()
    begin = text.index(BEGIN_MARK) + len(BEGIN_MARK)
    end = text.index(END_MARK)
    new = text[:begin] + "\n" + render_table(registry_path) + text[end:]
    if new == text:
        return False
    with open(doc_path, "w", encoding="utf-8") as f:
        f.write(new)
    return True


def run(registry_path: str, doc_path: str, root: str) -> list[Finding]:
    """stream-map-doc rule: the committed table matches the registry."""
    rel = os.path.relpath(doc_path, root).replace(os.sep, "/")
    if not os.path.isfile(doc_path):
        return [Finding(rel, 0, "stream-map-doc", "document not found")]
    with open(doc_path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    if BEGIN_MARK not in text or END_MARK not in text:
        return [Finding(
            rel, 0, "stream-map-doc",
            f"missing {BEGIN_MARK} / {END_MARK} markers; the generated RNG "
            "stream-map table has nowhere to live")]
    begin = text.index(BEGIN_MARK) + len(BEGIN_MARK)
    end = text.index(END_MARK)
    committed = text[begin:end].strip()
    expected = render_table(registry_path).strip()
    if committed != expected:
        line = text[:begin].count("\n") + 1
        return [Finding(
            rel, line, "stream-map-doc",
            "stream-map table is stale relative to "
            "src/ccsim/sim/stream_ids.h; regenerate with "
            "`python3 tools/ccsim_analyze --emit-stream-map`")]
    return []
