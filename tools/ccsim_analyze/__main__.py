"""ccsim-analyze: cross-file semantic static analysis for the simulator.

Usage:
    python3 tools/ccsim_analyze                    # analyze the tree
    python3 tools/ccsim_analyze --self-test        # run the fixture suite
    python3 tools/ccsim_analyze --emit-stream-map  # refresh EXPERIMENTS.md

Exit status 0 = clean, 1 = findings (or self-test failure), 2 = usage/setup
error. Findings print one per line as `path:line: [rule] message`.

Rule passes (each documented in its module):
    fingerprint         rules_fingerprint  config fields vs Fingerprint()
    cache-schema        rules_cache        RunResult vs field table vs
                                           migration scripts
    coro-*              rules_coro         calendar-closure captures, raw
                                           resume, unsanctioned awaitables
    rng-stream          rules_rng          stream ids from the registry
    determinism-taint   rules_taint        unordered iteration into
                                           order-sensitive sinks
    hot-path-alloc      rules_alloc        heap allocation inside annotated
                                           kernel hot paths
    stream-map-doc      streammap          generated doc table freshness

Suppression, most-preferred first:
  1. fix the finding;
  2. a reasoned inline waiver (`// ccsim-analyze: <tag>(<reason>)`);
  3. a `rule<TAB-or-space>path` line in tools/ccsim_analyze_baseline.txt —
     for adopting a new rule over legacy findings wholesale, not for new
     code. Unused baseline lines are themselves reported (stale-baseline)
     so the file ratchets toward empty.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import rules_alloc
import rules_cache
import rules_coro
import rules_fingerprint
import rules_rng
import rules_taint
import streammap
from cppmodel import Finding, SourceFile, collect_files


def default_root() -> str:
    # tools/ccsim_analyze/__main__.py -> repo root is two dirs up.
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))


def analyze(root: str) -> list[Finding]:
    src = os.path.join(root, "src")
    paths = collect_files([src])
    files = [SourceFile(p, root) for p in paths]

    findings: list[Finding] = []
    findings += rules_fingerprint.run(
        os.path.join(src, "ccsim", "config"), root)
    findings += rules_cache.run(
        os.path.join(src, "ccsim", "engine", "run.h"),
        os.path.join(src, "ccsim", "experiments", "cache.cc"),
        os.path.join(root, "tools"), root)
    findings += rules_coro.run(files)
    findings += rules_rng.run(
        files, os.path.join(src, "ccsim", "sim", "stream_ids.h"), root)
    findings += rules_taint.run(files, root)
    findings += rules_alloc.run(files, root)
    findings += streammap.run(
        os.path.join(src, "ccsim", "sim", "stream_ids.h"),
        os.path.join(root, "EXPERIMENTS.md"), root)
    return findings


def load_baseline(path: str) -> list[tuple[str, str]]:
    if not os.path.isfile(path):
        return []
    out: list[tuple[str, str]] = []
    with open(path, "r", encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 1)
            if len(parts) == 2:
                out.append((parts[0], parts[1].strip()))
    return out


def apply_baseline(findings: list[Finding],
                   baseline: list[tuple[str, str]]) -> list[Finding]:
    used = [False] * len(baseline)
    kept: list[Finding] = []
    for f in findings:
        suppressed = False
        for i, (rule, path) in enumerate(baseline):
            if f.rule == rule and f.path == path:
                used[i] = True
                suppressed = True
        if not suppressed:
            kept.append(f)
    for i, (rule, path) in enumerate(baseline):
        if not used[i]:
            kept.append(Finding(
                "tools/ccsim_analyze_baseline.txt", 0, "stale-baseline",
                f"baseline entry `{rule} {path}` suppresses nothing; "
                "delete it (the ratchet only tightens)"))
    return kept


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="ccsim_analyze",
        description="cross-file semantic static analysis for ccsim")
    ap.add_argument("--root", default=default_root(),
                    help="repository root (default: inferred)")
    ap.add_argument("--baseline", default=None,
                    help="baseline file (default: "
                         "<root>/tools/ccsim_analyze_baseline.txt)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline file")
    ap.add_argument("--self-test", action="store_true",
                    help="run the rule passes over the checked-in fixtures")
    ap.add_argument("--emit-stream-map", action="store_true",
                    help="regenerate the RNG stream-map table in "
                         "EXPERIMENTS.md from stream_ids.h")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"ccsim_analyze: no src/ under {root}", file=sys.stderr)
        return 2

    if args.self_test:
        import selftest
        return selftest.run(root)

    if args.emit_stream_map:
        changed = streammap.emit(
            os.path.join(root, "src", "ccsim", "sim", "stream_ids.h"),
            os.path.join(root, "EXPERIMENTS.md"))
        print("stream map: " + ("updated" if changed else "already current"))
        return 0

    findings = analyze(root)
    if not args.no_baseline:
        baseline_path = args.baseline or os.path.join(
            root, "tools", "ccsim_analyze_baseline.txt")
        findings = apply_baseline(findings, load_baseline(baseline_path))

    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(f.format())
    if findings:
        print(f"\nccsim_analyze: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("ccsim_analyze: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
