"""determinism-taint pass: unordered iteration feeding order-sensitive sinks.

ccsim_lint already flags *mutation during* unordered iteration (the
iterator-invalidation rule). This pass asks the determinism question instead:
does a value produced while walking an `unordered_map`/`unordered_set` flow
into something whose *order* the simulation can observe?

The sinks, in decreasing order of blast radius:

  * event scheduling  — `At/After/Schedule*/ResumeLater` called inside an
    unordered loop enqueues calendar events in hash order; two runs with the
    same seed diverge the moment a tie in timestamps is broken by insertion
    order (DESIGN decision #4 pins tie-breaks to sequence numbers *within*
    the calendar, but the sequence numbers themselves then encode hash
    order).
  * victim selection  — choosing a transaction to abort/wound/restart while
    iterating a hash container picks a hash-order-dependent victim; the
    deadlock detector must sort candidates first (lock_table.cc does).
  * stats/output      — `Mix`-ing into a fingerprint, printing, or recording
    a metric in hash order makes goldens and digests flap across libstdc++
    versions.

The pass is deliberately "taint-lite": the loop body is the taint region; a
sink regex hit inside it is a finding. No interprocedural flow, no alias
analysis — a human with a `ccsim-analyze: taint-ok(<reason>)` waiver is the
escape hatch, and the reason must say why the order cannot be observed
(commutative fold, sorted copy, singleton container, ...).
"""

from __future__ import annotations

import re

from cppmodel import (Finding, SourceFile, add_finding, companion_paths,
                      find_unordered_names, match_delim)

RANGE_FOR_RE = re.compile(r"\bfor\s*\(")

SINKS = (
    ("schedule",
     re.compile(r"\b(?:At|After|Schedule|ScheduleResume|ResumeLater)\s*\("),
     "schedules a calendar event in hash order; same-timestamp events then "
     "fire in a libstdc++-dependent order"),
    ("victim-selection",
     re.compile(r"\b(?:Abort|Wound|Die|Kill|Restart)\w*\s*\(|\bvictim\b"),
     "selects an abort/restart victim in hash order; sort the candidates "
     "deterministically first (txn id) as the deadlock detector does"),
    ("stats-output",
     re.compile(r"\b(?:Mix|Record)\w*\s*\(|\bprintf\s*\(|\bfprintf\s*\("
                r"|\bcout\b|\bcerr\b"),
     "emits stats/hash input in hash order; digests and goldens then flap "
     "across standard-library versions"),
)


def _loop_extent(text: str, for_open: int) -> tuple[str, int] | None:
    """(header, body_end_idx) for the for-loop whose '(' is at for_open;
    body is text[hdr_close+1 .. body_end]. Single-statement bodies extend to
    the next ';'."""
    hdr_close = match_delim(text, for_open)
    if hdr_close < 0:
        return None
    header = text[for_open + 1:hdr_close]
    i = hdr_close + 1
    n = len(text)
    while i < n and text[i].isspace():
        i += 1
    if i < n and text[i] == "{":
        end = match_delim(text, i)
        return (header, end) if end >= 0 else None
    end = text.find(";", i)
    return (header, end) if end >= 0 else None


def _check_file(sf: SourceFile, root: str, findings: list[Finding]) -> None:
    text = sf.text
    names = find_unordered_names(sf)
    for comp in companion_paths(sf.path):
        names |= find_unordered_names(SourceFile(comp, root))
    if not names:
        return
    name_alt = "|".join(re.escape(n) for n in sorted(names))
    # Range-for over a known unordered container (possibly via members/deref:
    # `: table_`, `: node->held_`, `: *locks`).
    ranged_re = re.compile(
        rf":\s*[&*]?\s*(?:[A-Za-z_]\w*\s*(?:\.|->)\s*)*(?:{name_alt})\s*$")
    # FlatHashMap has no iterators; ForEach visits in hash order, so the
    # callback body is the taint region exactly as a range-for body is.
    foreach_re = re.compile(
        rf"\b(?:{name_alt})\s*\.\s*ForEach(?:Mutable)?\s*\(")

    for m in foreach_re.finditer(text):
        call_open = m.end() - 1
        call_close = match_delim(text, call_open)
        if call_close < 0:
            continue
        body = text[call_open + 1:call_close]
        line = sf.line_of(m.start())
        for sink_name, sink_re, why in SINKS:
            sm = sink_re.search(body)
            if not sm:
                continue
            sink_line = sf.line_of(call_open + 1 + sm.start())
            add_finding(
                findings, sf, line, "determinism-taint", "taint-ok",
                f"ForEach over a flat hash table {why} "
                f"(sink `{sm.group(0).strip()}` at line {sink_line}). "
                "Collect and sort the keys first, hoist the sink out of the "
                "callback, or waive with ccsim-analyze: taint-ok(reason) "
                "explaining why the order is unobservable")
            break

    for m in RANGE_FOR_RE.finditer(text):
        extent = _loop_extent(text, m.end() - 1)
        if extent is None:
            continue
        header, body_end = extent
        if not ranged_re.search(header.strip()):
            continue
        hdr_close = m.end() - 1 + len(header) + 1
        body = text[hdr_close + 1:body_end]
        line = sf.line_of(m.start())
        for sink_name, sink_re, why in SINKS:
            sm = sink_re.search(body)
            if not sm:
                continue
            sink_line = sf.line_of(hdr_close + 1 + sm.start())
            add_finding(
                findings, sf, line, "determinism-taint", "taint-ok",
                f"loop over unordered container {why} "
                f"(sink `{sm.group(0).strip()}` at line {sink_line}). "
                "Iterate a sorted copy, hoist the sink out of the loop, or "
                "waive with ccsim-analyze: taint-ok(reason) explaining why "
                "the order is unobservable")
            break  # one finding per loop; the first sink is the headline


def run(files: list[SourceFile], root: str) -> list[Finding]:
    findings: list[Finding] = []
    for sf in files:
        _check_file(sf, root, findings)
    return findings
