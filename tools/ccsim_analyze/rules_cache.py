"""cache-schema pass: RunResult <-> serialize table <-> migration scripts.

The result cache stores one text file per simulation point; its schema lives
in four places that historically drifted apart by hand-editing:

  1. the `engine::RunResult` struct (src/ccsim/engine/run.h),
  2. the table-driven serialize/parse field table (`kFields` in
     src/ccsim/experiments/cache.cc) and its `kFormatVersion`,
  3. the derived `field_count` trailer (len(kFields), checked at parse time),
  4. the latest `tools/migrate_cache_v*_to_v*.py` script, whose target
     version and field count must describe the current format.

PR 2 found 722 cache entries silently defaulting two counters because the
parser accepted any-18-field files; PR 4 hand-audited the v6 bump. This pass
machine-checks the consistency: a RunResult field added without a table entry
(or an explicit `ccsim-analyze: cache-exempt(reason)` waiver on the field),
a table key that does not match its member name, a type-mismatched row, a
stale table row, or a migration script whose target version / field count
disagrees with `kFormatVersion` / len(kFields) all fail CI.
"""

from __future__ import annotations

import os
import re

from cppmodel import Finding, SourceFile, add_finding, parse_structs

TABLE_ENTRY_RE = re.compile(
    r"\b([DUB])\s*\(\s*\"(\w+)\"\s*,\s*&R\s*::\s*(\w+)\s*\)")
FORMAT_VERSION_RE = re.compile(r"\bkFormatVersion\s*=\s*(\d+)")
MIGRATE_NAME_RE = re.compile(r"^migrate_cache_v(\d+)_to_v(\d+)\.py$")

# RunResult field type -> expected table row macro.
_TYPE_TO_MACRO = {
    "double": "D",
    "std::uint64_t": "U",
    "uint64_t": "U",
    "bool": "B",
}


def run(run_h: str, cache_cc: str, tools_dir: str, root: str,
        result_struct: str = "RunResult") -> list[Finding]:
    findings: list[Finding] = []
    run_sf = SourceFile(run_h, root)
    cache_sf = SourceFile(cache_cc, root)

    structs = parse_structs(run_sf)
    if result_struct not in structs:
        findings.append(Finding(run_sf.rel, 0, "cache-schema",
                                f"struct {result_struct} not found"))
        return findings
    fields = structs[result_struct].fields

    # Keys are string literals, which the stripped text blanks — so match
    # table rows on the raw lines, and use the stripped line to reject rows
    # that live inside comments. (Rows are one-per-line by clang-format.)
    entries = []  # (macro, key, member, line)
    for lineno0, (raw_line, code_line) in enumerate(
            zip(cache_sf.raw, cache_sf.code)):
        for m in TABLE_ENTRY_RE.finditer(raw_line):
            if "&R" in code_line:
                entries.append((m.group(1), m.group(2), m.group(3),
                                lineno0 + 1))
    if not entries:
        findings.append(Finding(cache_sf.rel, 0, "cache-schema",
                                "no D/U/B field-table entries found"))
        return findings

    by_member = {}
    seen_keys = {}
    for macro, key, member, line in entries:
        if key != member:
            findings.append(Finding(
                cache_sf.rel, line, "cache-schema",
                f'table key "{key}" does not match member &R::{member}; '
                "a renamed key orphans every committed cache entry and a "
                "mismatched member stores the value in the wrong field"))
        if key in seen_keys:
            findings.append(Finding(
                cache_sf.rel, line, "cache-schema",
                f'duplicate table key "{key}" (first at line '
                f"{seen_keys[key]}); the parser's seen-field mask would "
                "count it once and reject every file"))
        seen_keys.setdefault(key, line)
        if member in by_member:
            findings.append(Finding(
                cache_sf.rel, line, "cache-schema",
                f"duplicate table member &R::{member}"))
        by_member.setdefault(member, (macro, line))

    struct_members = {f.name for f in fields}
    for f in fields:
        if f.name in by_member:
            macro, line = by_member[f.name]
            want = _TYPE_TO_MACRO.get(f.type)
            if want is not None and macro != want:
                findings.append(Finding(
                    cache_sf.rel, line, "cache-schema",
                    f"&R::{f.name} is declared {f.type} but serialized via "
                    f"{macro}(); integer counters routed through double "
                    "silently corrupt above 2^53 (the PR 2 bug class)"))
            elif want is None:
                findings.append(Finding(
                    cache_sf.rel, line, "cache-schema",
                    f"&R::{f.name} has unserializable type {f.type} in the "
                    "field table"))
            continue
        add_finding(
            findings, run_sf, f.line, "cache-schema", "cache-exempt",
            f"{result_struct}::{f.name} is not in the cache field table "
            f"({cache_sf.rel}); without a table row (and a format bump + "
            "migration script) cached entries silently default this field. "
            "Add it or waive with ccsim-analyze: cache-exempt(reason)")
    for member, (_, line) in by_member.items():
        if member not in struct_members:
            findings.append(Finding(
                cache_sf.rel, line, "cache-schema",
                f"table row &R::{member} has no matching {result_struct} "
                "field (stale entry?)"))

    # --- format version vs. the migration-script lineage ------------------
    vm = FORMAT_VERSION_RE.search(cache_sf.text)
    if vm is None:
        findings.append(Finding(cache_sf.rel, 0, "cache-schema",
                                "kFormatVersion constant not found"))
        return findings
    version = int(vm.group(1))
    version_line = cache_sf.line_of(vm.start())

    migrations = []
    if os.path.isdir(tools_dir):
        for name in sorted(os.listdir(tools_dir)):
            m = MIGRATE_NAME_RE.match(name)
            if m:
                migrations.append((int(m.group(1)), int(m.group(2)), name))
    if migrations:
        latest_from, latest_to, latest_name = max(
            migrations, key=lambda t: t[1])
        if latest_to != version:
            findings.append(Finding(
                cache_sf.rel, version_line, "cache-schema",
                f"kFormatVersion is {version} but the latest migration "
                f"script ({latest_name}) targets v{latest_to}; bumping the "
                "format without a migration strands the committed entries"))
        else:
            mig_path = os.path.join(tools_dir, latest_name)
            with open(mig_path, "r", encoding="utf-8", errors="replace") as f:
                mig_text = f.read()
            cm = re.search(rf"\bV{latest_to}_FIELD_COUNT\s*=\s*(\d+)",
                           mig_text)
            mig_rel = os.path.relpath(mig_path, root).replace(os.sep, "/")
            if cm is None:
                findings.append(Finding(
                    mig_rel, 0, "cache-schema",
                    f"migration script defines no V{latest_to}_FIELD_COUNT; "
                    "the script must assert the post-migration field count"))
            elif int(cm.group(1)) != len(entries):
                findings.append(Finding(
                    mig_rel, 0, "cache-schema",
                    f"V{latest_to}_FIELD_COUNT is {cm.group(1)} but the "
                    f"field table has {len(entries)} rows; the migrated "
                    "trailer would be rejected by ParseResult"))

    return findings
