"""fingerprint pass: every config field must key the result cache.

PR 2 shipped a silent stale-cache bug: `RunParams::rt_batch_size` changed a
reported metric but was missing from `SystemConfig::Fingerprint()`, so sweeps
happily served cached results for configurations they had never run. This
pass makes that class of bug a CI failure: every member field of every struct
reachable from `SystemConfig` (in `src/ccsim/config/`) must either

  * be mentioned by name somewhere in the body of
    `SystemConfig::Fingerprint()` (unconditional `Mix`, conditional
    default-deviation `Mix`, or a loop over a sub-struct vector), or
  * carry an explicit waiver on its declaration:
        // ccsim-analyze: fp-exempt(<why this field can never change metrics>)

The check is name-resolution, not data-flow: a field mentioned only inside a
comment does not count (comments are stripped), but a field mixed under a
condition does. That is deliberate — conditional mixing (the "mix only when
deviating from the default" idiom that keeps old fingerprints stable) is a
supported pattern, and the audit question "is the condition right?" is for
the human reviewer; the analyzer's job is the silent-omission case.
"""

from __future__ import annotations

import os
import re

from cppmodel import (Finding, SourceFile, StructDef, add_finding,
                      function_body, parse_structs)

FINGERPRINT_BODY_RE = r"::\s*Fingerprint\s*\(\s*\)\s*const"


def _struct_of_type(type_str: str, structs: dict[str, StructDef]):
    """The known struct named in `type_str` (directly or as a container
    element type), or None for leaf fields."""
    for name in structs:
        if re.search(rf"\b{re.escape(name)}\b", type_str):
            return structs[name]
    return None


def run(config_dir: str, root: str,
        root_struct: str = "SystemConfig") -> list[Finding]:
    findings: list[Finding] = []

    headers = []
    impls = []
    for name in sorted(os.listdir(config_dir)):
        path = os.path.join(config_dir, name)
        if name.endswith((".h", ".hpp")):
            headers.append(SourceFile(path, root))
        elif name.endswith((".cc", ".cpp", ".cxx")):
            impls.append(SourceFile(path, root))

    structs: dict[str, StructDef] = {}
    owner: dict[str, SourceFile] = {}
    for sf in headers:
        for sname, sdef in parse_structs(sf).items():
            structs[sname] = sdef
            owner[sname] = sf

    body = None
    body_sf = None
    for sf in impls:
        found = function_body(sf, FINGERPRINT_BODY_RE)
        if found:
            body = found[0]
            body_sf = sf
            break

    rel_dir = os.path.relpath(config_dir, root).replace(os.sep, "/")
    if root_struct not in structs:
        findings.append(Finding(rel_dir, 0, "fingerprint",
                                f"struct {root_struct} not found in any "
                                f"header under {rel_dir}"))
        return findings
    if body is None:
        findings.append(Finding(rel_dir, 0, "fingerprint",
                                "no ::Fingerprint() const definition found "
                                f"under {rel_dir}"))
        return findings

    seen: set[str] = set()

    def check(sdef: StructDef) -> None:
        if sdef.name in seen:
            return
        seen.add(sdef.name)
        sf = owner[sdef.name]
        for f in sdef.fields:
            sub = _struct_of_type(f.type, structs)
            if sub is not None:
                check(sub)
                continue
            if re.search(rf"\b{re.escape(f.name)}\b", body):
                continue
            add_finding(
                findings, sf, f.line, "fingerprint", "fp-exempt",
                f"{sdef.name}::{f.name} is not mixed into "
                f"{root_struct}::Fingerprint() "
                f"({body_sf.rel}); a config knob missing from the "
                "fingerprint silently serves stale cached results. Mix it "
                "(guarded by its default if old fingerprints must survive) "
                "or waive with ccsim-analyze: fp-exempt(reason)")
        return

    check(structs[root_struct])
    return findings
