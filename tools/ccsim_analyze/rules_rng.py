"""rng-stream pass: RandomStream ids come from the central registry.

Every RandomStream is seeded as (master_seed, stream_id); determinism across
the whole experiment corpus rests on stream ids being unique and frozen.
Ad-hoc numeric ids scattered through the model (the 8900/9000+ literals that
used to live in fault_injector.cc, the bare 777 in system.cc) made collisions
and silent renumbering a code-review problem. They are now constants in
src/ccsim/sim/stream_ids.h, and this pass enforces the discipline in src/:

  * the stream-id argument of every RandomStream construction (direct,
    make_unique, or member-initializer of a declared RandomStream member)
    must reference a registry constant — or at least an identifier that
    visibly plumbs one (its name contains "stream"), for bases passed down
    through constructor parameters;
  * integer literals >= 10 in a stream-id expression are banned (small
    additive offsets like `base + 1 + i` are fine; a raw id is not).

Waive with `// ccsim-analyze: stream-ok(<reason>)`. The registry itself and
the RandomStream implementation are skipped. The same registry file feeds the
generated stream-map table (tools/ccsim_analyze --emit-stream-map).
"""

from __future__ import annotations

import re

from cppmodel import (Finding, SourceFile, add_finding, companion_paths,
                      match_delim, split_args, strip_comments_and_strings)

SKIP_REL_SUFFIXES = ("ccsim/sim/random.h", "ccsim/sim/random.cc",
                     "ccsim/sim/stream_ids.h")

REGISTRY_CONST_RE = re.compile(r"\bconstexpr\s+std::uint64_t\s+(k\w+)\s*=")
DECL_RE = re.compile(r"\bRandomStream\s+([A-Za-z_]\w*)\s*[;,)=({]")
DIRECT_CTOR_RE = re.compile(r"\bRandomStream\s*\(")
MAKE_UNIQUE_RE = re.compile(
    r"\bmake_unique\s*<\s*(?:sim\s*::\s*)?RandomStream\s*>\s*\(")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")
INT_LITERAL_RE = re.compile(r"\b\d+\b")

# Identifiers that never name a stream id (casts, fixed-width types).
_NOISE_IDENTS = frozenset({
    "static_cast", "std", "uint64_t", "uint32_t", "int64_t", "size_t",
    "int", "auto", "const",
})


def load_registry(registry_path: str, root: str):
    """Registry constant names, or (None, finding) when the file is absent."""
    import os
    if not os.path.isfile(registry_path):
        rel = os.path.relpath(registry_path, root).replace(os.sep, "/")
        return None, Finding(rel, 0, "rng-stream",
                             "stream-id registry header not found; every "
                             "RandomStream id must be declared there")
    with open(registry_path, "r", encoding="utf-8", errors="replace") as f:
        text = "\n".join(strip_comments_and_strings(f.read().splitlines()))
    return set(REGISTRY_CONST_RE.findall(text)), None


def _stream_id_ok(arg: str, registry: set[str]) -> tuple[bool, str]:
    idents = [i for i in IDENT_RE.findall(arg) if i not in _NOISE_IDENTS]
    named = any(i in registry or "stream" in i.lower() for i in idents)
    big_literals = [t for t in INT_LITERAL_RE.findall(arg) if int(t) >= 10]
    if big_literals:
        return False, (f"raw stream-id literal {big_literals[0]}; ids are "
                       "assigned once in ccsim/sim/stream_ids.h so bands "
                       "never collide or silently renumber")
    if not named:
        return False, ("stream id names no registry constant (and no "
                       "*stream* identifier plumbing one); draw it from "
                       "ccsim/sim/stream_ids.h")
    return True, ""


def _check_file(sf: SourceFile, root: str, registry: set[str],
                findings: list[Finding]) -> None:
    text = sf.text

    # RandomStream members/locals declared here or in the companion header:
    # their name used as a call is a construction (member-init list).
    names = set(DECL_RE.findall(text))
    for comp in companion_paths(sf.path):
        comp_sf = SourceFile(comp, root)
        names |= set(DECL_RE.findall(comp_sf.text))

    sites = []  # (args_open_idx,)
    for m in DIRECT_CTOR_RE.finditer(text):
        sites.append(m.end() - 1)
    for m in MAKE_UNIQUE_RE.finditer(text):
        sites.append(m.end() - 1)
    if names:
        alt = "|".join(re.escape(n) for n in sorted(names))
        for m in re.finditer(rf"\b(?:{alt})\s*\(", text):
            sites.append(m.end() - 1)

    for open_idx in sorted(set(sites)):
        close_idx = match_delim(text, open_idx)
        if close_idx < 0:
            continue
        args = split_args(text[open_idx + 1:close_idx])
        if len(args) != 2:
            continue  # copy/move/default construction, or not a ctor at all
        ok, why = _stream_id_ok(args[1], registry)
        if not ok:
            add_finding(findings, sf, sf.line_of(open_idx), "rng-stream",
                        "stream-ok",
                        f"RandomStream construction: {why}")


def run(files: list[SourceFile], registry_path: str, root: str,
        skip_suffixes: tuple[str, ...] = SKIP_REL_SUFFIXES) -> list[Finding]:
    findings: list[Finding] = []
    registry, missing = load_registry(registry_path, root)
    if registry is None:
        return [missing]
    for sf in files:
        if sf.rel.endswith(skip_suffixes):
            continue
        _check_file(sf, root, registry, findings)
    return findings
